//! Boot the NGINX-analogue web server under full BASTION protection, serve
//! real HTTP traffic through the wrk-style load generator, and print the
//! paper's per-app statistics (Table 4 flavor).
//!
//! ```sh
//! cargo run --release --example webserver_protection
//! ```

use bastion::apps::{loadgen, App};
use bastion::compiler::BastionCompiler;
use bastion::ir::sysno;
use bastion::kernel::World;
use bastion::vm::{CostModel, Image, Machine};
use bastion::{monitor, Protection};
use std::sync::Arc;

fn main() {
    let app = App::Webserve;
    let protection = Protection::full();
    println!("booting {} under {} ...", app.label(), protection.label);

    let out = BastionCompiler::new()
        .compile(app.module().expect("webserve compiles"))
        .expect("instrumentation succeeds");
    let image = Arc::new(Image::load(out.module).expect("image loads"));
    let mut world = World::new(CostModel::default());
    app.setup_vfs(&mut world);
    let mut machine = Machine::new(image.clone(), CostModel::default());
    protection.hardening.apply(&mut machine);
    let pid = world.spawn(machine);
    monitor::protect(
        &mut world,
        pid,
        &image,
        &out.metadata,
        protection.monitor.expect("full protection has a monitor"),
    );

    world.run(1_000_000_000);
    println!(
        "boot complete: {} processes (1 master + 32 workers), {} init-phase traps",
        world.alive_count(),
        world.trap_count
    );

    let boot_traps = world.trap_count;
    let stats = loadgen::http_load(&mut world, app.port(), 16, 600);
    println!(
        "served {} requests / {:.1} MB in {:.1} virtual ms ({:.1} MB/s); {} in-window traps",
        stats.requests,
        stats.bytes as f64 / 1e6,
        stats.cycles as f64 / 2e6,
        stats.throughput_mb_s(2_000_000_000),
        world.trap_count - boot_traps,
    );

    println!();
    println!("sensitive syscall usage (Table 4 flavor):");
    for &(nr, _) in sysno::SENSITIVE {
        let n = world.kernel.count_of(nr);
        if n > 0 {
            println!("  {:<18} {n}", sysno::name(nr).expect("named"));
        }
    }
    if let Some(stats) = world.take_tracer().and_then(|t| {
        t.as_any()
            .downcast_ref::<monitor::Monitor>()
            .map(|m| m.stats.clone())
    }) {
        println!();
        println!(
            "monitor: {} traps, 0 violations = {}, stack depth avg {:.1} (min {}, max {})",
            stats.traps,
            stats.violations() == 0,
            stats.avg_depth(),
            stats.min_depth,
            stats.max_depth
        );
    }
}
