//! Walk the Figure 2 example through the whole compiler pipeline:
//! MiniC source → IR → analyses → instrumentation → context metadata.
//!
//! ```sh
//! cargo run --example compiler_pipeline
//! ```

use bastion::analysis::{CallGraph, CallTypeReport, ControlFlowReport, SensitiveReport};
use bastion::compiler::BastionCompiler;
use bastion::ir::sysno;

/// Figure 2 of the paper, in MiniC.
const FIGURE2: &str = r#"
struct shm { long size; };
struct shm gshm;

void bar(long b0, char *b1, long b2) {
    long prots = 1 | 2;                  // PROT_READ | PROT_WRITE
    mmap(0, gshm.size, prots, b2, 0 - 1, 0);
}

void foo(long f0, char *f1, long f2) {
    long flags = 0x20 | 0x1;             // MAP_ANONYMOUS | MAP_SHARED
    bar(1, f1, flags);
}

long main() {
    gshm.size = 8192;
    foo(0, 0, 0);
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = bastion::minic::compile_program("figure2", &[FIGURE2])?;
    println!(
        "== front-end: {} functions, {} globals ==",
        module.functions.len(),
        module.globals.len()
    );

    let cg = CallGraph::build(&module);
    println!(
        "call graph: {} callsites ({} direct / {} indirect), {} address-taken functions",
        cg.total_callsites(),
        cg.direct_callsites(),
        cg.indirect_callsites(),
        cg.address_taken.len()
    );

    let ct = CallTypeReport::build(&module, &cg);
    println!(
        "call-type: mmap is {:?}; {} syscalls not-callable",
        ct.class_of(sysno::MMAP),
        ct.not_callable().count()
    );

    let sens = sysno::sensitive_set();
    let cf = ControlFlowReport::build(&module, &cg, &sens);
    println!(
        "control-flow: {} functions reach a sensitive syscall; {} callee→caller edges",
        cf.reaching.len(),
        cf.edge_count()
    );

    let sr = SensitiveReport::build(&module, &cg, &sens);
    println!(
        "argument integrity: {} sensitive locations, {} instrumented stores, {} param spills",
        sr.sensitive_locs.len(),
        sr.store_sites.len(),
        sr.param_spills.len()
    );
    for site in &sr.syscall_sites {
        println!("  syscall site nr={} args: {:?}", site.nr, site.args);
    }
    for ps in &sr.prop_sites {
        println!(
            "  propagation callsite into {:?}: positions {:?}",
            module.func(ps.callee).name,
            ps.args.iter().map(|(p, _)| *p).collect::<Vec<_>>()
        );
    }

    let out = BastionCompiler::new().compile(module)?;
    println!();
    println!("== instrumented IR (bar) ==");
    let text = bastion::ir::printer::print_module(&out.module);
    let mut printing = false;
    for line in text.lines() {
        if line.starts_with("fn bar") {
            printing = true;
        } else if line.starts_with("fn ") {
            printing = false;
        }
        if printing {
            println!("{line}");
        }
    }
    println!();
    println!("== metadata summary ==");
    let s = &out.metadata.stats;
    println!(
        "{} ctx_write_mem, {} ctx_bind_mem, {} ctx_bind_const across {} sensitive callsites",
        s.ctx_write_mem, s.ctx_bind_mem, s.ctx_bind_const, s.sensitive_callsites
    );
    Ok(())
}
