//! Replay three signature attacks from Table 6 with narrative output:
//! a classic ROP ret2libc, the NEWTON CPI index-corruption attack, and
//! the data-only AOCR NGINX Attack 2.
//!
//! ```sh
//! cargo run --release --example attack_replay
//! ```

use bastion::attacks::{catalog, evaluate};

fn main() {
    let picks = [1u32, 28, 30];
    let cat = catalog();
    for id in picks {
        let s = cat.iter().find(|s| s.id == id).expect("scenario exists");
        println!("================================================================");
        println!("#{} {}", s.id, s.name);
        println!(
            "   category: {}   paper citation: {}",
            s.category.label(),
            s.citation
        );
        println!(
            "   Table 6 expects: CT {} CF {} AI {}",
            tick(s.expected.ct),
            tick(s.expected.cf),
            tick(s.expected.ai)
        );
        println!();
        let r = evaluate(s);
        for d in &r.details {
            println!("   {d}");
        }
        println!(
            "   observed matrix: CT {} CF {} AI {}  -> {}",
            tick(r.observed.ct),
            tick(r.observed.cf),
            tick(r.observed.ai),
            if r.matches_paper() {
                "matches the paper"
            } else {
                "DIVERGES from the paper"
            }
        );
        println!();
    }
}

fn tick(b: bool) -> &'static str {
    if b {
        "BLOCKED"
    } else {
        "bypassed"
    }
}
