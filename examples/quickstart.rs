//! Quickstart: compile a small MiniC daemon under BASTION, serve it a
//! request while protected, then corrupt its memory like an attacker and
//! watch the monitor kill it at the syscall boundary.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bastion::kernel::ExitReason;
use bastion::{Deployment, Protection};

/// A tiny daemon: maps an arena, then re-applies page protection for every
/// admin command it receives on its control socket.
const APP: &str = r#"
long arena;

void lock_pages(long prots) {
    mprotect(arena, 4096, prots);
}

long main() {
    long listener;
    long sa[2];
    long conn;
    char buf[16];

    arena = mmap(0, 65536, 3, 0x21, 0 - 1, 0);
    lock_pages(1);                      // PROT_READ — the legitimate value
    listener = socket(2, 1, 0);
    sa[0] = 2 | 9000 * 65536;
    bind(listener, sa, 16);
    listen(listener, 4);
    puts("daemon ready\n");
    while (1) {
        conn = accept(listener, 0, 0);
        if (read(conn, buf, 15) <= 0) { return 0; }
        lock_pages(1);                  // re-lock on every admin command
        write(conn, "locked\n", 7);
        close(conn);
    }
    return 0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile: analysis + instrumentation + context metadata.
    let deployment = Deployment::from_minic("quickstart", &[APP])?;
    let stats = &deployment.metadata.stats;
    println!(
        "compiled: {} callsites, {} sensitive, {} instrumentation points",
        stats.total_callsites,
        stats.sensitive_callsites,
        stats.total_instrumentation()
    );

    // 2. Serve a legitimate admin command under full protection.
    let mut world = deployment.world();
    let pid = deployment.launch(&mut world, &Protection::full());
    world.run(10_000_000); // boots, then parks in accept
    let c = world.net_connect(9000).expect("daemon listening");
    world.net_send(c, b"relock\n");
    world.run(10_000_000);
    println!(
        "legitimate command: reply {:?}, {} sensitive-syscall traps, daemon alive: {}",
        String::from_utf8_lossy(&world.net_recv(c)),
        world.trap_count,
        world.proc(pid).unwrap().alive()
    );
    assert!(world.proc(pid).unwrap().alive());

    // 3. The attack: with the daemon parked in accept, use the memory
    //    vulnerability to overwrite `arena` — the pointer the next
    //    mprotect will receive — then send another command.
    let arena_sym = deployment.image.symbol("arena").expect("arena symbol");
    {
        let p = world.proc_mut(pid).unwrap();
        p.machine
            .mem
            .write_unchecked(arena_sym, &0x1337_0000u64.to_le_bytes());
    }
    let c = world.net_connect(9000).expect("daemon listening");
    world.net_send(c, b"relock\n");
    world.run(10_000_000);
    let exit = world.proc(pid).unwrap().exit.clone();
    println!("after corruption: {exit:?}");
    match exit {
        Some(ExitReason::MonitorKill { reason, .. }) => {
            println!("BASTION blocked the attack: {reason}");
            Ok(())
        }
        other => Err(format!("attack was not blocked: {other:?}").into()),
    }
}
