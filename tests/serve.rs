//! `bastiond` supervisor contract tests (DESIGN.md §6k): the multi-tenant
//! schedule must be byte-reproducible at any worker count, the bounded
//! admission queue must reject overflow cleanly, and a tenant the monitor
//! denies must be evicted without perturbing any neighbor's report.

use bastion::apps::App;
use bastion::attacks::generate::{Generator, FAMILIES};
use bastion::serve::{self, ServeConfig, TenantKind};
use bastion::serve::{serve_with_specs, TenantSpec};

fn small_cfg(tenants: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(tenants, 11);
    cfg.requests_per_tenant = 6;
    cfg
}

/// The headline determinism contract: the same config at `jobs = 1` and
/// `jobs = 4` yields byte-identical rendered tables *and* byte-identical
/// serialized reports — per-tenant worlds are independent and the shard
/// layout never leaks into the results.
#[test]
fn serve_report_is_byte_identical_across_worker_counts() {
    let cfg = small_cfg(8);
    let serial = serve::run_serve(&cfg.clone().with_jobs(1));
    let parallel = serve::run_serve(&cfg.with_jobs(4));
    assert_eq!(
        serial.report.render(),
        parallel.report.render(),
        "rendered tables diverged between jobs=1 and jobs=4"
    );
    assert_eq!(
        serde_json::to_string_pretty(&serial.report).unwrap(),
        serde_json::to_string_pretty(&parallel.report).unwrap(),
        "serialized reports diverged between jobs=1 and jobs=4"
    );
    // The fleet merge (tenant registries in id order) is jobs-invariant
    // too: same request-latency lane either way.
    assert_eq!(
        serial.report.request_latency,
        parallel.report.request_latency
    );
    assert!(serial.report.completed > 0);
    assert!(serial.report.request_latency.count > 0);
}

/// The admission queue is bounded: submissions past capacity are rejected
/// by id, never booted (no turns, no traps), and the admitted tenants
/// still complete their whole workload.
#[test]
fn admission_overflow_rejects_cleanly() {
    let mut cfg = small_cfg(6);
    cfg.admission_capacity = 4;
    let run = serve::run_serve(&cfg);
    let r = &run.report;
    assert_eq!(r.admitted, 4);
    assert_eq!(
        r.rejected,
        vec![4, 5],
        "overflow rejected in submission order"
    );
    assert_eq!(r.rows.len(), 4, "rejected tenants get no row");
    assert!(
        r.rows.iter().all(|row| row.status == "completed"),
        "admitted tenants must be unaffected by the overflow:\n{}",
        r.render()
    );
}

/// A rogue tenant (a generated CT-violation attack program) is denied by
/// the monitor and evicted — and every neighbor's report row is
/// byte-identical to a run without the rogue present.
#[test]
fn denied_tenant_is_evicted_without_perturbing_neighbors() {
    let neighbors = vec![
        TenantSpec {
            id: 0,
            kind: TenantKind::App(App::Webserve),
            requests: 4,
        },
        TenantSpec {
            id: 1,
            kind: TenantKind::App(App::Dbkv),
            requests: 4,
        },
        TenantSpec {
            id: 2,
            kind: TenantKind::App(App::Ftpd),
            requests: 1,
        },
    ];
    let family = FAMILIES
        .iter()
        .find(|f| f.name == "ct-indirect-execve")
        .expect("family table");
    let rogue = Generator::new(5).program(family);
    let mut with_rogue = neighbors.clone();
    with_rogue.push(TenantSpec {
        id: 3,
        kind: TenantKind::Custom {
            name: "rogue".to_string(),
            source: rogue.source.clone(),
        },
        requests: 0,
    });

    let cfg = small_cfg(4);
    let clean = serve_with_specs(&cfg, neighbors);
    let attacked = serve_with_specs(&cfg, with_rogue);

    let rogue_row = &attacked.report.rows[3];
    assert!(
        rogue_row.status.starts_with("denied["),
        "rogue must be monitor-denied, got `{}`",
        rogue_row.status
    );
    assert_eq!(attacked.report.evicted, 1);
    assert_eq!(attacked.report.completed, 3);
    for (a, b) in clean.report.rows.iter().zip(&attacked.report.rows) {
        assert_eq!(a, b, "neighbor {} perturbed by the rogue tenant", a.id);
    }
}

/// The seeded mix covers all three applications and draws different mixes
/// from different seeds, so multi-tenant runs exercise every protocol.
#[test]
fn seeded_mix_covers_every_app() {
    let specs = serve::tenant_mix(&ServeConfig::new(16, 3));
    assert_eq!(specs.len(), 16);
    assert!(serve::mix_covers_all_apps(&specs));
}
