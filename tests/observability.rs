//! Serving-observability contract tests (DESIGN.md §6j):
//!
//! * quantile-sketch merges are **shard- and interpreter-invariant** —
//!   the fleet-merged sketch state is byte-identical for any worker
//!   count, on either interpreter;
//! * every deny carries a **flight-recorder dump** whose last entry is
//!   the denied trap itself (tier 2, still in flight when the verdict
//!   landed);
//! * the flight ring is part of the world's deterministic state: it
//!   survives snapshot/restore bit-for-bit.

use bastion::apps::App;
use bastion::chaos::attack_chaos;
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, WorkloadSize};
use bastion::kernel::{FaultKind, FaultSchedule, LegacyInterpGuard, Trigger};
use bastion::monitor::{ContextConfig, Resilience};
use bastion::obs::flight::verdict;
use bastion::obs::FlightTrigger;
use bastion::vm::CostModel;
use bastion::{fleet, obs, Deployment, Protection};

/// Runs the three workload apps sharded over `jobs` fleet workers, one
/// telemetry scope per app, and returns the merged sketch state
/// serialized (percentile lanes *and* raw buckets).
fn merged_sketches(jobs: usize, legacy: bool) -> String {
    let regs = fleet::run_ordered(
        jobs,
        vec![App::Webserve, App::Dbkv, App::Ftpd],
        |_, &app| {
            let _engine = LegacyInterpGuard::set(legacy);
            let guard = obs::TelemetryGuard::enable(1 << 15);
            run_app_benchmark(
                app,
                &Protection::full(),
                &WorkloadSize::quick(),
                &BastionCompiler::new(),
                CostModel::default(),
            );
            let (_events, registry) = guard.finish();
            registry
        },
    );
    let mut merged = obs::MetricsRegistry::new();
    for r in regs {
        merged.merge(r);
    }
    serde_json::to_string(&merged.snapshot().sketches).expect("sketches serialize")
}

#[test]
fn sketch_merge_is_shard_and_interpreter_invariant() {
    let serial = merged_sketches(1, false);
    assert!(
        serial.contains("trap.verify_cycles") && serial.contains("loadgen.request_cycles"),
        "expected trap + loadgen sketch lanes, got: {serial}"
    );
    assert_eq!(serial, merged_sketches(2, false), "2 workers diverged");
    assert_eq!(serial, merged_sketches(4, false), "4 workers diverged");
    assert_eq!(
        serial,
        merged_sketches(1, true),
        "legacy interpreter diverged"
    );
}

#[test]
fn every_chaos_deny_joins_a_flight_dump() {
    let catalog = bastion_attacks::catalog();
    let scenario = catalog.iter().find(|s| s.id == 1).expect("row 1 exists");
    let reports = attack_chaos(scenario, ContextConfig::full(), &[0xA77C_0001]);
    assert!(!reports.is_empty());
    let mut denies = 0usize;
    for report in &reports {
        assert!(
            report.denies_carry_flight(),
            "#{} `{}`: a deny record lost its flight dump",
            report.id,
            report.schedule
        );
        for d in &report.deny_records {
            denies += 1;
            let last = d.flight.last().expect("deny carries ring entries");
            // The denied trap is the newest ring entry, recorded at
            // tier-2 entry and still PENDING when the monitor's verdict
            // (and with it the DenyRecord) was produced.
            assert_eq!(last.trap, d.trap_seq);
            assert_eq!(last.tier, 2);
            assert_eq!(last.verdict, verdict::PENDING);
            // Everything older in the ring was finalized.
            for e in &d.flight[..d.flight.len() - 1] {
                assert!(e.trap < last.trap, "ring out of order: {e:?}");
                assert_ne!(e.verdict, verdict::PENDING, "unfinalized entry {e:?}");
            }
        }
    }
    assert!(denies > 0, "attack #1 never produced a deny under chaos");
}

/// Enough sensitive traps (mmap + mprotect in a loop) to wrap nothing
/// but populate the ring with finalized entries.
const TRAPPY: &str = r#"
    long main() {
        long a;
        long i;
        a = mmap(0, 8192, 3, 0x21, 0 - 1, 0);
        i = 0;
        while (i < 6) {
            a = a + 0 * mprotect(a, 4096, 3);
            i = i + 1;
        }
        return a > 0;
    }
"#;

#[test]
fn ladder_transition_captures_a_triggered_flight_dump() {
    let d = Deployment::from_minic("flight-rung", &[TRAPPY]).expect("compiles");
    let mut protection = Protection::full();
    protection.monitor = Some(ContextConfig::full().with_resilience(Resilience {
        degrade_after: 1,
        fail_closed_after: 100,
        ..Resilience::default()
    }));
    let mut world = d.world();
    d.launch(&mut world, &protection);
    // One fully-faulted trap exhausts retries, strikes once, and pushes
    // the monitor onto the Degraded rung at that same trap — the rung
    // check runs after the verdict settles, so the dump is captured even
    // though the fail-closed deny then kills the process.
    world.install_faults(
        FaultSchedule::new(0xF116_0001)
            .with(FaultKind::ReadError, Trigger::TrapRange { from: 1, to: 2 }),
    );
    world.run(10_000_000);

    let dumps = world.flight_dumps();
    let rung_dump = dumps
        .iter()
        .find(|dump| matches!(dump.trigger, FlightTrigger::LadderRung))
        .unwrap_or_else(|| panic!("no ladder-rung dump captured: {dumps:?}"));
    assert!(
        !rung_dump.entries.is_empty(),
        "triggered dump carries ring context"
    );
    // The dump was taken at the transitioning trap, with the ring holding
    // the traps that led up to it.
    assert!(rung_dump.entries.iter().any(|e| e.trap == rung_dump.trap));
}

#[test]
fn flight_ring_survives_snapshot_restore() {
    let d = Deployment::from_minic("flight-snap", &[TRAPPY]).expect("compiles");
    let mut live = d.world();
    d.launch(&mut live, &Protection::full());
    // Stop mid-run so the ring holds a partial history.
    live.run(40_000);
    assert!(live.flight_total() > 0, "no traps recorded before snapshot");
    let snap = live.snapshot();

    let mut restored = bastion::kernel::World::restore(&snap);
    assert_eq!(restored.flight_total(), live.flight_total());
    assert_eq!(restored.flight_dump(), live.flight_dump());

    // Replaying both to completion keeps the rings bit-identical.
    live.run(10_000_000);
    restored.run(10_000_000);
    assert_eq!(live.alive_count(), 0, "program should have exited");
    assert_eq!(restored.flight_total(), live.flight_total());
    assert_eq!(restored.flight_dump(), live.flight_dump());
    let final_dump = live.flight_dump();
    assert!(
        final_dump
            .iter()
            .all(|e| e.verdict == verdict::ALLOW && e.vcycles > 0),
        "clean-path entries must be finalized allows: {final_dump:?}"
    );
}
