//! Cross-crate integration: the full public pipeline from MiniC source to
//! a protected, monitored process.

use bastion::kernel::ExitReason;
use bastion::{Deployment, Protection};

const DAEMON: &str = r#"
struct cfg { char *socket_path; long backlog; };
struct cfg g_cfg;
char sock_path[32];

long setup(long port) {
    long fd;
    long sa[2];
    fd = socket(2, 1, 0);
    sa[0] = 2 | port * 65536;
    bind(fd, sa, 16);
    listen(fd, g_cfg.backlog);
    return fd;
}

long main() {
    strcpy(sock_path, "/run/daemon.sock");
    g_cfg.socket_path = sock_path;
    g_cfg.backlog = 16;
    long fd = setup(7070);
    if (fd < 0) { return 1; }
    setgid(50);
    setuid(50);
    puts("daemon ready\n");
    return 0;
}
"#;

#[test]
fn full_pipeline_legitimate_run() {
    let d = Deployment::from_minic("daemon", &[DAEMON]).expect("compiles");
    // The pass produced sensible metadata.
    assert!(d.metadata.stats.sensitive_callsites >= 5); // socket,bind,listen,setgid,setuid
    assert_eq!(d.metadata.stats.sensitive_indirect, 0);
    assert!(d.metadata.stats.total_instrumentation() > 0);

    let mut world = d.world();
    let pid = d.launch(&mut world, &Protection::full());
    world.run(50_000_000);
    let p = world.proc(pid).unwrap();
    assert_eq!(
        p.exit,
        Some(ExitReason::Exited(0)),
        "console: {:?}",
        String::from_utf8_lossy(&world.kernel.console)
    );
    // All five sensitive syscalls trapped and were allowed.
    assert!(world.trap_count >= 5);
    // Privileges actually dropped.
    assert_eq!(p.creds.uid, 50);
    assert_eq!(world.kernel.console, b"daemon ready\n");
}

#[test]
fn every_protection_level_allows_legitimate_code() {
    for prot in [
        Protection::vanilla(),
        Protection::llvm_cfi(),
        Protection::cet(),
        Protection::cet_ct(),
        Protection::cet_ct_cf(),
        Protection::full(),
        Protection::bastion_no_cet(),
        Protection::hook_only(),
        Protection::fetch_state(),
    ] {
        let d = Deployment::from_minic("daemon", &[DAEMON]).expect("compiles");
        let mut world = d.world();
        let pid = d.launch(&mut world, &prot);
        world.run(50_000_000);
        assert_eq!(
            world.proc(pid).unwrap().exit,
            Some(ExitReason::Exited(0)),
            "under {}",
            prot.label
        );
    }
}

#[test]
fn metadata_survives_serialization_and_rebase() {
    let d = Deployment::from_minic("daemon", &[DAEMON]).expect("compiles");
    let json = d.metadata.to_json().expect("serializes");
    let back = bastion::compiler::ContextMetadata::from_json(&json).expect("parses");
    assert_eq!(back, d.metadata);
    let shifted = back.rebased(0x10_0000);
    assert_eq!(shifted.main_entry, d.metadata.main_entry + 0x10_0000);
    assert_eq!(shifted.callsites.len(), d.metadata.callsites.len());
}

#[test]
fn aslr_does_not_break_protection() {
    use bastion::compiler::BastionCompiler;
    use bastion::vm::{CostModel, ImageBuilder, Machine};
    use std::sync::Arc;

    let module = bastion::minic::compile_program("daemon", &[DAEMON]).expect("compiles");
    let out = BastionCompiler::new().compile(module).expect("instruments");
    for seed in [3u64, 1234] {
        let image = ImageBuilder::new()
            .aslr_seed(seed)
            .build(out.module.clone())
            .expect("loads");
        assert_ne!(image.slide, 0);
        let image = Arc::new(image);
        let mut world = bastion::kernel::World::new(CostModel::default());
        let machine = Machine::new(image.clone(), CostModel::default());
        let pid = world.spawn(machine);
        bastion::monitor::protect(
            &mut world,
            pid,
            &image,
            &out.metadata,
            bastion::monitor::ContextConfig::full(),
        );
        world.run(50_000_000);
        assert_eq!(
            world.proc(pid).unwrap().exit,
            Some(ExitReason::Exited(0)),
            "seed {seed}"
        );
    }
}

#[test]
fn cli_style_violation_reporting() {
    // A program that calls a never-used-elsewhere sensitive syscall through
    // a corrupted-looking indirect pointer is killed with a CT reason.
    let src = r#"
        fnptr handler;
        long main() {
            handler = mprotect;        // address taken, but class is
            handler(4096, 4096, 7);    // indirectly-callable => allowed!
            return 0;
        }
    "#;
    // Here mprotect IS legitimately indirectly-callable (address taken,
    // called through the pointer) — protection must allow it.
    let d = Deployment::from_minic("ptr", &[src]).expect("compiles");
    assert!(d
        .metadata
        .syscall_classes
        .get(&bastion::ir::sysno::MPROTECT)
        .unwrap()
        .allows_indirect());
    let mut world = d.world();
    let pid = d.launch(&mut world, &Protection::cet_ct());
    world.run(10_000_000);
    assert_eq!(world.proc(pid).unwrap().exit, Some(ExitReason::Exited(0)));
}
