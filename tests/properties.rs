//! Property-based tests (proptest) on the core data structures and
//! invariants: memory, the shadow table, code layout, the front-end, and
//! interpreter determinism.

use bastion::minic;
use bastion::vm::{CostModel, Image, Machine, MemIo, Memory, ShadowTable, SHADOW_REGION_SIZE};
use proptest::prelude::*;

proptest! {
    /// Memory: byte-accurate read-back of arbitrary writes at arbitrary
    /// (mapped) offsets, including page-boundary straddles.
    #[test]
    fn memory_roundtrip(offset in 0u64..60_000, data in proptest::collection::vec(any::<u8>(), 1..512)) {
        let mut m = Memory::new();
        m.map_region(0x1000, 1 << 16);
        let addr = 0x1000 + offset % (60_000 - data.len() as u64);
        m.write(addr, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read(addr, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Memory: unmapped access always faults, never corrupts.
    #[test]
    fn memory_unmapped_faults(addr in 0u64..0x800, len in 1u64..64) {
        let mut m = Memory::new();
        m.map_region(0x1000, 0x1000);
        let mut buf = vec![0u8; len as usize];
        prop_assert!(m.read(addr, &mut buf).is_err());
        prop_assert!(m.write(addr, &buf).is_err());
    }

    /// Shadow table: the last write per key wins, independent of the
    /// interleaving of other keys (collision handling is sound).
    #[test]
    fn shadow_last_write_wins(
        keys in proptest::collection::vec((1u64..1 << 40, any::<u64>()), 1..200)
    ) {
        let mut mem = Memory::new();
        let base = 0x5800_0000_0000;
        mem.map_region(base, SHADOW_REGION_SIZE);
        let t = ShadowTable::new(base);
        let mut expect = std::collections::HashMap::new();
        for (k, v) in &keys {
            t.write_value(&mut mem, *k, *v, 8).unwrap();
            expect.insert(*k, *v);
        }
        for (k, v) in expect {
            prop_assert_eq!(t.read_value(&mem, k).unwrap(), Some((v, 8)));
        }
    }

    /// Shadow table: bindings for distinct (callsite, position) pairs do
    /// not interfere.
    #[test]
    fn shadow_bindings_independent(
        binds in proptest::collection::vec((1u64..1 << 30, 1u8..7, any::<u64>()), 1..100)
    ) {
        let mut mem = Memory::new();
        let base = 0x5800_0000_0000;
        mem.map_region(base, SHADOW_REGION_SIZE);
        let t = ShadowTable::new(base);
        let mut expect = std::collections::HashMap::new();
        for (cs, pos, addr) in &binds {
            t.bind_mem(&mut mem, *cs, *pos, *addr).unwrap();
            expect.insert((*cs, *pos), *addr);
        }
        for ((cs, pos), addr) in expect {
            prop_assert_eq!(
                t.get_binding(&mem, cs, pos).unwrap(),
                Some(bastion::vm::shadow::Binding::Mem(addr))
            );
        }
    }

    /// The lexer/parser never panic on arbitrary input.
    #[test]
    fn parser_never_panics(src in "[ -~\\n]{0,400}") {
        let _ = minic::parse(&src);
    }

    /// Arithmetic-program execution is deterministic and matches a Rust
    /// oracle for the same expression structure.
    #[test]
    fn interp_matches_oracle(a in -1000i64..1000, b in 1i64..1000, c in -50i64..50) {
        let src = format!(
            "long main() {{ long x; x = {a}; long y; y = {b}; long z; z = {c}; \
             return (x * 3 + y) % (y + 1) + (z << 2) - (x & y); }}"
        );
        let expected = ((a.wrapping_mul(3).wrapping_add(b)) % (b + 1))
            .wrapping_add(c << 2)
            .wrapping_sub(a & b);
        let module = minic::compile_program("p", &[&src]).unwrap();
        let image = std::sync::Arc::new(Image::load(module).unwrap());
        let run = || {
            let mut m = Machine::new(image.clone(), CostModel::default());
            match bastion::vm::interp::run(&mut m, 1_000_000).event() {
                bastion::vm::Event::Exited(v) => (v, m.cycles),
                other => panic!("unexpected {other:?}"),
            }
        };
        let (v1, c1) = run();
        let (v2, c2) = run();
        prop_assert_eq!(v1, expected);
        // Bit-for-bit determinism, the property all experiments rest on.
        prop_assert_eq!(v1, v2);
        prop_assert_eq!(c1, c2);
    }

    /// Code layout: address↔location mapping is a bijection for arbitrary
    /// block shapes.
    #[test]
    fn layout_roundtrip(sizes in proptest::collection::vec(0usize..12, 1..12)) {
        use bastion::ir::build::ModuleBuilder;
        use bastion::ir::{Operand, Ty};
        let mut mb = ModuleBuilder::new("p");
        let mut f = mb.function("main", &[], Ty::I64);
        // One block per entry, with `sizes[i]` movs, chained by jumps.
        let blocks: Vec<_> = sizes.iter().skip(1).map(|_| f.new_block()).collect();
        for (i, n) in sizes.iter().enumerate() {
            for _ in 0..*n {
                let _ = f.mov(1i64);
            }
            if i < blocks.len() {
                f.jmp(blocks[i]);
                f.switch_to(blocks[i]);
            }
        }
        if !f.is_terminated() {
            f.ret(Some(Operand::Imm(0)));
        }
        f.finish();
        let m = mb.finish();
        let layout = bastion::ir::CodeLayout::new(&m);
        for (fid, f) in m.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for i in 0..=b.insts.len() {
                    let loc = bastion::ir::InstLoc { func: fid, block: bid, inst: i };
                    prop_assert_eq!(layout.loc_of(layout.addr_of(loc)), Some(loc));
                }
            }
        }
    }

    /// errno encoding roundtrips for the full negative range.
    #[test]
    fn errno_roundtrip(e in 1i64..4096) {
        prop_assert_eq!(
            bastion::kernel::errno::decode(bastion::kernel::errno::err(e)),
            Err(e)
        );
    }
}
