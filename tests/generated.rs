//! Regression corpus for the seeded attack-program generator
//! (`bastion_attacks::generate`): ≥10 shrunk adversarial MiniC programs,
//! one per deny-rule family, checked in under `crates/attacks/corpus/`.
//! Each must (a) be stopped by the protected pipeline on exactly its
//! labeled rule, (b) never flip to Allow, and (c) really land its
//! malicious effect when run unprotected — so a monitor regression *and*
//! a generator regression both fail loudly, without proptest in the loop.

use bastion_attacks::generate;

#[test]
fn corpus_spans_at_least_ten_families() {
    let corpus = generate::corpus();
    assert!(
        corpus.len() >= 10,
        "corpus shrank to {} programs",
        corpus.len()
    );
    let mut expects: Vec<&str> = corpus.iter().map(|(_, e, _)| *e).collect();
    expects.sort_unstable();
    expects.dedup();
    assert_eq!(
        expects.len(),
        corpus.len(),
        "corpus families must exercise pairwise-distinct deny rules"
    );
}

#[test]
fn corpus_programs_are_denied_on_their_labeled_family() {
    for (family, expect, source) in generate::corpus() {
        let protected = generate::run_protected(source);
        assert!(
            !protected.flipped_to_allow(),
            "{family}: FLIPPED TO ALLOW (verdict {:?})",
            protected.verdict
        );
        assert!(
            protected.verdict.stopped(),
            "{family}: not stopped: {:?}",
            protected.verdict
        );
        assert_eq!(
            protected.verdict.key(),
            expect,
            "{family}: stopped off-family"
        );
    }
}

#[test]
fn corpus_programs_really_attack_when_unprotected() {
    for (family, _, source) in generate::corpus() {
        let unprotected = generate::ground_truth(source);
        assert!(
            unprotected.effect,
            "{family}: no malicious effect without the monitor (verdict {:?})",
            unprotected.verdict
        );
    }
}
