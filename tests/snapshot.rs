//! Snapshot/restore contract tests (DESIGN.md §6i): a copy-on-write
//! checkpoint taken at any point of a deterministic run must be invisible
//! — the checkpointed world, a world restored from the checkpoint, and a
//! cold run that never checkpointed all replay step-for-step identically,
//! on both interpreters. Fork state (the prefilter's per-pid flow
//! automaton included) must survive the round-trip.

use bastion::chaos::monitor_stats;
use bastion::kernel::{LegacyInterpGuard, World};
use bastion::monitor::MonitorStats;
use bastion::{Deployment, Protection};
use proptest::prelude::*;

/// A small program with sensitive traps (mmap/mprotect), page-dirtying
/// writes after the traps, and a nontrivial exit — enough moving state
/// that a broken snapshot shows up in the trace.
const TRAPPY: &str = r#"
    long main() {
        long a;
        long i;
        long acc;
        a = mmap(0, 8192, 3, 0x21, 0 - 1, 0);
        acc = 0;
        i = 0;
        while (i < 4) {
            acc = acc + mprotect(a, 4096, 3);
            a[i] = acc + i;
            acc = acc + a[i] + getpid();
            i = i + 1;
        }
        return acc > 0;
    }
"#;

/// Drives `world` to completion in fixed 100k-cycle slices, recording the
/// world summary after each slice. Slice boundaries are part of the trace:
/// two worlds agree iff they agree after *every* slice, not just at exit.
fn trace(world: &mut World) -> Vec<String> {
    let mut out = Vec::new();
    for _ in 0..100 {
        world.run(100_000);
        out.push(world.summary());
        if world.alive_count() == 0 {
            break;
        }
    }
    out
}

proptest! {
    /// snapshot → run → restore → re-run, checkpointed at an arbitrary
    /// cycle prefix, on either interpreter: the live world after the
    /// snapshot, a world restored from it, and a cold run are
    /// step-for-step identical. The restored world is driven under the
    /// *opposite* thread-local interpreter to pin the documented rule
    /// that a checkpoint replays on the interpreter it was taken under.
    #[test]
    fn snapshot_restore_rerun_matches_cold(prefix in 0u64..3_000_000, legacy in any::<bool>()) {
        let _g = LegacyInterpGuard::set(legacy);
        let d = Deployment::from_minic("snap-prop", &[TRAPPY]).expect("compiles");

        // Cold reference: never checkpointed.
        let mut cold = d.world();
        d.launch(&mut cold, &Protection::full());
        cold.run(prefix);
        let cold_trace = trace(&mut cold);

        // Checkpointed run: same prefix, then snapshot (which also prunes
        // zero pages in the live world — semantics-preserving by contract).
        let mut live = d.world();
        d.launch(&mut live, &Protection::full());
        live.run(prefix);
        let snap = live.snapshot();
        let live_trace = trace(&mut live);
        prop_assert_eq!(&live_trace, &cold_trace, "live world diverged after snapshot()");

        let restored_trace = {
            let _flip = LegacyInterpGuard::set(!legacy);
            let mut restored = World::restore(&snap);
            trace(&mut restored)
        };
        prop_assert_eq!(&restored_trace, &cold_trace, "restored world diverged from cold run");
    }
}

/// Normalizes the fields that legitimately differ between a warm and a
/// cold run: page residency reflects CoW sharing, not monitor behaviour.
fn behavioral(mut stats: MonitorStats) -> String {
    stats.resident_pages = 0;
    stats.snapshot_shared_pages = 0;
    format!("{stats:?}")
}

/// Fork inheritance across a restored checkpoint: the checkpoint lands
/// after the parent's first sensitive trap (so the prefilter's flow
/// automaton holds per-pid state) but before the fork, and the fork then
/// happens in the *restored* world — `Prefilter::inherit_state` must seed
/// the child from flow state that crossed the snapshot. The whole run,
/// monitor stats included, matches a cold run that never checkpointed.
#[test]
fn fork_inherits_prefilter_state_across_a_restored_checkpoint() {
    let src = r#"
        long main() {
            long a;
            long pid;
            a = mmap(0, 4096, 3, 0x21, 0 - 1, 0);
            pid = fork();
            a = mprotect(a, 4096, 1);
            if (pid == 0) { return 7; }
            return 1;
        }
    "#;
    let d = Deployment::from_minic("fork-ckpt", &[src]).expect("compiles");

    let mut cold = d.world();
    let parent = d.launch(&mut cold, &Protection::full());
    cold.run(20_000_000);
    let cold_summary = cold.summary();
    assert!(
        matches!(
            cold.proc(parent).and_then(|p| p.exit.clone()),
            Some(bastion::kernel::ExitReason::Exited(1))
        ),
        "parent did not finish cleanly: {cold_summary}"
    );
    let cold_stats = monitor_stats(&mut cold).expect("monitor attached");

    let mut warm = d.world();
    d.launch(&mut warm, &Protection::full());
    warm.run_until_traps(1, 20_000_000);
    assert!(
        warm.trap_count >= 1,
        "checkpoint must land after the first sensitive trap"
    );
    let snap = warm.snapshot();
    assert!(snap.shared_pages() > 0, "checkpoint shares no pages");
    let mut resumed = World::restore(&snap);
    resumed.run(20_000_000);
    assert_eq!(
        resumed.summary(),
        cold_summary,
        "restored world finished differently from the cold run"
    );
    let warm_stats = monitor_stats(&mut resumed).expect("monitor attached");

    assert!(
        cold_stats.prefilter_checks > 0,
        "test never exercised the prefilter"
    );
    assert_eq!(
        behavioral(warm_stats),
        behavioral(cold_stats),
        "monitor behaviour diverged across the checkpoint"
    );
}
