//! Prefilter differential suite: tier-1 (seccomp-time check program) and
//! tier-2 (full ptrace monitor) must be observably equivalent on every
//! verdict-relevant surface — Table 6 attack outcomes, deny strings,
//! trap counts, syscall counts — and every injected-fault cell must
//! escalate to tier 2 (the fail-closed ladder never runs at tier 1).
//!
//! The tier-2-only oracle is the thread-local
//! [`bastion::monitor::NoPrefilterGuard`] switch (the CLI's
//! `--no-prefilter`), so whole-stack code paths run unmodified in both
//! modes. Cycle totals legitimately differ — a tier-1 hit skips the
//! ptrace stop — so parity is asserted on verdicts, never on time.

use bastion::attacks::{catalog, AttackEnv, Scenario};
use bastion::chaos;
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, WorkloadSize};
use bastion::ir::build::ModuleBuilder;
use bastion::ir::{sysno, Module, Operand, Ty};
use bastion::kernel::{ExitReason, FaultKind, FaultSchedule, RunStatus, Trigger, World};
use bastion::monitor::{protect, ContextConfig, NoPrefilterGuard};
use bastion::obs::DenyRecord;
use bastion::vm::{CostModel, Image, Machine};
use bastion::Protection;
use proptest::prelude::*;
use std::sync::Arc;

/// Runs `f` with tier-2-only verification forced on this thread; the RAII
/// guard restores the previous mode even if `f` panics.
fn on_tier2<T>(f: impl FnOnce() -> T) -> T {
    let _guard = NoPrefilterGuard::new(true);
    f()
}

/// Everything verdict-relevant one world run produces.
#[derive(Debug, PartialEq)]
struct Observables {
    exits: Vec<Option<ExitReason>>,
    traps: u64,
    syscall_counts: Vec<(u32, u64)>,
    monitor_traps: u64,
    violations: (u64, u64, u64, u64),
    log: Vec<(u32, bool)>,
    denies: Vec<DenyRecord>,
}

fn observe(mut world: World) -> Observables {
    let exits = world.procs.iter().map(|p| p.exit.clone()).collect();
    let traps = world.trap_count;
    let syscall_counts = world
        .kernel
        .counts
        .iter()
        .map(|(&nr, &n)| (nr, n))
        .collect();
    let tracer = world.take_tracer().expect("monitor attached");
    let m = tracer
        .as_any()
        .downcast_ref::<bastion::monitor::Monitor>()
        .expect("tracer is the BASTION monitor");
    Observables {
        exits,
        traps,
        syscall_counts,
        monitor_traps: m.stats.traps,
        violations: (
            m.stats.ct_violations,
            m.stats.cf_violations,
            m.stats.ai_violations,
            m.stats.fc_violations,
        ),
        log: m.log.clone(),
        denies: m
            .deny_log
            .iter()
            .map(|r| {
                // The joined flight-recorder dump records which tier
                // settled each preceding trap — by design different
                // between the prefiltered and tier-2-only runs. Every
                // verdict-relevant field must still match byte-for-byte.
                let mut r = r.clone();
                r.flight.clear();
                r
            })
            .collect(),
    }
}

// ---- Table 6: the 32-attack catalog, byte-identical in both modes ----

/// Runs one scenario under full BASTION and captures the observables plus
/// the attack's own success predicate.
fn attack_observables(s: &Scenario) -> (bool, Observables) {
    let mut env = AttackEnv::deploy(s.victim, Some(ContextConfig::full()), s.extended_set, false);
    (s.attack)(&mut env);
    env.settle();
    let succeeded = (s.success)(&env);
    (succeeded, observe(env.world))
}

/// All 32 Table 6 rows: prefiltered and tier-2-only runs must agree on
/// every observable — exit reasons (which embed the deny strings), trap
/// and syscall counts, per-context violation tallies, the allow/deny log,
/// and the structured deny records. Zero detection loss: no attack the
/// full monitor blocks may slip past the prefilter.
#[test]
fn table6_catalog_is_byte_identical_with_and_without_prefilter() {
    for s in &catalog() {
        let (pf_success, pf) = attack_observables(s);
        let (t2_success, t2) = on_tier2(|| attack_observables(s));
        assert_eq!(
            pf_success, t2_success,
            "#{} {}: attack success flipped",
            s.id, s.name
        );
        assert_eq!(pf, t2, "#{} {}: observables diverged", s.id, s.name);
        assert!(
            !pf_success,
            "#{} {}: attack succeeded under full BASTION",
            s.id, s.name
        );
    }
}

// ---- chaos matrix: every injected-fault cell escalates to tier 2 ----

/// The enforcement fixture: main → worker → mmap plus an execve upgrade.
fn faultable_app() -> Module {
    let mut mb = ModuleBuilder::new("pfchaos");
    let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
    let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
    let exit = mb.declare_syscall_stub("exit", sysno::EXIT, 1);
    let path = mb.global_str("upgrade_path", "/sbin/upgrade");

    let worker = mb.declare("worker", &[("flags", Ty::I64)], Ty::Void);
    let mut f = mb.define(worker);
    let prots = f.local("prots", Ty::I64);
    let pa = f.frame_addr(prots);
    f.store(pa, 3i64);
    let pa2 = f.frame_addr(prots);
    let pv = f.load(pa2);
    let fa = f.frame_addr(f.param_slot(0));
    let fv = f.load(fa);
    let _ = f.call_direct(
        mmap,
        &[
            0i64.into(),
            4096i64.into(),
            pv.into(),
            fv.into(),
            (-1i64).into(),
            0i64.into(),
        ],
    );
    f.ret(None);
    f.finish();

    let upgrade = mb.declare("upgrade", &[], Ty::Void);
    let mut f = mb.define(upgrade);
    let p = f.global_addr(path);
    let _ = f.call_direct(execve, &[p.into(), 0i64.into(), 0i64.into()]);
    f.ret(None);
    f.finish();

    let mut f = mb.function("main", &[], Ty::I64);
    let flags = f.local("flags", Ty::I64);
    let fa = f.frame_addr(flags);
    f.store(fa, 0x21i64);
    let fa2 = f.frame_addr(flags);
    let fv = f.load(fa2);
    let _ = f.call_direct(worker, &[fv.into()]);
    let _ = f.call_direct(upgrade, &[]);
    let _ = f.call_direct(exit, &[0i64.into()]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    mb.finish()
}

/// With a fault schedule installed, tier 1 must never serve a verdict:
/// every prefilter check escalates with reason `faults_installed`, so all
/// faults land in the authoritative monitor's fail-closed ladder. One
/// cell per fault class, per sensitive-syscall scope.
fn assert_fault_cells_escalate(compiler: &BastionCompiler, scope: &str) {
    let kinds: [(&str, FaultKind); 6] = [
        ("mix", FaultKind::Mix),
        ("read-error", FaultKind::ReadError),
        ("torn-read", FaultKind::TornRead),
        ("frame-corrupt", FaultKind::FrameCorrupt),
        ("shadow-flip", FaultKind::ShadowBitFlip),
        ("stall", FaultKind::Stall { cycles: 120_000 }),
    ];
    for (kind_label, kind) in kinds {
        let label = format!("{scope}/{kind_label}");
        let out = compiler.compile(faultable_app()).unwrap();
        let image = Arc::new(Image::load(out.module).unwrap());
        let machine = Machine::new(image.clone(), CostModel::default());
        let mut world = World::new(CostModel::default());
        world
            .kernel
            .vfs
            .put_file("/sbin/upgrade", vec![0x7f], 0o755);
        let pid = world.spawn(machine);
        protect(
            &mut world,
            pid,
            &image,
            &out.metadata,
            ContextConfig::full(),
        );
        // Faults are live from the very first trap: no clean-boot window.
        world.install_faults(FaultSchedule::new(11).with(
            kind,
            Trigger::TrapRange {
                from: 1,
                to: u64::MAX,
            },
        ));
        assert_eq!(world.run(50_000_000), RunStatus::AllExited, "{label}");
        let (stats, _denies) = chaos::monitor_report(&mut world).expect("monitor attached");
        assert!(
            stats.prefilter_checks > 0,
            "{label}: no trap ever classified"
        );
        assert_eq!(
            stats.prefilter_hits, 0,
            "{label}: tier 1 served a verdict while faults were installed"
        );
        assert_eq!(
            stats.prefilter_escalations, stats.prefilter_checks,
            "{label}: check/escalation mismatch"
        );
        assert_eq!(
            stats.escalations_by_reason(),
            vec![("faults_installed", stats.prefilter_checks)],
            "{label}: wrong escalation reason"
        );
    }
}

#[test]
fn every_injected_fault_cell_escalates_to_tier_2() {
    assert_fault_cells_escalate(&BastionCompiler::new(), "table1");
}

/// §11.2: growing the sensitive surface (and with it the probe rows) must
/// not open a tier-1 window under injected faults — the extended-scope
/// check program escalates every cell exactly like the Table-1 one.
#[test]
fn every_injected_fault_cell_escalates_under_extended_scope() {
    let compiler = BastionCompiler::with_sensitive(bastion::ir::sysno::extended_sensitive_set());
    assert_fault_cells_escalate(&compiler, "extended");
}

// ---- differential mode: tier-1 Allow re-proved by tier 2 every trap ----

/// `ContextConfig::with_differential` runs the full monitor after every
/// tier-1 Allow and panics on divergence. A clean pass over the real
/// applications and a representative Table 6 slice is the machine-checked
/// equivalence proof for the compiled check program.
#[test]
fn differential_mode_proves_tier_1_allows_equivalent() {
    let quick = WorkloadSize::quick();
    let compiler = BastionCompiler::new();
    let mut prot = Protection::full();
    prot.monitor = Some(ContextConfig::full().with_differential());
    for app in [
        bastion::apps::App::Webserve,
        bastion::apps::App::Dbkv,
        bastion::apps::App::Ftpd,
    ] {
        let r = run_app_benchmark(app, &prot, &quick, &compiler, CostModel::default());
        let stats = r.monitor.as_ref().expect("monitor attached");
        assert!(
            stats.prefilter_hits > 0,
            "{:?}: differential mode never exercised a tier-1 Allow",
            app
        );
    }
    // One scenario per Table 6 section (the differential.rs subset).
    let cat = catalog();
    for id in [1u32, 14, 19, 25, 32] {
        let s = cat.iter().find(|s| s.id == id).expect("scenario exists");
        let cfg = ContextConfig::full().with_differential();
        let mut env = AttackEnv::deploy(s.victim, Some(cfg), s.extended_set, false);
        (s.attack)(&mut env);
        env.settle();
        assert!(!(s.success)(&env), "#{id}: attack succeeded");
    }
}

// ---- application parity + the clean-path win ----

/// The workload apps under full protection: identical verdict surface,
/// strictly cheaper clean path. The ≥2× per-trap acceptance bound is
/// asserted on webserve, the app the committed bench baseline tracks.
#[test]
fn app_benchmarks_agree_and_prefilter_pays() {
    let quick = WorkloadSize::quick();
    let compiler = BastionCompiler::new();
    let cost = CostModel::default();
    for app in [
        bastion::apps::App::Webserve,
        bastion::apps::App::Dbkv,
        bastion::apps::App::Ftpd,
    ] {
        let pf = run_app_benchmark(app, &Protection::full(), &quick, &compiler, cost);
        let t2 = on_tier2(|| run_app_benchmark(app, &Protection::full(), &quick, &compiler, cost));
        assert_eq!(pf.traps, t2.traps, "{app:?}: trap counts diverged");
        assert_eq!(pf.steps, t2.steps, "{app:?}: retired steps diverged");
        assert_eq!(
            pf.syscall_counts, t2.syscall_counts,
            "{app:?}: syscall counts diverged"
        );
        let (spf, st2) = (pf.monitor.as_ref().unwrap(), t2.monitor.as_ref().unwrap());
        assert_eq!(spf.violations(), 0, "{app:?}: clean run denied");
        assert_eq!(st2.violations(), 0, "{app:?}: clean run denied (tier 2)");
        assert_eq!(
            st2.prefilter_checks, 0,
            "{app:?}: guard did not disable tier 1"
        );
        assert!(spf.prefilter_hits > 0, "{app:?}: prefilter never hit");
        let per_trap = |b: &bastion::harness::AppBenchmark, s: &bastion::monitor::MonitorStats| {
            (b.trace_cycles - s.init_cycles) as f64 / b.traps.max(1) as f64
        };
        let (c_pf, c_t2) = (per_trap(&pf, spf), per_trap(&t2, st2));
        assert!(
            c_pf < c_t2,
            "{app:?}: prefilter did not reduce per-trap cost ({c_pf:.0} vs {c_t2:.0})"
        );
        if app == bastion::apps::App::Webserve {
            assert!(
                c_t2 / c_pf >= 2.0,
                "webserve clean-path per-trap cost must drop >=2x: {c_pf:.0} vs {c_t2:.0}"
            );
        }
    }
}

// ---- random-IR parity ----

/// A small random program exercising the monitored surface: frame-local
/// stores that become Mem bindings, constant and negative-constant args,
/// direct call depth, and a global-pathname execve — compiled and run
/// under full protection in both modes.
fn random_program(flag: i64, depth_via_worker: bool, do_exec: bool, reps: usize) -> Module {
    let mut mb = ModuleBuilder::new("pfrand");
    let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
    let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
    let path = mb.global_str("p", "/bin/true");

    let worker = mb.declare("worker", &[("flags", Ty::I64)], Ty::Void);
    {
        let mut f = mb.define(worker);
        let fa = f.frame_addr(f.param_slot(0));
        let fv = f.load(fa);
        let _ = f.call_direct(
            mmap,
            &[
                0i64.into(),
                4096i64.into(),
                3i64.into(),
                fv.into(),
                (-1i64).into(),
                0i64.into(),
            ],
        );
        f.ret(None);
        f.finish();
    }

    let mut f = mb.function("main", &[], Ty::I64);
    let flags = f.local("flags", Ty::I64);
    for _ in 0..reps.max(1) {
        let fa = f.frame_addr(flags);
        f.store(fa, flag);
        let fa2 = f.frame_addr(flags);
        let fv = f.load(fa2);
        if depth_via_worker {
            let _ = f.call_direct(worker, &[fv.into()]);
        } else {
            let _ = f.call_direct(
                mmap,
                &[
                    0i64.into(),
                    4096i64.into(),
                    3i64.into(),
                    fv.into(),
                    (-1i64).into(),
                    0i64.into(),
                ],
            );
        }
    }
    if do_exec {
        let p = f.global_addr(path);
        let _ = f.call_direct(execve, &[p.into(), 0i64.into(), 0i64.into()]);
    }
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    mb.finish()
}

fn run_random(module: Module) -> Observables {
    let out = BastionCompiler::new().compile(module).unwrap();
    let image = Arc::new(Image::load(out.module).unwrap());
    let machine = Machine::new(image.clone(), CostModel::default());
    let mut world = World::new(CostModel::default());
    world.kernel.vfs.put_file("/bin/true", vec![0x7f], 0o755);
    let pid = world.spawn(machine);
    protect(
        &mut world,
        pid,
        &image,
        &out.metadata,
        ContextConfig::full(),
    );
    assert_eq!(world.run(200_000_000), RunStatus::AllExited);
    observe(world)
}

proptest! {
    /// Random-IR parity: for arbitrary flag values (including negatives),
    /// call depths, and syscall mixes, the prefiltered run is observably
    /// identical to the tier-2-only run.
    #[test]
    fn random_ir_verdicts_identical_with_and_without_prefilter(
        flag in -4i64..1 << 20,
        depth_via_worker in any::<bool>(),
        do_exec in any::<bool>(),
        reps in 1usize..4,
    ) {
        let pf = run_random(random_program(flag, depth_via_worker, do_exec, reps));
        let t2 = on_tier2(|| run_random(random_program(flag, depth_via_worker, do_exec, reps)));
        prop_assert_eq!(pf, t2);
    }
}
