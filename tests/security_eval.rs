//! Table 6 integration: representative attacks from each section run in
//! debug CI; the full 32-attack matrix runs under `--ignored` (it is part
//! of `cargo run -p bastion-bench --bin table6`).

use bastion::attacks::{catalog, evaluate};

fn check(id: u32) {
    let cat = catalog();
    let s = cat.iter().find(|s| s.id == id).expect("scenario exists");
    let r = evaluate(s);
    assert!(
        r.ground_truth,
        "#{id} {}: attack did not succeed unprotected\n{:#?}",
        s.name, r.details
    );
    assert!(
        r.full_blocked,
        "#{id} {}: full BASTION failed to block\n{:#?}",
        s.name, r.details
    );
    assert_eq!(
        r.observed, r.expected,
        "#{id} {}: context matrix diverged\n{:#?}",
        s.name, r.details
    );
}

#[test]
fn rop_ret2execve_matches_table6() {
    check(1);
}

#[test]
fn rop_memory_permission_matches_table6() {
    check(15);
}

#[test]
fn rop_root_shell_matches_table6() {
    check(14);
}

#[test]
fn newton_cscfi_matches_table6() {
    check(19);
}

#[test]
fn cve_2013_2028_matches_table6() {
    check(25);
}

#[test]
fn newton_cpi_matches_table6() {
    check(28);
}

#[test]
fn aocr_apache_matches_table6() {
    check(29);
}

#[test]
fn aocr_nginx2_data_only_matches_table6() {
    check(30);
}

#[test]
fn coop_matches_table6() {
    check(31);
}

#[test]
fn control_jujutsu_matches_table6() {
    check(32);
}

/// The complete 32-row matrix (slow; release-mode recommended):
/// `cargo test --release --test security_eval -- --ignored`
#[test]
#[ignore = "full matrix is slow in debug; run with --release -- --ignored"]
fn full_table6_matrix_matches_paper() {
    let results = bastion::attacks::evaluate_all();
    let mismatches: Vec<_> = results.iter().filter(|r| !r.matches_paper()).collect();
    assert!(
        mismatches.is_empty(),
        "{} mismatches: {:#?}",
        mismatches.len(),
        mismatches
            .iter()
            .map(|r| (&r.name, &r.details))
            .collect::<Vec<_>>()
    );
}
