//! Shape assertions for the performance experiments (quick workload
//! sizes): the claims the paper's Figure 3 / Table 7 make must hold
//! qualitatively in every build.

use bastion::apps::App;
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, run_table7_row, WorkloadSize};
use bastion::vm::CostModel;
use bastion::Protection;

#[test]
fn figure3_overheads_are_small_and_monotone_dbkv() {
    let size = WorkloadSize::quick();
    let compiler = BastionCompiler::new();
    let cost = CostModel::default();
    let base = run_app_benchmark(App::Dbkv, &Protection::vanilla(), &size, &compiler, cost);
    let cet = run_app_benchmark(App::Dbkv, &Protection::cet(), &size, &compiler, cost);
    let ct = run_app_benchmark(App::Dbkv, &Protection::cet_ct(), &size, &compiler, cost);
    let cf = run_app_benchmark(App::Dbkv, &Protection::cet_ct_cf(), &size, &compiler, cost);
    let ai = run_app_benchmark(App::Dbkv, &Protection::full(), &size, &compiler, cost);

    let (o_cet, o_ct, o_cf, o_ai) = (
        cet.overhead_vs(&base),
        ct.overhead_vs(&base),
        cf.overhead_vs(&base),
        ai.overhead_vs(&base),
    );
    // CET is nearly free; contexts stack monotonically; the full stack
    // stays within the paper's "low overhead" claim (generously bounded
    // for the quick workload).
    assert!(o_cet < 2.0, "CET {o_cet}");
    assert!(o_ct >= o_cet - 0.5, "CT {o_ct} vs CET {o_cet}");
    assert!(o_cf >= o_ct - 0.1, "CF {o_cf} vs CT {o_ct}");
    assert!(o_ai >= o_cf - 0.1, "AI {o_ai} vs CF {o_cf}");
    assert!(o_ai < 15.0, "full overhead {o_ai}");
}

#[test]
fn ftpd_full_protection_overhead_is_low() {
    let size = WorkloadSize::quick();
    let compiler = BastionCompiler::new();
    let cost = CostModel::default();
    let base = run_app_benchmark(App::Ftpd, &Protection::vanilla(), &size, &compiler, cost);
    let full = run_app_benchmark(App::Ftpd, &Protection::full(), &size, &compiler, cost);
    let o = full.overhead_vs(&base);
    assert!(o > 0.0 && o < 15.0, "ftpd overhead {o}");
    assert!(full.traps > 0);
}

#[test]
fn table7_fetch_state_dominates() {
    // The paper's §11.2 finding: with filesystem syscalls protected, the
    // ptrace state fetch dominates; hooking alone is comparatively cheap.
    let size = WorkloadSize::quick();
    let (base, rows) = run_table7_row(App::Dbkv, &size, CostModel::default());
    let hook = rows[0].overhead_vs(&base);
    let fetch = rows[1].overhead_vs(&base);
    let full = rows[2].overhead_vs(&base);
    assert!(hook > 0.0, "hook {hook}");
    assert!(fetch > hook, "fetch {fetch} vs hook {hook}");
    assert!(full >= fetch, "full {full} vs fetch {fetch}");
    // The fetch jump is the dominant increment.
    assert!(
        fetch - hook > (full - fetch),
        "state fetch must dominate: hook {hook} fetch {fetch} full {full}"
    );
}

#[test]
fn in_kernel_monitor_removes_most_of_the_cost() {
    // §11.2's proposed optimization, modelled by the in-kernel cost model.
    let size = WorkloadSize::quick();
    let (base_p, rows_p) = run_table7_row(App::Dbkv, &size, CostModel::default());
    let (base_k, rows_k) = run_table7_row(App::Dbkv, &size, CostModel::in_kernel_monitor());
    let ptrace_full = rows_p[2].overhead_vs(&base_p);
    let inkernel_full = rows_k[2].overhead_vs(&base_k);
    assert!(
        inkernel_full < ptrace_full / 3.0,
        "in-kernel {inkernel_full}% should be far below ptrace {ptrace_full}%"
    );
}
