//! Robustness properties beyond the headline experiments:
//! §11.1 (static constraints under arbitrary read/write), §10.1 (CET vs
//! ROP), §11.3 (not-callable covers non-sensitive syscalls), and shadow
//! placement diversity.

use bastion::attacks::env::Defense;
use bastion::attacks::scenario::{ret2stub_parked, StubArgs};
use bastion::attacks::{AttackEnv, Victim};
use bastion::ir::sysno;
use bastion::monitor::ContextConfig;

fn ai_only() -> ContextConfig {
    ContextConfig {
        call_type: false,
        control_flow: false,
        arg_integrity: true,
        fetch_state: false,
        fast_path: true,
        resilience: bastion_monitor::Resilience::default(),
        prefilter: false,
        prefilter_differential: false,
    }
}

/// §11.1's own example: "if mprotect() is used only with a constant
/// value, PROT_READ, then it is impossible to call mprotect() with
/// PROT_EXEC because such static constraints are maintained by the
/// monitor ... never available to the protected application."
///
/// The attacker spoofs dbkv's legitimate `mprotect(page_cache, 4096,
/// PROT_READ)` callsite and matches the first two arguments against their
/// shadow copies exactly (arbitrary read gives them the values) — only
/// the RWX protection differs, and the constant constraint catches it.
#[test]
fn spoofed_callsite_cannot_beat_constant_constraints() {
    let mut env = AttackEnv::deploy(Victim::Dbkv, Some(ai_only()), false, false);
    let parked = env.park();
    // Drive enough transactions that protect_cycle has legitimately run,
    // populating the callsite's argument bindings.
    for i in 0..110 {
        env.send_request(
            parked,
            format!(
                "NEWORDER 1 {i} 2
"
            )
            .as_bytes(),
        );
    }
    assert!(env.world.kernel.count_of(sysno::MPROTECT) >= 2);
    let cache = env.read_u64(parked.pid, env.sym("page_cache"));
    ret2stub_parked(
        &mut env,
        parked,
        "mprotect",
        &StubArgs::Words(vec![cache, 4096, 7]), // args 1,2 match; prot is RWX
        Some(("protect_cycle", sysno::MPROTECT)),
    );
    env.wake(parked);
    assert_eq!(env.defense_fired(), Defense::MonitorAi);
    assert!(!env.wx_happened());
    // The kill reason names the violated constant.
    let reason = env
        .world
        .procs
        .iter()
        .find_map(|p| match &p.exit {
            Some(bastion::kernel::ExitReason::MonitorKill { reason, .. }) => Some(reason.clone()),
            _ => None,
        })
        .expect("a monitor kill");
    assert!(reason.contains("constant"), "reason: {reason}");
}

/// §10.1: on CET-capable hardware the ROP vehicle itself dies with a #CP
/// fault before any syscall fires — BASTION's ROP rows exist for the
/// pre-CET world.
#[test]
fn cet_kills_the_rop_vehicle_outright() {
    let mut env = AttackEnv::deploy(Victim::Webserve, None, false, true);
    let parked = env.park();
    ret2stub_parked(
        &mut env,
        parked,
        "execve",
        &StubArgs::ExecvePath("/bin/sh"),
        None,
    );
    env.wake(parked);
    assert_eq!(env.defense_fired(), Defense::Cet);
    assert!(!env.execve_happened("/bin/sh"));
}

/// §11.3: the Call-Type context's not-callable class covers *every*
/// syscall, sensitive or not — nanosleep is harmless but unused by dbkv,
/// so reaching its stub is killed by the seccomp filter.
#[test]
fn not_callable_covers_non_sensitive_syscalls() {
    let mut env = AttackEnv::deploy(Victim::Dbkv, Some(ContextConfig::full()), false, false);
    let parked = env.park();
    ret2stub_parked(
        &mut env,
        parked,
        "nanosleep",
        &StubArgs::Words(vec![1000, 0]),
        None,
    );
    env.wake(parked);
    assert_eq!(env.defense_fired(), Defense::Seccomp);
    assert_eq!(env.world.kernel.count_of(sysno::NANOSLEEP), 0);
}

/// The shadow region's base moves with the ASLR seed, so an attacker who
/// wants to forge shadow entries must first break its randomization
/// (threat-model boundary discussed in §11.1).
#[test]
fn shadow_base_is_randomized_with_aslr() {
    use bastion::vm::ImageBuilder;
    let module = Victim::Webserve.module();
    let bases: Vec<u64> = [1u64, 2, 3]
        .iter()
        .map(|&seed| {
            ImageBuilder::new()
                .aslr_seed(seed)
                .build(module.clone())
                .expect("image")
                .shadow
                .base
        })
        .collect();
    assert_ne!(bases[0], bases[1]);
    assert_ne!(bases[1], bases[2]);
}

/// Under full protection, a worker that survives an *attempted* (blocked)
/// attack leaves the rest of the service functional: the master and the
/// other workers keep serving.
#[test]
fn service_survives_a_blocked_attack() {
    let mut env = AttackEnv::deploy(Victim::Webserve, Some(ContextConfig::full()), false, false);
    let parked = env.park();
    ret2stub_parked(
        &mut env,
        parked,
        "execve",
        &StubArgs::ExecvePath("/bin/sh"),
        None,
    );
    env.wake(parked);
    assert_eq!(env.defense_fired(), Defense::MonitorCf);
    // One worker died; the listener and remaining workers still serve.
    assert!(env.world.alive_count() >= 2);
    let c = env.world.net_connect(Victim::Webserve.port()).unwrap();
    env.world.net_send(c, b"GET /index.html HTTP/1.1\r\n\r\n");
    env.settle();
    let resp = env.world.net_recv(c);
    assert!(
        resp.starts_with(b"HTTP/1.0 200 OK"),
        "service dead after blocked attack: {:?}",
        String::from_utf8_lossy(&resp[..resp.len().min(40)])
    );
}
