//! Fleet runner contract tests (DESIGN.md §6f): the parallel chaos matrix
//! must render byte-identically for any worker count, worlds must be
//! movable across worker threads, the thread-local RAII guards must
//! restore state even across panics, and the walk cache must never serve
//! a verdict across hash-colliding chains.

use bastion::fleet;
use bastion::kernel::{set_thread_legacy_interp, thread_legacy_interp, LegacyInterpGuard};
use bastion::monitor::cache::VerifyCache;
use bastion::monitor::verify::Violation;
use bastion::monitor::ContextKind;
use bastion::obs::DenyRule;
use bastion::{Deployment, Protection};

/// The determinism contract, end to end: a subset of the attack-chaos
/// matrix (4 scenarios, 1 seed, all 6 fault classes) plus the benign
/// table, rendered serially and on a 4-worker pool — byte-identical.
#[test]
fn fleet_chaos_report_is_byte_identical_across_worker_counts() {
    let subset: &[u32] = &[1, 2, 3, 4];
    let seeds: &[u64] = &[0xA77C_0001];
    let serial = fleet::chaos_matrix(1, seeds, Some(subset));
    let pooled = fleet::chaos_matrix(4, seeds, Some(subset));
    assert_eq!(
        serial.report, pooled.report,
        "N=1 and N=4 aggregate reports diverged"
    );
    assert_eq!(serial.flipped, 0);
    assert!(serial.faults_fired > 0, "subset matrix fired no faults");
    assert_eq!(
        (serial.faults_fired, serial.deny_total, serial.join_total),
        (pooled.faults_fired, pooled.deny_total, pooled.join_total)
    );
    // Worker guards restored this thread's defaults.
    assert!(!thread_legacy_interp());
    assert!(!bastion::obs::is_enabled());
}

/// Warm-forked cells (the default) and cold per-cell re-deploys render the
/// same bytes: the checkpoint is taken exactly where a cold deploy would
/// hand the world to the cell, and worlds are deterministic from there.
#[test]
fn fleet_chaos_report_is_byte_identical_warm_vs_cold() {
    let subset: &[u32] = &[1, 2, 3, 4];
    let seeds: &[u64] = &[0xA77C_0001];
    let warm = fleet::chaos_matrix_mode(1, seeds, Some(subset), false);
    let cold = fleet::chaos_matrix_mode(1, seeds, Some(subset), true);
    assert_eq!(
        warm.report, cold.report,
        "warm-forked and cold-deployed chaos reports diverged"
    );
    assert_eq!(
        (
            warm.faults_fired,
            warm.deny_total,
            warm.join_total,
            warm.flipped,
            warm.generated_flipped
        ),
        (
            cold.faults_fired,
            cold.deny_total,
            cold.join_total,
            cold.flipped,
            cold.generated_flipped
        )
    );
}

/// A `World` with an attached monitor is `Send`: build it here, run it to
/// completion on another thread.
#[test]
fn protected_world_moves_across_threads() {
    let src = r#"
        long main() {
            long arena;
            arena = mmap(0, 4096, 3, 0x21, 0 - 1, 0);
            return arena > 0;
        }
    "#;
    let deployment = Deployment::from_minic("fleet-send", &[src]).expect("compiles");
    let mut world = deployment.world();
    let pid = deployment.launch(&mut world, &Protection::full());
    let exit = std::thread::spawn(move || {
        world.run(10_000_000);
        world.proc(pid).and_then(|p| p.exit.clone())
    })
    .join()
    .expect("worker thread");
    assert!(matches!(exit, Some(bastion::kernel::ExitReason::Exited(1))));
}

#[test]
fn legacy_interp_guard_restores_previous_value() {
    set_thread_legacy_interp(false);
    {
        let _outer = LegacyInterpGuard::set(true);
        assert!(thread_legacy_interp());
        {
            let _inner = LegacyInterpGuard::set(false);
            assert!(!thread_legacy_interp());
        }
        assert!(thread_legacy_interp(), "inner guard restored outer value");
    }
    assert!(!thread_legacy_interp(), "outer guard restored the default");
}

#[test]
fn guards_restore_across_panics() {
    let result = std::panic::catch_unwind(|| {
        let _interp = LegacyInterpGuard::set(true);
        let _telemetry = bastion::obs::TelemetryGuard::enable(16);
        bastion::obs::counter_add("doomed", 1);
        panic!("worker task failed");
    });
    assert!(result.is_err());
    assert!(
        !thread_legacy_interp(),
        "legacy-interp default leaked across a panic"
    );
    assert!(
        !bastion::obs::is_enabled(),
        "telemetry enable flag leaked across a panic"
    );
    assert_eq!(bastion::obs::metrics_snapshot().counter("doomed"), None);
}

/// Regression: two crafted chains filed under the same 64-bit hash with
/// different CF verdicts. The old hash-only key served chain A's verdict
/// for chain B (a false-allow primitive when A's verdict was Ok); the
/// full-key confirmation serves a counted miss instead.
#[test]
fn walk_cache_never_aliases_colliding_chains() {
    let mut cache = VerifyCache::new();
    let forced_hash = 0x5EED_CAFE_u64;
    let chain_ok: &[u64] = &[0x1000, 0x2004, 0x300C, 0, 0x1000];
    let chain_bad: &[u64] = &[0x1000, 0x6666, 0x300C, 0, 0x1000];
    let deny = Err(Violation::new(
        ContextKind::ControlFlow,
        DenyRule::InvalidCaller,
        "callsite 0x6666 is not a valid caller",
    ));
    cache.walk_store(forced_hash, chain_ok, Ok(()));
    // The colliding (malicious) chain must not inherit the Ok verdict.
    assert_eq!(cache.walk_lookup(forced_hash, chain_bad), None);
    assert_eq!(cache.walk_collisions, 1);
    // After its own validation is cached, each chain sees only its own
    // verdict — in particular the deny stays a deny.
    cache.walk_store(forced_hash, chain_bad, deny.clone());
    assert_eq!(cache.walk_lookup(forced_hash, chain_bad), Some(deny));
    assert_eq!(cache.walk_lookup(forced_hash, chain_ok), None);
    assert_eq!(cache.walk_hits, 1);
    assert_eq!(cache.walk_collisions, 2);
}

/// Table 6 evaluated on the fleet matches the serial evaluation, scenario
/// for scenario, on a rendered-report byte level.
#[test]
fn fleet_table6_matches_serial_render() {
    let pooled = fleet::table6_matrix(4);
    let serial = bastion::attacks::evaluate_all();
    assert_eq!(
        bastion::attacks::render(&pooled),
        bastion::attacks::render(&serial)
    );
    assert!(pooled.iter().all(|r| r.matches_paper()));
}
