//! Telemetry suite: span-ring integrity, the zero-cost disabled path, and
//! deny-record provenance (DESIGN.md §6e).
//!
//! Invariants enforced here:
//!
//! * a wrapped span ring still exports a **balanced, validating** Chrome
//!   trace (orphans dropped, dangling spans closed);
//! * the disabled tracer records **nothing** — no events, no metrics;
//! * every monitor deny in the Table 6 catalog yields **exactly one**
//!   structured [`DenyRecord`] whose rendered message is byte-identical to
//!   the legacy `MonitorKill` reason string;
//! * deny records join the fault-injection log on the world trap sequence
//!   number (`DenyRecord::trap_seq` == `InjectedFault::world_trap`).

use bastion::obs;
use bastion::obs::{DenyRecord, Phase};
use bastion_attacks::{AttackEnv, Scenario};
use bastion_kernel::{ExitReason, FaultKind, FaultSchedule, Trigger};
use bastion_monitor::ContextConfig;
use std::cell::RefCell;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Span ring
// ---------------------------------------------------------------------------

#[test]
fn ring_wraparound_preserves_span_nesting() {
    // Capacity for 16 events; each synthetic trap emits 6 — the ring wraps
    // several times, cutting spans mid-flight at both ends.
    obs::enable(16);
    for trap in 1..=8u64 {
        let t0 = trap * 1000;
        obs::span_begin(Phase::Trap, trap, t0);
        obs::span_begin(Phase::CtCheck, trap, t0 + 10);
        obs::instant(Phase::CtCacheHit, trap, t0 + 15, 0);
        obs::span_end(Phase::CtCheck, trap, t0 + 20, 0);
        obs::span_begin(Phase::CfWalk, trap, t0 + 30);
        obs::span_end(Phase::CfWalk, trap, t0 + 90, 3);
        obs::span_end(Phase::Trap, trap, t0 + 100, 0);
    }
    let events = obs::take_events();
    obs::disable();
    assert_eq!(events.len(), 16, "ring keeps exactly its capacity");
    let json = obs::chrome_trace_json(&events);
    let shape =
        obs::validate_chrome_trace(&json).expect("wrapped ring must still export a balanced trace");
    assert_eq!(shape.begins, shape.ends, "B/E balanced after rebalancing");
    assert!(shape.events > 0);
}

#[test]
fn deep_nesting_survives_wraparound() {
    // Wrap mid-way through a *nested* span stack: the export must close
    // the dangling begins innermost-first and drop the orphaned ends.
    obs::enable(8);
    for i in 0..5u64 {
        let t = i * 100;
        obs::span_begin(Phase::Trap, i, t);
        obs::span_begin(Phase::CfWalk, i, t + 10);
        obs::span_begin(Phase::FrameRead, i, t + 20);
        obs::span_end(Phase::FrameRead, i, t + 30, 0);
        obs::span_end(Phase::CfWalk, i, t + 40, 0);
        obs::span_end(Phase::Trap, i, t + 50, 0);
    }
    let events = obs::take_events();
    obs::disable();
    let json = obs::chrome_trace_json(&events);
    let shape = obs::validate_chrome_trace(&json).expect("nested wrap validates");
    assert_eq!(shape.begins, shape.ends);
}

// ---------------------------------------------------------------------------
// Disabled path
// ---------------------------------------------------------------------------

#[test]
fn disabled_tracer_records_nothing_end_to_end() {
    // A monitored end-to-end run with telemetry off: the obs layer must
    // stay completely empty — no events, no counters, no histograms.
    assert!(!obs::is_enabled());
    let d = bastion::Deployment::from_minic(
        "t",
        &[r#"
            long main() {
                long a;
                a = mmap(0, 4096, 3, 0x21, 0 - 1, 0);
                return a > 0;
            }
        "#],
    )
    .expect("compiles");
    let mut world = d.world();
    let pid = d.launch(&mut world, &bastion::Protection::full());
    world.run(10_000_000);
    assert!(world.trap_count > 0, "mmap must trap");
    assert!(matches!(
        world.proc(pid).unwrap().exit,
        Some(ExitReason::Exited(1))
    ));
    assert_eq!(obs::event_count(), 0, "disabled tracer recorded events");
    let m = obs::metrics_snapshot();
    assert!(m.counters.is_empty(), "disabled metrics recorded counters");
    assert!(
        m.histograms.is_empty(),
        "disabled metrics recorded histograms"
    );
}

// ---------------------------------------------------------------------------
// Deny provenance
// ---------------------------------------------------------------------------

/// Collects every deny record emitted on this thread while running `f`.
fn collect_denies<R>(f: impl FnOnce() -> R) -> (R, Vec<DenyRecord>) {
    let sink: Rc<RefCell<Vec<DenyRecord>>> = Rc::default();
    let inner = Rc::clone(&sink);
    obs::set_deny_sink(Box::new(move |rec| inner.borrow_mut().push(rec.clone())));
    let r = f();
    obs::clear_deny_sink();
    (r, sink.take())
}

/// The attack scripts' liveness panics (see `bastion::chaos`): a worker
/// killed out from under the script is a contained outcome, not a failure.
fn stage_absorbing_liveness(scenario: &Scenario, env: &mut AttackEnv) {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (scenario.attack)(env)));
    std::panic::set_hook(hook);
    if let Err(payload) = r {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        let liveness = [
            "victim pid",
            "victim listener bound",
            "a worker parked reading our connection",
            "a process parked in accept",
        ];
        if !liveness.iter().any(|h| msg.contains(h)) {
            std::panic::resume_unwind(payload);
        }
    }
}

#[test]
fn every_catalog_deny_yields_one_byte_identical_record() {
    let mut total_denies = 0usize;
    for scenario in bastion_attacks::catalog() {
        let (mut env, records) = collect_denies(|| {
            let mut env = AttackEnv::deploy(
                scenario.victim,
                Some(ContextConfig::full()),
                scenario.extended_set,
                false,
            );
            stage_absorbing_liveness(&scenario, &mut env);
            env.settle();
            env
        });
        // The legacy strings: every MonitorKill reason in the world.
        let mut reasons: Vec<String> = env
            .world
            .procs
            .iter()
            .filter_map(|p| match &p.exit {
                Some(ExitReason::MonitorKill { reason, .. }) => Some(reason.clone()),
                _ => None,
            })
            .collect();
        let mut rendered: Vec<String> = records.iter().map(DenyRecord::render).collect();
        reasons.sort();
        rendered.sort();
        assert_eq!(
            rendered, reasons,
            "#{} {}: structured records diverge from legacy deny strings",
            scenario.id, scenario.name
        );
        // Cross-check the copy kept on the monitor itself.
        let (_, deny_log) =
            bastion::chaos::monitor_report(&mut env.world).expect("monitor attached");
        assert_eq!(
            deny_log.len(),
            records.len(),
            "#{}: monitor deny log out of sync with the sink",
            scenario.id
        );
        total_denies += records.len();
    }
    assert!(
        total_denies > 0,
        "the catalog must produce at least one monitor deny"
    );
}

#[test]
fn deny_records_carry_context_rule_and_ladder() {
    // One known deny: row 1 of the catalog under full protection.
    let catalog = bastion_attacks::catalog();
    let scenario = catalog.iter().find(|s| s.id == 1).expect("row 1 exists");
    let (_env, records) = collect_denies(|| {
        let mut env = AttackEnv::deploy(scenario.victim, Some(ContextConfig::full()), false, false);
        stage_absorbing_liveness(scenario, &mut env);
        env.settle();
        env
    });
    assert!(!records.is_empty(), "row 1 must be denied");
    for rec in &records {
        assert!(rec.trap_seq > 0, "trap sequence starts at 1");
        assert_eq!(rec.ladder_rung, "full", "clean run denies on the Full rung");
        assert!(
            rec.render().starts_with(rec.context.label()),
            "rendering leads with the context label"
        );
    }
}

// ---------------------------------------------------------------------------
// Fault ↔ deny join
// ---------------------------------------------------------------------------

#[test]
fn deny_record_joins_fault_log_on_world_trap() {
    // Fault every substrate access of trap 2 with read errors: retries
    // exhaust, the trap is denied fail-closed. The deny's trap sequence
    // number must equal the fault log's `world_trap` — the provenance join.
    let d = bastion::Deployment::from_minic(
        "t",
        &[r#"
            long main() {
                long a;
                long b;
                a = mmap(0, 4096, 3, 0x21, 0 - 1, 0);
                b = mmap(0, 4096, 3, 0x21, 0 - 1, 0);
                return 0;
            }
        "#],
    )
    .expect("compiles");
    let mut world = d.world();
    let pid = d.launch(&mut world, &bastion::Protection::full());
    world.install_faults(
        FaultSchedule::new(0x10A_0001).with(FaultKind::ReadError, Trigger::OnTrap(2)),
    );
    let ((), records) = collect_denies(|| {
        world.run(10_000_000);
    });
    match &world.proc(pid).unwrap().exit {
        Some(ExitReason::MonitorKill { reason, .. }) => {
            assert!(reason.starts_with("FC"), "expected fail-closed: {reason}");
        }
        other => panic!("faulted trap was not denied: {other:?}"),
    }
    assert_eq!(records.len(), 1, "exactly one deny for the faulted trap");
    let rec = &records[0];
    assert_eq!(rec.trap_seq, 2, "deny names the faulted world trap");
    assert!(
        rec.fault_ctx.retries > 0,
        "the deny context records retries"
    );
    let log = world.fault_log();
    assert!(!log.is_empty(), "faults must have fired");
    assert!(
        log.iter().all(|f| f.world_trap == 2),
        "all injected faults hit trap 2: {log:?}"
    );
    assert!(
        log.iter().any(|f| f.world_trap == rec.trap_seq),
        "join key mismatch: faults {log:?} vs deny seq {}",
        rec.trap_seq
    );
}
