//! Chaos suite: seeded deterministic fault injection against benign
//! workloads and the Table 6 attack catalog (DESIGN.md §6d).
//!
//! Invariants enforced here:
//!
//! * the monitor **never panics** under injected substrate faults (every
//!   test doubles as a panic probe — the harness runs in-process);
//! * a blocked attack **never flips to Allow** under any fault schedule;
//! * every rung of the degradation ladder — `Full`, `Degraded`,
//!   `FailClosed` — is reachable and visible in [`MonitorStats`].
//!
//! All seeds are pinned: a failure replays bit-for-bit.

use bastion::chaos::{attack_chaos, benign_chaos};
use bastion_apps::App;
use bastion_ir::build::ModuleBuilder;
use bastion_ir::{sysno, CmpOp, Module, Operand, Ty};
use bastion_kernel::{ExitReason, FaultKind, FaultSchedule, RunStatus, Trigger, World};
use bastion_monitor::{protect, ContextConfig, MonitorMode, Resilience};
use bastion_vm::{CostModel, Image, Machine};
use std::sync::Arc;

/// A request volume large enough to produce a dozen monitor traps
/// (accept4 is sensitive, so every served connection traps at least once).
const REQUESTS: u64 = 12;

// ---------------------------------------------------------------------------
// Degradation-ladder rungs (benign workload under targeted fault windows)
// ---------------------------------------------------------------------------

#[test]
fn ladder_full_rung_on_clean_run() {
    let r = benign_chaos(
        App::Webserve,
        ContextConfig::full(),
        FaultSchedule::new(0xC1EA_0001),
        REQUESTS,
    );
    let stats = r.stats.expect("monitor attached");
    assert_eq!(stats.mode, MonitorMode::Full, "{stats:?}");
    assert_eq!(stats.substrate_strikes, 0);
    assert_eq!(stats.mode_transitions, 0);
    assert_eq!(stats.fc_violations, 0);
    assert_eq!(r.faults_fired, 0, "empty schedule must inject nothing");
    assert!(r.survived, "clean run must not kill the server");
    assert_eq!(r.served, r.attempted, "clean run serves everything");
    assert!(r.served > 0);
}

#[test]
fn ladder_degraded_rung_after_retry_exhaustion() {
    // Two fully-faulted traps exhaust retries twice; with degrade_after=2
    // (and a fail-closed threshold out of reach) the monitor lands on the
    // Degraded rung and stays there.
    let res = Resilience {
        degrade_after: 2,
        fail_closed_after: 100,
        ..Resilience::default()
    };
    let r = benign_chaos(
        App::Webserve,
        ContextConfig::full().with_resilience(res),
        FaultSchedule::new(0xDE6_0001)
            .with(FaultKind::ReadError, Trigger::TrapRange { from: 1, to: 2 }),
        REQUESTS,
    );
    let stats = r.stats.expect("monitor attached");
    assert_eq!(stats.mode, MonitorMode::Degraded, "{stats:?}");
    assert_eq!(stats.substrate_strikes, 2);
    assert_eq!(stats.mode_transitions, 1);
    assert!(stats.retries > 0, "failures must be retried first");
    // Full config has CF+AI enabled: a degraded monitor cannot verify
    // them, so every subsequent trap is denied fail-closed.
    assert!(stats.fc_violations > 0, "{stats:?}");
}

#[test]
fn ladder_degraded_ct_only_keeps_serving() {
    // The Degraded rung means *CT-only* verification: a configuration
    // that never needed more than CT keeps serving traffic after the
    // substrate strikes, it does not fail closed.
    let res = Resilience {
        degrade_after: 2,
        fail_closed_after: 100,
        ..Resilience::default()
    };
    let r = benign_chaos(
        App::Webserve,
        ContextConfig::ct().with_resilience(res),
        FaultSchedule::new(0xDE6_0002)
            .with(FaultKind::ReadError, Trigger::TrapRange { from: 1, to: 2 }),
        REQUESTS,
    );
    let stats = r.stats.expect("monitor attached");
    assert_eq!(stats.mode, MonitorMode::Degraded, "{stats:?}");
    assert!(r.survived, "CT-only service survives degradation");
    assert!(r.served > 0, "degraded CT-only monitor still serves");
    // The only fail-closed denials are the faulted traps themselves (each
    // strike denies its in-flight trap); every trap *after* degradation is
    // still CT-verifiable and allowed.
    assert_eq!(
        stats.fc_violations, stats.substrate_strikes,
        "CT stays verifiable after degradation: {stats:?}"
    );
    assert!(
        stats.traps > stats.substrate_strikes,
        "traffic continued past the strikes: {stats:?}"
    );
}

#[test]
fn ladder_fail_closed_rung_after_repeated_failures() {
    let res = Resilience {
        degrade_after: 1,
        fail_closed_after: 2,
        ..Resilience::default()
    };
    let r = benign_chaos(
        App::Webserve,
        ContextConfig::full().with_resilience(res),
        FaultSchedule::new(0xFC_0001)
            .with(FaultKind::ReadError, Trigger::TrapRange { from: 1, to: 2 }),
        REQUESTS,
    );
    let stats = r.stats.expect("monitor attached");
    assert_eq!(stats.mode, MonitorMode::FailClosed, "{stats:?}");
    assert_eq!(stats.substrate_strikes, 2);
    // Full -> Degraded -> FailClosed: two rungs descended.
    assert_eq!(stats.mode_transitions, 2);
    assert!(
        stats.fc_violations > 0,
        "fail-closed monitor denies without touching the tracee: {stats:?}"
    );
}

#[test]
fn watchdog_deadline_denies_slow_verification() {
    // A 200k-cycle stall against a 50k-cycle trap deadline: the watchdog
    // must catch the overrun, deny the trap, and record a strike.
    let res = Resilience::with_deadline(50_000);
    let r = benign_chaos(
        App::Webserve,
        ContextConfig::full().with_resilience(res),
        FaultSchedule::new(0xDEAD_0001).with(
            FaultKind::Stall { cycles: 200_000 },
            Trigger::TrapRange { from: 1, to: 1 },
        ),
        REQUESTS,
    );
    let stats = r.stats.expect("monitor attached");
    assert!(stats.watchdog_overruns > 0, "{stats:?}");
    assert!(stats.watchdog_denies > 0, "{stats:?}");
    assert!(stats.substrate_strikes > 0, "{stats:?}");
}

#[test]
fn benign_mix_chaos_never_panics_any_app() {
    // Unfocused chaos: a Mix fault on every 7th substrate access, across
    // all three applications. The service may degrade or die — the
    // monitor must neither panic nor mis-account.
    for (app, seed) in [
        (App::Webserve, 0x0B5E_0001u64),
        (App::Dbkv, 0x0B5E_0002),
        (App::Ftpd, 0x0B5E_0003),
    ] {
        let r = benign_chaos(app, ContextConfig::full(), FaultSchedule::chaos(seed, 7), 6);
        let stats = r.stats.expect("monitor attached");
        assert!(
            stats.traps > 0,
            "{app:?}: chaos run produced no traps at all"
        );
        // Whatever happened, the ladder is a coherent story: transitions
        // only happen on strikes.
        assert!(
            stats.mode == MonitorMode::Full || stats.substrate_strikes > 0,
            "{app:?}: mode {:?} without a recorded strike",
            stats.mode
        );
    }
}

// ---------------------------------------------------------------------------
// Attack catalog under chaos: faults must never flip a Deny to an Allow
// ---------------------------------------------------------------------------

/// One representative scenario per Table 6 section plus an AI-only data
/// attack — the rows where a masked verification step would be most
/// dangerous. The full 32-row matrix runs in `--ignored` mode and in the
/// `chaos` bench binary.
const REPRESENTATIVE: &[u32] = &[1, 14, 19, 30];

fn assert_catalog_contained(ids: &[u32], seeds: &[u64]) {
    let catalog = bastion_attacks::catalog();
    let mut fired_total = 0u64;
    for &id in ids {
        let s = catalog
            .iter()
            .find(|s| s.id == id)
            .expect("scenario id exists");
        for report in attack_chaos(s, ContextConfig::full(), seeds) {
            fired_total += report.faults_fired;
            assert!(
                report.attack_contained(),
                "#{} {} flipped to Allow under `{}` faults (seed {:#x}): {:?}",
                report.id,
                report.name,
                report.schedule,
                report.seed,
                report.outcome
            );
        }
    }
    assert!(fired_total > 0, "chaos matrix never injected a fault");
}

#[test]
fn representative_attacks_stay_contained_under_chaos() {
    assert_catalog_contained(REPRESENTATIVE, &[0xA77C_0001]);
}

#[test]
#[ignore = "full 32-row chaos matrix; run explicitly or via the chaos bench bin"]
fn full_catalog_stays_contained_under_chaos() {
    let ids: Vec<u32> = bastion_attacks::catalog().iter().map(|s| s.id).collect();
    assert_catalog_contained(&ids, &[0xA77C_0001, 0xA77C_0002]);
}

// ---------------------------------------------------------------------------
// Walk-cache × shadow-rebind regression guard (PR 1 bind_key aliasing),
// now also exercised under injected shadow faults
// ---------------------------------------------------------------------------

/// A module whose main loops a fixed call chain over a sensitive syscall:
/// `main -> worker(prot) -> mmap(0, 4096, prot, 0x21, -1, 0)` twice. The
/// `prot` local in main's frame is the monitored sensitive variable: it is
/// stored once before the loop (`rebind_per_iter = false`) or freshly per
/// iteration (`true`), so both traps present the *identical* frame chain —
/// the walk-cache hot case — while the argument provenance spans frames,
/// exactly the shape the AI propagation chain verifies.
fn looped_mmap_app(rebind_per_iter: bool) -> Module {
    let mut mb = ModuleBuilder::new("loopapp");
    let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
    let exit = mb.declare_syscall_stub("exit", sysno::EXIT, 1);

    let worker = mb.declare("worker", &[("prot", Ty::I64)], Ty::Void);
    let mut f = mb.define(worker);
    let pa = f.frame_addr(f.param_slot(0));
    let pv = f.load(pa);
    let _ = f.call_direct(
        mmap,
        &[
            0i64.into(),
            4096i64.into(),
            pv.into(),
            0x21i64.into(),
            (-1i64).into(),
            0i64.into(),
        ],
    );
    f.ret(None);
    f.finish();

    let mut f = mb.function("main", &[], Ty::I64);
    let prot = f.local("prot", Ty::I64); // slot 0: the corruption target
    let i = f.local("i", Ty::I64);
    let j = f.local("j", Ty::I64);
    let pa = f.frame_addr(prot);
    f.store(pa, 3i64);
    let ia = f.frame_addr(i);
    f.store(ia, 0i64);
    let head = f.new_block();
    let body = f.new_block();
    let burn_head = f.new_block();
    let burn_body = f.new_block();
    let incr = f.new_block();
    let done = f.new_block();
    f.jmp(head);
    f.switch_to(head);
    let ia = f.frame_addr(i);
    let iv = f.load(ia);
    let c = f.cmp(CmpOp::Lt, iv, 2i64);
    f.br(c, body, done);
    f.switch_to(body);
    if rebind_per_iter {
        // A different legitimate value each iteration: 3, then 1. The
        // instrumented store refreshes the shadow copy (rebind), and the
        // monitor must verify each trap against the *fresh* shadow state
        // even though the walked chain is cache-identical.
        let ia = f.frame_addr(i);
        let iv = f.load(ia);
        let two = f.bin(bastion_ir::BinOp::Mul, iv, 2i64);
        let v = f.bin(bastion_ir::BinOp::Sub, 3i64, two);
        let pa = f.frame_addr(prot);
        f.store(pa, v);
    }
    let pa = f.frame_addr(prot);
    let pv = f.load(pa);
    let _ = f.call_direct(worker, &[pv.into()]);
    // Burn ~100k instructions between iterations: the world scheduler runs
    // whole 512-step quanta, so without a wide inter-trap window a test
    // cannot interleave a corruption between the two traps.
    let ja = f.frame_addr(j);
    f.store(ja, 0i64);
    f.jmp(burn_head);
    f.switch_to(burn_head);
    let ja = f.frame_addr(j);
    let jv = f.load(ja);
    let c = f.cmp(CmpOp::Lt, jv, 20_000i64);
    f.br(c, burn_body, incr);
    f.switch_to(burn_body);
    let ja = f.frame_addr(j);
    let jv = f.load(ja);
    let jn = f.bin(bastion_ir::BinOp::Add, jv, 1i64);
    let ja = f.frame_addr(j);
    f.store(ja, jn);
    f.jmp(burn_head);
    f.switch_to(incr);
    let ia = f.frame_addr(i);
    let iv = f.load(ia);
    let next = f.bin(bastion_ir::BinOp::Add, iv, 1i64);
    let ia = f.frame_addr(i);
    f.store(ia, next);
    f.jmp(head);
    f.switch_to(done);
    let _ = f.call_direct(exit, &[0i64.into()]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    mb.finish()
}

struct LoopSetup {
    world: World,
    pid: bastion_kernel::Pid,
    /// Runtime address of main's `prot` slot.
    prot_addr: u64,
}

fn launch_loop(rebind_per_iter: bool, cfg: ContextConfig) -> LoopSetup {
    let out = bastion_compiler::BastionCompiler::new()
        .compile(looped_mmap_app(rebind_per_iter))
        .expect("loop app compiles");
    let image = Arc::new(Image::load(out.module).expect("loop app image loads"));
    let main = image.module.func_by_name("main").expect("main exists");
    let fi = image.frame(main);
    let prot_addr = (image.stack_top - 16) - fi.frame_size + fi.slot_offsets[0];
    let machine = Machine::new(image.clone(), CostModel::default());
    let mut world = World::new(CostModel::default());
    let pid = world.spawn(machine);
    protect(&mut world, pid, &image, &out.metadata, cfg);
    LoopSetup {
        world,
        pid,
        prot_addr,
    }
}

fn monitor_stats(world: &mut World) -> bastion_monitor::MonitorStats {
    bastion::chaos::monitor_stats(world).expect("monitor attached")
}

#[test]
fn walk_cache_honors_shadow_rebind_between_identical_chains() {
    // Without AI the identical chains share one cached walk verdict...
    let mut s = launch_loop(true, ContextConfig::ct_cf());
    assert_eq!(s.world.run(50_000_000), RunStatus::AllExited);
    let exit = s.world.proc(s.pid).unwrap().exit.clone().unwrap();
    assert_eq!(exit, ExitReason::Exited(0));
    assert_eq!(s.world.trap_count, 2);
    let stats = monitor_stats(&mut s.world);
    assert!(
        stats.walk_cache_hits >= 1,
        "identical chains must hit the walk cache: {stats:?}"
    );

    // ...but with AI enabled the cache must be bypassed: argument values
    // legally change between identical chains (the per-iteration rebind),
    // so every trap re-verifies against the fresh shadow state.
    let mut s = launch_loop(true, ContextConfig::full());
    assert_eq!(s.world.run(50_000_000), RunStatus::AllExited);
    let exit = s.world.proc(s.pid).unwrap().exit.clone().unwrap();
    assert_eq!(exit, ExitReason::Exited(0), "fresh shadow values must pass");
    assert_eq!(s.world.trap_count, 2);
    let stats = monitor_stats(&mut s.world);
    assert_eq!(
        stats.walk_cache_hits, 0,
        "AI traps must not reuse cached walk verdicts: {stats:?}"
    );
}

/// Runs the loop app until the first trap completed, then corrupts the
/// bound frame slot without a shadow refresh (the data-attack primitive)
/// and lets the run finish.
fn corrupt_after_first_trap(s: &mut LoopSetup) {
    // Tiny slices: the window between trap 1 retiring and iteration 2
    // re-loading the variable is a few hundred cycles; a coarse slice
    // would overshoot straight through trap 2.
    let mut guard = 0;
    while s.world.trap_count < 1 {
        s.world.run(100);
        guard += 1;
        assert!(guard < 10_000_000, "first trap never arrived");
    }
    let m = &mut s.world.proc_mut(s.pid).expect("alive").machine;
    m.mem.write_unchecked(s.prot_addr, &5i64.to_le_bytes());
}

#[test]
fn cached_chain_does_not_skip_argument_verification() {
    let mut s = launch_loop(false, ContextConfig::full());
    corrupt_after_first_trap(&mut s);
    s.world.run(50_000_000);
    let exit = s.world.proc(s.pid).unwrap().exit.clone().unwrap();
    match &exit {
        ExitReason::MonitorKill { reason, .. } => {
            assert!(reason.starts_with("AI"), "wrong context fired: {reason}")
        }
        other => panic!("corrupted argument was allowed: {other:?}"),
    }
    let stats = monitor_stats(&mut s.world);
    assert_eq!(stats.ai_violations, 1, "{stats:?}");
}

#[test]
fn corrupted_argument_still_denied_under_injected_shadow_faults() {
    // The same data attack, but the monitor's shadow reads at the second
    // trap are hit by bit flips. Whatever the flip lands on — key, meta,
    // value, or a harmless spare bit — the corrupted argument must still
    // be denied: as a checksum quarantine (FC/AI) or as the plain value
    // mismatch. Several seeds cover different flip positions.
    for seed in [1u64, 2, 3, 4, 5] {
        let mut s = launch_loop(false, ContextConfig::full());
        s.world.install_faults(
            FaultSchedule::new(seed).with(FaultKind::ShadowBitFlip, Trigger::OnTrap(2)),
        );
        corrupt_after_first_trap(&mut s);
        s.world.run(50_000_000);
        let exit = s.world.proc(s.pid).unwrap().exit.clone().unwrap();
        match &exit {
            ExitReason::MonitorKill { reason, .. } => assert!(
                reason.starts_with("AI") || reason.starts_with("FC"),
                "seed {seed}: wrong context fired: {reason}"
            ),
            other => panic!("seed {seed}: corrupted argument was allowed: {other:?}"),
        }
    }
}
