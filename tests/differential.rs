//! Differential suite: the predecoded fast path and the legacy
//! tree-walking interpreter must be observably identical — same `Event`
//! streams, exit codes, virtual cycle totals, Table 6 verdicts, and app
//! benchmark results, bit for bit.
//!
//! The interpreter is selected per-world via the thread-local
//! [`bastion::kernel::set_thread_legacy_interp`] switch, so whole-stack
//! code paths (harness, attack scenarios) run unmodified on either engine.

use bastion::apps::App;
use bastion::attacks::{catalog, evaluate, ScenarioResult};
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, AppBenchmark, WorkloadSize};
use bastion::ir::build::ModuleBuilder;
use bastion::ir::{BinOp, CmpOp, Inst, IntrinsicOp, Module, Operand, Ty};
use bastion::kernel::LegacyInterpGuard;
use bastion::vm::{interp, CostModel, Event, Image, Machine};
use bastion::Protection;
use proptest::prelude::*;
use std::sync::Arc;

/// Runs `f` with the thread-local legacy-interpreter default set; the RAII
/// guard restores the previous engine even if `f` panics, so one failing
/// differential test cannot poison the engine selection of whatever test
/// the harness schedules next on this thread.
fn on_legacy<T>(f: impl FnOnce() -> T) -> T {
    let _guard = LegacyInterpGuard::set(true);
    f()
}

fn assert_benchmarks_identical(fast: &AppBenchmark, legacy: &AppBenchmark) {
    assert_eq!(
        fast.metric.to_bits(),
        legacy.metric.to_bits(),
        "{:?}/{}: metric diverged: {} vs {}",
        fast.app,
        fast.protection,
        fast.metric,
        legacy.metric
    );
    assert_eq!(fast.cycles, legacy.cycles, "cycle totals diverged");
    assert_eq!(fast.steps, legacy.steps, "retired step counts diverged");
    assert_eq!(fast.trace_cycles, legacy.trace_cycles);
    assert_eq!(fast.traps, legacy.traps);
    assert_eq!(fast.syscall_counts, legacy.syscall_counts);
}

fn app_differential(app: App, protection: &Protection) {
    let size = WorkloadSize::quick();
    let compiler = BastionCompiler::new();
    let cost = CostModel::default();
    let fast = run_app_benchmark(app, protection, &size, &compiler, cost);
    let legacy = on_legacy(|| run_app_benchmark(app, protection, &size, &compiler, cost));
    assert_benchmarks_identical(&fast, &legacy);
}

#[test]
fn webserve_identical_on_both_interpreters() {
    app_differential(App::Webserve, &Protection::vanilla());
    app_differential(App::Webserve, &Protection::full());
}

#[test]
fn dbkv_identical_on_both_interpreters() {
    app_differential(App::Dbkv, &Protection::full());
}

#[test]
fn ftpd_identical_on_both_interpreters() {
    app_differential(App::Ftpd, &Protection::full());
}

fn assert_verdicts_identical(fast: &ScenarioResult, legacy: &ScenarioResult) {
    assert_eq!(
        fast.ground_truth, legacy.ground_truth,
        "#{} ground truth diverged",
        fast.id
    );
    assert_eq!(
        fast.full_blocked, legacy.full_blocked,
        "#{} full-BASTION verdict diverged",
        fast.id
    );
    assert_eq!(
        fast.observed, legacy.observed,
        "#{} context matrix diverged",
        fast.id
    );
    assert_eq!(fast.expected, legacy.expected);
}

fn table6_differential(ids: &[u32]) {
    let cat = catalog();
    for id in ids {
        let s = cat.iter().find(|s| s.id == *id).expect("scenario exists");
        let fast = evaluate(s);
        let legacy = on_legacy(|| evaluate(s));
        assert_verdicts_identical(&fast, &legacy);
    }
}

/// One scenario per Table 6 section, both engines (debug-budget subset).
#[test]
fn table6_representative_verdicts_identical() {
    table6_differential(&[1, 14, 19, 25, 32]);
}

/// The full 32-scenario matrix on both engines.
/// `cargo test --release --test differential -- --ignored`
#[test]
#[ignore = "full matrix is release-budget; run explicitly"]
fn table6_full_matrix_identical() {
    let all: Vec<u32> = catalog().iter().map(|s| s.id).collect();
    assert_eq!(all.len(), 32);
    table6_differential(&all);
}

// ---- random-IR step-for-step equivalence ----

/// Builds a random (but valid) module from fuzz bytes: forward-only
/// control flow over `nblocks` chained blocks, instructions drawn from the
/// whole menu (arithmetic incl. faulting div, loads/stores incl. wild
/// ones, calls, syscalls, intrinsics), so every interpreter path is
/// exercised.
fn random_module(nblocks: usize, ops: &[u8]) -> Module {
    let mut mb = ModuleBuilder::new("rand");
    let getpid = mb.declare_syscall_stub("getpid", 39, 0);
    let helper = mb.declare("helper", &[("x", Ty::I64)], Ty::I64);
    {
        let mut f = mb.define(helper);
        let a = f.frame_addr(f.param_slot(0));
        let v = f.load(a);
        let d = f.bin(BinOp::Mul, v, 3i64);
        f.ret(Some(d.into()));
        f.finish();
    }
    let mut f = mb.function("main", &[], Ty::I64);
    let la = f.local("a", Ty::I64);
    let lb = f.local("b", Ty::I64);
    let chain: Vec<_> = (1..nblocks).map(|_| f.new_block()).collect();
    let mut regs: Vec<bastion::ir::Reg> = Vec::new();
    let per_block = ops.len() / nblocks.max(1) + 1;
    let mut chunks = ops.chunks(per_block.max(1));
    for bi in 0..nblocks {
        let body = chunks.next().unwrap_or(&[]);
        for pair in body.chunks(2) {
            let (sel, arg) = (pair[0], *pair.get(1).unwrap_or(&0));
            let pick = |regs: &[bastion::ir::Reg]| -> Operand {
                if regs.is_empty() || arg & 1 == 0 {
                    Operand::Imm(i64::from(arg) - 64)
                } else {
                    regs[arg as usize % regs.len()].into()
                }
            };
            match sel % 13 {
                0 => regs.push(f.mov(i64::from(arg))),
                1 => {
                    let (a, b) = (pick(&regs), pick(&regs));
                    regs.push(f.bin(BinOp::Add, a, b));
                }
                2 => {
                    // May divide by zero: the fault path must agree too.
                    let (a, b) = (pick(&regs), pick(&regs));
                    regs.push(f.bin(BinOp::Div, a, b));
                }
                3 => {
                    let (a, b) = (pick(&regs), pick(&regs));
                    regs.push(f.cmp(CmpOp::Lt, a, b));
                }
                4 => {
                    let a = f.frame_addr(la);
                    let v = pick(&regs);
                    f.store(a, v);
                }
                5 => {
                    let a = f.frame_addr(lb);
                    regs.push(f.load(a));
                }
                6 => {
                    let base = f.frame_addr(la);
                    let idx = pick(&regs);
                    regs.push(f.index_addr(base, 8, idx));
                }
                7 => {
                    let v = pick(&regs);
                    regs.push(f.call_direct(helper, &[v]));
                }
                8 => regs.push(f.call_direct(getpid, &[])),
                9 => {
                    let (a, b) = (pick(&regs), pick(&regs));
                    regs.push(f.bin(BinOp::Shl, a, b));
                }
                10 => {
                    let a = f.frame_addr(la);
                    f.emit(Inst::Intrinsic(IntrinsicOp::CtxWriteMem {
                        addr: a.into(),
                        size: 8,
                    }));
                }
                11 => {
                    let a = f.frame_addr(lb);
                    f.emit(Inst::Intrinsic(IntrinsicOp::CtxBindMem {
                        pos: 1 + arg % 6,
                        addr: a.into(),
                    }));
                    f.emit(Inst::Intrinsic(IntrinsicOp::CtxBindConst {
                        pos: 1 + arg % 6,
                        value: i64::from(arg),
                    }));
                }
                _ => {
                    // Wild store: faults on unmapped memory on both paths.
                    let v = pick(&regs);
                    f.store(Operand::Imm(0x10 + i64::from(arg)), v);
                }
            }
        }
        if bi + 1 < nblocks {
            // Forward-only: terminates by construction.
            let next = chain[bi];
            let skip = chain[(bi + 1).min(chain.len() - 1)];
            if regs.is_empty() {
                f.jmp(next);
            } else {
                let c = regs[regs.len() - 1];
                f.br(c, next, skip);
            }
            f.switch_to(next);
        } else {
            let v = regs.last().map(|r| Operand::from(*r));
            f.ret(v);
        }
    }
    f.finish();
    mb.finish()
}

proptest! {
    /// Step-for-step equivalence: drive the legacy oracle one instruction
    /// at a time against `run_bounded(_, 1)` on an identical twin and
    /// insist on identical events, cycles, pc, and stack registers after
    /// every single step.
    #[test]
    fn random_ir_step_for_step_equivalence(
        nblocks in 1usize..6,
        ops in proptest::collection::vec(any::<u8>(), 0..160),
    ) {
        let module = random_module(nblocks, &ops);
        let img = Arc::new(Image::load(module).expect("random module validates"));
        let mut legacy = Machine::new(img.clone(), CostModel::default());
        let mut fast = Machine::new(img, CostModel::default());
        for step_no in 0..50_000u32 {
            let ea = interp::step(&mut legacy);
            let (n, eb) = interp::run_bounded(&mut fast, 1);
            let eb = eb.unwrap_or(Event::Continue);
            prop_assert_eq!(n, 1);
            prop_assert_eq!(ea, eb, "event diverged at step {}", step_no);
            prop_assert_eq!(legacy.cycles, fast.cycles, "cycles diverged at step {}", step_no);
            prop_assert_eq!(legacy.pc, fast.pc, "pc diverged at step {}", step_no);
            prop_assert_eq!((legacy.sp, legacy.fp), (fast.sp, fast.fp));
            prop_assert_eq!(legacy.depth(), fast.depth());
            match ea {
                Event::Syscall { nr, .. } => {
                    prop_assert_eq!((legacy.trap_nr, legacy.trap_pc), (fast.trap_nr, fast.trap_pc));
                    let ret = u64::from(nr) + 7;
                    legacy.complete_syscall(ret);
                    fast.complete_syscall(ret);
                }
                Event::Exited(_) | Event::Fault(_) => break,
                Event::Continue => {}
            }
        }
        prop_assert_eq!(legacy.exited, fast.exited);
    }

    /// Whole-run equivalence through the event loop: both engines ride the
    /// module to completion and must agree on the final event and totals.
    #[test]
    fn random_ir_whole_run_equivalence(
        nblocks in 1usize..6,
        ops in proptest::collection::vec(any::<u8>(), 0..160),
    ) {
        let module = random_module(nblocks, &ops);
        let img = Arc::new(Image::load(module).expect("random module validates"));
        let drive = |use_legacy: bool| {
            let mut m = Machine::new(img.clone(), CostModel::default());
            let mut events = Vec::new();
            loop {
                let out = if use_legacy {
                    interp::run_legacy(&mut m, 100_000)
                } else {
                    interp::run(&mut m, 100_000)
                };
                let e = out.event();
                events.push(e);
                match e {
                    Event::Syscall { nr, .. } => m.complete_syscall(u64::from(nr) + 7),
                    _ => break,
                }
            }
            (events, m.cycles, m.exited)
        };
        let (ev_l, cy_l, ex_l) = drive(true);
        let (ev_f, cy_f, ex_f) = drive(false);
        prop_assert_eq!(ev_l, ev_f);
        prop_assert_eq!(cy_l, cy_f);
        prop_assert_eq!(ex_l, ex_f);
    }
}
