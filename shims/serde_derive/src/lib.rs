//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the in-repo serde
//! facade (see `shims/serde`). The container is offline, so the real serde
//! stack is unavailable; this derive supports exactly the shapes this
//! workspace uses — non-generic structs (named, tuple, unit) and enums with
//! unit / tuple / struct variants — and generates impls of the facade's
//! value-model traits.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (facade trait) for a concrete struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (facade trait) for a concrete struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(ts: TokenStream) -> Item {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`) and visibility.
    let is_struct = loop {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => break true,
            TokenTree::Ident(id) if id.to_string() == "enum" => break false,
            other => panic!("derive shim: unexpected token {other}"),
        }
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive shim: expected item name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        assert!(
            p.as_char() != '<',
            "derive shim: generics are unsupported ({name})"
        );
    }
    if is_struct {
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        Item::Struct { name, fields }
    } else {
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("derive shim: expected enum body, got {other:?}"),
        };
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    }
}

/// Field names of a named-fields body: every identifier at angle-depth 0
/// that is immediately followed by a *lone* `:` (a `::` path separator
/// tokenizes as a `Joint` colon, which excludes qualified types).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut angle = 0i32;
    let mut j = 0;
    while j < toks.len() {
        match &toks[j] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' if angle > 0 => angle -= 1,
                '#' => j += 1, // skip the attribute group that follows
                _ => {}
            },
            TokenTree::Ident(id) if angle == 0 => {
                if let Some(TokenTree::Punct(p)) = toks.get(j + 1) {
                    if p.as_char() == ':' && p.spacing() == Spacing::Alone {
                        names.push(id.to_string());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    names
}

/// Number of fields in a tuple body: top-level commas (angle-aware) plus
/// one, minus a trailing comma.
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut n = 1;
    let mut trailing_comma = false;
    for t in &toks {
        let mut is_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' if angle > 0 => angle -= 1,
                ',' if angle == 0 => {
                    n += 1;
                    is_comma = true;
                }
                _ => {}
            }
        }
        trailing_comma = is_comma;
    }
    if trailing_comma {
        n -= 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        match &toks[j] {
            TokenTree::Punct(p) if p.as_char() == '#' => j += 2,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                let mut fields = Fields::Unit;
                if let Some(TokenTree::Group(g)) = toks.get(j + 1) {
                    fields = match g.delimiter() {
                        Delimiter::Parenthesis => Fields::Tuple(count_tuple_fields(g.stream())),
                        Delimiter::Brace => Fields::Named(parse_named_fields(g.stream())),
                        Delimiter::None | Delimiter::Bracket => Fields::Unit,
                    };
                    j += 1;
                }
                variants.push(Variant { name, fields });
                j += 1;
            }
            _ => j += 1, // separating commas
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn ser_expr(place: &str) -> String {
    format!("::serde::Serialize::serialize_value({place})")
}

fn de_expr(place: &str) -> String {
    format!("::serde::Deserialize::deserialize_value({place})?")
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let pairs: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), {})",
                                ser_expr(&format!("&self.{f}"))
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> =
                        (0..*n).map(|i| ser_expr(&format!("&self.{i}"))).collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> =
                                (0..*n).map(|i| ser_expr(&format!("f{i}"))).collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let pairs: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), {})",
                                        ser_expr(f)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join("\n")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| format!("{f}: {}", de_expr(&format!("v.field(\"{f}\")?"))))
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> =
                        (0..*n).map(|i| de_expr(&format!("&a[{i}]"))).collect();
                    format!("let a = v.as_array({n})?; Ok({name}({}))", elems.join(", "))
                }
                Fields::Unit => format!("let _ = v; Ok({name})"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(n) => {
                            let elems: Vec<String> =
                                (0..*n).map(|i| de_expr(&format!("&a[{i}]"))).collect();
                            Some(format!(
                                "\"{vn}\" => {{ let a = _inner.as_array({n})?; Ok({name}::{vn}({})) }}",
                                elems.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!("{f}: {}", de_expr(&format!("_inner.field(\"{f}\")?")))
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let body = format!(
                "match v {{\n\
                    ::serde::Value::Str(s) => match s.as_str() {{\n\
                        {unit}\n\
                        other => Err(::serde::DeError::new(format!(\"unknown {name} variant {{other}}\"))),\n\
                    }},\n\
                    ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                        let (tag, _inner) = &pairs[0];\n\
                        match tag.as_str() {{\n\
                            {data}\n\
                            other => Err(::serde::DeError::new(format!(\"unknown {name} variant {{other}}\"))),\n\
                        }}\n\
                    }}\n\
                    _ => Err(::serde::DeError::new(\"expected {name} variant\".to_string())),\n\
                }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
