//! In-repo `criterion` shim: a minimal wall-clock micro-benchmark harness
//! with the API surface the bench crate uses — `Criterion`,
//! `benchmark_group`, `BenchmarkId`, `Bencher::iter`, the
//! `criterion_group!`/`criterion_main!` macros, and `black_box`.
//!
//! No statistics beyond a mean per-iteration time are computed; the point is
//! to give comparable before/after numbers in an offline container, not to
//! replace criterion's analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(250);

/// Drives benchmark registration and measurement.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` / `cargo bench` pass harness flags; in `--test` mode
        // run each benchmark once so the target stays cheap to check.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Measures `f` and prints the mean per-iteration time.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.test_mode, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            _c: self,
        }
    }
}

/// A named group; mirrors criterion's builder-ish API.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measures `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.test_mode, &mut f);
        self
    }

    /// Measures `f(b, input)` under `group/id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.test_mode, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Two-part benchmark identifier, rendered as `function/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Passed to the closure; `iter` runs the workload `self.iters` times.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, f: &mut F) {
    // Calibration pass: one iteration, also serves as warm-up.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if test_mode {
        println!("bench {name}: ok (test mode)");
        return;
    }
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_nanos() / u128::from(iters.max(1));
    println!("bench {name}: {} ({iters} iters)", fmt_ns(per_iter));
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s/iter", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms/iter", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs/iter", ns as f64 / 1e3)
    } else {
        format!("{ns} ns/iter")
    }
}

/// Bundles benchmark functions into one registration entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Emits `main` running every group; tolerates cargo's harness flags.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls = calls.wrapping_add(1)));
        assert!(calls > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        g.finish();
    }
}
