//! In-repo `serde` facade.
//!
//! The build container has no access to crates.io, so the real serde stack
//! cannot be fetched. This crate presents the same *surface* the workspace
//! uses — `serde::{Serialize, Deserialize}` traits plus the derive macros —
//! over a small JSON-like [`Value`] model. `shims/serde_json` prints and
//! parses that model as real JSON text, so metadata files round-trip exactly
//! as they would with the real stack.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// The JSON-like data model every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer (non-negatives use [`Value::UInt`]).
    Int(i64),
    /// A non-negative integer; kept unsigned so `u64::MAX` survives.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered key→value map (object field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object field by name.
    ///
    /// # Errors
    /// Fails if `self` is not an object or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Interprets `self` as an array of exactly `n` elements.
    ///
    /// # Errors
    /// Fails on a non-array or a length mismatch.
    pub fn as_array(&self, n: usize) -> Result<&[Value], DeError> {
        match self {
            Value::Array(items) if items.len() == n => Ok(items),
            Value::Array(items) => Err(DeError::new(format!(
                "expected array of {n}, got {}",
                items.len()
            ))),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// Short name of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    fn as_u64(&self) -> Result<u64, DeError> {
        match *self {
            Value::UInt(v) => Ok(v),
            Value::Int(v) if v >= 0 => Ok(v as u64),
            _ => Err(DeError::new(format!(
                "expected unsigned integer, got {}",
                self.kind()
            ))),
        }
    }

    fn as_i64(&self) -> Result<i64, DeError> {
        match *self {
            Value::Int(v) => Ok(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Ok(v as i64),
            _ => Err(DeError::new(format!(
                "expected integer, got {}",
                self.kind()
            ))),
        }
    }
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: String) -> Self {
        DeError(msg)
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers a value into the [`Value`] data model.
pub trait Serialize {
    /// The value-model representation of `self`.
    fn serialize_value(&self) -> Value;
}

/// Rebuilds a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `v` back into `Self`.
    ///
    /// # Errors
    /// Fails if `v` does not have the expected shape.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
int_impl!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            _ => Err(DeError::new(format!("expected number, got {}", v.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = $n; 1 })+;
                let a = v.as_array(N)?;
                Ok(($($t::deserialize_value(&a[$n])?,)+))
            }
        }
    )*};
}
tuple_impl!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

macro_rules! map_impl {
    ($name:ident, $($bound:tt)+) => {
        impl<K: Serialize + $($bound)+, V: Serialize> Serialize for $name<K, V> {
            fn serialize_value(&self) -> Value {
                Value::Array(
                    self.iter()
                        .map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()]))
                        .collect(),
                )
            }
        }
        impl<K: Deserialize + $($bound)+, V: Deserialize> Deserialize for $name<K, V> {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => items
                        .iter()
                        .map(|pair| {
                            let kv = pair.as_array(2)?;
                            Ok((K::deserialize_value(&kv[0])?, V::deserialize_value(&kv[1])?))
                        })
                        .collect(),
                    other => Err(DeError::new(format!("expected map array, got {}", other.kind()))),
                }
            }
        }
    };
}
map_impl!(BTreeMap, Ord);
map_impl!(HashMap, Eq + std::hash::Hash);

macro_rules! set_impl {
    ($name:ident, $($bound:tt)+) => {
        impl<T: Serialize + $($bound)+> Serialize for $name<T> {
            fn serialize_value(&self) -> Value {
                Value::Array(self.iter().map(Serialize::serialize_value).collect())
            }
        }
        impl<T: Deserialize + $($bound)+> Deserialize for $name<T> {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
                    other => Err(DeError::new(format!("expected set array, got {}", other.kind()))),
                }
            }
        }
    };
}
set_impl!(BTreeSet, Ord);
set_impl!(HashSet, Eq + std::hash::Hash);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(
            u64::deserialize_value(&u64::MAX.serialize_value()),
            Ok(u64::MAX)
        );
        assert_eq!(i64::deserialize_value(&(-5i64).serialize_value()), Ok(-5));
        assert_eq!(
            Option::<u32>::deserialize_value(&None::<u32>.serialize_value()),
            Ok(None)
        );
        let m: BTreeMap<u64, String> = [(1, "a".to_string())].into();
        assert_eq!(BTreeMap::deserialize_value(&m.serialize_value()), Ok(m));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u64::deserialize_value(&Value::Str("x".into())).is_err());
        assert!(Value::Null.field("f").is_err());
        assert!(Value::Array(vec![]).as_array(1).is_err());
    }
}
