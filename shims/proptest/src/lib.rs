//! In-repo `proptest` shim: deterministic random-input testing with the
//! subset of the proptest surface this workspace uses — the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer range
//! strategies, `collection::vec`, tuple strategies, and a crude
//! character-class string strategy.
//!
//! Inputs are generated from a fixed per-test seed (hash of the test name),
//! so runs are bit-for-bit reproducible — matching the determinism the rest
//! of the simulator is built on.

use std::marker::PhantomData;
use std::ops::Range;

/// Number of generated cases per property.
pub const CASES: u64 = 64;

/// Deterministic xorshift64* generator seeded from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from `name` (FNV-1a), so each property gets a
    /// stable but distinct input stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // never zero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn in_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }
}

/// Produces values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Shift signed ranges into u64 space to sample uniformly.
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range");
                let span = (hi - lo) as u64;
                (lo + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Crude regex-subset string strategy: `"[<class>]{min,max}"`. Only the
/// shapes this workspace uses are honored — a single character class
/// (ranges like ` -~` plus `\n` escapes) with a `{min,max}` repeat; anything
/// unrecognized falls back to printable ASCII of length 0..64.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_pattern(self);
        let len = rng.in_range_u64(min as u64, max as u64 + 1) as usize;
        (0..len)
            .map(|_| chars[rng.in_range_u64(0, chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let default_class: Vec<char> = (b' '..=b'~').map(char::from).collect();
    let Some(class_end) = pat.find(']') else {
        return (default_class, 0, 64);
    };
    let class = pat.strip_prefix('[').map(|rest| &rest[..class_end - 1]);
    let chars = match class {
        Some(body) => {
            let mut out = Vec::new();
            let raw: Vec<char> = body.chars().collect();
            let mut i = 0;
            while i < raw.len() {
                if raw[i] == '\\' && i + 1 < raw.len() {
                    out.push(match raw[i + 1] {
                        'n' => '\n',
                        't' => '\t',
                        c => c,
                    });
                    i += 2;
                } else if i + 2 < raw.len() && raw[i + 1] == '-' {
                    let (lo, hi) = (raw[i] as u32, raw[i + 2] as u32);
                    for c in lo..=hi {
                        out.push(char::from_u32(c).unwrap_or(' '));
                    }
                    i += 3;
                } else {
                    out.push(raw[i]);
                    i += 1;
                }
            }
            if out.is_empty() {
                default_class
            } else {
                out
            }
        }
        None => default_class,
    };
    // Repeat bounds: `{min,max}` after the class, else a fixed small range.
    let rest = &pat[class_end + 1..];
    let bounds = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .and_then(|r| {
            let (a, b) = r.split_once(',')?;
            Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
        });
    let (min, max) = bounds.unwrap_or((0, 64));
    (chars, min, max)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vectors of `elem`-generated values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.in_range_u64(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that runs the body over [`CASES`] deterministic inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __run = || $body;
                    if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                        eprintln!("proptest: {} failed on case {}", stringify!($name), __case);
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// The glob-import surface tests use: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(TestRng::deterministic("x").next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let s = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&s));
        }
    }

    #[test]
    fn string_pattern_class_and_bounds() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..200 {
            let s = "[ -~\\n]{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        /// The macro itself compiles and runs with multiple args.
        #[test]
        fn macro_smoke(a in 0u64..10, b in crate::collection::vec(any::<u8>(), 1..4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b.len() < 4, true);
        }
    }
}
