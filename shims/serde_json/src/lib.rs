//! In-repo `serde_json` facade: prints and parses the `serde` shim's
//! [`Value`] model as real JSON text. Only the API surface this workspace
//! uses is provided: `to_string`, `to_string_pretty`, `from_str`, `Error`.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::deserialize_value(&v)?)
}

// ---------------------------------------------------------------- printing

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("non-finite float is not valid JSON"));
            }
            // Keep floats round-trippable: always include a decimal point.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a plain run, then handle the stop byte.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn value_roundtrips_through_text() {
        let mut map: BTreeMap<String, Vec<i64>> = BTreeMap::new();
        map.insert("a\"b".to_string(), vec![-1, 0, 2]);
        map.insert("line\n".to_string(), vec![]);
        let text = to_string(&map).unwrap();
        let back: BTreeMap<String, Vec<i64>> = from_str(&text).unwrap();
        assert_eq!(back, map);
        let pretty = to_string_pretty(&map).unwrap();
        let back2: BTreeMap<String, Vec<i64>> = from_str(&pretty).unwrap();
        assert_eq!(back2, map);
    }

    #[test]
    fn big_u64_survives() {
        let text = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), u64::MAX);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
