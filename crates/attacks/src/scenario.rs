//! Scenario types and common payload builders.

use crate::env::{AttackEnv, Parked};
use bastion_ir::CALL_SIZE;

/// Which context(s) Table 6 expects to block a scenario (✓ = true).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expected {
    /// Call-Type context blocks it.
    pub ct: bool,
    /// Control-Flow context blocks it.
    pub cf: bool,
    /// Argument-Integrity context blocks it.
    pub ai: bool,
}

impl Expected {
    /// All three contexts block (the ✓✓✓ rows).
    pub const ALL: Expected = Expected {
        ct: true,
        cf: true,
        ai: true,
    };
    /// CT bypassed, CF and AI block (the ROP rows).
    pub const CF_AI: Expected = Expected {
        ct: false,
        cf: true,
        ai: true,
    };
    /// Only AI blocks (legitimate-control-flow data attacks).
    pub const AI_ONLY: Expected = Expected {
        ct: false,
        cf: false,
        ai: true,
    };
}

/// Table 6 category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Return-oriented programming payloads.
    Rop,
    /// Direct system call manipulation (incl. real-world CVEs).
    Direct,
    /// Indirect system call manipulation.
    Indirect,
}

impl Category {
    /// Section heading as printed in Table 6.
    pub fn label(self) -> &'static str {
        match self {
            Category::Rop => "Return-oriented programming (ROP)",
            Category::Direct => "Direct system call manipulation",
            Category::Indirect => "Indirect system call manipulation",
        }
    }
}

/// One Table 6 attack.
pub struct Scenario {
    /// Row number (1-based, in Table 6 order).
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// The paper's citation markers for this row.
    pub citation: &'static str,
    /// Table 6 section.
    pub category: Category,
    /// Target program.
    pub victim: crate::victim::Victim,
    /// Whether the §11.2 extended sensitive set is required (AOCR-1 uses
    /// filesystem syscalls).
    pub extended_set: bool,
    /// Expected per-context verdicts from Table 6.
    pub expected: Expected,
    /// The attack payload.
    pub attack: Box<dyn Fn(&mut AttackEnv) + Send + Sync>,
    /// The malicious-effect predicate (ground truth).
    pub success: Box<dyn Fn(&AttackEnv) -> bool + Send + Sync>,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("expected", &self.expected)
            .finish()
    }
}

/// How a ret2stub payload provisions the stub's argument slots.
pub enum StubArgs {
    /// Fixed word values.
    Words(Vec<u64>),
    /// `execve(<planted string>, 0, 0)`.
    ExecvePath(&'static str),
    /// `mprotect(*<global holding a mapping>, 4096, PROT_RWX)`.
    MprotectRwx {
        /// Global variable holding the target mapping's address.
        region_global: &'static str,
    },
    /// `mmap(addr, 4096, PROT_RWX, MAP_FIXED|ANON|SHARED, -1, 0)`.
    MmapRwx {
        /// Fixed address to map.
        addr: u64,
    },
    /// `chmod(<planted path>, 0o777)`.
    Chmod(&'static str),
}

/// The classic ret2libc/ROP vehicle (paper §10.1): a worker parked in a
/// blocking `read` has the read stub's return address redirected to
/// `stub`'s entry; the stub then reads its arguments from memory the
/// attacker pre-seeded. Optionally the next return address is spoofed to
/// sit right after a *legitimate* callsite of `(spoof_func, spoof_nr)`,
/// which is how ROP payloads slip past the Call-Type check (Table 6: ×).
pub fn ret2stub(
    env: &mut AttackEnv,
    stub: &'static str,
    args: &StubArgs,
    spoof: Option<(&'static str, u32)>,
) {
    let parked = env.park();
    ret2stub_parked(env, parked, stub, args, spoof);
    env.wake(parked);
}

/// Same payload against an already-parked victim (used by the root-shell
/// scenario, which targets the accept-parked privileged listener).
pub fn ret2stub_parked(
    env: &mut AttackEnv,
    parked: Parked,
    stub: &'static str,
    args: &StubArgs,
    spoof: Option<(&'static str, u32)>,
) {
    let pid = parked.pid;
    let fp0 = env.fp_of(pid);
    let caller_fp = env.read_u64(pid, fp0);
    let words: Vec<u64> = match args {
        StubArgs::Words(w) => w.clone(),
        StubArgs::ExecvePath(p) => {
            let s = env.plant_string(pid, p);
            vec![s, 0, 0]
        }
        StubArgs::MprotectRwx { region_global } => {
            let region = env.read_u64(pid, env.sym(region_global));
            vec![region, 4096, 7]
        }
        StubArgs::MmapRwx { addr } => vec![*addr, 4096, 7, 0x31, u64::MAX, 0],
        StubArgs::Chmod(p) => {
            let s = env.plant_string(pid, p);
            vec![s, 0o777]
        }
    };
    let slots = env.stub_slots(stub, caller_fp);
    for (slot, v) in slots.iter().zip(words.iter()) {
        env.write_u64(pid, *slot, *v);
    }
    if let Some((func, nr)) = spoof {
        let site = env.syscall_site_in(func, nr);
        env.write_u64(pid, caller_fp + 8, site + CALL_SIZE);
    }
    env.write_u64(pid, fp0 + 8, env.sym(stub));
}

/// ret2func vehicle: redirect the parked read's return straight at a
/// whole function (full-function reuse) after corrupting the state it
/// consumes.
pub fn ret2func(env: &mut AttackEnv, func: &'static str, corrupt: impl Fn(&mut AttackEnv, Parked)) {
    let parked = env.park();
    corrupt(env, parked);
    let fp0 = env.fp_of(parked.pid);
    env.write_u64(parked.pid, fp0 + 8, env.sym(func));
    env.wake(parked);
}
