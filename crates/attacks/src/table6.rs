//! Table 6 evaluation: run every attack under each context in isolation
//! and compare the block matrix against the paper's.

use crate::env::{AttackEnv, Defense, RunOutcome};
use crate::scenario::{Expected, Scenario};
use bastion_monitor::ContextConfig;

/// The isolated single-context configurations the matrix is built from.
fn ct_only() -> ContextConfig {
    ContextConfig {
        call_type: true,
        control_flow: false,
        arg_integrity: false,
        fetch_state: false,
        fast_path: true,
        resilience: bastion_monitor::Resilience::default(),
        prefilter: false,
        prefilter_differential: false,
    }
}

fn cf_only() -> ContextConfig {
    ContextConfig {
        call_type: false,
        control_flow: true,
        arg_integrity: false,
        fetch_state: false,
        fast_path: true,
        resilience: bastion_monitor::Resilience::default(),
        prefilter: false,
        prefilter_differential: false,
    }
}

fn ai_only() -> ContextConfig {
    ContextConfig {
        call_type: false,
        control_flow: false,
        arg_integrity: true,
        fetch_state: false,
        fast_path: true,
        resilience: bastion_monitor::Resilience::default(),
        prefilter: false,
        prefilter_differential: false,
    }
}

/// The result of evaluating one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Row id.
    pub id: u32,
    /// Scenario name.
    pub name: String,
    /// Citation markers.
    pub citation: &'static str,
    /// Section.
    pub category: crate::scenario::Category,
    /// Paper's expected verdicts.
    pub expected: Expected,
    /// Observed verdicts (blocked under CT-only / CF-only / AI-only).
    pub observed: Expected,
    /// The unprotected ground-truth run succeeded (the attack is real).
    pub ground_truth: bool,
    /// Whether full BASTION (all three contexts) blocks it.
    pub full_blocked: bool,
    /// Per-config detail strings for diagnostics.
    pub details: Vec<String>,
}

impl ScenarioResult {
    /// Whether observed verdicts match the paper's matrix and the attack
    /// is demonstrably real.
    pub fn matches_paper(&self) -> bool {
        self.ground_truth && self.full_blocked && self.observed == self.expected
    }
}

/// Runs one attack under one configuration.
fn run_one(s: &Scenario, cfg: Option<ContextConfig>) -> RunOutcome {
    let mut env = AttackEnv::deploy(s.victim, cfg, s.extended_set, false);
    (s.attack)(&mut env);
    env.settle();
    RunOutcome {
        defense: env.defense_fired(),
        succeeded: (s.success)(&env),
    }
}

/// Evaluates a scenario: ground truth plus the three-context matrix plus
/// the full-BASTION verdict.
pub fn evaluate(s: &Scenario) -> ScenarioResult {
    let truth = run_one(s, None);
    let mut observed = Expected {
        ct: false,
        cf: false,
        ai: false,
    };
    let mut details = vec![format!(
        "unprotected: defense={:?} succeeded={}",
        truth.defense, truth.succeeded
    )];
    for (label, cfg, slot) in [
        ("CT", ct_only(), 0usize),
        ("CF", cf_only(), 1),
        ("AI", ai_only(), 2),
    ] {
        let out = run_one(s, Some(cfg));
        let blocked = out.blocked();
        match slot {
            0 => observed.ct = blocked,
            1 => observed.cf = blocked,
            _ => observed.ai = blocked,
        }
        details.push(format!(
            "{label}-only: defense={:?} succeeded={} blocked={blocked}",
            out.defense, out.succeeded
        ));
    }
    let full = run_one(s, Some(ContextConfig::full()));
    details.push(format!(
        "full: defense={:?} succeeded={}",
        full.defense, full.succeeded
    ));
    ScenarioResult {
        id: s.id,
        name: s.name.clone(),
        citation: s.citation,
        category: s.category,
        expected: s.expected,
        observed,
        ground_truth: truth.succeeded && truth.defense == Defense::None,
        full_blocked: full.blocked(),
        details,
    }
}

/// Evaluates the entire catalog.
pub fn evaluate_all() -> Vec<ScenarioResult> {
    crate::catalog::catalog().iter().map(evaluate).collect()
}

fn mark(b: bool) -> &'static str {
    if b {
        "OK"
    } else {
        "x "
    }
}

/// Renders the results as a paper-style Table 6.
pub fn render(results: &[ScenarioResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6: Real-world and synthesized exploits blocked by BASTION"
    );
    let _ = writeln!(
        out,
        "(OK = context blocks the exploit, x = exploit bypasses the context)"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<74} {:>3} {:>3} {:>3}   {:>3} {:>3} {:>3}  match",
        "Attack (category & type)", "CT", "CF", "AI", "oCT", "oCF", "oAI"
    );
    let mut last_cat = None;
    for r in results {
        if last_cat != Some(r.category) {
            let _ = writeln!(out, "--- {} ---", r.category.label());
            last_cat = Some(r.category);
        }
        let _ = writeln!(
            out,
            "{:<74} {:>3} {:>3} {:>3}   {:>3} {:>3} {:>3}  {}",
            format!("{} {}", r.name, r.citation),
            mark(r.expected.ct),
            mark(r.expected.cf),
            mark(r.expected.ai),
            mark(r.observed.ct),
            mark(r.observed.cf),
            mark(r.observed.ai),
            if r.matches_paper() { "yes" } else { "NO" },
        );
    }
    let ok = results.iter().filter(|r| r.matches_paper()).count();
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{ok}/{} rows match the paper's matrix; all attacks verified live against unprotected victims.",
        results.len()
    );
    out
}
