//! Seeded adversarial MiniC program generator.
//!
//! Where [`crate::catalog`] replays the paper's 32 hand-written exploits
//! against the workload victims, this module *synthesizes* self-contained
//! attack programs: each generated source compiles under the full BASTION
//! pipeline and then attacks the monitor from the inside — computing dark
//! stub addresses arithmetically, smashing its own frame chain, or
//! corrupting shadow-bound locals through alias pointers the SensitiveOnly
//! instrumentation cannot see.
//!
//! Every program belongs to a **family** keyed by the deny-rule it is
//! engineered to trigger (`seccomp.kill`, `CT:not_indirectly_callable`,
//! `CF:return_not_after_call`, `AI:corrupted_after_bind`, ...). The
//! acceptance bar mirrors the chaos harness: a generated program must be
//! *denied* (or seccomp-killed) under full protection while its malicious
//! effect *does* land on an unprotected run — a program whose effect lands
//! under protection is a flip-to-Allow, the one outcome the corpus
//! regression must never contain.
//!
//! The generator is deterministic per seed. [`shrink`] minimizes a program
//! line-by-line while preserving its `(verdict, ground-truth)` pair, and
//! the checked-in regression corpus under `crates/attacks/corpus/` holds
//! one shrunk witness per deny-rule family (see [`corpus`]).

use bastion_compiler::BastionCompiler;
use bastion_ir::sysno;
use bastion_kernel::{ExitReason, World};
use bastion_monitor::ContextConfig;
use bastion_vm::{CostModel, Image, Machine};

// ---- deterministic rng ----

/// xorshift64* — the same tiny generator the chaos fault injector uses;
/// good enough for parameter jitter and filler synthesis.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator (zero is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit draw.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

// ---- program families ----

/// One synthesized attack program.
#[derive(Debug, Clone)]
pub struct AttackProgram {
    /// Family label, e.g. `"cf-ret-junk"`.
    pub family: &'static str,
    /// The deny outcome the family is engineered to trigger
    /// (`"seccomp"`, or a `"CT:"`/`"CF:"`/`"AI:"` reason fragment).
    pub expect: &'static str,
    /// The seed the parameters were drawn from.
    pub seed: u64,
    /// MiniC source text.
    pub source: String,
}

/// A family descriptor: a name, the expected defense, and a seeded
/// source builder.
pub struct Family {
    /// Family label (also the corpus file stem).
    pub name: &'static str,
    /// Expected defense fragment (matched against [`Verdict::key`]).
    pub expect: &'static str,
    build: fn(&mut Rng) -> String,
}

impl std::fmt::Debug for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Family")
            .field("name", &self.name)
            .field("expect", &self.expect)
            .finish_non_exhaustive()
    }
}

/// The `(&i)[i]` introspection helper every frame-chain family links in:
/// `probe(1)` is the caller's frame pointer, `probe(2)` the return
/// address into the caller. MiniC spills parameters to the frame, so the
/// parameter's address anchors the frame geometry exactly.
const PROBE: &str = "long probe(long i) {\n    return (&i)[i];\n}\n";

/// Benign filler: arithmetic noise the shrinker is expected to delete.
fn filler(rng: &mut Rng, lines: &mut Vec<String>) {
    for _ in 0..rng.below(4) {
        let v = rng.below(900) + 17;
        match rng.below(3) {
            0 => lines.push(format!("    acc = acc + {v};")),
            1 => lines.push(format!("    acc = acc * 3 + {v};")),
            _ => lines.push(format!("    acc = acc - {v};")),
        }
    }
}

fn prelude(rng: &mut Rng) -> Vec<String> {
    let mut l = vec![
        "long main() {".to_string(),
        "    long acc;".to_string(),
        "    acc = 1;".to_string(),
    ];
    filler(rng, &mut l);
    l
}

/// Dark-stub dial: every syscall stub is laid out consecutively in
/// `sysno::ALL` order, so the address of a *never-referenced* stub is
/// computable from referenced neighbours: stubs of equal arity have equal
/// size, and `kill - wait4` / `nanosleep - dup` are the 4-argument and
/// 1-argument stub pitches. The target stub stays out of the call graph
/// entirely — not-callable — so the synthesized call dies in seccomp.
fn darkstub(rng: &mut Rng) -> String {
    // ptrace(4 args) is immediately followed by setuid, setgid, setreuid
    // (all 1 arg) in ALL order.
    let hops = rng.below(3); // 0 → setuid, 1 → setgid, 2 → setreuid
    let mut l = prelude(rng);
    l.push("    fnptr base;".to_string());
    l.push("    long pitch4;".to_string());
    l.push("    long pitch1;".to_string());
    l.push("    fnptr target;".to_string());
    l.push("    base = ptrace;".to_string());
    l.push("    pitch4 = kill - wait4;".to_string());
    l.push("    pitch1 = nanosleep - dup;".to_string());
    filler(rng, &mut l);
    l.push(format!("    target = base + pitch4 + {hops} * pitch1;"));
    l.push("    acc = target(0);".to_string());
    l.push("    return acc;".to_string());
    l.push("}".to_string());
    l.join("\n")
}

/// A dead, never-taken direct call classifies `execve` direct-only; the
/// live path reaches the stub through a *computed* address (the stub was
/// never address-taken, so indirect entry is illegal): CT
/// `not_indirectly_callable`.
fn ct_indirect(rng: &mut Rng) -> String {
    let mut l = vec!["long never_taken;".to_string()];
    l.extend(prelude(rng));
    l.push("    fnptr e;".to_string());
    l.push("    long fd;".to_string());
    l.push("    fd = open(\"/tmp/payload\", 0x42, 420);".to_string());
    l.push("    close(fd);".to_string());
    l.push("    acc = chmod(\"/tmp/payload\", 493);".to_string());
    l.push("    if (never_taken) { acc = execve(\"/tmp/payload\", 0, 0); }".to_string());
    filler(rng, &mut l);
    // vfork(0 args) is immediately followed by execve; getuid → ptrace is
    // the 0-argument stub pitch.
    l.push("    e = vfork + (ptrace - getuid);".to_string());
    l.push("    acc = e(\"/tmp/payload\", 0, 0);".to_string());
    l.push("    return acc;".to_string());
    l.push("}".to_string());
    l.join("\n")
}

/// Shared scaffolding for the frame-smash families: `smash` receives the
/// attacker function's own frame pointer as `q` (so `q[0]` is the saved
/// fp slot and `q[1]` the return-address slot) and corrupts it before the
/// sensitive call fires the stack walk.
fn cf_smash(rng: &mut Rng, extra_globals: &str, setup: &[String], smash: &[String]) -> String {
    let mut l = vec![extra_globals.to_string(), PROBE.to_string()];
    l.push("long attack(long mode) {".to_string());
    l.push("    long *q;".to_string());
    l.push("    long r;".to_string());
    l.push("    q = probe(1);".to_string());
    for s in smash {
        l.push(format!("    {s}"));
    }
    l.push("    r = chmod(\"/tmp/victim\", mode);".to_string());
    l.push("    return r;".to_string());
    l.push("}".to_string());
    l.extend(prelude(rng));
    l.push("    long fd;".to_string());
    l.push("    fd = open(\"/tmp/victim\", 0x42, 420);".to_string());
    l.push("    close(fd);".to_string());
    for s in setup {
        l.push(format!("    {s}"));
    }
    filler(rng, &mut l);
    l.push("    acc = attack(511);".to_string());
    l.push("    return acc;".to_string());
    l.push("}".to_string());
    l.join("\n")
}

/// Return address replaced by a non-callsite constant: CF
/// `return_not_after_call`.
fn cf_ret_junk(rng: &mut Rng) -> String {
    let junk = 0x5_0000 + rng.below(0x4000) * 8;
    cf_smash(rng, "", &[], &[format!("q[1] = {junk:#x};")])
}

/// Return address nulled: the walk bottoms out in `attack`, not `main`:
/// CF `bottom_not_main`.
fn cf_ret_null(rng: &mut Rng) -> String {
    cf_smash(rng, "", &[], &["q[1] = 0;".to_string()])
}

/// Saved frame pointer redirected to unmapped memory: the next frame
/// head is unreadable: CF `frame_unreadable`.
fn cf_fp_unmapped(rng: &mut Rng) -> String {
    let wild = 0x7f00_0000_0000u64 + rng.below(0x1000) * 0x1000;
    cf_smash(rng, "", &[], &[format!("q[0] = {wild:#x};")])
}

/// Return address replayed from a *different* direct callsite (the call
/// to `probe`): the callsite's target disagrees with the unwound callee:
/// CF `callee_mismatch`.
fn cf_callee_mismatch(rng: &mut Rng) -> String {
    cf_smash(rng, "", &[], &["q[1] = probe(2);".to_string()])
}

/// Return address replayed from an indirect callsite while `attack` was
/// never address-taken: CF `illegal_indirect_entry`. `grab` records its
/// own return address (which lands just after main's indirect call).
fn cf_indirect_entry(rng: &mut Rng) -> String {
    let globals = "long ind_ret;\nlong grab(long a) {\n    long *w;\n    w = probe(1);\n    ind_ret = w[1];\n    return a;\n}\n";
    cf_smash(
        rng,
        globals,
        &[
            "fnptr g;".to_string(),
            "g = grab;".to_string(),
            "acc = g(acc);".to_string(),
        ],
        &["q[1] = ind_ret;".to_string()],
    )
}

/// Honest recursion deeper than the monitor's 128-frame unwind budget —
/// walk exhaustion instead of corruption: CF `depth_limit_exceeded`.
fn cf_depth_limit(rng: &mut Rng) -> String {
    let depth = 132 + rng.below(48);
    let mut l = vec![
        "long dive(long n) {".to_string(),
        "    if (n <= 0) { return chmod(\"/tmp/victim\", 511); }".to_string(),
        "    return dive(n - 1);".to_string(),
        "}".to_string(),
    ];
    l.extend(prelude(rng));
    l.push("    long fd;".to_string());
    l.push("    fd = open(\"/tmp/victim\", 0x42, 420);".to_string());
    l.push("    close(fd);".to_string());
    filler(rng, &mut l);
    l.push(format!("    acc = dive({depth});"));
    l.push("    return acc;".to_string());
    l.push("}".to_string());
    l.join("\n")
}

/// The shadow-bound `mode` local is corrupted through an alias pointer
/// derived from the *neighbouring* slot (no `&mode` anywhere, so the
/// binding survives and the deref store is invisible to SensitiveOnly
/// instrumentation): the trapped register disagrees with the shadow: AI
/// `shadow_value_mismatch`.
fn ai_stale_mode(rng: &mut Rng) -> String {
    let mut l = prelude(rng);
    l.push("    long fd;".to_string());
    l.push("    long decoy;".to_string());
    l.push("    long mode;".to_string());
    l.push("    long *p;".to_string());
    l.push("    fd = open(\"/tmp/victim\", 0x42, 420);".to_string());
    l.push("    close(fd);".to_string());
    l.push("    decoy = 7;".to_string());
    l.push("    mode = 448;".to_string());
    filler(rng, &mut l);
    l.push("    p = &decoy;".to_string());
    l.push("    p[1] = 511;".to_string());
    l.push("    acc = chmod(\"/tmp/victim\", mode);".to_string());
    l.push("    return acc;".to_string());
    l.push("}".to_string());
    l.join("\n")
}

/// The corruption lands *after* the argument register is loaded but
/// before the trap: the register still matches the shadow, the variable's
/// memory does not — the §6.3.2 TOCTOU window: AI `corrupted_after_bind`.
fn ai_toctou(rng: &mut Rng) -> String {
    let big = 0x40000 + rng.below(16) * 0x1000;
    let mut l = vec![
        "long poison(long *d, long v) {".to_string(),
        "    d[1] = v;".to_string(),
        "    return 5;".to_string(),
        "}".to_string(),
    ];
    l.extend(prelude(rng));
    l.push("    long arena;".to_string());
    l.push("    long decoy;".to_string());
    l.push("    long len;".to_string());
    l.push("    arena = mmap(0, 4096, 3, 0x22, 0 - 1, 0);".to_string());
    l.push("    decoy = 0;".to_string());
    l.push("    len = 4096;".to_string());
    filler(rng, &mut l);
    // Argument order: `len` is loaded before `poison` rewrites its slot.
    l.push(format!(
        "    acc = mprotect(arena, len, poison(&decoy, {big:#x}));"
    ));
    l.push("    acc = mprotect(arena, len, 7);".to_string());
    l.push("    return acc;".to_string());
    l.push("}".to_string());
    l.join("\n")
}

/// Figure-2 shape: `main` binds the sensitive `prot` and passes it down;
/// the callee corrupts the *caller's* bound slot through an alias before
/// trapping, so the up-stack propagation-site check sees memory disagree
/// with the shadow: AI `sensitive_var_corrupted`.
fn ai_propsite(rng: &mut Rng) -> String {
    let mut l = vec![
        "long do_mp(long a, long l, long p, long *alias) {".to_string(),
        "    alias[1] = 7;".to_string(),
        "    return mprotect(a, l, p);".to_string(),
        "}".to_string(),
    ];
    l.extend(prelude(rng));
    l.push("    long arena;".to_string());
    l.push("    long decoy;".to_string());
    l.push("    long prot;".to_string());
    l.push("    arena = mmap(0, 4096, 3, 0x22, 0 - 1, 0);".to_string());
    l.push("    decoy = 0;".to_string());
    l.push("    prot = 5;".to_string());
    filler(rng, &mut l);
    l.push("    acc = do_mp(arena, 4096, prot, &decoy);".to_string());
    l.push("    acc = mprotect(arena, 4096, prot);".to_string());
    l.push("    return acc;".to_string());
    l.push("}".to_string());
    l.join("\n")
}

/// All generator families, in corpus order.
pub const FAMILIES: &[Family] = &[
    Family {
        name: "seccomp-darkstub",
        expect: "seccomp",
        build: darkstub,
    },
    Family {
        name: "ct-indirect-execve",
        expect: "CT:not_indirectly_callable",
        build: ct_indirect,
    },
    Family {
        name: "cf-ret-junk",
        expect: "CF:return_not_after_call",
        build: cf_ret_junk,
    },
    Family {
        name: "cf-ret-null",
        expect: "CF:bottom_not_main",
        build: cf_ret_null,
    },
    Family {
        name: "cf-fp-unmapped",
        expect: "CF:frame_unreadable",
        build: cf_fp_unmapped,
    },
    Family {
        name: "cf-callee-mismatch",
        expect: "CF:callee_mismatch",
        build: cf_callee_mismatch,
    },
    Family {
        name: "cf-indirect-entry",
        expect: "CF:illegal_indirect_entry",
        build: cf_indirect_entry,
    },
    Family {
        name: "cf-depth-limit",
        expect: "CF:depth_limit_exceeded",
        build: cf_depth_limit,
    },
    Family {
        name: "ai-stale-mode",
        expect: "AI:shadow_value_mismatch",
        build: ai_stale_mode,
    },
    Family {
        name: "ai-toctou-len",
        expect: "AI:corrupted_after_bind",
        build: ai_toctou,
    },
    Family {
        name: "ai-propsite",
        expect: "AI:sensitive_var_corrupted",
        build: ai_propsite,
    },
];

/// The seeded generator: deterministically emits attack programs across
/// the family table.
#[derive(Debug)]
pub struct Generator {
    rng: Rng,
    next_family: usize,
}

impl Generator {
    /// A generator whose whole output is a pure function of `seed`.
    pub fn new(seed: u64) -> Generator {
        Generator {
            rng: Rng::new(seed),
            next_family: 0,
        }
    }

    /// Generates one program from an explicit family.
    pub fn program(&mut self, family: &Family) -> AttackProgram {
        let seed = self.rng.0;
        AttackProgram {
            family: family.name,
            expect: family.expect,
            seed,
            source: (family.build)(&mut self.rng),
        }
    }

    /// Generates `n` programs round-robin across all families.
    pub fn batch(&mut self, n: usize) -> Vec<AttackProgram> {
        (0..n)
            .map(|_| {
                let fam = &FAMILIES[self.next_family % FAMILIES.len()];
                self.next_family += 1;
                self.program(fam)
            })
            .collect()
    }
}

// ---- execution + classification ----

/// How a generated program's run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Ran to completion (or idled out) with no defense firing.
    Benign,
    /// seccomp killed the process (dark syscall, not-callable).
    Seccomp {
        /// The killed syscall number.
        nr: u32,
    },
    /// The monitor denied a trap; `rule` is the structured deny-rule name
    /// (e.g. `"CF:return_not_after_call"`).
    Denied {
        /// `"<ctx>:<rule_name>"` from the monitor's deny log.
        rule: String,
    },
    /// The program crashed on a hardware fault before any defense fired.
    Crashed(String),
    /// It failed to compile (generator bug, not an attack outcome).
    Rejected(String),
}

impl Verdict {
    /// Canonical comparison key: `"seccomp"`, `"CT:rule"`, `"benign"`, ...
    pub fn key(&self) -> String {
        match self {
            Verdict::Benign => "benign".into(),
            Verdict::Seccomp { .. } => "seccomp".into(),
            Verdict::Denied { rule } => rule.clone(),
            Verdict::Crashed(_) => "crash".into(),
            Verdict::Rejected(_) => "rejected".into(),
        }
    }

    /// Whether a defense (seccomp or monitor) stopped the program.
    pub fn stopped(&self) -> bool {
        matches!(self, Verdict::Seccomp { .. } | Verdict::Denied { .. })
    }
}

/// Outcome of one generated-program run.
#[derive(Debug, Clone)]
pub struct GenReport {
    /// Defense classification.
    pub verdict: Verdict,
    /// Whether the program's malicious effect landed in the kernel.
    pub effect: bool,
}

impl GenReport {
    /// The one unacceptable outcome: the malicious effect landed while
    /// the run was classified benign (protection flipped to Allow).
    pub fn flipped_to_allow(&self) -> bool {
        self.effect && !self.verdict.stopped()
    }
}

/// The generic malicious-effect predicate shared by all families: a
/// privilege-escalation syscall ran, an `execve` landed, a world-writable
/// chmod landed, or writable+executable memory appeared.
fn effect(world: &World) -> bool {
    let k = &world.kernel;
    k.count_of(sysno::SETUID) > 0
        || k.count_of(sysno::SETGID) > 0
        || k.count_of(sysno::SETREUID) > 0
        || !k.exec_log.is_empty()
        || k.chmod_log.iter().any(|(_, m)| *m == 511)
        || k.mprotect_log
            .iter()
            .any(|(_, _, _, prot)| prot & 0b110 == 0b110)
        || world.procs.iter().any(|p| p.has_wx_mapping())
}

/// Compiles and runs one MiniC source, protected (`Some(cfg)`) or as the
/// unprotected ground-truth run (`None`), and classifies the outcome.
pub fn run_source(source: &str, cfg: Option<ContextConfig>) -> GenReport {
    let module = match bastion_minic::compile_program("generated", &[source]) {
        Ok(m) => m,
        Err(e) => {
            return GenReport {
                verdict: Verdict::Rejected(e.to_string()),
                effect: false,
            }
        }
    };
    let out = match BastionCompiler::new().compile(module) {
        Ok(o) => o,
        Err(e) => {
            return GenReport {
                verdict: Verdict::Rejected(e.to_string()),
                effect: false,
            }
        }
    };
    let image = match Image::load(out.module) {
        Ok(i) => std::sync::Arc::new(i),
        Err(e) => {
            return GenReport {
                verdict: Verdict::Rejected(format!("{e:?}")),
                effect: false,
            }
        }
    };
    let mut world = World::new(CostModel::default());
    let machine = Machine::new(image.clone(), CostModel::default());
    let pid = world.spawn(machine);
    let protected = cfg.is_some();
    if let Some(cfg) = cfg {
        bastion_monitor::protect(&mut world, pid, &image, &out.metadata, cfg);
    }
    world.run(2_000_000_000);
    let eff = effect(&world);
    let exit = world.procs.iter().find_map(|p| p.exit.clone());
    let verdict = match exit {
        Some(ExitReason::SeccompKill { nr }) => Verdict::Seccomp { nr },
        Some(ExitReason::MonitorKill { reason, .. }) => {
            // Prefer the structured deny log over string-parsing the
            // rendered reason; fall back to the rendered prefix.
            let rule = if protected {
                world.take_tracer().and_then(|t| {
                    t.as_any()
                        .downcast_ref::<bastion_monitor::Monitor>()
                        .and_then(|m| {
                            m.deny_log
                                .last()
                                .map(|r| format!("{}:{}", r.context.label(), r.rule.name()))
                        })
                })
            } else {
                None
            };
            Verdict::Denied {
                rule: rule
                    .unwrap_or_else(|| reason.split(':').next().unwrap_or("?").trim().to_string()),
            }
        }
        Some(ExitReason::Fault(f)) => Verdict::Crashed(f.to_string()),
        Some(ExitReason::Exited(_)) | None => Verdict::Benign,
    };
    GenReport {
        verdict,
        effect: eff,
    }
}

/// Runs a program under full BASTION protection.
pub fn run_protected(source: &str) -> GenReport {
    run_source(source, Some(ContextConfig::full()))
}

/// Ground-truth run: no seccomp, no monitor. A real attack program must
/// land its effect here.
pub fn ground_truth(source: &str) -> GenReport {
    run_source(source, None)
}

// ---- shrinking ----

/// Greedy line-based shrinking: repeatedly try deleting each line (bottom
/// up, skipping braces) and keep any deletion that preserves both the
/// protected verdict key and the unprotected ground truth. Deterministic;
/// terminates at a 1-minimal program for this deletion grammar.
pub fn shrink(program: &AttackProgram) -> AttackProgram {
    let baseline = run_protected(&program.source).verdict.key();
    let truth = ground_truth(&program.source).effect;
    let mut lines: Vec<String> = program.source.lines().map(str::to_string).collect();
    loop {
        let mut changed = false;
        let mut i = lines.len();
        while i > 0 {
            i -= 1;
            let t = lines[i].trim();
            if t.is_empty() || t == "{" || t == "}" || t.ends_with('{') {
                continue;
            }
            let mut candidate = lines.clone();
            candidate.remove(i);
            let src = candidate.join("\n");
            let rep = run_protected(&src);
            if rep.verdict.key() == baseline && ground_truth(&src).effect == truth {
                lines = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    AttackProgram {
        source: lines.join("\n"),
        ..program.clone()
    }
}

// ---- regression corpus ----

/// The checked-in regression corpus: one shrunk witness per deny-rule
/// family, `(family-name, expected-defense, source)`. Regenerate with the
/// ignored `regenerate_corpus` test in this module.
pub fn corpus() -> Vec<(&'static str, &'static str, &'static str)> {
    macro_rules! entry {
        ($fam:literal) => {
            (
                $fam,
                FAMILIES
                    .iter()
                    .find(|f| f.name == $fam)
                    .expect("corpus family exists")
                    .expect,
                include_str!(concat!("../corpus/", $fam, ".mc")),
            )
        };
    }
    vec![
        entry!("seccomp-darkstub"),
        entry!("ct-indirect-execve"),
        entry!("cf-ret-junk"),
        entry!("cf-ret-null"),
        entry!("cf-fp-unmapped"),
        entry!("cf-callee-mismatch"),
        entry!("cf-indirect-entry"),
        entry!("cf-depth-limit"),
        entry!("ai-stale-mode"),
        entry!("ai-toctou-len"),
        entry!("ai-propsite"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = Generator::new(42).batch(FAMILIES.len());
        let b = Generator::new(42).batch(FAMILIES.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.family, y.family);
        }
    }

    #[test]
    fn every_family_is_stopped_and_really_attacks() {
        let mut g = Generator::new(7);
        for prog in g.batch(FAMILIES.len()) {
            let protected = run_protected(&prog.source);
            assert!(
                protected.verdict.stopped(),
                "{} not stopped: {:?}",
                prog.family,
                protected.verdict
            );
            assert!(
                !protected.flipped_to_allow(),
                "{} flipped to Allow",
                prog.family
            );
            assert_eq!(
                protected.verdict.key(),
                prog.expect,
                "{} fired the wrong rule",
                prog.family
            );
            let truth = ground_truth(&prog.source);
            assert!(truth.effect, "{} has no unprotected effect", prog.family);
        }
    }

    /// Regenerates `crates/attacks/corpus/*.mc`. Run manually:
    /// `cargo test -p bastion-attacks regenerate_corpus -- --ignored`
    #[test]
    #[ignore = "writes the checked-in corpus files"]
    fn regenerate_corpus() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
        std::fs::create_dir_all(dir).unwrap();
        let mut g = Generator::new(0x0BA5_710E);
        for fam in FAMILIES {
            let prog = shrink(&g.program(fam));
            let header = format!(
                "// family: {} | expect: {} | seed: {:#x}\n// generated by bastion-attacks::generate, shrunk; do not hand-edit\n",
                prog.family, prog.expect, prog.seed
            );
            std::fs::write(
                format!("{dir}/{}.mc", fam.name),
                format!("{header}{}\n", prog.source),
            )
            .unwrap();
        }
    }
}
