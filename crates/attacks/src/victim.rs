//! Victim programs the Table 6 attacks run against.
//!
//! Three are the evaluation applications themselves (webserve built with a
//! reduced worker count so attack runs boot quickly); the fourth,
//! [`APACHED`], is an Apache-shaped victim whose `exec` is legitimately
//! reachable through an *indirect* call — the property the AOCR Apache
//! attack needs and which none of the three paper applications has
//! (Table 5 row 5).

use bastion_apps::App;
use bastion_ir::Module;
use bastion_kernel::World;

/// The Apache-shaped victim (AOCR Apache attack, §10.3).
///
/// `ap_get_exec_line` invokes `execve` through the `exec_fn` code pointer
/// (so `execve` is *indirectly-callable* in this image), and requests are
/// dispatched through the corruptible `handlers` table.
pub const APACHED: &str = r#"
// ---- apached: Apache-shaped victim with an indirect exec path ----

char legit_cmd[32];
fnptr exec_fn;
struct req_handler { fnptr fn; };
struct req_handler handlers[2];

long ap_get_exec_line(long cmd, long unused) {
    // Legitimate indirect invocation of execve through a code pointer.
    return exec_fn(cmd, 0, 0);
}

long h_status(long a, long b) { return a + b; }
long h_info(long a, long b) { return a - b; }

long dispatch(long idx, char *arg) {
    return handlers[idx & 1].fn(arg, 7);
}

void serve(long conn) {
    char buf[128];
    long n;
    long r;
    n = read(conn, buf, 127);
    if (n <= 0) { return; }
    buf[n] = 0;
    r = dispatch(buf[0] - '0', buf + 2);
    char out[32];
    char num[24];
    strcpy(out, "R ");
    itoa(r, num);
    strcat(out, num);
    strcat(out, "\n");
    write(conn, out, strlen(out));
}

long main() {
    long listener;
    long sa[2];
    long conn;

    strcpy(legit_cmd, "/usr/bin/uptime");
    exec_fn = execve;
    handlers[0].fn = h_status;
    handlers[1].fn = h_info;

    listener = socket(2, 1, 0);
    sa[0] = 2 | 8088 * 65536;
    bind(listener, sa, 16);
    listen(listener, 16);
    while (1) {
        conn = accept(listener, 0, 0);
        if (conn < 0) { continue; }
        serve(conn);
        close(conn);
    }
    return 0;
}
"#;

/// Which program an attack scenario targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Victim {
    /// The NGINX analogue (built with 2 workers for fast attack runs).
    Webserve,
    /// The SQLite analogue.
    Dbkv,
    /// The vsftpd analogue.
    Ftpd,
    /// The Apache-shaped victim above.
    Apached,
}

impl Victim {
    /// Compiles the victim's module (uninstrumented; the attack env runs
    /// it through the BASTION compiler).
    ///
    /// # Panics
    /// Panics if the shipped source fails to compile.
    pub fn module(self) -> Module {
        match self {
            Victim::Webserve => {
                // 2 workers keep attack-run boot fast; everything else is
                // identical to the benchmark build.
                let src = bastion_apps::webserve::SOURCE.replace(
                    "for (i = 0; i < 32; i = i + 1) {",
                    "for (i = 0; i < 2; i = i + 1) {",
                );
                bastion_minic::compile_program("webserve", &[&src]).expect("webserve compiles")
            }
            Victim::Dbkv => App::Dbkv.module().expect("dbkv compiles"),
            Victim::Ftpd => App::Ftpd.module().expect("ftpd compiles"),
            Victim::Apached => {
                bastion_minic::compile_program("apached", &[APACHED]).expect("apached compiles")
            }
        }
    }

    /// The listener port.
    pub fn port(self) -> u16 {
        match self {
            Victim::Webserve => App::Webserve.port(),
            Victim::Dbkv => App::Dbkv.port(),
            Victim::Ftpd => App::Ftpd.port(),
            Victim::Apached => 8088,
        }
    }

    /// VFS fixtures, including the attacker's would-be payloads (so
    /// ground-truth runs can actually "succeed").
    pub fn setup(self, world: &mut World) {
        match self {
            Victim::Webserve => App::Webserve.setup_vfs(world),
            Victim::Dbkv => App::Dbkv.setup_vfs(world),
            Victim::Ftpd => App::Ftpd.setup_vfs(world),
            Victim::Apached => {
                world
                    .kernel
                    .vfs
                    .put_file("/usr/bin/uptime", vec![0x7f], 0o755);
            }
        }
        // Attacker payloads present on disk for every victim.
        world.kernel.vfs.put_file("/bin/sh", vec![0x7f], 0o755);
        world.kernel.vfs.put_file("/tmp/ev", vec![0x7f], 0o755);
        world.kernel.vfs.put_file("/tmp/evil", vec![0x7f], 0o755);
        world.kernel.vfs.put_file("/tmp/rootkit", vec![0x7f], 0o755);
        world
            .kernel
            .vfs
            .put_file("/etc/shadow", b"secrets".to_vec(), 0o600);
    }

    /// A priming request that makes one worker serve us and then park in
    /// a keep-alive read (`None` = connect alone is enough).
    pub fn priming(self) -> Option<&'static [u8]> {
        match self {
            Victim::Webserve => Some(b"GET /index.html HTTP/1.1\r\nHost: pwn\r\n\r\n"),
            Victim::Dbkv => Some(b"STOCK 1\n"),
            // ftpd/apached park in read right after accept.
            Victim::Ftpd | Victim::Apached => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_victims_compile() {
        for v in [
            Victim::Webserve,
            Victim::Dbkv,
            Victim::Ftpd,
            Victim::Apached,
        ] {
            let m = v.module();
            assert!(m.func_by_name("main").is_some(), "{v:?}");
        }
    }

    #[test]
    fn apached_exec_is_indirectly_callable() {
        use bastion_analysis::{CallGraph, CallTypeReport};
        let m = Victim::Apached.module();
        let cg = CallGraph::build(&m);
        let ct = CallTypeReport::build(&m, &cg);
        let class = ct.class_of(bastion_ir::sysno::EXECVE);
        // Indirect via exec_fn; also direct via libc's system() — `Both`.
        assert!(class.allows_indirect(), "{class:?}");
    }

    #[test]
    fn webserve_victim_has_reduced_workers() {
        let m = Victim::Webserve.module();
        // Compiles identically except the worker loop bound.
        assert!(m.func_by_name("ngx_execute_proc").is_some());
        assert!(m.func_by_name("h_admin").is_some());
    }
}
