//! The Table 6 attack catalog: 32 real-world and synthesized exploits.
//!
//! Every scenario is an executable payload against one of the victim
//! programs, with Table 6's expected per-context verdict attached. The
//! citation markers mirror the paper's reference numbers.

use crate::env::AttackEnv;
use crate::scenario::{
    ret2func, ret2stub, ret2stub_parked, Category, Expected, Scenario, StubArgs,
};
use crate::victim::Victim;
use bastion_ir::sysno;

/// Field offset of `g_exec_ctx.path` (webserve).
const EXEC_CTX_PATH: u64 = 0;
/// Field offset of `out_chain.output_filter` (webserve).
const OUT_CHAIN_FILTER: u64 = 0;
/// Element size of the `vh` handler table (webserve).
const VH_ELEM: u64 = 16;

#[allow(clippy::too_many_arguments)] // a table row, not an API
fn rop(
    id: u32,
    name: &str,
    citation: &'static str,
    victim: Victim,
    stub: &'static str,
    args: StubArgs,
    spoof: Option<(&'static str, u32)>,
    success: Box<dyn Fn(&AttackEnv) -> bool + Send + Sync>,
) -> Scenario {
    Scenario {
        id,
        name: name.to_string(),
        citation,
        category: Category::Rop,
        victim,
        extended_set: false,
        expected: Expected::CF_AI,
        attack: Box::new(move |env| ret2stub(env, stub, &args, spoof)),
        success,
    }
}

/// A CVE-style corruption reaching a syscall the victim never uses
/// (not-callable): blocked by every context (✓✓✓).
fn cve(
    id: u32,
    name: &str,
    citation: &'static str,
    victim: Victim,
    stub: &'static str,
    nr: u32,
    args: StubArgs,
) -> Scenario {
    Scenario {
        id,
        name: name.to_string(),
        citation,
        category: Category::Direct,
        victim,
        extended_set: false,
        expected: Expected::ALL,
        attack: Box::new(move |env| {
            env.note("baseline", env.world.kernel.count_of(nr));
            ret2stub(env, stub, &args, None);
        }),
        success: Box::new(move |env| env.syscall_ran_since(nr, env.noted("baseline"))),
    }
}

/// Builds the full 32-attack catalog in Table 6 order.
pub fn catalog() -> Vec<Scenario> {
    let mut v: Vec<Scenario> = Vec::with_capacity(32);

    // ---- ROP: execute user command (13 payload variants) ----
    v.push(rop(
        1,
        "ROP: ret2execve, \"/bin/sh\" on the stack (webserve)",
        "[1]",
        Victim::Webserve,
        "execve",
        StubArgs::ExecvePath("/bin/sh"),
        None,
        Box::new(|env| env.execve_happened("/bin/sh")),
    ));
    v.push(rop(
        2,
        "ROP: ret2execve, attacker binary (webserve)",
        "[3]",
        Victim::Webserve,
        "execve",
        StubArgs::ExecvePath("/tmp/evil"),
        None,
        Box::new(|env| env.execve_happened("/tmp/evil")),
    ));
    v.push(Scenario {
        id: 3,
        name: "ROP: ret2system after corrupting libc's shell path (webserve)".into(),
        citation: "[5]",
        category: Category::Rop,
        victim: Victim::Webserve,
        extended_set: false,
        expected: Expected::CF_AI,
        attack: Box::new(|env| {
            let parked = env.park();
            // Redirect libc's "/bin/sh" constant to the attacker binary,
            // then return into system() with any argument.
            env.write_bytes(parked.pid, env.sym("system_shell"), b"/tmp/ev\0");
            // Rewrite again with the full path: system_shell is 8 bytes, so
            // plant the real path elsewhere is impossible — use the 8-byte
            // budget ("/tmp/ev").
            ret2stub_parked(env, parked, "system", &StubArgs::Words(vec![0]), None);
            env.wake(parked);
        }),
        success: Box::new(|env| env.execve_happened("/tmp/ev")),
    });
    v.push(Scenario {
        id: 4,
        name: "ROP: full-function reuse of ngx_execute_proc with corrupted exec_ctx (webserve)"
            .into(),
        citation: "[7]",
        category: Category::Rop,
        victim: Victim::Webserve,
        extended_set: false,
        expected: Expected::CF_AI,
        attack: Box::new(|env| {
            ret2func(env, "ngx_execute_proc", |env, parked| {
                let evil = env.plant_string(parked.pid, "/tmp/evil");
                let ctx = env.sym("g_exec_ctx");
                env.write_u64(parked.pid, ctx + EXEC_CTX_PATH, evil);
            });
        }),
        success: Box::new(|env| env.execve_happened("/tmp/evil")),
    });
    v.push(rop(
        5,
        "ROP: ret2execve spoofing system()'s execve callsite (webserve)",
        "[8]",
        Victim::Webserve,
        "execve",
        StubArgs::ExecvePath("/tmp/evil"),
        Some(("system", sysno::EXECVE)),
        Box::new(|env| env.execve_happened("/tmp/evil")),
    ));
    v.push(rop(
        6,
        "ROP: ret2execve with crafted argv array (webserve)",
        "[13]",
        Victim::Webserve,
        "execve",
        StubArgs::ExecvePath("/bin/sh"),
        None,
        Box::new(|env| env.execve_happened("/bin/sh")),
    ));
    v.push(rop(
        7,
        "ROP: ret2execve, \"/bin/sh\" on the stack (dbkv)",
        "[15]",
        Victim::Dbkv,
        "execve",
        StubArgs::ExecvePath("/bin/sh"),
        None,
        Box::new(|env| env.execve_happened("/bin/sh")),
    ));
    v.push(Scenario {
        id: 8,
        name: "ROP: ret2system after corrupting libc's shell path (dbkv)".into(),
        citation: "[16]",
        category: Category::Rop,
        victim: Victim::Dbkv,
        extended_set: false,
        expected: Expected::CF_AI,
        attack: Box::new(|env| {
            let parked = env.park();
            env.write_bytes(parked.pid, env.sym("system_shell"), b"/tmp/ev\0");
            ret2stub_parked(env, parked, "system", &StubArgs::Words(vec![0]), None);
            env.wake(parked);
        }),
        success: Box::new(|env| env.execve_happened("/tmp/ev")),
    });
    v.push(rop(
        9,
        "ROP: ret2execve spoofing system()'s execve callsite (dbkv)",
        "[17]",
        Victim::Dbkv,
        "execve",
        StubArgs::ExecvePath("/tmp/evil"),
        Some(("system", sysno::EXECVE)),
        Box::new(|env| env.execve_happened("/tmp/evil")),
    ));
    v.push(rop(
        10,
        "ROP: ret2execve, \"/bin/sh\" on the stack (ftpd)",
        "[18]",
        Victim::Ftpd,
        "execve",
        StubArgs::ExecvePath("/bin/sh"),
        None,
        Box::new(|env| env.execve_happened("/bin/sh")),
    ));
    v.push(Scenario {
        id: 11,
        name: "ROP: ret2system after corrupting libc's shell path (ftpd)".into(),
        citation: "[19]",
        category: Category::Rop,
        victim: Victim::Ftpd,
        extended_set: false,
        expected: Expected::CF_AI,
        attack: Box::new(|env| {
            let parked = env.park();
            env.write_bytes(parked.pid, env.sym("system_shell"), b"/tmp/ev\0");
            ret2stub_parked(env, parked, "system", &StubArgs::Words(vec![0]), None);
            env.wake(parked);
        }),
        success: Box::new(|env| env.execve_happened("/tmp/ev")),
    });
    v.push(Scenario {
        id: 12,
        name: "ROP: ret2execve, path planted in writable data segment (webserve)".into(),
        citation: "[20]",
        category: Category::Rop,
        victim: Victim::Webserve,
        extended_set: false,
        expected: Expected::CF_AI,
        attack: Box::new(|env| {
            let parked = env.park();
            // Plant the attacker path in the spare tail of upgrade_path.
            let spot = env.sym("upgrade_path") + 40;
            env.write_bytes(parked.pid, spot, b"/tmp/evil\0");
            let fp0 = env.fp_of(parked.pid);
            let caller_fp = env.read_u64(parked.pid, fp0);
            let slots = env.stub_slots("execve", caller_fp);
            env.write_u64(parked.pid, slots[0], spot);
            env.write_u64(parked.pid, slots[1], 0);
            env.write_u64(parked.pid, slots[2], 0);
            env.write_u64(parked.pid, fp0 + 8, env.sym("execve"));
            env.wake(parked);
        }),
        success: Box::new(|env| env.execve_happened("/tmp/evil")),
    });
    v.push(rop(
        13,
        "ROP: ret2execve, \"/bin/sh\" on the stack (apached)",
        "[2]",
        Victim::Apached,
        "execve",
        StubArgs::ExecvePath("/bin/sh"),
        None,
        Box::new(|env| env.execve_happened("/bin/sh")),
    ));

    // ---- ROP: execute root command ----
    v.push(Scenario {
        id: 14,
        name: "ROP: root shell from the privileged pre-session listener (ftpd)".into(),
        citation: "[11]",
        category: Category::Rop,
        victim: Victim::Ftpd,
        extended_set: false,
        expected: Expected::CF_AI,
        attack: Box::new(|env| {
            // ftpd's main process still runs as root while parked in
            // accept, before any session drops privileges.
            let parked = env.parked_acceptor();
            ret2stub_parked(
                env,
                parked,
                "execve",
                &StubArgs::ExecvePath("/tmp/rootkit"),
                Some(("system", sysno::EXECVE)),
            );
            env.wake(parked);
        }),
        success: Box::new(|env| env.root_execve_happened("/tmp/rootkit")),
    });

    // ---- ROP: alter memory permission (4 variants) ----
    v.push(rop(
        15,
        "ROP: ret2mprotect makes the worker arena RWX (webserve)",
        "[2]",
        Victim::Webserve,
        "mprotect",
        StubArgs::MprotectRwx {
            region_global: "g_arena",
        },
        None,
        Box::new(|env| env.wx_happened()),
    ));
    v.push(rop(
        16,
        "ROP: ret2mprotect makes the page cache RWX (dbkv)",
        "[4]",
        Victim::Dbkv,
        "mprotect",
        StubArgs::MprotectRwx {
            region_global: "page_cache",
        },
        None,
        Box::new(|env| env.wx_happened()),
    ));
    v.push(rop(
        17,
        "ROP: ret2mmap maps a fixed RWX region (webserve)",
        "[6]",
        Victim::Webserve,
        "mmap",
        StubArgs::MmapRwx { addr: 0x7000_0000 },
        None,
        Box::new(|env| env.wx_happened()),
    ));
    v.push(rop(
        18,
        "ROP: ret2mmap maps a fixed RWX region (dbkv)",
        "[12]",
        Victim::Dbkv,
        "mmap",
        StubArgs::MmapRwx { addr: 0x7100_0000 },
        None,
        Box::new(|env| env.wx_happened()),
    ));

    // ---- Direct system call manipulation ----
    v.push(Scenario {
        id: 19,
        name: "NEWTON CsCFI: command-table hijack to unused mprotect (ftpd)".into(),
        citation: "[93]",
        category: Category::Direct,
        victim: Victim::Ftpd,
        extended_set: false,
        expected: Expected::ALL,
        attack: Box::new(|env| {
            env.note("baseline", env.world.kernel.count_of(sysno::MPROTECT));
            let parked = env.park();
            // mprotect is never used by ftpd: redirect the unknown-command
            // handler at it and trigger with a junk command.
            let slot = env.sym("cmd_table") + 4 * 8;
            env.write_u64(parked.pid, slot, env.sym("mprotect"));
            env.send_request(parked, b"HACK\n");
        }),
        success: Box::new(|env| env.syscall_ran_since(sysno::MPROTECT, env.noted("baseline"))),
    });
    v.push(Scenario {
        id: 20,
        name: "AOCR Attack 1: output-filter hijack to direct-only open (webserve)".into(),
        citation: "[81]",
        category: Category::Direct,
        victim: Victim::Webserve,
        extended_set: true, // filesystem syscalls protected, §11.2 scope
        expected: Expected::ALL,
        attack: Box::new(|env| {
            env.note("baseline", env.world.kernel.count_of(sysno::OPEN));
            let parked = env.park();
            let oc = env.sym("out_chain");
            env.write_u64(parked.pid, oc + OUT_CHAIN_FILTER, env.sym("open"));
            env.send_request(parked, b"GET /index.html HTTP/1.1\r\n\r\n");
        }),
        // Success = the hijacked open fired *via the indirect callsite*
        // (beyond the single legitimate open serve_file would have done).
        success: Box::new(|env| env.world.kernel.count_of(sysno::OPEN) > env.noted("baseline") + 1),
    });
    v.push(cve(
        21,
        "CVE-2016-10190 (ffmpeg http): overflow to unused ptrace (dbkv)",
        "[75]",
        Victim::Dbkv,
        "ptrace",
        sysno::PTRACE,
        StubArgs::Words(vec![0, 1, 0, 0]),
    ));
    v.push(Scenario {
        id: 22,
        name: "CVE-2016-10191 (ffmpeg rtmp): overflow to unused execveat (dbkv)".into(),
        citation: "[76]",
        category: Category::Direct,
        victim: Victim::Dbkv,
        extended_set: false,
        expected: Expected::ALL,
        attack: Box::new(|env| {
            let parked = env.park();
            let evil = env.plant_string(parked.pid, "/tmp/evil");
            ret2stub_parked(
                env,
                parked,
                "execveat",
                &StubArgs::Words(vec![u64::MAX, evil, 0, 0, 0]),
                None,
            );
            env.wake(parked);
        }),
        success: Box::new(|env| env.execve_happened("/tmp/evil")),
    });
    v.push(Scenario {
        id: 23,
        name: "CVE-2015-8617 (php): overflow to unused chmod 0777 (webserve)".into(),
        citation: "[74]",
        category: Category::Direct,
        victim: Victim::Webserve,
        extended_set: false,
        expected: Expected::ALL,
        attack: Box::new(|env| {
            ret2stub(env, "chmod", &StubArgs::Chmod("/etc/shadow"), None);
        }),
        success: Box::new(|env| env.chmod_happened("/etc/shadow")),
    });
    v.push(cve(
        24,
        "CVE-2012-0809 (sudo): format string to unused setreuid (ftpd)",
        "[70]",
        Victim::Ftpd,
        "setreuid",
        sysno::SETREUID,
        StubArgs::Words(vec![0, 0]),
    ));
    v.push(cve(
        25,
        "CVE-2013-2028 (nginx): chunked overflow to unused vfork (webserve)",
        "[71]",
        Victim::Webserve,
        "vfork",
        sysno::VFORK,
        StubArgs::Words(vec![]),
    ));
    v.push(cve(
        26,
        "CVE-2014-8668 (libtiff): overflow to unused remap_file_pages (webserve)",
        "[73]",
        Victim::Webserve,
        "remap_file_pages",
        sysno::REMAP_FILE_PAGES,
        StubArgs::Words(vec![0x7000_0000, 4096, 7, 0, 0]),
    ));
    v.push(cve(
        27,
        "CVE-2014-1912 (python): buffer overflow to unused mremap (dbkv)",
        "[72]",
        Victim::Dbkv,
        "mremap",
        sysno::MREMAP,
        StubArgs::Words(vec![0x7100_0000, 4096, 8192, 0, 0]),
    ));

    // ---- Indirect system call manipulation ----
    v.push(Scenario {
        id: 28,
        name: "NEWTON CPI: out-of-bounds vh index to a fake handler entry (webserve)".into(),
        citation: "[93]",
        category: Category::Indirect,
        victim: Victim::Webserve,
        extended_set: false,
        expected: Expected::ALL,
        attack: Box::new(|env| {
            env.note("baseline", env.world.kernel.count_of(sysno::MPROTECT));
            let parked = env.park();
            // vh has 5 entries; entry 5 overlaps the adjacent globals,
            // which the attacker fills with a counterfeit handler record
            // pointing at the mprotect stub (no code pointer inside vh is
            // touched — only the index and plain data, NEWTON-style).
            let fake = env.sym("vh") + 5 * VH_ELEM;
            env.write_u64(parked.pid, fake, env.sym("mprotect"));
            env.write_u64(parked.pid, fake + 8, 7);
            env.send_request(parked, b"GET /index.html HTTP/1.1\r\nX-Index: 5\r\n\r\n");
        }),
        success: Box::new(|env| env.syscall_ran_since(sysno::MPROTECT, env.noted("baseline"))),
    });
    v.push(Scenario {
        id: 29,
        name: "AOCR Apache: handler hijack onto the legitimate indirect exec path".into(),
        citation: "[93]",
        category: Category::Indirect,
        victim: Victim::Apached,
        extended_set: false,
        expected: Expected {
            ct: false,
            cf: true,
            ai: true,
        },
        attack: Box::new(|env| {
            let parked = env.park();
            // ap_get_exec_line legitimately execs through a code pointer;
            // hijack the request dispatch table onto it and deliver the
            // command inside the request body.
            let h = env.sym("handlers");
            env.write_u64(parked.pid, h, env.sym("ap_get_exec_line"));
            env.send_request(parked, b"0 /tmp/evil\0");
        }),
        success: Box::new(|env| env.execve_happened("/tmp/evil")),
    });
    v.push(Scenario {
        id: 30,
        name: "AOCR NGINX Attack 2: data-only corruption of the upgrade context (webserve)".into(),
        citation: "[81]",
        category: Category::Indirect,
        victim: Victim::Webserve,
        extended_set: false,
        expected: Expected::AI_ONLY,
        attack: Box::new(|env| {
            let parked = env.park();
            // Pure data attack: corrupt only the exec context, then let the
            // completely legitimate admin-upgrade control flow fire.
            let evil = env.plant_string(parked.pid, "/tmp/evil");
            let ctx = env.sym("g_exec_ctx");
            env.write_u64(parked.pid, ctx + EXEC_CTX_PATH, evil);
            env.send_request(parked, b"GET /upgrade HTTP/1.1\r\n\r\n");
        }),
        success: Box::new(|env| env.execve_happened("/tmp/evil")),
    });
    v.push(Scenario {
        id: 31,
        name: "COOP: counterfeit handler object drives the admin upgrade (webserve)".into(),
        citation: "[34]",
        category: Category::Indirect,
        victim: Victim::Webserve,
        extended_set: false,
        expected: Expected::AI_ONLY,
        attack: Box::new(|env| {
            let parked = env.park();
            // Counterfeit object: a vh entry whose function pointer is the
            // *legitimate, address-taken* h_admin with its magic argument —
            // every control transfer is type- and CFG-legal (COOP).
            let vh = env.sym("vh");
            env.write_u64(parked.pid, vh + 2 * VH_ELEM, env.sym("h_admin"));
            env.write_u64(parked.pid, vh + 2 * VH_ELEM + 8, 7777);
            let evil = env.plant_string(parked.pid, "/tmp/evil");
            let ctx = env.sym("g_exec_ctx");
            env.write_u64(parked.pid, ctx + EXEC_CTX_PATH, evil);
            // Path "/a" → plen 2 → index 2 → counterfeit entry.
            env.send_request(parked, b"GET /a HTTP/1.1\r\n\r\n");
        }),
        success: Box::new(|env| env.execve_happened("/tmp/evil")),
    });
    v.push(Scenario {
        id: 32,
        name: "Control Jujutsu: legit-flow upgrade with corrupted pathname bytes (webserve)".into(),
        citation: "[38]",
        category: Category::Indirect,
        victim: Victim::Webserve,
        extended_set: false,
        expected: Expected::AI_ONLY,
        attack: Box::new(|env| {
            let parked = env.park();
            // Same legal control flow as COOP, but the exec_ctx pointer is
            // left intact: only the pointee bytes of the upgrade path are
            // rewritten — caught by extended-argument pointee verification.
            let vh = env.sym("vh");
            env.write_u64(parked.pid, vh + 2 * VH_ELEM, env.sym("h_admin"));
            env.write_u64(parked.pid, vh + 2 * VH_ELEM + 8, 7777);
            env.write_bytes(parked.pid, env.sym("upgrade_path"), b"/tmp/evil\0");
            env.send_request(parked, b"GET /a HTTP/1.1\r\n\r\n");
        }),
        success: Box::new(|env| env.execve_happened("/tmp/evil")),
    });

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_32_table6_rows() {
        let c = catalog();
        assert_eq!(c.len(), 32);
        // Ids are 1..=32 in order.
        for (i, s) in c.iter().enumerate() {
            assert_eq!(s.id as usize, i + 1);
        }
        // Category counts match Table 6's section sizes.
        let rop = c.iter().filter(|s| s.category == Category::Rop).count();
        let direct = c.iter().filter(|s| s.category == Category::Direct).count();
        let indirect = c
            .iter()
            .filter(|s| s.category == Category::Indirect)
            .count();
        assert_eq!(rop, 18);
        assert_eq!(direct, 9);
        assert_eq!(indirect, 5);
    }

    #[test]
    fn expected_matrix_shapes() {
        let c = catalog();
        // All ROP rows: CT bypassed, CF+AI block.
        for s in c.iter().filter(|s| s.category == Category::Rop) {
            assert_eq!(s.expected, Expected::CF_AI, "{}", s.name);
        }
        // Direct rows all fully blocked.
        for s in c.iter().filter(|s| s.category == Category::Direct) {
            assert_eq!(s.expected, Expected::ALL, "{}", s.name);
        }
        // The three legit-control-flow attacks are AI-only.
        let ai_only = c.iter().filter(|s| s.expected == Expected::AI_ONLY).count();
        assert_eq!(ai_only, 3);
    }
}
