//! The attack environment: a protected (or unprotected) victim world plus
//! the attacker's primitives.
//!
//! Per the threat model (paper §4), the attacker has **arbitrary memory
//! read/write** in the victim process (one or more memory-corruption
//! vulnerabilities) and knows the address-space layout (an information
//! leak is assumed; we read symbols and frame pointers directly). DEP is
//! in force — code cannot be injected, only reused — and attacks are
//! evaluated with and without CET per §10.1.

use crate::victim::Victim;
use bastion_compiler::{BastionCompiler, ContextMetadata};
use bastion_ir::sysno;
use bastion_kernel::process::{ProcState, WaitReason};
use bastion_kernel::{ExitReason, ExtConnId, Pid, World};
use bastion_monitor::ContextConfig;
use bastion_vm::{CostModel, Image, Machine};
use std::sync::Arc;

/// How a run was stopped (or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defense {
    /// Monitor denied with a Call-Type violation.
    MonitorCt,
    /// Monitor denied with a Control-Flow violation.
    MonitorCf,
    /// Monitor denied with an Argument-Integrity violation.
    MonitorAi,
    /// Monitor denied fail-closed (degraded/fail-closed resilience rung).
    MonitorFailClosed,
    /// seccomp killed a not-callable syscall.
    Seccomp,
    /// CET #CP fault.
    Cet,
    /// LLVM-CFI fault.
    Cfi,
    /// Some other fault killed the victim (crash, not a targeted defense).
    Crash(String),
    /// Nothing fired.
    None,
}

/// The observable outcome of one attack run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Which defense (if any) fired first on any victim process.
    pub defense: Defense,
    /// Whether the attack's success predicate held afterwards.
    pub succeeded: bool,
}

impl RunOutcome {
    /// An attack counts as blocked when a targeted defense fired and the
    /// malicious effect did not occur.
    pub fn blocked(&self) -> bool {
        !self.succeeded
            && matches!(
                self.defense,
                Defense::MonitorCt
                    | Defense::MonitorCf
                    | Defense::MonitorAi
                    | Defense::MonitorFailClosed
                    | Defense::Seccomp
                    | Defense::Cet
                    | Defense::Cfi
            )
    }
}

/// A parked victim worker: blocked in a read on our connection (or in
/// accept for listener-side vehicles), stack layout known.
#[derive(Debug, Clone, Copy)]
pub struct Parked {
    /// The victim process.
    pub pid: Pid,
    /// Our connection into it (None for accept-parked victims).
    pub conn: Option<ExtConnId>,
}

/// A warm checkpoint of a deployed [`AttackEnv`]: the world snapshot plus
/// the attacker-side bookkeeping (image, metadata, scratch cursor, notes).
/// Produced by [`AttackEnv::checkpoint`], consumed any number of times by
/// [`AttackEnv::restore`].
#[derive(Debug)]
pub struct DeployCheckpoint {
    snap: bastion_kernel::WorldSnapshot,
    image: Arc<Image>,
    metadata: ContextMetadata,
    victim: Victim,
    root_pid: Pid,
    scratch_cursor: u64,
    notes: std::collections::HashMap<&'static str, u64>,
}

/// A deployed victim plus attacker primitives.
pub struct AttackEnv {
    /// The world hosting the victim.
    pub world: World,
    /// The (instrumented, when protected) image.
    pub image: Arc<Image>,
    /// Compiler metadata (also available to the attacker: white-box).
    pub metadata: ContextMetadata,
    /// Which application is under attack.
    pub victim: Victim,
    /// Pid of the victim's initial process.
    pub root_pid: Pid,
    scratch_cursor: u64,
    notes: std::collections::HashMap<&'static str, u64>,
}

impl AttackEnv {
    /// Deploys `victim` with the given monitor configuration (`None` =
    /// fully unprotected ground-truth run). `extended_set` selects the
    /// §11.2 filesystem-extended sensitive scope; `cet` enables the
    /// hardware shadow stack.
    ///
    /// # Panics
    /// Panics if the victim fails to compile or boot (shipped victims are
    /// tested to do both).
    pub fn deploy(
        victim: Victim,
        cfg: Option<ContextConfig>,
        extended_set: bool,
        cet: bool,
    ) -> AttackEnv {
        let module = victim.module();
        let compiler = if extended_set {
            BastionCompiler::with_sensitive(sysno::extended_sensitive_set())
        } else {
            BastionCompiler::new()
        };
        let out = compiler.compile(module).expect("victim compiles");
        let image = Arc::new(Image::load(out.module).expect("victim image loads"));
        let mut world = World::new(CostModel::default());
        victim.setup(&mut world);
        let mut machine = Machine::new(image.clone(), CostModel::default());
        if cet {
            machine.enable_cet();
        }
        let root_pid = world.spawn(machine);
        if let Some(cfg) = cfg {
            bastion_monitor::protect(&mut world, root_pid, &image, &out.metadata, cfg);
        }
        world.run(2_000_000_000);
        assert!(
            world.alive_count() > 0,
            "{victim:?} died during boot: {:?}",
            world.proc(root_pid).and_then(|p| p.exit.clone())
        );
        AttackEnv {
            world,
            image,
            metadata: out.metadata,
            victim,
            root_pid,
            scratch_cursor: 0,
            notes: std::collections::HashMap::new(),
        }
    }

    /// Captures a warm checkpoint of the deployed, booted environment.
    /// Any number of attack cells can [`AttackEnv::restore`] from it, each
    /// forking the world copy-on-write instead of recompiling and
    /// rebooting the victim. Taken after `deploy`'s boot run, so the
    /// checkpoint sits at a deterministic trap index and a restored cell
    /// replays a cold deploy bit-for-bit.
    pub fn checkpoint(&mut self) -> DeployCheckpoint {
        DeployCheckpoint {
            snap: self.world.snapshot(),
            image: self.image.clone(),
            metadata: self.metadata.clone(),
            victim: self.victim,
            root_pid: self.root_pid,
            scratch_cursor: self.scratch_cursor,
            notes: self.notes.clone(),
        }
    }

    /// Forks a fresh environment from a warm checkpoint (the cell-level
    /// dual of a cold [`AttackEnv::deploy`]).
    pub fn restore(ck: &DeployCheckpoint) -> AttackEnv {
        AttackEnv {
            world: World::restore(&ck.snap),
            image: ck.image.clone(),
            metadata: ck.metadata.clone(),
            victim: ck.victim,
            root_pid: ck.root_pid,
            scratch_cursor: ck.scratch_cursor,
            notes: ck.notes.clone(),
        }
    }

    // ---- reconnaissance (infoleak-equivalent) ----

    /// Runtime address of a function or global symbol.
    ///
    /// # Panics
    /// Panics on unknown symbols (attacker payloads are written against
    /// known victims).
    pub fn sym(&self, name: &str) -> u64 {
        self.image
            .symbol(name)
            .unwrap_or_else(|| panic!("unknown symbol `{name}`"))
    }

    /// The addresses at which stub `name` will read its parameters if
    /// entered (via `ret`) while the frame pointer is `fp`.
    pub fn stub_slots(&self, name: &str, fp: u64) -> Vec<u64> {
        let f = self
            .image
            .module
            .func_by_name(name)
            .unwrap_or_else(|| panic!("unknown stub `{name}`"));
        let fi = self.image.frame(f);
        fi.slot_offsets
            .iter()
            .map(|off| fp - fi.frame_size + off)
            .collect()
    }

    /// Address of the legitimate callsite of syscall `nr` inside function
    /// `func` — used to spoof the return address so the monitor "decodes"
    /// a legitimate call instruction (paper Table 6: ROP bypasses CT).
    ///
    /// # Panics
    /// Panics if no such site exists.
    pub fn syscall_site_in(&self, func: &str, nr: u32) -> u64 {
        let entry = self.sym(func);
        let end = self
            .metadata
            .functions
            .get(&entry)
            .map(|f| f.end)
            .unwrap_or(entry);
        *self
            .metadata
            .syscall_sites
            .iter()
            .find(|(addr, site)| site.nr == nr && **addr >= entry && **addr < end)
            .unwrap_or_else(|| panic!("no syscall {nr} site in `{func}`"))
            .0
    }

    /// Frame pointer of a (blocked) process — layout knowledge the threat
    /// model grants the attacker.
    pub fn fp_of(&self, pid: Pid) -> u64 {
        self.world.proc(pid).expect("victim pid").machine.fp
    }

    // ---- corruption primitives (the memory vulnerability) ----

    /// Arbitrary 8-byte write in the victim.
    pub fn write_u64(&mut self, pid: Pid, addr: u64, val: u64) {
        self.world
            .proc_mut(pid)
            .expect("victim pid")
            .machine
            .mem
            .write_unchecked(addr, &val.to_le_bytes());
    }

    /// Arbitrary byte-string write in the victim.
    pub fn write_bytes(&mut self, pid: Pid, addr: u64, bytes: &[u8]) {
        self.world
            .proc_mut(pid)
            .expect("victim pid")
            .machine
            .mem
            .write_unchecked(addr, bytes);
    }

    /// Arbitrary 8-byte read in the victim.
    pub fn read_u64(&self, pid: Pid, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.world
            .proc(pid)
            .expect("victim pid")
            .machine
            .mem
            .read_unchecked(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a NUL-terminated string and returns its address. Strings are
    /// planted deep in the victim's stack region (never reached by live
    /// frames), so later execution cannot clobber them.
    pub fn plant_string(&mut self, pid: Pid, s: &str) -> u64 {
        let addr = self.image.stack_base + 0x800 + self.scratch_cursor;
        self.scratch_cursor += (s.len() as u64 + 16) & !7;
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.write_bytes(pid, addr, &bytes);
        addr
    }

    /// Remembers a number between the attack and success closures of a
    /// scenario (e.g. a syscall-count baseline).
    pub fn note(&mut self, key: &'static str, val: u64) {
        self.notes.insert(key, val);
    }

    /// Reads a remembered number (0 if absent).
    pub fn noted(&self, key: &'static str) -> u64 {
        self.notes.get(key).copied().unwrap_or(0)
    }

    // ---- victim positioning ----

    /// Connects and primes the victim so one worker parks blocked in a
    /// `read` on our connection (keep-alive wait), returning it.
    ///
    /// # Panics
    /// Panics if no worker parks (victims are tested to serve).
    pub fn park(&mut self) -> Parked {
        let port = self.victim.port();
        let conn = self.world.net_connect(port).expect("victim listener bound");
        if let Some(priming) = self.victim.priming() {
            self.world.net_send(conn, priming);
        }
        self.world.run(2_000_000_000);
        let _ = self.world.net_recv(conn);
        let pid = self
            .world
            .procs
            .iter()
            .find(|p| {
                matches!(p.state, ProcState::Blocked(WaitReason::ConnRead { cid, .. }) if cid == conn)
            })
            .map(|p| p.pid)
            .expect("a worker parked reading our connection");
        Parked {
            pid,
            conn: Some(conn),
        }
    }

    /// The process parked in `accept` on the victim's main listener (the
    /// privileged pre-session state some attacks target).
    ///
    /// # Panics
    /// Panics if nothing is parked in accept.
    pub fn parked_acceptor(&self) -> Parked {
        let pid = self
            .world
            .procs
            .iter()
            .find(|p| matches!(p.state, ProcState::Blocked(WaitReason::Accept { .. })))
            .map(|p| p.pid)
            .expect("a process parked in accept");
        Parked { pid, conn: None }
    }

    /// Wakes a parked victim (one byte on its connection, or a fresh
    /// connection for accept-parked victims) and runs the world.
    pub fn wake(&mut self, parked: Parked) {
        match parked.conn {
            Some(c) => self.world.net_send(c, b"!"),
            None => {
                let _ = self.world.net_connect(self.victim.port());
            }
        }
        self.settle();
    }

    /// Sends a full request on a parked connection and runs the world.
    pub fn send_request(&mut self, parked: Parked, bytes: &[u8]) {
        if let Some(c) = parked.conn {
            self.world.net_send(c, bytes);
        }
        self.settle();
    }

    /// Runs the world until quiescence.
    pub fn settle(&mut self) {
        self.world.run(2_000_000_000);
    }

    // ---- judgement ----

    /// Classifies the first targeted defense that fired on any process.
    pub fn defense_fired(&self) -> Defense {
        for p in &self.world.procs {
            match &p.exit {
                Some(ExitReason::MonitorKill { reason, .. }) => {
                    return if reason.starts_with("CT") {
                        Defense::MonitorCt
                    } else if reason.starts_with("CF") {
                        Defense::MonitorCf
                    } else if reason.starts_with("AI") {
                        Defense::MonitorAi
                    } else if reason.starts_with("FC") {
                        Defense::MonitorFailClosed
                    } else {
                        Defense::Crash(reason.clone())
                    };
                }
                Some(ExitReason::SeccompKill { .. }) => return Defense::Seccomp,
                Some(ExitReason::Fault(f)) => {
                    return match f {
                        bastion_vm::Fault::ControlProtection { .. } => Defense::Cet,
                        bastion_vm::Fault::CfiViolation { .. } => Defense::Cfi,
                        other => Defense::Crash(other.to_string()),
                    };
                }
                _ => {}
            }
        }
        Defense::None
    }

    /// Ground truth: an `execve` of `path_contains` happened.
    pub fn execve_happened(&self, path_contains: &str) -> bool {
        self.world
            .kernel
            .exec_log
            .iter()
            .any(|(_, p, _)| p.contains(path_contains))
    }

    /// Ground truth: an `execve` happened with euid 0.
    pub fn root_execve_happened(&self, path_contains: &str) -> bool {
        self.world
            .kernel
            .exec_log
            .iter()
            .any(|(_, p, euid)| p.contains(path_contains) && *euid == 0)
    }

    /// Ground truth: some region became writable+executable via mprotect
    /// or mmap during the attack.
    pub fn wx_happened(&self) -> bool {
        self.world
            .kernel
            .mprotect_log
            .iter()
            .any(|(_, _, _, prot)| prot & 0b110 == 0b110)
            || self.world.procs.iter().any(|p| p.has_wx_mapping())
    }

    /// Ground truth: syscall `nr` executed at least `n` more times than
    /// `baseline`.
    pub fn syscall_ran_since(&self, nr: u32, baseline: u64) -> bool {
        self.world.kernel.count_of(nr) > baseline
    }

    /// Ground truth: a chmod of `path` to `mode` happened.
    pub fn chmod_happened(&self, path_contains: &str) -> bool {
        self.world
            .kernel
            .chmod_log
            .iter()
            .any(|(p, _)| p.contains(path_contains))
    }
}
