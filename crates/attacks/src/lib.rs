//! # bastion-attacks
//!
//! The security-evaluation half of the reproduction (paper §10, Table 6):
//! 32 real-world and synthesized exploits — ROP payloads, CVE-shaped
//! memory-corruption attacks, and the advanced NEWTON / AOCR / COOP /
//! Control Jujutsu strategies — implemented as executable payloads against
//! the workload applications (plus an Apache-shaped victim).
//!
//! Each attack is evaluated four ways:
//!
//! 1. **unprotected** — the ground-truth run must *succeed* (the exploit
//!    is real, not a strawman);
//! 2. **CT-only / CF-only / AI-only** — which single context blocks it,
//!    reproducing Table 6's ✓/× matrix;
//! 3. **full BASTION** — all three contexts together must block it.
//!
//! ```no_run
//! let results = bastion_attacks::table6::evaluate_all();
//! println!("{}", bastion_attacks::table6::render(&results));
//! assert!(results.iter().all(|r| r.matches_paper()));
//! ```

pub mod catalog;
pub mod env;
pub mod generate;
pub mod scenario;
pub mod table6;
pub mod victim;

pub use catalog::catalog;
pub use env::{AttackEnv, Defense, RunOutcome};
pub use generate::{AttackProgram, GenReport, Generator, Verdict};
pub use scenario::{Category, Expected, Scenario};
pub use table6::{evaluate, evaluate_all, render, ScenarioResult};
pub use victim::Victim;
