//! Clean-path determinism probe: webserve/quick under full protection must
//! reproduce the seed's exact cycle counts with telemetry compiled in.

use bastion::apps::App;
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, WorkloadSize};
use bastion::vm::CostModel;
use bastion::Protection;

fn main() {
    let traced = std::env::args().any(|a| a == "--traced");
    if traced {
        bastion::obs::enable(1 << 16);
    }
    let b = run_app_benchmark(
        App::Webserve,
        &Protection::full(),
        &WorkloadSize::quick(),
        &BastionCompiler::new(),
        CostModel::default(),
    );
    println!(
        "cycles={} traps={} trace_cycles={} steps={} metric={} events={}",
        b.cycles,
        b.traps,
        b.trace_cycles,
        b.steps,
        b.metric,
        bastion::obs::event_count()
    );
}
