//! Criterion wall-clock benchmarks of the Figure 3 grid.
//!
//! The paper's tables come from deterministic virtual-time runs (the
//! `fig3_table3` binary); this bench measures real simulator wall time per
//! configuration so regressions in the reproduction itself are visible.

use bastion::apps::{App, ALL_APPS};
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, WorkloadSize};
use bastion::vm::CostModel;
use bastion::Protection;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_overhead(c: &mut Criterion) {
    let size = WorkloadSize {
        http_requests: 120,
        http_concurrency: 8,
        tpcc_tx: 150,
        tpcc_sessions: 4,
        ftp_downloads: 1,
    };
    let compiler = BastionCompiler::new();
    let cost = CostModel::default();
    let mut g = c.benchmark_group("figure3");
    g.sample_size(10);
    for app in ALL_APPS {
        for prot in [Protection::vanilla(), Protection::cet(), Protection::full()] {
            g.bench_with_input(
                BenchmarkId::new(app.id(), prot.label),
                &(app, prot),
                |b, (app, prot)| {
                    b.iter(|| run_app_benchmark(*app, prot, &size, &compiler, cost));
                },
            );
        }
    }
    g.finish();
}

fn bench_boot(c: &mut Criterion) {
    let compiler = BastionCompiler::new();
    let mut g = c.benchmark_group("compile");
    g.sample_size(10);
    for app in ALL_APPS {
        g.bench_function(BenchmarkId::new("bastion_pass", app.id()), |b| {
            let module = app.module().expect("compiles");
            b.iter(|| compiler.compile(module.clone()).expect("instrumentation"));
        });
        let _ = app;
    }
    g.finish();
    let _ = App::Webserve;
}

criterion_group!(benches, bench_overhead, bench_boot);
criterion_main!(benches);
