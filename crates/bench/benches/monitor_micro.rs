//! Microbenchmarks of the monitor's building blocks: shadow-table
//! operations, metadata lookups, and a full trap verification.

use bastion::compiler::BastionCompiler;
use bastion::ir::sysno;
use bastion::vm::{CostModel, Machine, MemIo, Memory, ShadowTable, SHADOW_REGION_SIZE};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_shadow(c: &mut Criterion) {
    let mut mem = Memory::new();
    let base = 0x5800_0000_0000u64;
    mem.map_region(base, SHADOW_REGION_SIZE);
    let t = ShadowTable::new(base);
    for i in 0..4096u64 {
        t.write_value(&mut mem, 0x1_0000 + i * 8, i, 8).unwrap();
    }
    c.bench_function("shadow/write_value", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            t.write_value(&mut mem, 0x1_0000 + (i % 4096) * 8, i, 8)
                .unwrap();
        });
    });
    c.bench_function("shadow/read_value_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            t.read_value(&mem, 0x1_0000 + (i % 4096) * 8).unwrap()
        });
    });
    c.bench_function("shadow/read_value_miss", |b| {
        b.iter(|| t.read_value(&mem, 0x9999_0000).unwrap());
    });
    c.bench_function("shadow/bind_and_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            t.bind_mem(&mut mem, 0x40_1000 + (i % 64) * 4, 3, 0x7fff_0000)
                .unwrap();
            t.get_binding(&mem, 0x40_1000 + (i % 64) * 4, 3).unwrap()
        });
    });
}

fn bench_memory(c: &mut Criterion) {
    let mut mem = Memory::new();
    mem.map_region(0x1000, 1 << 20);
    c.bench_function("memory/write_u64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(8);
            mem.write_u64(0x1000 + (i & 0xfffff & !7), i).unwrap();
        });
    });
    c.bench_function("memory/read_u64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(8);
            mem.read_u64(0x1000 + (i & 0xfffff & !7)).unwrap()
        });
    });
}

fn bench_interp(c: &mut Criterion) {
    // A tight MiniC loop: measures raw interpreter throughput.
    let src = r#"
        long main() {
            long i;
            long acc;
            acc = 0;
            for (i = 0; i < 100000; i = i + 1) {
                acc = acc + (i ^ (acc >> 3));
            }
            return acc & 0xff;
        }
    "#;
    let module = bastion::minic::compile_program("hot", &[src]).expect("compiles");
    let image = Arc::new(bastion::vm::Image::load(module).expect("image"));
    c.bench_function("interp/arith_loop_100k", |b| {
        b.iter(|| {
            let mut m = Machine::new(image.clone(), CostModel::default());
            bastion::vm::interp::run(&mut m, 10_000_000).event()
        });
    });
}

fn bench_compile_pass(c: &mut Criterion) {
    let compiler = BastionCompiler::new();
    let module = bastion::apps::App::Webserve.module().expect("compiles");
    c.bench_function("compiler/webserve_full_pass", |b| {
        b.iter(|| compiler.compile(module.clone()).expect("instrumentation"));
    });
    let extended = BastionCompiler::with_sensitive(sysno::extended_sensitive_set());
    c.bench_function("compiler/webserve_extended_scope", |b| {
        b.iter(|| extended.compile(module.clone()).expect("instrumentation"));
    });
}

fn bench_trap_verify(c: &mut Criterion) {
    use bastion::ir::build::ModuleBuilder;
    use bastion::ir::{Operand, Ty};
    use bastion::kernel::{Tracee, Tracer};
    use bastion::monitor::{ContextConfig, LaunchInfo, Monitor};

    // main → mmap with constant arguments: the smallest module whose trap
    // exercises CT, the stack walk, and AI argument checks.
    let mut mb = ModuleBuilder::new("trapbench");
    let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
    let mut f = mb.function("main", &[], Ty::I64);
    let _ = f.call_direct(
        mmap,
        &[
            0i64.into(),
            4096i64.into(),
            3i64.into(),
            0x21i64.into(),
            (-1i64).into(),
            0i64.into(),
        ],
    );
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    let out = BastionCompiler::new()
        .compile(mb.finish())
        .expect("instrumentation");
    let image = Arc::new(bastion::vm::Image::load(out.module).expect("image"));
    let mut machine = Machine::new(image.clone(), CostModel::default());
    match bastion::vm::interp::run(&mut machine, 10_000_000).event() {
        bastion::vm::Event::Syscall { nr, .. } if nr == sysno::MMAP => {}
        e => panic!("expected the mmap trap, got {e:?}"),
    }
    let info = LaunchInfo::from_image(&image, &out.metadata);

    let mut group = c.benchmark_group("trap_verify");
    for (label, cfg) in [
        ("legacy", ContextConfig::full().without_fast_path()),
        ("fast_path", ContextConfig::full()),
    ] {
        let mut mon = Monitor::new(&out.metadata, cfg, info.clone());
        {
            // The verdict must be identical on both paths before timing.
            let mut charge = 0u64;
            let mut t = Tracee::new(&machine, 1, &mut charge);
            assert_eq!(
                mon.on_trap(&mut t),
                bastion::kernel::TraceVerdict::Allow,
                "{label}"
            );
        }
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut charge = 0u64;
                let mut t = Tracee::new(&machine, 1, &mut charge);
                criterion::black_box(mon.on_trap(&mut t))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_shadow,
    bench_memory,
    bench_interp,
    bench_compile_pass,
    bench_trap_verify
);
criterion_main!(benches);
