//! Interpreter dispatch throughput: predecoded fast path vs the legacy
//! tree-walking oracle, on a call-heavy arithmetic loop.

use bastion::ir::build::ModuleBuilder;
use bastion::ir::{BinOp, CmpOp, Operand, Ty};
use bastion::vm::{interp, CostModel, Image, Machine};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn microloop() -> Arc<Image> {
    let mut mb = ModuleBuilder::new("bench_loop");
    let helper = mb.declare("helper", &[("x", Ty::I64)], Ty::I64);
    {
        let mut f = mb.define(helper);
        let a = f.frame_addr(f.param_slot(0));
        let v = f.load(a);
        let d = f.bin(BinOp::Add, v, 1i64);
        f.ret(Some(d.into()));
        f.finish();
    }
    let mut f = mb.function("main", &[], Ty::I64);
    let acc = f.local("acc", Ty::I64);
    let head = f.new_block();
    let body = f.new_block();
    let done = f.new_block();
    let pa = f.frame_addr(acc);
    f.store(pa, 0i64);
    f.jmp(head);
    f.switch_to(head);
    let pa = f.frame_addr(acc);
    let cur = f.load(pa);
    let c = f.cmp(CmpOp::Lt, cur, 1_000_000_000i64);
    f.br(c, body, done);
    f.switch_to(body);
    let pa = f.frame_addr(acc);
    let cur = f.load(pa);
    let x = f.bin(BinOp::Mul, cur, 3i64);
    let bumped = f.call_direct(helper, &[cur.into()]);
    let _dead = f.bin(BinOp::Xor, x, bumped);
    f.store(pa, bumped);
    f.jmp(head);
    f.switch_to(done);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    Arc::new(Image::load(mb.finish()).expect("loads"))
}

const STEPS: u64 = 20_000;

fn bench_interp_throughput(c: &mut Criterion) {
    let img = microloop();
    let mut group = c.benchmark_group("interp_throughput");
    group.bench_function("fast_20k_steps", |b| {
        b.iter(|| {
            let mut m = Machine::new(img.clone(), CostModel::default());
            criterion::black_box(interp::run_bounded(&mut m, STEPS))
        });
    });
    group.bench_function("legacy_20k_steps", |b| {
        b.iter(|| {
            let mut m = Machine::new(img.clone(), CostModel::default());
            for _ in 0..STEPS {
                criterion::black_box(interp::step(&mut m));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_interp_throughput);
criterion_main!(benches);
