//! Chaos matrix: the full Table 6 catalog and the three workload
//! applications replayed under seeded deterministic fault schedules
//! (DESIGN.md §6d), sharded over the fleet runner (DESIGN.md §6f).
//!
//! Every attack is calibrated fault-free, then replayed under each fault
//! class targeted at the verification of its own sensitive syscalls. The
//! invariant checked is fail-closure: **no fault schedule may flip a
//! blocked attack to Allow**. The benign half reports how each
//! application degrades (mode ladder, strikes, service kept) under
//! unfocused mixed faults.
//!
//! Seeds are pinned so CI failures replay bit-for-bit, and the rendered
//! report is byte-identical for any `--jobs` value — `--jobs 1` (the
//! default) and `--jobs 8` may only differ in wall-clock time.

use bastion::fleet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cold = args.iter().any(|a| a == "--cold");
    let jobs = args
        .iter()
        .find_map(|a| {
            a.strip_prefix("--jobs=")
                .map(str::to_string)
                .or_else(|| (a == "--jobs").then(String::new))
        })
        .map_or(1, |v| {
            if v.is_empty() {
                // Bare `--jobs`: one worker per core.
                fleet::default_jobs()
            } else {
                v.parse().expect("--jobs=N takes a positive integer")
            }
        });

    eprintln!(
        "replaying 32 attacks x 7 fault classes x {} seeds on {jobs} worker(s), {} cells...",
        fleet::ATTACK_SEEDS.len(),
        if cold { "cold-deployed" } else { "warm-forked" }
    );
    let outcome = fleet::chaos_matrix_mode(jobs, fleet::ATTACK_SEEDS, None, cold);
    print!("{}", outcome.report);

    if outcome.faults_fired == 0 {
        eprintln!("FAIL: chaos matrix never injected a fault");
        std::process::exit(1);
    }
    if outcome.flipped > 0 {
        eprintln!(
            "FAIL: {} attack(s) flipped to Allow under faults",
            outcome.flipped
        );
        std::process::exit(1);
    }
    if outcome.flight_missing > 0 {
        eprintln!(
            "FAIL: {} deny record(s) missing a flight-recorder dump of the denied trap",
            outcome.flight_missing
        );
        std::process::exit(1);
    }
}
