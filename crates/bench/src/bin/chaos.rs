//! Chaos matrix: the full Table 6 catalog and the three workload
//! applications replayed under seeded deterministic fault schedules
//! (DESIGN.md §6d).
//!
//! Every attack is calibrated fault-free, then replayed under each fault
//! class targeted at the verification of its own sensitive syscalls. The
//! invariant checked is fail-closure: **no fault schedule may flip a
//! blocked attack to Allow**. The benign half reports how each
//! application degrades (mode ladder, strikes, service kept) under
//! unfocused mixed faults.
//!
//! Seeds are pinned so CI failures replay bit-for-bit.

use bastion::apps::App;
use bastion::chaos::{attack_chaos, benign_chaos};
use bastion::kernel::FaultSchedule;
use bastion::monitor::ContextConfig;

const SEEDS: &[u64] = &[0xA77C_0001, 0xA77C_0002];

fn main() {
    // ---- benign degradation ----
    println!("benign chaos (Mix fault every 7th substrate access, 6 requests)");
    println!(
        "{:<10} {:>6} {:>9} {:>7} {:>8} {:>8}  mode",
        "app", "served", "attempted", "faults", "strikes", "survived"
    );
    for (app, seed) in [
        (App::Webserve, 0x0B5E_0001u64),
        (App::Dbkv, 0x0B5E_0002),
        (App::Ftpd, 0x0B5E_0003),
    ] {
        let r = benign_chaos(app, ContextConfig::full(), FaultSchedule::chaos(seed, 7), 6);
        let stats = r.stats.expect("monitor attached");
        println!(
            "{:<10} {:>6} {:>9} {:>7} {:>8} {:>8}  {:?}",
            r.app.id(),
            r.served,
            r.attempted,
            r.faults_fired,
            stats.substrate_strikes,
            r.survived,
            stats.mode
        );
    }

    // ---- attack containment ----
    eprintln!(
        "\nreplaying 32 attacks x 6 fault classes x {} seeds (this takes a minute)...",
        SEEDS.len()
    );
    println!("\nattack chaos matrix (blocked attacks under targeted faults)");
    println!(
        "{:<4} {:<34} {:>6} {:>7} {:>10}  outcome",
        "id", "attack", "traps", "faults", "contained"
    );
    let mut flipped = 0u32;
    let mut fired_total = 0u64;
    let mut deny_total = 0u64;
    let mut join_total = 0u64;
    let mut joins_by_class: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for scenario in bastion::attacks::catalog() {
        let reports = attack_chaos(&scenario, ContextConfig::full(), SEEDS);
        let fired: u64 = reports.iter().map(|r| r.faults_fired).sum();
        fired_total += fired;
        for r in &reports {
            deny_total += r.deny_records.len() as u64;
            join_total += r.fault_deny_joins.len() as u64;
            for &(_, class) in &r.fault_deny_joins {
                *joins_by_class.entry(class).or_insert(0) += 1;
            }
        }
        let contained = reports.iter().all(|r| r.attack_contained());
        let worst = reports
            .iter()
            .find(|r| !r.attack_contained())
            .or_else(|| reports.iter().max_by_key(|r| r.faults_fired))
            .expect("at least one replay per scenario");
        println!(
            "{:<4} {:<34} {:>6} {:>7} {:>10}  {:?}",
            scenario.id, scenario.name, worst.clean_traps, fired, contained, worst.outcome.defense
        );
        if !contained {
            flipped += 1;
        }
    }

    if fired_total == 0 {
        eprintln!("FAIL: chaos matrix never injected a fault");
        std::process::exit(1);
    }
    if flipped > 0 {
        eprintln!("FAIL: {flipped} attack(s) flipped to Allow under faults");
        std::process::exit(1);
    }
    println!("\nall attacks contained under every fault schedule ({fired_total} faults fired)");

    // ---- deny provenance ----
    // Joins pair an injected fault with a deny issued for the very trap it
    // corrupted (`InjectedFault::world_trap` == `DenyRecord::trap_seq`) —
    // the audit trail showing *which* substrate failure triggered *which*
    // fail-closed kill.
    println!(
        "\ndeny provenance: {deny_total} structured deny records, {join_total} fault->deny joins"
    );
    for (class, n) in &joins_by_class {
        println!("  substrate access {class:<12} implicated in {n} deny(s)");
    }
}
