//! Ablation studies for the design decisions DESIGN.md calls out:
//!
//! 1. **In-kernel monitor** (§11.2): replacing ptrace with in-kernel
//!    execution removes the context-switch cost that dominates Table 7.
//! 2. **ASLR compatibility** (§9.2): BASTION is relative-addressing based;
//!    protection behaves identically under different load slides.
//! 3. **Monitor initialization cost** (§9.2: ≈21 ms for NGINX).
//! 4. **Stack-walk termination** at `main`/indirect entries vs. walk depth.
//! 5. **Trap fast path**: batched remote reads + the verification cache
//!    vs. the original word-by-word, recheck-everything monitor, and the
//!    tier-1 seccomp-time prefilter on top (DESIGN.md §6g).
//! 6. **Phase attribution**: span-traced breakdown of where the monitor's
//!    trap cycles actually go, legacy vs fast path.

use bastion::apps::{App, ALL_APPS};
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, WorkloadSize};
use bastion::ir::sysno;
use bastion::vm::CostModel;
use bastion::Protection;

fn main() {
    let size = WorkloadSize::standard();

    println!("Ablation 1: in-kernel monitor vs ptrace-based monitor (§11.2)");
    println!("(full context checking with the extended filesystem-syscall scope)");
    println!();
    let compiler = BastionCompiler::with_sensitive(sysno::extended_sensitive_set());
    for app in ALL_APPS {
        eprintln!("running {} (ptrace vs in-kernel)...", app.label());
        let base = run_app_benchmark(
            app,
            &Protection::vanilla(),
            &size,
            &compiler,
            CostModel::default(),
        );
        let ptrace = run_app_benchmark(
            app,
            &Protection::full(),
            &size,
            &compiler,
            CostModel::default(),
        );
        let inkernel = run_app_benchmark(
            app,
            &Protection::full(),
            &size,
            &compiler,
            CostModel::in_kernel_monitor(),
        );
        // The in-kernel run has its own baseline under the same cost model.
        let base_ik = run_app_benchmark(
            app,
            &Protection::vanilla(),
            &size,
            &compiler,
            CostModel::in_kernel_monitor(),
        );
        println!(
            "  {:<18} ptrace {:+8.2}%   in-kernel {:+8.2}%",
            app.id(),
            ptrace.overhead_vs(&base),
            inkernel.overhead_vs(&base_ik),
        );
    }

    println!();
    println!("Ablation 2: ASLR compatibility (§9.2)");
    let quick = WorkloadSize::quick();
    let compiler = BastionCompiler::new();
    for seed in [0u64, 7, 99] {
        let out = compiler
            .compile(App::Webserve.module().expect("compiles"))
            .expect("instrumentation");
        let image = bastion::vm::ImageBuilder::new()
            .aslr_seed(seed)
            .build(out.module)
            .expect("image");
        let image = std::sync::Arc::new(image);
        let mut world = bastion::kernel::World::new(CostModel::default());
        App::Webserve.setup_vfs(&mut world);
        let machine = bastion::vm::Machine::new(image.clone(), CostModel::default());
        let pid = world.spawn(machine);
        bastion::monitor::protect(
            &mut world,
            pid,
            &image,
            &out.metadata,
            bastion::monitor::ContextConfig::full(),
        );
        world.run(2_000_000_000);
        let stats = bastion::apps::loadgen::http_load(
            &mut world,
            App::Webserve.port(),
            quick.http_concurrency,
            quick.http_requests,
        );
        let traps = world.trap_count;
        let clean = world
            .take_tracer()
            .and_then(|t| {
                t.as_any()
                    .downcast_ref::<bastion::monitor::Monitor>()
                    .map(|m| m.stats.violations() == 0)
            })
            .unwrap_or(false);
        println!(
            "  slide seed {seed:>3}: code base {:#x}, {} requests served, {traps} traps, 0 violations = {clean}",
            image.layout.code_base().raw(),
            stats.requests,
        );
    }

    println!();
    println!("Ablation 3: BASTION's AI scope vs DFI-style all-store shadowing (§3.3)");
    println!("(instrumentation counts + dbkv overhead vs unprotected baseline)");
    {
        use bastion::compiler::InstrumentationBreadth;
        let quick = WorkloadSize::quick();
        let cost = CostModel::default();
        for (label, breadth) in [
            (
                "BASTION (sensitive only)",
                InstrumentationBreadth::SensitiveOnly,
            ),
            ("DFI-style (every store)", InstrumentationBreadth::AllStores),
        ] {
            let compiler = BastionCompiler::new().with_breadth(breadth);
            let out = compiler
                .compile(App::Dbkv.module().expect("compiles"))
                .expect("instrumentation");
            let base =
                run_app_benchmark(App::Dbkv, &Protection::vanilla(), &quick, &compiler, cost);
            let full = run_app_benchmark(App::Dbkv, &Protection::full(), &quick, &compiler, cost);
            println!(
                "  {:<26} {:>6} ctx_write_mem sites   overhead {:+7.2}%",
                label,
                out.metadata.stats.ctx_write_mem,
                full.overhead_vs(&base),
            );
        }
    }

    println!();
    println!("Ablation 4: monitor initialization cost (§9.2, paper: ≈21 ms for NGINX)");
    for app in ALL_APPS {
        let out = compiler
            .compile(app.module().expect("compiles"))
            .expect("instrumentation");
        let image = std::sync::Arc::new(bastion::vm::Image::load(out.module).expect("image"));
        let info = bastion::monitor::LaunchInfo::from_image(&image, &out.metadata);
        let m = bastion::monitor::Monitor::new(
            &out.metadata,
            bastion::monitor::ContextConfig::full(),
            info,
        );
        println!(
            "  {:<18} {:>8} cycles  ≈ {:.3} ms   ({} callsites, {} functions)",
            app.id(),
            m.stats.init_cycles,
            m.stats.init_cycles as f64 / 2e9 * 1000.0,
            out.metadata.callsites.len(),
            out.metadata.functions.len(),
        );
    }

    println!();
    println!("Ablation 5: trap fast path — batched reads, caches, tier-1 prefilter");
    println!("(full contexts; trace cycles per trap, monitor init excluded)");
    {
        use bastion::monitor::ContextConfig;
        let quick = WorkloadSize::quick();
        let compiler = BastionCompiler::new();
        for (label, cfg) in [
            (
                "legacy (word-by-word)",
                ContextConfig::full().without_fast_path(),
            ),
            (
                "fast path (batched+cached)",
                ContextConfig::full().with_prefilter(false),
            ),
            ("tier-1 prefilter (DESIGN §6g)", ContextConfig::full()),
        ] {
            let mut prot = Protection::full();
            prot.monitor = Some(cfg);
            let r = run_app_benchmark(
                App::Webserve,
                &prot,
                &quick,
                &compiler,
                CostModel::default(),
            );
            let stats = r.monitor.as_ref().expect("monitor attached");
            let per_trap = (r.trace_cycles - stats.init_cycles) as f64 / r.traps.max(1) as f64;
            println!(
                "  {:<29} {:>9.0} cycles/trap over {} traps  (ct hits {}, walk hits {}, batched frame reads {}, batched pointee reads {}, prefilter hits {}/{})",
                label,
                per_trap,
                r.traps,
                stats.ct_cache_hits,
                stats.walk_cache_hits,
                stats.batched_frame_reads,
                stats.batched_pointee_reads,
                stats.prefilter_hits,
                stats.prefilter_checks,
            );
        }
    }

    println!();
    println!("Ablation 6: phase attribution — span-traced monitor time per trap phase");
    println!("(webserve/quick; self cycles exclude child phases; tracing charges nothing)");
    {
        use bastion::monitor::ContextConfig;
        use bastion::obs;
        let quick = WorkloadSize::quick();
        let compiler = BastionCompiler::new();
        for (label, cfg) in [
            (
                "legacy (word-by-word)",
                ContextConfig::full().without_fast_path(),
            ),
            (
                "fast path (batched+cached)",
                ContextConfig::full().with_prefilter(false),
            ),
            ("tier-1 prefilter (DESIGN §6g)", ContextConfig::full()),
        ] {
            let mut prot = Protection::full();
            prot.monitor = Some(cfg);
            obs::enable(1 << 17);
            let r = run_app_benchmark(
                App::Webserve,
                &prot,
                &quick,
                &compiler,
                CostModel::default(),
            );
            let events = obs::take_events();
            obs::disable();
            let totals = obs::phase_totals(&events);
            let trap_time = totals
                .iter()
                .find(|t| t.phase == obs::Phase::Trap)
                .map_or(1, |t| t.cycles.max(1));
            println!("  {label} ({} traps):", r.traps);
            for t in totals.iter().filter(|t| t.spans > 0) {
                println!(
                    "    {:<18} spans={:<6} self={:<10} ({:5.1}% of trap time)",
                    t.phase.name(),
                    t.spans,
                    t.self_cycles,
                    t.self_cycles as f64 * 100.0 / trap_time as f64,
                );
            }
        }
    }
}
