//! Perf-regression gate (CI `obs-overhead-smoke` step).
//!
//! Re-measures the hot paths the checked-in baselines pin down and diffs
//! them through `bastion::gate`:
//!
//! * per-app deterministic columns (`virtual_cycles`, `traps`) vs the
//!   `BENCH_interp.json` rows — **exact**, any drift fails;
//! * per-app `steady_cycles_per_trap` — one-sided 2% band;
//! * telemetry transparency — a sketch-recording run must reproduce the
//!   clean run's cycle counts bit-for-bit (observability charges zero
//!   virtual cycles), under both the Table 1 scope and the §11.2
//!   filesystem-extended scope;
//! * sketch accuracy — the `trap.verify_cycles` p99 must land within 2%
//!   of the exact p99 recomputed from the per-trap span durations;
//! * fleet determinism — the Table 6 catalog renders byte-identically on
//!   1 and 2 workers, matching the `BENCH_fleet.json` flag.
//!
//! Writes the full check table plus per-app/per-scope verify-latency
//! percentiles to `BENCH_obs.json` and exits non-zero if any check
//! fails. Wall-clock telemetry overhead is *reported*, never gated —
//! shared-CI wall time is noise. Usage:
//! `perf_gate [BENCH_interp.json] [BENCH_fleet.json] [BENCH_obs.json]`.

use bastion::apps::App;
use bastion::compiler::BastionCompiler;
use bastion::gate::{self, GateReport};
use bastion::harness::{run_app_benchmark, AppBenchmark, WorkloadSize};
use bastion::obs::{self, EventKind, Phase, TraceEvent};
use bastion::vm::CostModel;
use bastion::{attacks, fleet, Protection};
use serde::Serialize;
use std::time::Instant;

/// One measured lane of `BENCH_obs.json`: an app under one sensitive
/// scope, with sketch and exact verify-latency percentiles side by side.
#[derive(Debug, Serialize)]
struct ScopeRow {
    app: String,
    /// `table1` (default sensitive set) or `extended` (§11.2 filesystem
    /// scope, two-tier).
    scope: String,
    virtual_cycles: u64,
    traps: u64,
    /// Observations in the `trap.verify_cycles` sketch (== traps).
    sketch_count: u64,
    verify_p50: u64,
    verify_p95: u64,
    verify_p99: u64,
    verify_p999: u64,
    /// Exact percentiles from the per-trap span durations.
    exact_p50: u64,
    exact_p95: u64,
    exact_p99: u64,
    /// |sketch p99 - exact p99| / exact p99, percent.
    sketch_p99_rel_err_pct: f64,
    /// Wall-clock cost of running with telemetry on vs off (diagnostic
    /// only — never gated).
    telemetry_wall_overhead_pct: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    /// Every gate comparison, pass or fail.
    gate: GateReport,
    apps: Vec<ScopeRow>,
    /// Table 6 catalog rendered byte-identically on 1 and 2 workers.
    fleet_byte_identical: bool,
}

/// Exact per-trap verify durations: the closed `Phase::Trap` spans of one
/// traced run, in trap order.
fn trap_durations(events: &[TraceEvent]) -> Vec<u64> {
    let mut open: Vec<(u64, u64)> = Vec::new();
    let mut out = Vec::new();
    for ev in events {
        if ev.phase != Phase::Trap {
            continue;
        }
        match ev.kind {
            EventKind::Begin => open.push((ev.trap, ev.vcycles)),
            EventKind::End => {
                if let Some(pos) = open.iter().rposition(|&(t, _)| t == ev.trap) {
                    let (_, begin) = open.swap_remove(pos);
                    out.push(ev.vcycles - begin);
                }
            }
            EventKind::Instant => {}
        }
    }
    out
}

/// Nearest-rank percentile over sorted exact values, mirroring
/// `QuantileSketch::quantile` so the comparison isolates bucketing error.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64) as usize;
    sorted[rank]
}

fn rel_err_pct(exact: u64, sketch: u64) -> f64 {
    if exact == 0 {
        return 0.0;
    }
    (sketch as f64 - exact as f64).abs() / exact as f64 * 100.0
}

struct ScopeMeasurement {
    clean: AppBenchmark,
    traced: AppBenchmark,
    row: ScopeRow,
}

/// Runs one app/scope twice — telemetry off, then on — and builds the
/// side-by-side row. The traced run's registry must see exactly one
/// sketch observation per trap.
fn measure_scope(
    app: App,
    scope: &str,
    protection: &Protection,
    compiler: &BastionCompiler,
) -> ScopeMeasurement {
    let size = WorkloadSize::quick();
    let cost = CostModel::default();
    let t0 = Instant::now();
    let clean = run_app_benchmark(app, protection, &size, compiler, cost);
    let clean_wall = t0.elapsed().as_secs_f64();

    let guard = obs::TelemetryGuard::enable(1 << 17);
    let t1 = Instant::now();
    let traced = run_app_benchmark(app, protection, &size, compiler, cost);
    let traced_wall = t1.elapsed().as_secs_f64();
    let (events, registry) = guard.finish();
    let snap = registry.snapshot();

    let sketch = snap
        .sketch("trap.verify_cycles")
        .cloned()
        .unwrap_or_else(|| {
            eprintln!(
                "FAIL: {}/{scope}: traced run recorded no verify sketch",
                app.id()
            );
            std::process::exit(1);
        });
    let mut exact = trap_durations(&events);
    exact.sort_unstable();
    let exact_p99 = exact_quantile(&exact, 0.99);
    let row = ScopeRow {
        app: app.id().to_string(),
        scope: scope.to_string(),
        virtual_cycles: traced.cycles,
        traps: traced.traps,
        sketch_count: sketch.count,
        verify_p50: sketch.p50,
        verify_p95: sketch.p95,
        verify_p99: sketch.p99,
        verify_p999: sketch.p999,
        exact_p50: exact_quantile(&exact, 0.50),
        exact_p95: exact_quantile(&exact, 0.95),
        exact_p99,
        sketch_p99_rel_err_pct: rel_err_pct(exact_p99, sketch.p99),
        telemetry_wall_overhead_pct: (traced_wall - clean_wall) / clean_wall.max(1e-9) * 100.0,
    };
    ScopeMeasurement { clean, traced, row }
}

/// Gates one scope's telemetry transparency and sketch accuracy.
fn gate_scope(report: &mut GateReport, tag: &str, m: &ScopeMeasurement) {
    report.push(gate::check_exact(
        format!("{tag}.telemetry_cycle_identity"),
        m.clean.cycles,
        m.traced.cycles,
    ));
    report.push(gate::check_exact(
        format!("{tag}.telemetry_trap_identity"),
        m.clean.traps,
        m.traced.traps,
    ));
    report.push(gate::check_exact(
        format!("{tag}.sketch_count"),
        m.traced.traps,
        m.row.sketch_count,
    ));
    report.push(gate::check_within(
        format!("{tag}.sketch_p99"),
        m.row.exact_p99 as f64,
        m.row.verify_p99 as f64,
        2.0,
    ));
}

fn steady_per_trap(b: &AppBenchmark) -> f64 {
    let init = b.monitor.as_ref().map_or(0, |m| m.init_cycles);
    b.trace_cycles.saturating_sub(init) as f64 / b.traps.max(1) as f64
}

fn main() {
    let arg = |n: usize, default: &str| {
        std::env::args()
            .nth(n)
            .unwrap_or_else(|| default.to_string())
    };
    let interp_path = arg(1, "BENCH_interp.json");
    let fleet_path = arg(2, "BENCH_fleet.json");
    let out_path = arg(3, "BENCH_obs.json");

    let interp = std::fs::read_to_string(&interp_path)
        .map_err(|e| format!("{interp_path}: {e}"))
        .and_then(|t| gate::parse_interp_baseline(&t))
        .unwrap_or_else(|e| {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        });
    let fleet_baseline = std::fs::read_to_string(&fleet_path)
        .map_err(|e| format!("{fleet_path}: {e}"))
        .and_then(|t| gate::parse_fleet_baseline(&t))
        .unwrap_or_else(|e| {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        });

    let mut report = GateReport::default();
    let mut rows = Vec::new();

    // ---- Table 1 scope: deterministic columns vs BENCH_interp.json ----
    let table1 = BastionCompiler::new();
    for app in [App::Webserve, App::Dbkv, App::Ftpd] {
        let m = measure_scope(app, "table1", &Protection::full(), &table1);
        let id = app.id();
        match interp.app(id) {
            Some(base) => {
                report.push(gate::check_exact(
                    format!("{id}.virtual_cycles"),
                    base.virtual_cycles,
                    m.clean.cycles,
                ));
                report.push(gate::check_exact(
                    format!("{id}.traps"),
                    base.traps,
                    m.clean.traps,
                ));
                report.push(gate::check_max_regression(
                    format!("{id}.steady_cycles_per_trap"),
                    base.steady_cycles_per_trap,
                    steady_per_trap(&m.clean),
                    2.0,
                ));
            }
            None => {
                eprintln!("FAIL: {interp_path} has no `{id}` row");
                std::process::exit(1);
            }
        }
        gate_scope(&mut report, id, &m);
        eprintln!(
            "{id}/table1: cycles={} traps={} verify p50/p95/p99={}/{}/{} (exact p99 {}, err {:.3}%)",
            m.traced.cycles,
            m.traced.traps,
            m.row.verify_p50,
            m.row.verify_p95,
            m.row.verify_p99,
            m.row.exact_p99,
            m.row.sketch_p99_rel_err_pct
        );
        rows.push(m.row);
    }

    // ---- Extended scope (§11.2): transparency + accuracy, two-tier ----
    let extended = BastionCompiler::with_sensitive(bastion::ir::sysno::extended_sensitive_set());
    for app in [App::Webserve, App::Dbkv, App::Ftpd] {
        let m = measure_scope(app, "extended", &Protection::extended_two_tier(), &extended);
        gate_scope(&mut report, &format!("{}.extended", app.id()), &m);
        eprintln!(
            "{}/extended: cycles={} traps={} verify p99={} (exact {}, err {:.3}%)",
            app.id(),
            m.traced.cycles,
            m.traced.traps,
            m.row.verify_p99,
            m.row.exact_p99,
            m.row.sketch_p99_rel_err_pct
        );
        rows.push(m.row);
    }

    // ---- Fleet determinism: Table 6 catalog, 1 worker vs 2 ----
    let serial = attacks::render(&fleet::table6_matrix(1));
    let sharded = attacks::render(&fleet::table6_matrix(2));
    let byte_identical = serial == sharded;
    report.push(gate::check_flag(
        "fleet.table6_byte_identical",
        fleet_baseline.all_byte_identical,
        byte_identical,
    ));

    let passed = report.passed();
    print!("{}", report.render());
    let out = Report {
        bench: "obs".to_string(),
        gate: report,
        apps: rows,
        fleet_byte_identical: byte_identical,
    };
    let json = serde_json::to_string_pretty(&out).expect("report serializes");
    std::fs::write(&out_path, json + "\n").unwrap_or_else(|e| {
        eprintln!("FAIL: {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}");
    if !passed {
        eprintln!("FAIL: perf gate detected a regression");
        std::process::exit(1);
    }
}
