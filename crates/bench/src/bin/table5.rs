//! Table 5: instrumentation statistics for all three applications.

use bastion::apps::ALL_APPS;
use bastion::compiler::BastionCompiler;

fn main() {
    let compiler = BastionCompiler::new();
    let stats: Vec<_> = ALL_APPS
        .iter()
        .map(|app| {
            let out = compiler
                .compile(app.module().expect("app compiles"))
                .expect("instrumentation succeeds");
            out.metadata.stats
        })
        .collect();

    println!("Table 5: Instrumentation statistics for BASTION");
    println!();
    print!("{:<46}", "");
    for app in ALL_APPS {
        print!(" {:>10}", app.id());
    }
    println!();
    type StatFn = Box<dyn Fn(&bastion::compiler::InstrStats) -> usize>;
    let rows: Vec<(&str, StatFn)> = vec![
        (
            "Total # application callsites",
            Box::new(|s| s.total_callsites),
        ),
        (
            "Total # arbitrary direct callsites",
            Box::new(|s| s.direct_callsites),
        ),
        (
            "Total # arbitrary in-direct callsites",
            Box::new(|s| s.indirect_callsites),
        ),
        (
            "Total # sensitive callsites",
            Box::new(|s| s.sensitive_callsites),
        ),
        (
            "Total # sensitive syscalls called indirectly",
            Box::new(|s| s.sensitive_indirect),
        ),
        ("ctx_write_mem()", Box::new(|s| s.ctx_write_mem)),
        ("ctx_bind_mem()", Box::new(|s| s.ctx_bind_mem)),
        ("ctx_bind_const()", Box::new(|s| s.ctx_bind_const)),
        (
            "Total instrumentation sites",
            Box::new(|s| s.total_instrumentation()),
        ),
    ];
    for (label, f) in rows {
        print!("{label:<46}");
        for s in &stats {
            print!(" {:>10}", f(s));
        }
        println!();
    }
    println!();
    println!(
        "Key finding (paper): sensitive system calls are never legitimately \
         called indirectly in any of the three applications."
    );
}
