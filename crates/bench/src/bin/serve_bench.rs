//! `bastiond` serving benchmark: runs the multi-tenant supervisor over
//! the standard seeded mix, proves the schedule is **byte-identical** at
//! every worker count in the ladder (per-tenant worlds are independent
//! and sharding is jobs-invariant), and writes the fleet + per-tenant
//! latency report to `BENCH_serve.json` (or the path given as the first
//! argument).
//!
//! The checked-in report is fully deterministic — no wall-clock fields —
//! so `--check` re-measures and diffs **exactly** against the baseline
//! through `bastion::gate` (CI's serve gate): any drift in admitted
//! tenants, request totals, traps, fleet cycles, or the latency quartet
//! fails the run.
//!
//! Flags: `--tenants=N` (default 256), `--requests=N` (default 24),
//! `--seed=N` (default 0), `--jobs-list=1,4`, `--check`.

use bastion::gate::{self, GateReport};
use bastion::serve::{run_serve, ServeConfig, ServeRun};
use std::time::Instant;

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut tenants = 256usize;
    let mut requests = 24u64;
    let mut seed = 0u64;
    let ap = bastion::fleet::default_jobs();
    let mut ladder: Vec<usize> = vec![1, ap.max(2)];
    let mut check = false;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--tenants=") {
            tenants = v.parse().expect("--tenants takes an integer");
        } else if let Some(v) = a.strip_prefix("--requests=") {
            requests = v.parse().expect("--requests takes an integer");
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed takes an integer");
        } else if let Some(v) = a.strip_prefix("--jobs-list=") {
            ladder = v
                .split(',')
                .map(|n| n.parse().expect("--jobs-list takes integers"))
                .collect();
        } else if a == "--check" {
            check = true;
        } else {
            out_path = a;
        }
    }
    assert_eq!(
        ladder.first(),
        Some(&1),
        "ladder must start at the serial run"
    );

    let mut cfg = ServeConfig::new(tenants, seed);
    cfg.requests_per_tenant = requests;

    let mut reference: Option<(String, String)> = None;
    let mut run: Option<ServeRun> = None;
    let mut all_byte_identical = true;
    for &jobs in &ladder {
        eprintln!("bastiond, tenants={tenants}, jobs={jobs}...");
        let t0 = Instant::now();
        let r = run_serve(&cfg.clone().with_jobs(jobs));
        let wall = t0.elapsed().as_secs_f64();
        let rendered = r.report.render();
        let json = serde_json::to_string_pretty(&r.report).expect("report serializes");
        let identical = match &reference {
            None => true,
            Some((ref_render, ref_json)) => rendered == *ref_render && json == *ref_json,
        };
        all_byte_identical &= identical;
        assert!(identical, "jobs={jobs} report diverged from the serial run");
        eprintln!(
            "  {wall:.2}s, {} served / {} traps, byte-identical",
            r.report.total_requests, r.report.total_traps
        );
        if reference.is_none() {
            reference = Some((rendered, json));
            run = Some(r);
        }
    }
    let run = run.expect("ladder is non-empty");
    let (rendered, json) = reference.expect("ladder is non-empty");
    eprint!("{rendered}");

    if check {
        let baseline_json = std::fs::read_to_string(&out_path)
            .unwrap_or_else(|e| panic!("{out_path}: {e} (generate the baseline first)"));
        let base = gate::parse_serve_baseline(&baseline_json).expect("baseline parses");
        let r = &run.report;
        let mut g = GateReport::default();
        g.push(gate::check_exact(
            "serve.admitted",
            base.admitted,
            r.admitted,
        ));
        g.push(gate::check_exact(
            "serve.completed",
            base.completed,
            r.completed,
        ));
        g.push(gate::check_exact("serve.evicted", base.evicted, r.evicted));
        g.push(gate::check_exact(
            "serve.total_requests",
            base.total_requests,
            r.total_requests,
        ));
        g.push(gate::check_exact(
            "serve.total_traps",
            base.total_traps,
            r.total_traps,
        ));
        g.push(gate::check_exact(
            "serve.fleet_cycles",
            base.fleet_cycles,
            r.fleet_cycles,
        ));
        let (b, m) = (&base.request_latency, &r.request_latency);
        g.push(gate::check_exact(
            "serve.request_latency.count",
            b.count,
            m.count,
        ));
        g.push(gate::check_exact("serve.request_latency.p50", b.p50, m.p50));
        g.push(gate::check_exact("serve.request_latency.p95", b.p95, m.p95));
        g.push(gate::check_exact("serve.request_latency.p99", b.p99, m.p99));
        g.push(gate::check_exact(
            "serve.request_latency.p999",
            b.p999,
            m.p999,
        ));
        g.push(gate::check_flag(
            "serve.all_byte_identical",
            true,
            all_byte_identical,
        ));
        print!("{}", g.render());
        assert!(g.passed(), "serve gate failed against {out_path}");
    } else {
        std::fs::write(&out_path, json).expect("write report");
        println!("wrote {out_path}");
    }
}
