//! Table 6: the 32-attack security evaluation. Every attack is run live:
//! first unprotected (it must succeed — ground truth), then under each
//! context in isolation, then under full BASTION.

fn main() {
    eprintln!("evaluating 32 attacks x 5 configurations (this takes a minute)...");
    let results = bastion::attacks::evaluate_all();
    println!("{}", bastion::attacks::render(&results));
    let mismatches: Vec<_> = results.iter().filter(|r| !r.matches_paper()).collect();
    if !mismatches.is_empty() {
        for m in mismatches {
            eprintln!("MISMATCH #{}: {}", m.id, m.name);
            for d in &m.details {
                eprintln!("    {d}");
            }
        }
        std::process::exit(1);
    }
}
