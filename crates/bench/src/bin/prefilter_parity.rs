//! Prefilter parity smoke test (CI `prefilter-parity` step).
//!
//! Runs each app (webserve/dbkv/ftpd, quick workload) under full
//! protection twice — tier-1 prefilter on (the default) and forced
//! tier-2-only (the CLI's `--no-prefilter`) — renders the
//! verdict-relevant surface of each run to a stats/deny report, and
//! **byte-diffs** the two reports. Any difference in traps, syscall
//! counts, retired steps, violation tallies, the allow/deny log, or a
//! structured deny record is a parity break and exits non-zero. The same
//! pairing runs again under the filesystem-extended sensitive scope
//! (§11.2), so scope growth cannot silently break parity either.
//!
//! Cycle totals are deliberately *excluded* from the report: a tier-1 hit
//! skips the ptrace stop, so time differs by design. Instead the clean
//! -path win is asserted separately: the prefiltered run must spend less
//! monitor time per trap (the ≥2× acceptance bound lives in
//! `tests/prefilter_differential.rs` and EXPERIMENTS.md), and per-app
//! tier-1 hit-rate floors (webserve ≥ 99%, dbkv ≥ 95%, ftpd ≥ 95%) catch
//! escalation-tail regressions.
//!
//! A final run under `ContextConfig::with_differential` re-proves every
//! tier-1 Allow against the full monitor in-process (panics on
//! divergence), so the smoke test also fails if the check program and the
//! monitor ever disagree on a webserve trap.

use bastion::apps::App;
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, AppBenchmark, WorkloadSize};
use bastion::ir::sysno;
use bastion::monitor::{ContextConfig, NoPrefilterGuard};
use bastion::vm::CostModel;
use bastion::Protection;
use std::fmt::Write as _;

fn run(app: App, prot: &Protection, compiler: &BastionCompiler) -> AppBenchmark {
    run_app_benchmark(
        app,
        prot,
        &WorkloadSize::quick(),
        compiler,
        CostModel::default(),
    )
}

/// Renders everything two modes must agree on, byte for byte.
fn verdict_report(b: &AppBenchmark) -> String {
    let stats = b.monitor.as_ref().expect("monitor attached");
    let mut s = String::new();
    let _ = writeln!(s, "app={} protection={}", b.app.id(), b.protection);
    let _ = writeln!(s, "traps={} steps={}", b.traps, b.steps);
    let _ = writeln!(s, "syscall_counts={:?}", b.syscall_counts);
    let _ = writeln!(
        s,
        "violations: ct={} cf={} ai={} fc={} watchdog={}",
        stats.ct_violations,
        stats.cf_violations,
        stats.ai_violations,
        stats.fc_violations,
        stats.watchdog_denies
    );
    let _ = writeln!(s, "ladder rung={}", stats.mode.label());
    s
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

/// Runs one app with tier 1 on and off under `compiler`, byte-diffs the
/// verdict reports, asserts the tier-1 hit-rate floor and the per-trap
/// win, and returns the prefiltered run's hit rate.
fn parity_pair(app: App, compiler: &BastionCompiler, scope: &str, hit_floor: f64) -> f64 {
    let prot = if scope == "extended" {
        Protection::extended_two_tier()
    } else {
        Protection::full()
    };
    let pf = run(app, &prot, compiler);
    let t2 = {
        let _guard = NoPrefilterGuard::new(true);
        run(app, &prot, compiler)
    };
    let (pf_stats, t2_stats) = (
        pf.monitor.as_ref().expect("monitor"),
        t2.monitor.as_ref().expect("monitor"),
    );
    if t2_stats.prefilter_checks != 0 {
        fail("--no-prefilter mode still classified traps at tier 1");
    }
    if pf_stats.prefilter_hits == 0 {
        fail(&format!(
            "prefilter never hit on the {} {scope} clean path",
            app.id()
        ));
    }

    let (rep_pf, rep_t2) = (verdict_report(&pf), verdict_report(&t2));
    if rep_pf != rep_t2 {
        eprintln!("--- prefilter on ---\n{rep_pf}");
        eprintln!("--- no-prefilter ---\n{rep_t2}");
        fail(&format!(
            "{} {scope}: verdict reports diverged between tiers",
            app.id()
        ));
    }
    println!(
        "{} {scope}: verdict reports byte-identical ({} traps)",
        app.id(),
        pf.traps
    );
    let rate = pf_stats.prefilter_hit_rate();
    println!(
        "{} {scope}: {}/{} tier-1 hits ({:.1}%), {} escalations {:?}",
        app.id(),
        pf_stats.prefilter_hits,
        pf_stats.prefilter_checks,
        rate * 100.0,
        pf_stats.prefilter_escalations,
        pf_stats.escalations_by_reason(),
    );
    if rate < hit_floor {
        fail(&format!(
            "{} {scope}: tier-1 hit rate {:.1}% fell below the {:.0}% floor",
            app.id(),
            rate * 100.0,
            hit_floor * 100.0
        ));
    }

    let per_trap = |b: &AppBenchmark| {
        let s = b.monitor.as_ref().unwrap();
        (b.trace_cycles - s.init_cycles) as f64 / b.traps.max(1) as f64
    };
    let (c_pf, c_t2) = (per_trap(&pf), per_trap(&t2));
    if c_pf >= c_t2 {
        fail(&format!(
            "{} {scope}: prefiltered run is not cheaper per trap: {c_pf:.0} vs {c_t2:.0}",
            app.id()
        ));
    }
    println!(
        "{} {scope}: clean-path cycles/trap {c_pf:.0} (tier 1) vs {c_t2:.0} (tier 2 only)",
        app.id()
    );
    rate
}

fn main() {
    // Per-app tier-1 hit-rate floors, Table-1 scope. The probe rows and
    // the edge-precise flow automaton drove every clean-path structural
    // escalation to zero; the floors keep it that way.
    let table1 = BastionCompiler::new();
    for (app, floor) in [(App::Webserve, 0.99), (App::Dbkv, 0.95), (App::Ftpd, 0.95)] {
        parity_pair(app, &table1, "table1", floor);
    }

    // Extended filesystem scope (§11.2): same parity and floors must hold
    // when the sensitive surface grows.
    let extended = BastionCompiler::with_sensitive(sysno::extended_sensitive_set());
    for (app, floor) in [(App::Webserve, 0.99), (App::Dbkv, 0.95), (App::Ftpd, 0.95)] {
        parity_pair(app, &extended, "extended", floor);
    }

    // Differential oracle: every tier-1 Allow re-verified by the full
    // monitor in the same trap; panics (→ non-zero exit) on divergence.
    let mut diff_prot = Protection::full();
    diff_prot.monitor = Some(ContextConfig::full().with_differential());
    let diff = run(App::Webserve, &diff_prot, &table1);
    let ds = diff.monitor.as_ref().expect("monitor");
    if ds.prefilter_hits == 0 {
        fail("differential run never exercised a tier-1 Allow");
    }
    println!(
        "differential mode: {} tier-1 Allows re-proved against the full monitor",
        ds.prefilter_hits
    );
    println!("prefilter-parity OK");
}
