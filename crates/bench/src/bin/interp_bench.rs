//! Interpreter throughput benchmark: predecoded fast path vs the legacy
//! tree-walking interpreter.
//!
//! Measures wall-clock steps/sec on a tight arithmetic microloop and on
//! the real applications (webserve on the Figure 3 workload, dbkv and
//! ftpd on the quick workload), plus the monitor's virtual cycles/trap.
//! Writes machine-readable results to `BENCH_interp.json` (or the path
//! given as the first argument). `--jobs=N` shards the per-app engine
//! comparisons over the fleet runner; the deterministic columns are
//! unchanged, only wall-clock noise differs.

use bastion::apps::App;
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, AppBenchmark, WorkloadSize};
use bastion::ir::build::ModuleBuilder;
use bastion::ir::{BinOp, CmpOp, Operand, Ty};
use bastion::kernel::LegacyInterpGuard;
use bastion::vm::{interp, CostModel, Image, Machine};
use bastion::Protection;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// One engine's measurement of a fixed workload.
#[derive(Debug, Serialize)]
struct EngineRun {
    steps: u64,
    wall_secs: f64,
    steps_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct Comparison {
    workload: String,
    fast: EngineRun,
    legacy: EngineRun,
    /// fast steps/sec over legacy steps/sec.
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct AppRow {
    app: String,
    protection: String,
    /// Paper metric (MB/s, NOTPM, or seconds per 100 MB).
    metric: f64,
    virtual_cycles: u64,
    traps: u64,
    /// Virtual trace cycles per monitor trap (0 when untraced). Includes
    /// the one-time monitor init (and tier-1 compile) charge.
    cycles_per_trap: f64,
    /// Per-trap trace cost with the one-time init charge excluded — the
    /// steady-state number a long-running server converges to.
    steady_cycles_per_trap: f64,
    /// One-time tier-1 check-program compile charge (0 with no prefilter).
    prefilter_compile_cycles: u64,
    fast: EngineRun,
    legacy: EngineRun,
    speedup: f64,
}

/// One §11.2 extended-scope row: the same app verified over the
/// filesystem-extended sensitive set with the two-tier split on vs off.
#[derive(Debug, Serialize)]
struct ExtendedScopeRow {
    app: String,
    /// Traps under the extended scope (identical for both runs).
    traps: u64,
    /// Steady-state trace cycles per trap, two-tier split on.
    two_tier_cycles_per_trap: f64,
    /// Steady-state trace cycles per trap, tier-2-only baseline.
    tier2_only_cycles_per_trap: f64,
    /// tier-2-only over two-tier per-trap cost.
    speedup: f64,
    /// Tier-1 hit rate of the two-tier run.
    prefilter_hit_rate: f64,
}

/// One phase's aggregate from a traced run (see `bastion_obs::phase_totals`).
#[derive(Debug, Serialize)]
struct PhaseRow {
    phase: String,
    spans: u64,
    instants: u64,
    /// Inclusive virtual cycles (children counted).
    cycles: u64,
    /// Exclusive virtual cycles (children subtracted).
    self_cycles: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    microloop: Comparison,
    /// Webserve on the Figure 3 (standard) workload — the headline number.
    webserve_fig3: Comparison,
    apps: Vec<AppRow>,
    /// §11.2: per-app two-tier vs tier-2-only comparison under the
    /// filesystem-extended sensitive scope.
    extended_scope: Vec<ExtendedScopeRow>,
    /// Per-phase monitor-time breakdown of a span-traced webserve/quick/full
    /// run. Tracing never charges virtual cycles, so the traced run's cycle
    /// counts are bit-identical to the untraced `apps` row.
    phase_breakdown: Vec<PhaseRow>,
}

/// A tight loop exercising the hot dispatch path: arithmetic, compares,
/// frame traffic, and a call per iteration.
fn microloop_module() -> bastion::ir::Module {
    let mut mb = ModuleBuilder::new("microloop");
    let helper = mb.declare("helper", &[("x", Ty::I64)], Ty::I64);
    {
        let mut f = mb.define(helper);
        let a = f.frame_addr(f.param_slot(0));
        let v = f.load(a);
        let d = f.bin(BinOp::Add, v, 1i64);
        f.ret(Some(d.into()));
        f.finish();
    }
    let mut f = mb.function("main", &[], Ty::I64);
    let acc = f.local("acc", Ty::I64);
    let head = f.new_block();
    let body = f.new_block();
    let done = f.new_block();
    let pa = f.frame_addr(acc);
    f.store(pa, 0i64);
    f.jmp(head);
    f.switch_to(head);
    let pa = f.frame_addr(acc);
    let cur = f.load(pa);
    let c = f.cmp(CmpOp::Lt, cur, 1_000_000_000i64);
    f.br(c, body, done);
    f.switch_to(body);
    let pa = f.frame_addr(acc);
    let cur = f.load(pa);
    let x = f.bin(BinOp::Mul, cur, 3i64);
    let x = f.bin(BinOp::Xor, x, 0x5aa5i64);
    let bumped = f.call_direct(helper, &[cur.into()]);
    let _dead = f.bin(BinOp::And, x, bumped);
    f.store(pa, bumped);
    f.jmp(head);
    f.switch_to(done);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    mb.finish()
}

fn time_microloop(img: &Arc<Image>, steps: u64, legacy: bool) -> EngineRun {
    let mut m = Machine::new(img.clone(), CostModel::default());
    let t0 = Instant::now();
    let done = if legacy {
        let mut n = 0u64;
        while n < steps {
            interp::step(&mut m);
            n += 1;
        }
        n
    } else {
        let (n, _) = interp::run_bounded(&mut m, steps);
        n
    };
    engine_run(done, t0.elapsed().as_secs_f64())
}

fn engine_run(steps: u64, wall_secs: f64) -> EngineRun {
    EngineRun {
        steps,
        wall_secs,
        steps_per_sec: steps as f64 / wall_secs.max(1e-12),
    }
}

fn timed_app(
    app: App,
    protection: &Protection,
    size: &WorkloadSize,
    legacy: bool,
) -> (AppBenchmark, EngineRun) {
    let compiler = BastionCompiler::new();
    let _engine = LegacyInterpGuard::set(legacy);
    let t0 = Instant::now();
    let b = run_app_benchmark(app, protection, size, &compiler, CostModel::default());
    let wall = t0.elapsed().as_secs_f64();
    let run = engine_run(b.steps, wall);
    (b, run)
}

fn compare_app(app: App, protection: &Protection, size: &WorkloadSize) -> AppRow {
    let best = |legacy: bool| {
        (0..2)
            .map(|_| timed_app(app, protection, size, legacy))
            .min_by(|a, b| a.1.wall_secs.total_cmp(&b.1.wall_secs))
            .expect("two runs")
    };
    let (fast_b, fast) = best(false);
    let (legacy_b, legacy) = best(true);
    assert_eq!(
        (fast_b.cycles, fast_b.steps, fast_b.traps),
        (legacy_b.cycles, legacy_b.steps, legacy_b.traps),
        "{}: engines diverged",
        app.id()
    );
    let speedup = fast.steps_per_sec / legacy.steps_per_sec;
    let init = fast_b.monitor.as_ref().map_or(0, |m| m.init_cycles);
    AppRow {
        app: app.id().to_string(),
        protection: fast_b.protection.to_string(),
        metric: fast_b.metric,
        virtual_cycles: fast_b.cycles,
        traps: fast_b.traps,
        cycles_per_trap: if fast_b.traps == 0 {
            0.0
        } else {
            fast_b.trace_cycles as f64 / fast_b.traps as f64
        },
        steady_cycles_per_trap: if fast_b.traps == 0 {
            0.0
        } else {
            fast_b.trace_cycles.saturating_sub(init) as f64 / fast_b.traps as f64
        },
        prefilter_compile_cycles: fast_b
            .monitor
            .as_ref()
            .map_or(0, |m| m.prefilter_compile_cycles),
        fast,
        legacy,
        speedup,
    }
}

/// Steady-state trace cycles per trap (init charge excluded).
fn steady_per_trap(b: &bastion::harness::AppBenchmark) -> f64 {
    let init = b.monitor.as_ref().map_or(0, |m| m.init_cycles);
    b.trace_cycles.saturating_sub(init) as f64 / b.traps.max(1) as f64
}

fn extended_scope_row(app: App, size: &WorkloadSize) -> ExtendedScopeRow {
    let (two_tier, t2_only) =
        bastion::harness::run_extended_scope_pair(app, size, CostModel::default());
    // The two runs differ only in trace cost: the application executes the
    // same instructions and traps the same sensitive syscalls either way.
    assert_eq!(
        (two_tier.steps, two_tier.traps),
        (t2_only.steps, t2_only.traps),
        "{}: extended-scope runs diverged on deterministic columns",
        app.id()
    );
    let tt = steady_per_trap(&two_tier);
    let t2 = steady_per_trap(&t2_only);
    ExtendedScopeRow {
        app: app.id().to_string(),
        traps: two_tier.traps,
        two_tier_cycles_per_trap: tt,
        tier2_only_cycles_per_trap: t2,
        speedup: t2 / tt.max(1e-12),
        prefilter_hit_rate: two_tier
            .monitor
            .as_ref()
            .map_or(0.0, |m| m.prefilter_hit_rate()),
    }
}

fn main() {
    let mut out_path = "BENCH_interp.json".to_string();
    let mut jobs = 1usize;
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = v.parse().expect("--jobs=N takes a positive integer");
        } else if a == "--jobs" {
            jobs = bastion::fleet::default_jobs();
        } else {
            out_path = a;
        }
    }

    let img = Arc::new(Image::load(microloop_module()).expect("microloop loads"));
    const MICRO_STEPS: u64 = 3_000_000;
    // Warm up caches and the branch predictor before the measured runs.
    time_microloop(&img, MICRO_STEPS / 4, false);
    time_microloop(&img, MICRO_STEPS / 4, true);
    let fast = time_microloop(&img, MICRO_STEPS, false);
    let legacy = time_microloop(&img, MICRO_STEPS, true);
    let microloop = Comparison {
        workload: format!("arith+call microloop, {MICRO_STEPS} steps"),
        speedup: fast.steps_per_sec / legacy.steps_per_sec,
        fast,
        legacy,
    };
    eprintln!(
        "microloop: fast {:.1}M steps/s, legacy {:.1}M steps/s, speedup {:.2}x",
        microloop.fast.steps_per_sec / 1e6,
        microloop.legacy.steps_per_sec / 1e6,
        microloop.speedup
    );

    // Headline: webserve on the Figure 3 (standard) workload, vanilla
    // hardware config so the measurement is pure interpreter throughput.
    let fig3 = WorkloadSize::standard();
    // Best-of-3 per engine: the min wall time is the least-noise estimate.
    let best = |legacy: bool| {
        (0..3)
            .map(|_| timed_app(App::Webserve, &Protection::vanilla(), &fig3, legacy))
            .min_by(|a, b| a.1.wall_secs.total_cmp(&b.1.wall_secs))
            .expect("three runs")
    };
    let (ws_fast_b, ws_fast) = best(false);
    let (ws_legacy_b, ws_legacy) = best(true);
    assert_eq!(ws_fast_b.cycles, ws_legacy_b.cycles, "webserve diverged");
    let webserve_fig3 = Comparison {
        workload: format!(
            "webserve, {} requests x {} connections (Fig. 3 workload)",
            fig3.http_requests, fig3.http_concurrency
        ),
        speedup: ws_fast.steps_per_sec / ws_legacy.steps_per_sec,
        fast: ws_fast,
        legacy: ws_legacy,
    };
    eprintln!(
        "webserve fig3: fast {:.1}M steps/s, legacy {:.1}M steps/s, speedup {:.2}x",
        webserve_fig3.fast.steps_per_sec / 1e6,
        webserve_fig3.legacy.steps_per_sec / 1e6,
        webserve_fig3.speedup
    );

    // Per-app engine comparisons are independent worlds, so they shard
    // over the fleet. The deterministic columns (cycles, steps, traps,
    // metric) are identical for any worker count; only the wall-clock
    // throughput fields are noisier when workers share cores.
    let quick = WorkloadSize::quick();
    let apps = bastion::fleet::run_ordered(
        jobs,
        vec![App::Webserve, App::Dbkv, App::Ftpd],
        |_, &app| compare_app(app, &Protection::full(), &quick),
    );
    for row in &apps {
        eprintln!(
            "{}/{}: fast {:.1}M steps/s, legacy {:.1}M steps/s, speedup {:.2}x, {:.0} cyc/trap",
            row.app,
            row.protection,
            row.fast.steps_per_sec / 1e6,
            row.legacy.steps_per_sec / 1e6,
            row.speedup,
            row.cycles_per_trap
        );
    }

    // §11.2 extended scope: the filesystem-extended sensitive set roughly
    // triples each app's trapped surface; the two-tier split must keep the
    // per-trap cost near the Table-1-scope number while the tier-2-only
    // baseline pays a full ptrace stop per trap.
    let extended_scope = bastion::fleet::run_ordered(
        jobs,
        vec![App::Webserve, App::Dbkv, App::Ftpd],
        |_, &app| extended_scope_row(app, &quick),
    );
    for row in &extended_scope {
        eprintln!(
            "extended {}: two-tier {:.0} cyc/trap vs tier-2-only {:.0}, speedup {:.2}x, hit rate {:.1}%",
            row.app,
            row.two_tier_cycles_per_trap,
            row.tier2_only_cycles_per_trap,
            row.speedup,
            row.prefilter_hit_rate * 100.0
        );
    }
    let ws_ext = &extended_scope[0];
    assert!(
        ws_ext.speedup >= 5.0,
        "extended-scope webserve two-tier speedup regressed below 5x: {:.2}x",
        ws_ext.speedup
    );

    // Phase breakdown: one span-traced webserve/quick/full run. The traced
    // run must reproduce the untraced row's cycle counts exactly — the
    // telemetry layer charges no virtual cycles.
    let guard = bastion::obs::TelemetryGuard::enable(1 << 17);
    let traced = run_app_benchmark(
        App::Webserve,
        &Protection::full(),
        &quick,
        &BastionCompiler::new(),
        CostModel::default(),
    );
    let (events, _registry) = guard.finish();
    assert_eq!(
        (traced.cycles, traced.traps),
        (apps[0].virtual_cycles, apps[0].traps),
        "span tracing perturbed the deterministic clock"
    );
    let phase_breakdown: Vec<PhaseRow> = bastion::obs::phase_totals(&events)
        .iter()
        .map(|t| PhaseRow {
            phase: t.phase.name().to_string(),
            spans: t.spans,
            instants: t.instants,
            cycles: t.cycles,
            self_cycles: t.self_cycles,
        })
        .collect();
    for row in &phase_breakdown {
        eprintln!(
            "phase {:<18} spans={:<6} incl={:<10} self={}",
            row.phase, row.spans, row.cycles, row.self_cycles
        );
    }

    let report = Report {
        bench: "interp".to_string(),
        microloop,
        webserve_fig3,
        apps,
        extended_scope,
        phase_breakdown,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
