//! Fleet scaling benchmark: runs the chaos matrix at increasing worker
//! counts, asserts every run's rendered report is **byte-identical** to
//! the serial one (the fleet determinism contract, DESIGN.md §6f), and
//! writes jobs-vs-wall-clock rows to `BENCH_fleet.json` (or the path given
//! as the first argument).
//!
//! The default ladder is powers of two capped at the host's
//! `available_parallelism` — worker counts past the core count only add
//! scheduler churn and read as phantom regressions on small hosts.
//! `--jobs-list=1,2,4,8` overrides the ladder explicitly (CI uses `1,2`
//! as the fleet smoke — a parallel run diffed against the serial run);
//! rows whose worker count exceeds the core count are annotated
//! `oversubscribed` so their speedups are read as scheduling noise, not
//! fleet regressions.

use bastion::fleet;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ScalingRow {
    jobs: usize,
    wall_secs: f64,
    /// Serial wall time over this run's wall time.
    speedup: f64,
    /// This run's report matched the serial report byte-for-byte.
    byte_identical: bool,
    /// More workers than host cores: the wall-clock column measures
    /// scheduler contention, not fleet scaling.
    oversubscribed: bool,
}

/// Powers of two up to (and including the nearest below) the host's
/// available parallelism, always starting at the serial run.
fn default_ladder(ap: usize) -> Vec<usize> {
    let mut ladder = vec![1];
    let mut j = 2;
    while j <= ap {
        ladder.push(j);
        j *= 2;
    }
    ladder
}

/// Warm-forked checkpoint cells vs cold per-cell re-deploys, measured at
/// the widest ladder entry within the host's core count — an
/// oversubscribed entry would charge scheduler churn to the checkpoint
/// (DESIGN.md §6i's headline number).
#[derive(Debug, Serialize)]
struct SnapshotRow {
    jobs: usize,
    warm_secs: f64,
    cold_secs: f64,
    /// Cold wall time over warm wall time (the checkpoint payoff; the PR
    /// gate is ≥3x).
    warm_speedup: f64,
    /// The cold report matched the warm report byte-for-byte.
    byte_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    scenarios: usize,
    seeds: usize,
    fault_classes: usize,
    benign_apps: usize,
    available_parallelism: usize,
    /// sha-agnostic determinism gate: every ladder entry byte-matched.
    all_byte_identical: bool,
    rows: Vec<ScalingRow>,
    snapshot: SnapshotRow,
}

fn main() {
    let mut out_path = "BENCH_fleet.json".to_string();
    let ap = fleet::default_jobs();
    let mut ladder: Vec<usize> = default_ladder(ap);
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--jobs-list=") {
            ladder = v
                .split(',')
                .map(|n| n.parse().expect("--jobs-list takes integers"))
                .collect();
        } else {
            out_path = a;
        }
    }
    assert_eq!(
        ladder.first(),
        Some(&1),
        "ladder must start at the serial run"
    );

    let seeds = fleet::ATTACK_SEEDS;
    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut serial_report = String::new();
    let mut serial_secs = 0.0f64;
    let mut scenarios = 0usize;
    for &jobs in &ladder {
        eprintln!("chaos matrix, jobs={jobs}...");
        let t0 = Instant::now();
        let outcome = fleet::chaos_matrix(jobs, seeds, None);
        let wall_secs = t0.elapsed().as_secs_f64();
        assert_eq!(outcome.flipped, 0, "attack flipped to Allow");
        assert!(outcome.faults_fired > 0, "no fault fired");
        if jobs == 1 {
            serial_report = outcome.report.clone();
            serial_secs = wall_secs;
            // The attack table has one row per scenario.
            scenarios = outcome
                .report
                .lines()
                .skip_while(|l| !l.starts_with("id "))
                .skip(1)
                .take_while(|l| !l.is_empty())
                .count();
        }
        let byte_identical = outcome.report == serial_report;
        assert!(
            byte_identical,
            "jobs={jobs} report diverged from the serial run"
        );
        let speedup = serial_secs / wall_secs.max(1e-9);
        let oversubscribed = jobs > ap;
        eprintln!(
            "  {wall_secs:.2}s ({speedup:.2}x vs serial), byte-identical{}",
            if oversubscribed {
                ", oversubscribed"
            } else {
                ""
            }
        );
        rows.push(ScalingRow {
            jobs,
            wall_secs,
            speedup,
            byte_identical,
            oversubscribed,
        });
    }

    // Warm vs cold: the ladder above runs warm-forked (the default); one
    // extra cold run at the widest non-oversubscribed worker count prices
    // the checkpoint.
    let wide_row = rows
        .iter()
        .rfind(|r| !r.oversubscribed)
        .expect("ladder starts at the serial run");
    let (wide, warm_wide) = (wide_row.jobs, wide_row.wall_secs);
    eprintln!("chaos matrix, jobs={wide}, cold cells...");
    let t0 = Instant::now();
    let cold = fleet::chaos_matrix_mode(wide, seeds, None, true);
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_identical = cold.report == serial_report;
    assert!(cold_identical, "cold report diverged from the warm run");
    let warm_speedup = cold_secs / warm_wide.max(1e-9);
    eprintln!(
        "  cold {cold_secs:.2}s vs warm {warm_wide:.2}s ({warm_speedup:.2}x), byte-identical"
    );
    let snapshot = SnapshotRow {
        jobs: wide,
        warm_secs: warm_wide,
        cold_secs,
        warm_speedup,
        byte_identical: cold_identical,
    };

    let report = Report {
        bench: "fleet".to_string(),
        scenarios,
        seeds: seeds.len(),
        fault_classes: 7,
        benign_apps: fleet::BENIGN_SEEDS.len(),
        available_parallelism: ap,
        all_byte_identical: rows.iter().all(|r| r.byte_identical),
        rows,
        snapshot,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
