//! Fleet scaling benchmark: runs the chaos matrix at increasing worker
//! counts, asserts every run's rendered report is **byte-identical** to
//! the serial one (the fleet determinism contract, DESIGN.md §6f), and
//! writes jobs-vs-wall-clock rows to `BENCH_fleet.json` (or the path given
//! as the first argument).
//!
//! `--jobs-list=1,2,4,8` overrides the ladder — CI uses `1,2` as the fleet
//! smoke (a parallel run diffed against the serial run), the committed
//! BENCH_fleet.json uses the full ladder.

use bastion::fleet;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct ScalingRow {
    jobs: usize,
    wall_secs: f64,
    /// Serial wall time over this run's wall time.
    speedup: f64,
    /// This run's report matched the serial report byte-for-byte.
    byte_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    scenarios: usize,
    seeds: usize,
    fault_classes: usize,
    benign_apps: usize,
    available_parallelism: usize,
    /// sha-agnostic determinism gate: every ladder entry byte-matched.
    all_byte_identical: bool,
    rows: Vec<ScalingRow>,
}

fn main() {
    let mut out_path = "BENCH_fleet.json".to_string();
    let mut ladder: Vec<usize> = vec![1, 2, 4, 8];
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--jobs-list=") {
            ladder = v
                .split(',')
                .map(|n| n.parse().expect("--jobs-list takes integers"))
                .collect();
        } else {
            out_path = a;
        }
    }
    assert_eq!(
        ladder.first(),
        Some(&1),
        "ladder must start at the serial run"
    );

    let seeds = fleet::ATTACK_SEEDS;
    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut serial_report = String::new();
    let mut serial_secs = 0.0f64;
    let mut scenarios = 0usize;
    for &jobs in &ladder {
        eprintln!("chaos matrix, jobs={jobs}...");
        let t0 = Instant::now();
        let outcome = fleet::chaos_matrix(jobs, seeds, None);
        let wall_secs = t0.elapsed().as_secs_f64();
        assert_eq!(outcome.flipped, 0, "attack flipped to Allow");
        assert!(outcome.faults_fired > 0, "no fault fired");
        if jobs == 1 {
            serial_report = outcome.report.clone();
            serial_secs = wall_secs;
            // The attack table has one row per scenario.
            scenarios = outcome
                .report
                .lines()
                .skip_while(|l| !l.starts_with("id "))
                .skip(1)
                .take_while(|l| !l.is_empty())
                .count();
        }
        let byte_identical = outcome.report == serial_report;
        assert!(
            byte_identical,
            "jobs={jobs} report diverged from the serial run"
        );
        let speedup = serial_secs / wall_secs.max(1e-9);
        eprintln!("  {wall_secs:.2}s ({speedup:.2}x vs serial), byte-identical");
        rows.push(ScalingRow {
            jobs,
            wall_secs,
            speedup,
            byte_identical,
        });
    }

    let report = Report {
        bench: "fleet".to_string(),
        scenarios,
        seeds: seeds.len(),
        fault_classes: 6,
        benign_apps: fleet::BENIGN_SEEDS.len(),
        available_parallelism: fleet::default_jobs(),
        all_byte_identical: rows.iter().all(|r| r.byte_identical),
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    eprintln!("wrote {out_path}");
}
