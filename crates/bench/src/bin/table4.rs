//! Table 4: sensitive system call usage observed while benchmarking each
//! application under full BASTION protection, plus the §9.2 stack-depth
//! statistics.

use bastion::apps::ALL_APPS;
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, WorkloadSize};
use bastion::ir::sysno;
use bastion::vm::CostModel;
use bastion::Protection;

fn main() {
    let size = WorkloadSize::standard();
    let compiler = BastionCompiler::new();
    let cost = CostModel::default();
    let runs: Vec<_> = ALL_APPS
        .iter()
        .map(|&app| {
            eprintln!("running {} ...", app.label());
            run_app_benchmark(app, &Protection::full(), &size, &compiler, cost)
        })
        .collect();

    println!("Table 4: Sensitive system call usage from benchmarking");
    println!();
    print!("{:<20}", "System call");
    for app in ALL_APPS {
        print!(" {:>18}", app.id());
    }
    println!();
    let mut totals = [0u64; 3];
    for &(nr, _) in sysno::SENSITIVE {
        print!("{:<20}", sysno::name(nr).expect("named"));
        for (i, r) in runs.iter().enumerate() {
            let n = r.syscall_counts.get(&nr).copied().unwrap_or(0);
            totals[i] += n;
            print!(" {n:>18}");
        }
        println!();
    }
    print!("{:<20}", "Total monitor hooks");
    for r in &runs {
        print!(" {:>18}", r.traps);
    }
    println!();

    println!();
    println!("Stack-walk depth statistics (paper §9.2):");
    for (app, r) in ALL_APPS.iter().zip(&runs) {
        if let Some(m) = &r.monitor {
            println!(
                "  {:<18} avg {:.1}  min {}  max {}   (init {} cycles ≈ {:.2} ms)",
                app.id(),
                m.avg_depth(),
                m.min_depth,
                m.max_depth,
                m.init_cycles,
                m.init_cycles as f64 / cost.cpu_hz as f64 * 1000.0,
            );
        }
        let _ = app;
    }
}
