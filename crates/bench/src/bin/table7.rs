//! Table 7: overhead when filesystem-related syscalls (open/read/write/
//! send/recv and variants) are protected too (§11.2), broken into the
//! paper's three checkpoints: seccomp hook only, + fetching process state
//! via ptrace, + full context checking.

use bastion::apps::ALL_APPS;
use bastion::harness::{run_table7_row, WorkloadSize};
use bastion::vm::CostModel;
use bastion_bench::{fmt_metric, row};

fn main() {
    let size = WorkloadSize::standard();
    let cost = CostModel::default();

    println!("Table 7: Overhead with file-system syscalls protected (§11.2)");
    println!();
    let labels = [
        "seccomp hook only",
        "fetch process state",
        "full context checking",
    ];
    println!(
        "{}",
        row(
            "Configuration",
            &ALL_APPS
                .iter()
                .map(|a| a.id().to_string())
                .collect::<Vec<_>>()
        )
    );
    let mut grids = Vec::new();
    for app in ALL_APPS {
        eprintln!("running {} ...", app.label());
        grids.push(run_table7_row(app, &size, cost));
    }
    // Baseline row for reference.
    let base_cells: Vec<String> = ALL_APPS
        .iter()
        .zip(&grids)
        .map(|(app, (base, _))| fmt_metric(*app, base.metric))
        .collect();
    println!("{}", row("Unprotected baseline", &base_cells));
    for (i, label) in labels.iter().enumerate() {
        let cells: Vec<String> = ALL_APPS
            .iter()
            .zip(&grids)
            .map(|(app, (base, rows))| {
                format!(
                    "{} ({:+.2}%)",
                    fmt_metric(*app, rows[i].metric).trim(),
                    rows[i].overhead_vs(base)
                )
            })
            .collect();
        println!("{}", row(label, &cells));
    }
    println!();
    println!(
        "Expected shape (paper): fetching process state dominates — the jump \
         between rows 1 and 2 dwarfs both the hook cost and the row-2→3 delta."
    );
}
