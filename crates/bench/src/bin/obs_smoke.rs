//! Telemetry smoke test (CI `obs-smoke` step).
//!
//! Two runs of webserve/quick under full protection:
//!
//! 1. **Clean path** (tracing off) — asserts the telemetry layer recorded
//!    nothing, then diffs `virtual_cycles`/`traps` against the committed
//!    `BENCH_interp.json` webserve row: the bench-smoke regression gate.
//! 2. **Traced** — asserts the traced run's cycle counts are bit-identical
//!    to the clean run (tracing charges no virtual cycles), exports a
//!    Chrome trace, validates its shape, and cross-checks the span ring
//!    against `MonitorStats`: trap spans == traps, cache-hit instants ==
//!    cache-hit counters, and the per-trap phase sum == monitor time
//!    (`trace_cycles - init_cycles`).
//!
//! Exit status is non-zero on any divergence; usage:
//! `obs_smoke [BENCH_interp.json] [OBS_trace.json]`.

use bastion::apps::App;
use bastion::compiler::BastionCompiler;
use bastion::harness::{run_app_benchmark, AppBenchmark, WorkloadSize};
use bastion::obs;
use bastion::obs::Phase;
use bastion::vm::CostModel;
use bastion::Protection;
use serde::{DeError, Deserialize, Value};

/// `Value` passthrough so the shim can parse arbitrary JSON documents.
struct RawValue(Value);

impl Deserialize for RawValue {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(RawValue(v.clone()))
    }
}

fn webserve_quick() -> AppBenchmark {
    run_app_benchmark(
        App::Webserve,
        &Protection::full(),
        &WorkloadSize::quick(),
        &BastionCompiler::new(),
        CostModel::default(),
    )
}

fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::UInt(u) => Some(u),
        Value::Int(i) if i >= 0 => Some(i as u64),
        _ => None,
    }
}

/// The committed bench baseline's webserve row: `(virtual_cycles, traps)`.
fn baseline_row(path: &str) -> Result<(u64, u64), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc: RawValue = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let apps = match doc.0.field("apps") {
        Ok(Value::Array(items)) => items,
        _ => return Err(format!("{path}: no `apps` array")),
    };
    for row in apps {
        let is_webserve = matches!(row.field("app"), Ok(Value::Str(s)) if s == "webserve");
        if !is_webserve {
            continue;
        }
        let cycles = row.field("virtual_cycles").ok().and_then(as_u64);
        let traps = row.field("traps").ok().and_then(as_u64);
        if let (Some(c), Some(t)) = (cycles, traps) {
            return Ok((c, t));
        }
        return Err(format!("{path}: webserve row missing cycle fields"));
    }
    Err(format!("{path}: no webserve row"))
}

fn fail(msg: &str) -> ! {
    eprintln!("FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let bench_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_interp.json".to_string());
    let trace_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "OBS_trace.json".to_string());

    // ---- clean path: tracing off ----
    let clean = webserve_quick();
    if obs::event_count() != 0 {
        fail("disabled tracer recorded events on the clean path");
    }
    println!(
        "clean path: cycles={} traps={} trace_cycles={}",
        clean.cycles, clean.traps, clean.trace_cycles
    );
    match baseline_row(&bench_path) {
        Ok((cycles, traps)) => {
            if (clean.cycles, clean.traps) != (cycles, traps) {
                fail(&format!(
                    "clean-path divergence vs {bench_path}: cycles {} vs {}, traps {} vs {}",
                    clean.cycles, cycles, clean.traps, traps
                ));
            }
            println!("bench-smoke: matches {bench_path} webserve row exactly");
        }
        Err(e) => fail(&e),
    }

    // ---- traced run ----
    obs::enable(1 << 17);
    let traced = webserve_quick();
    let events = obs::take_events();
    let metrics = obs::metrics_snapshot();
    obs::disable();
    if (traced.cycles, traced.traps, traced.trace_cycles)
        != (clean.cycles, clean.traps, clean.trace_cycles)
    {
        fail("span tracing perturbed the deterministic clock");
    }
    let stats = traced.monitor.as_ref().unwrap_or_else(|| {
        fail("traced run has no monitor stats");
    });

    let json = obs::chrome_trace_json(&events);
    let shape = match obs::validate_chrome_trace(&json) {
        Ok(s) => s,
        Err(e) => fail(&format!("exported trace invalid: {e}")),
    };
    if shape.trap_spans != stats.traps {
        fail(&format!(
            "trace has {} trap spans but the monitor served {} traps",
            shape.trap_spans, stats.traps
        ));
    }

    // Per-trap phase sums vs MonitorStats: the trap spans partition monitor
    // time exactly — trace_cycles minus one-time monitor initialization.
    let totals = obs::phase_totals(&events);
    let trap_cycles = totals
        .iter()
        .find(|t| t.phase == Phase::Trap)
        .map_or(0, |t| t.cycles);
    let monitor_time = traced.trace_cycles - stats.init_cycles;
    if trap_cycles != monitor_time {
        fail(&format!(
            "trap span sum {trap_cycles} != monitor time {monitor_time} \
             (trace_cycles {} - init {})",
            traced.trace_cycles, stats.init_cycles
        ));
    }
    let instants = |p: Phase| {
        totals
            .iter()
            .find(|t| t.phase == p)
            .map_or(0, |t| t.instants)
    };
    if instants(Phase::CtCacheHit) != stats.ct_cache_hits {
        fail("ct cache-hit instants diverge from MonitorStats");
    }
    if instants(Phase::WalkCacheHit) != stats.walk_cache_hits {
        fail("walk cache-hit instants diverge from MonitorStats");
    }
    let cpt = metrics.histogram("kernel.cycles_per_trap");
    if cpt.map_or(0, |h| h.count) != stats.traps {
        fail("kernel.cycles_per_trap histogram count diverges from traps");
    }
    // Sketch lane: one verify-latency observation per trap served.
    let verify = metrics.sketch("trap.verify_cycles");
    if verify.map_or(0, |s| s.count) != stats.traps {
        fail("trap.verify_cycles sketch count diverges from traps");
    }

    // Prometheus exposition of the same snapshot must validate: typed
    // families, cumulative buckets ending at +Inf, summary quantile lanes.
    let prom = obs::prometheus_text(&metrics, &[("app", "webserve")]);
    let prom_shape = match obs::validate_prometheus(&prom) {
        Ok(s) => s,
        Err(e) => fail(&format!("Prometheus exposition invalid: {e}")),
    };
    if prom_shape.summaries == 0 {
        fail("Prometheus exposition exports no summary (sketch) family");
    }

    std::fs::write(&trace_path, &json).unwrap_or_else(|e| fail(&format!("{trace_path}: {e}")));
    println!(
        "traced: {} events, {} trap spans, depth {}; trap time {} == trace_cycles {} - init {}",
        shape.events,
        shape.trap_spans,
        shape.max_depth,
        trap_cycles,
        traced.trace_cycles,
        stats.init_cycles
    );
    println!("trace written to {trace_path}");
    println!("obs-smoke OK");
}
