//! Table 1: classification of sensitive system calls commonly leveraged
//! by attackers.

use bastion::ir::sysno::{self, AttackVector};

fn main() {
    println!("Table 1: Classification of sensitive system calls");
    println!();
    println!("{:<26} Applicable System Calls", "Classification");
    for vector in [
        AttackVector::ArbitraryCodeExecution,
        AttackVector::MemoryPermissions,
        AttackVector::PrivilegeEscalation,
        AttackVector::Networking,
    ] {
        let names: Vec<&str> = sysno::SENSITIVE
            .iter()
            .filter(|&&(_, v)| v == vector)
            .map(|&(nr, _)| sysno::name(nr).expect("named"))
            .collect();
        println!("{:<26} {}", vector.label(), names.join(", "));
    }
    println!();
    println!(
        "{} sensitive system calls protected by default; seccomp KILLs every",
        sysno::SENSITIVE.len()
    );
    println!("not-callable syscall and TRACEs the callable sensitive ones.");
}
