//! Figure 3 + Table 3: performance overhead of LLVM CFI, CET, and the
//! three BASTION context configurations for all three applications,
//! against the unprotected vanilla baseline.

use bastion::apps::ALL_APPS;
use bastion::harness::{run_figure3_row, WorkloadSize};
use bastion::vm::CostModel;
use bastion_bench::{fmt_metric, fmt_overhead, row, CPU_HZ};

fn main() {
    let size = WorkloadSize::standard();
    let cost = CostModel::default();
    let mut rows = Vec::new();
    for app in ALL_APPS {
        eprintln!("running {} ...", app.label());
        rows.push((app, run_figure3_row(app, &size, cost)));
    }

    println!("Figure 3: Performance overhead vs. unprotected vanilla (virtual time)");
    println!();
    let headers = ["LLVM CFI", "CET", "CET+CT", "CET+CT+CF", "CET+CT+CF+AI"];
    println!(
        "{}",
        row(
            "Application",
            &headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>()
        )
    );
    for (app, (base, cols)) in &rows {
        let cells: Vec<String> = cols.iter().map(|c| fmt_overhead(c, base)).collect();
        println!("{}", row(app.label(), &cells));
    }

    println!();
    println!("Table 3: Raw benchmark numbers behind Figure 3");
    println!();
    let mut headers3 = vec!["Vanilla".to_string()];
    headers3.extend(headers.iter().map(|h| (*h).to_string()));
    println!("{}", row("Application (metric)", &headers3));
    for (app, (base, cols)) in &rows {
        let mut cells = vec![fmt_metric(*app, base.metric)];
        cells.extend(cols.iter().map(|c| fmt_metric(*app, c.metric)));
        println!("{}", row(app.label(), &cells));
    }
    println!();
    println!(
        "(NGINX: throughput MB/s; SQLite: new-order transactions/min; vsftpd: \
         seconds to download 100 MB — all in deterministic virtual time at {} GHz)",
        CPU_HZ / 1_000_000_000
    );
}
