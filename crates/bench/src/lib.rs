//! # bastion-bench
//!
//! The reproduction harness for every table and figure in the paper's
//! evaluation (§9, §10, §11.2). Each artifact has a dedicated binary that
//! prints the paper-style table from a deterministic virtual-time run:
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 — sensitive syscall classification |
//! | `fig3_table3` | Figure 3 (% overhead) + Table 3 (raw metrics) |
//! | `table4` | Table 4 — sensitive syscall usage + §9.2 depth stats |
//! | `table5` | Table 5 — instrumentation statistics |
//! | `table6` | Table 6 — the 32-attack security evaluation |
//! | `table7` | Table 7 — filesystem-extended protection overhead |
//! | `ablations` | §11.2 in-kernel monitor model, ASLR, init cost |
//!
//! `cargo bench` additionally runs criterion wall-clock benchmarks of the
//! simulator itself (`overhead`, `monitor_micro`).
//!
//! Results are recorded in the repository's `EXPERIMENTS.md`.

use bastion::apps::App;
use bastion::harness::AppBenchmark;

/// Default cycles→wall conversion used when printing "seconds".
pub const CPU_HZ: u64 = 2_000_000_000;

/// Formats a metric the way Table 3 prints it.
pub fn fmt_metric(app: App, metric: f64) -> String {
    match app {
        App::Webserve => format!("{metric:9.2} MB/s"),
        App::Dbkv => format!("{metric:11.2} NOTPM"),
        App::Ftpd => format!("{metric:8.3} sec"),
    }
}

/// Formats an overhead percentage ("+1.25%").
pub fn fmt_overhead(col: &AppBenchmark, base: &AppBenchmark) -> String {
    format!("{:+.2}%", col.overhead_vs(base))
}

/// Left-pads a labelled row for the table printers.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<34}");
    for c in cells {
        s.push_str(&format!(" {c:>18}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_formats_match_table3_units() {
        assert!(fmt_metric(App::Webserve, 110.61).contains("MB/s"));
        assert!(fmt_metric(App::Dbkv, 37107.41).contains("NOTPM"));
        assert!(fmt_metric(App::Ftpd, 10.75).contains("sec"));
    }

    #[test]
    fn rows_align() {
        let r = row("x", &["a".into(), "b".into()]);
        assert!(r.len() > 34);
        assert!(r.contains('a') && r.contains('b'));
    }
}
