//! # bastion-compiler
//!
//! The BASTION compiler pass (paper §6): given a [`bastion_ir::Module`], it
//!
//! 1. runs the call-type, control-flow, and sensitive-variable analyses
//!    from `bastion-analysis`;
//! 2. instruments the module with the Table 2 runtime-library intrinsics
//!    ([`instrument`]);
//! 3. lays the instrumented module out and emits the
//!    [`metadata::ContextMetadata`] bundle the runtime monitor loads —
//!    call-type permissions, callee→valid-caller lists, per-callsite
//!    argument specs, function frame geometry, and the Table 5 statistics.
//!
//! ```
//! use bastion_compiler::BastionCompiler;
//! use bastion_ir::build::ModuleBuilder;
//! use bastion_ir::{sysno, Operand, Ty};
//!
//! # fn main() -> Result<(), bastion_ir::ValidateError> {
//! let mut mb = ModuleBuilder::new("app");
//! let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
//! let path = mb.global_str("upgrade", "/bin/upgrade");
//! let mut f = mb.function("main", &[], Ty::I64);
//! let p = f.global_addr(path);
//! let r = f.call_direct(execve, &[p.into(), Operand::Imm(0), Operand::Imm(0)]);
//! f.ret(Some(r.into()));
//! f.finish();
//!
//! let out = BastionCompiler::new().compile(mb.finish())?;
//! assert_eq!(out.metadata.stats.sensitive_callsites, 1);
//! # Ok(())
//! # }
//! ```

pub mod instrument;
pub mod metadata;

pub use instrument::{instrument_with_breadth, Instrumented};
pub use metadata::{
    ArgMeta, CallsiteKind, CallsiteMeta, ContextMetadata, FuncMeta, InstrStats, SyscallSiteMeta,
};

use bastion_analysis::sensitive::ArgSpec;
use bastion_analysis::{CallGraph, CallTypeReport, ControlFlowReport, SensitiveReport};
use bastion_ir::module::GlobalInit;
use bastion_ir::{sysno, CodeLayout, Module, ValidateError};
use std::collections::{BTreeMap, BTreeSet};

/// How widely stores are instrumented with `ctx_write_mem`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstrumentationBreadth {
    /// BASTION's design: only sensitive variables' stores (paper §3.3).
    #[default]
    SensitiveOnly,
    /// DFI-style: every store maintains a shadow copy. Used by the
    /// `ablation` benches to quantify the paper's claim that argument
    /// integrity is "magnitudes smaller" than application-wide DFI.
    AllStores,
}

/// The compiler pass configuration.
#[derive(Debug, Clone)]
pub struct BastionCompiler {
    sensitive: BTreeSet<u32>,
    breadth: InstrumentationBreadth,
}

impl Default for BastionCompiler {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of compiling a module under BASTION.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The instrumented module (load this, not the original).
    pub module: Module,
    /// The context metadata bundle for the runtime monitor.
    pub metadata: ContextMetadata,
}

impl BastionCompiler {
    /// A compiler protecting the paper's default 20 sensitive syscalls
    /// (Table 1).
    pub fn new() -> Self {
        BastionCompiler {
            sensitive: sysno::sensitive_set(),
            breadth: InstrumentationBreadth::SensitiveOnly,
        }
    }

    /// A compiler protecting an explicit sensitive set (e.g. the extended
    /// filesystem set of §11.2 / Table 7).
    pub fn with_sensitive(sensitive: BTreeSet<u32>) -> Self {
        BastionCompiler {
            sensitive,
            breadth: InstrumentationBreadth::SensitiveOnly,
        }
    }

    /// Selects the store-instrumentation breadth (DFI-style ablation).
    pub fn with_breadth(mut self, breadth: InstrumentationBreadth) -> Self {
        self.breadth = breadth;
        self
    }

    /// The sensitive set in effect.
    pub fn sensitive(&self) -> &BTreeSet<u32> {
        &self.sensitive
    }

    /// Analyzes, instruments, and generates metadata.
    ///
    /// # Errors
    /// Fails if the input (or, defensively, the instrumented output) does
    /// not validate.
    pub fn compile(&self, module: Module) -> Result<CompileOutput, ValidateError> {
        module.validate()?;
        let cg = CallGraph::build(&module);
        let ct = CallTypeReport::build(&module, &cg);
        let cf = ControlFlowReport::build(&module, &cg, &self.sensitive);
        let sens = SensitiveReport::build(&module, &cg, &self.sensitive);
        // Flow is call-structural, so the pre-instrumentation module (the
        // pass only inserts straight-line intrinsics) gives the same
        // automaton as the instrumented one.
        let syscall_flow = bastion_analysis::sysflow::analyze(&module, &cg, &self.sensitive);

        let inst = instrument_with_breadth(&module, &sens, self.breadth);
        inst.module.validate()?;

        let layout = CodeLayout::new(&inst.module);
        let new_cg = CallGraph::build(&inst.module);
        let addr_of = |loc| layout.addr_of(inst.loc_map[&loc]).raw();

        // Callsite table from the instrumented module.
        let mut callsites = BTreeMap::new();
        for c in &new_cg.callsites {
            let kind = match c.kind {
                bastion_analysis::CallsiteKind::Direct(t) => {
                    CallsiteKind::Direct(layout.func_entry(t).raw())
                }
                bastion_analysis::CallsiteKind::Indirect => CallsiteKind::Indirect,
            };
            callsites.insert(
                layout.addr_of(c.loc).raw(),
                CallsiteMeta {
                    kind,
                    in_func: layout.func_entry(c.loc.func).raw(),
                    argc: c.argc as u8,
                },
            );
        }

        // Control-flow context: callee entry → caller callsite addresses.
        let valid_callers = cf
            .valid_callers
            .iter()
            .map(|(callee, sites)| {
                (
                    layout.func_entry(*callee).raw(),
                    sites.iter().map(|s| addr_of(*s)).collect::<BTreeSet<u64>>(),
                )
            })
            .collect();

        let functions = inst
            .module
            .iter_funcs()
            .map(|(fid, f)| {
                let entry = layout.func_entry(fid).raw();
                (
                    entry,
                    FuncMeta {
                        entry,
                        end: layout.func_end(fid).raw(),
                        name: f.name.clone(),
                        frame_size: f.frame_size(&inst.module.structs),
                        slot_offsets: (0..f.locals.len())
                            .map(|i| {
                                f.slot_offset(bastion_ir::SlotId(i as u32), &inst.module.structs)
                            })
                            .collect(),
                        param_count: f.params.len() as u8,
                        stub_nr: f.syscall_nr(),
                        address_taken: new_cg.is_address_taken(fid),
                    },
                )
            })
            .collect();

        let arg_meta = |callsite, pos: u8, spec: &ArgSpec, nr: Option<u32>| -> ArgMeta {
            let extended = nr.is_some_and(|n| sysno::extended_positions(n).contains(&pos));
            match spec {
                ArgSpec::Const(v) => ArgMeta::Const(*v),
                ArgSpec::Mem(_) => {
                    if inst.placed_mem_binds.contains(&(callsite, pos)) {
                        ArgMeta::Mem
                    } else {
                        ArgMeta::Opaque
                    }
                }
                ArgSpec::GlobalAddr(g) => {
                    let gd = &module.globals[g.index()];
                    let expected = if extended {
                        init_bytes(&gd.init, gd.ty.size(&module.structs))
                    } else {
                        None
                    };
                    ArgMeta::Global {
                        name: gd.name.clone(),
                        expected,
                    }
                }
                ArgSpec::StackAddr => ArgMeta::StackAddr,
                ArgSpec::Opaque => ArgMeta::Opaque,
            }
        };

        let mut syscall_sites = BTreeMap::new();
        for s in &sens.syscall_sites {
            let args = s
                .args
                .iter()
                .enumerate()
                .map(|(i, spec)| arg_meta(s.callsite, (i + 1) as u8, spec, Some(s.nr)))
                .collect();
            syscall_sites.insert(addr_of(s.callsite), SyscallSiteMeta { nr: s.nr, args });
        }

        let mut prop_sites: BTreeMap<u64, Vec<(u8, ArgMeta)>> = BTreeMap::new();
        for s in &sens.prop_sites {
            let v = s
                .args
                .iter()
                .map(|(pos, spec)| (*pos, arg_meta(s.callsite, *pos, spec, None)))
                .collect();
            prop_sites.insert(addr_of(s.callsite), v);
        }

        let stats = InstrStats {
            total_callsites: new_cg.total_callsites(),
            direct_callsites: new_cg.direct_callsites(),
            indirect_callsites: new_cg.indirect_callsites(),
            sensitive_callsites: sens.syscall_sites.len(),
            sensitive_indirect: ct.sensitive_indirect_count(),
            ctx_write_mem: inst.write_mems,
            ctx_bind_mem: inst.placed_mem_binds.len(),
            ctx_bind_const: inst.const_binds,
        };

        let main_entry = inst
            .module
            .func_by_name("main")
            .map_or(0, |f| layout.func_entry(f).raw());

        let metadata = ContextMetadata {
            module_name: inst.module.name.clone(),
            link_base: layout.code_base().raw(),
            sensitive_nrs: self.sensitive.clone(),
            syscall_classes: ct.classes.clone(),
            callsites,
            valid_callers,
            indirect_entries: cf
                .indirect_entries
                .iter()
                .map(|f| layout.func_entry(*f).raw())
                .collect(),
            main_entry,
            functions,
            syscall_sites,
            prop_sites,
            syscall_flow,
            stats,
        };

        Ok(CompileOutput {
            module: inst.module,
            metadata,
        })
    }
}

fn init_bytes(init: &GlobalInit, size: u64) -> Option<Vec<u8>> {
    match init {
        GlobalInit::Bytes(b) => Some(b.clone()),
        GlobalInit::Words(ws) => Some(ws.iter().flat_map(|w| w.to_le_bytes()).collect()),
        GlobalInit::Zero => Some(vec![0u8; size.min(256) as usize]),
        GlobalInit::Relocated(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{Operand, Ty};

    /// nginx-Listing-1-like module: execve called directly from a helper
    /// reached from main; plus an unrelated indirect call.
    fn listing1_module() -> Module {
        let mut mb = ModuleBuilder::new("l1");
        let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
        let path = mb.global_str("upgrade_path", "/usr/sbin/new");
        let exec_proc = mb.declare("ngx_execute_proc", &[], Ty::Void);
        let filter = mb.declare("output_filter", &[("x", Ty::I64)], Ty::I64);

        let mut f = mb.define(exec_proc);
        let p = f.global_addr(path);
        let _ = f.call_direct(execve, &[p.into(), 0i64.into(), 0i64.into()]);
        f.ret(None);
        f.finish();

        let mut f = mb.define(filter);
        f.ret(Some(Operand::Imm(0)));
        f.finish();

        let mut f = mb.function("main", &[], Ty::I64);
        let _ = f.call_direct(exec_proc, &[]);
        let fp = f.func_addr(filter);
        let _ = f.call_indirect(fp, &[Operand::Imm(1)]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn compile_produces_consistent_metadata() {
        let out = BastionCompiler::new().compile(listing1_module()).unwrap();
        let md = &out.metadata;
        assert_eq!(
            md.syscall_classes[&sysno::EXECVE],
            bastion_analysis::CallTypeClass::DirectOnly
        );
        assert_eq!(md.stats.sensitive_callsites, 1);
        assert_eq!(md.stats.sensitive_indirect, 0);
        assert_eq!(md.stats.indirect_callsites, 1);
        // The execve callsite address is a recorded direct callsite.
        let (addr, site) = md.syscall_sites.iter().next().unwrap();
        assert_eq!(site.nr, sysno::EXECVE);
        let cs = &md.callsites[addr];
        assert!(matches!(cs.kind, CallsiteKind::Direct(_)));
        // Pathname is a global with embedded expected bytes (extended arg).
        match &site.args[0] {
            ArgMeta::Global { name, expected } => {
                assert_eq!(name, "upgrade_path");
                assert_eq!(expected.as_deref(), Some(b"/usr/sbin/new\0".as_slice()));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(site.args[1], ArgMeta::Const(0));
    }

    #[test]
    fn metadata_carries_the_syscall_flow_automaton() {
        let out = BastionCompiler::new().compile(listing1_module()).unwrap();
        let flow = &out.metadata.syscall_flow;
        // execve (via ngx_execute_proc) is the only sensitive trap: it can
        // come first and nothing can follow it.
        assert_eq!(
            flow.initial.iter().copied().collect::<Vec<_>>(),
            vec![sysno::EXECVE]
        );
        assert!(flow.edges.is_empty());
        // The automaton survives JSON and rebasing untouched (nr-based).
        let back = ContextMetadata::from_json(&out.metadata.to_json().unwrap()).unwrap();
        assert_eq!(&back.syscall_flow, flow);
        assert_eq!(&out.metadata.rebased(0x2000).syscall_flow, flow);
    }

    #[test]
    fn callsite_addresses_resolve_in_instrumented_layout() {
        let out = BastionCompiler::new().compile(listing1_module()).unwrap();
        let layout = CodeLayout::new(&out.module);
        for &addr in out.metadata.callsites.keys() {
            let loc = layout.loc_of(bastion_ir::CodeAddr(addr)).unwrap();
            let f = &out.module.functions[loc.func.index()];
            let inst = &f.blocks[loc.block.index()].insts[loc.inst];
            assert!(inst.is_call(), "metadata callsite is not a call: {inst:?}");
        }
    }

    #[test]
    fn valid_callers_reference_real_callsites() {
        let out = BastionCompiler::new().compile(listing1_module()).unwrap();
        let md = &out.metadata;
        for (callee, sites) in &md.valid_callers {
            assert!(md.functions.contains_key(callee));
            for s in sites {
                assert!(md.callsites.contains_key(s));
            }
        }
        // execve's valid caller is inside ngx_execute_proc.
        let execve_entry = md
            .functions
            .values()
            .find(|f| f.stub_nr == Some(sysno::EXECVE))
            .unwrap()
            .entry;
        let callers = &md.valid_callers[&execve_entry];
        assert_eq!(callers.len(), 1);
        let site = md.callsites[callers.iter().next().unwrap()];
        assert_eq!(md.functions[&site.in_func].name, "ngx_execute_proc");
    }

    #[test]
    fn metadata_roundtrips_and_rebases() {
        let out = BastionCompiler::new().compile(listing1_module()).unwrap();
        let json = out.metadata.to_json().unwrap();
        let back = ContextMetadata::from_json(&json).unwrap();
        assert_eq!(back, out.metadata);
        let shifted = out.metadata.rebased(0x2000);
        assert_eq!(shifted.main_entry, out.metadata.main_entry + 0x2000);
        assert_eq!(
            shifted.syscall_sites.len(),
            out.metadata.syscall_sites.len()
        );
    }

    #[test]
    fn extended_sensitive_set_changes_scope() {
        let mut mb = ModuleBuilder::new("fsapp");
        let open = mb.declare_syscall_stub("open", sysno::OPEN, 3);
        let p = mb.global_str("conf", "/etc/conf");
        let mut f = mb.function("main", &[], Ty::I64);
        let pa = f.global_addr(p);
        let r = f.call_direct(open, &[pa.into(), 0i64.into(), 0i64.into()]);
        f.ret(Some(r.into()));
        f.finish();
        let m = mb.finish();

        let default = BastionCompiler::new().compile(m.clone()).unwrap();
        assert_eq!(default.metadata.stats.sensitive_callsites, 0);

        let extended = BastionCompiler::with_sensitive(sysno::extended_sensitive_set())
            .compile(m)
            .unwrap();
        assert_eq!(extended.metadata.stats.sensitive_callsites, 1);
    }
}
