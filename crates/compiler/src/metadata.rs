//! BASTION context metadata (paper §6.1, §6.2, §6.3.4).
//!
//! Everything the runtime monitor needs, keyed by *link-time* virtual
//! addresses. At launch the monitor learns the load bias (the ASLR slide,
//! as if reading `/proc/pid/maps`) and calls [`ContextMetadata::rebased`]
//! to translate the whole table — BASTION is relative-addressing based and
//! fully ASLR-compatible (paper §9.2).

use bastion_analysis::{CallTypeClass, SyscallFlow};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How a callsite invokes its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallsiteKind {
    /// Direct call; the target's entry address.
    Direct(u64),
    /// Indirect call through a code pointer.
    Indirect,
}

/// One call instruction in the protected binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallsiteMeta {
    /// Direct/indirect and target.
    pub kind: CallsiteKind,
    /// Entry address of the function containing the callsite.
    pub in_func: u64,
    /// Number of arguments passed.
    pub argc: u8,
}

/// Per-function geometry the monitor needs to interpret stack frames
/// (the DWARF analogue).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuncMeta {
    /// Entry address.
    pub entry: u64,
    /// One past the last instruction address.
    pub end: u64,
    /// Symbol name.
    pub name: String,
    /// Slot-area size in bytes.
    pub frame_size: u64,
    /// Slot offsets (parameters first).
    pub slot_offsets: Vec<u64>,
    /// Number of parameters.
    pub param_count: u8,
    /// Syscall number if this is a libc stub.
    pub stub_nr: Option<u32>,
    /// Whether the function's address is taken (may be an indirect target).
    pub address_taken: bool,
}

/// Verification spec for one argument position (compiler §6.3.4: "argument
/// types — constant vs. memory-backed").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArgMeta {
    /// Statically-known constant; compare directly.
    Const(i64),
    /// Memory-backed; a runtime binding in shadow memory names the variable.
    Mem,
    /// The address of a named global object (the monitor resolves the
    /// symbol against the loaded image); for extended arguments the
    /// expected pointee bytes are embedded too.
    Global {
        /// Symbol name of the global.
        name: String,
        /// Expected initial pointee bytes (extended args on constant data).
        expected: Option<Vec<u8>>,
    },
    /// A stack address; only plausibility is checkable.
    StackAddr,
    /// Unverifiable position.
    Opaque,
}

/// A sensitive syscall callsite entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallSiteMeta {
    /// Syscall number invoked here.
    pub nr: u32,
    /// Spec per argument position (index 0 = position 1).
    pub args: Vec<ArgMeta>,
}

/// Instrumentation statistics — the rows of Table 5.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrStats {
    /// Total application callsites.
    pub total_callsites: usize,
    /// Direct callsites.
    pub direct_callsites: usize,
    /// Indirect callsites.
    pub indirect_callsites: usize,
    /// Sensitive system call callsites.
    pub sensitive_callsites: usize,
    /// Sensitive syscalls callable indirectly.
    pub sensitive_indirect: usize,
    /// `ctx_write_mem` instrumentation points.
    pub ctx_write_mem: usize,
    /// `ctx_bind_mem_X` instrumentation points.
    pub ctx_bind_mem: usize,
    /// `ctx_bind_const_X` instrumentation points.
    pub ctx_bind_const: usize,
}

impl InstrStats {
    /// Total instrumentation sites (Table 5 last row).
    pub fn total_instrumentation(&self) -> usize {
        self.ctx_write_mem + self.ctx_bind_mem + self.ctx_bind_const
    }
}

/// The complete metadata bundle the compiler hands the monitor.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ContextMetadata {
    /// Protected module name.
    pub module_name: String,
    /// Code base the addresses below are relative to.
    pub link_base: u64,
    /// The sensitive syscall set this metadata was built for.
    pub sensitive_nrs: BTreeSet<u32>,
    /// Call-type class per syscall number present in the image.
    pub syscall_classes: BTreeMap<u32, CallTypeClass>,
    /// Every callsite in the binary.
    pub callsites: BTreeMap<u64, CallsiteMeta>,
    /// Control-flow context: callee entry → valid caller callsites.
    pub valid_callers: BTreeMap<u64, BTreeSet<u64>>,
    /// Functions at which a stack walk may legitimately terminate
    /// (address-taken functions inside the reaching subgraph).
    pub indirect_entries: BTreeSet<u64>,
    /// Entry of `main` (the other legitimate walk terminator).
    pub main_entry: u64,
    /// Function table (by entry address).
    pub functions: BTreeMap<u64, FuncMeta>,
    /// Sensitive syscall callsites with argument specs.
    pub syscall_sites: BTreeMap<u64, SyscallSiteMeta>,
    /// Non-syscall callsites passing sensitive arguments:
    /// callsite → (position, spec) pairs.
    pub prop_sites: BTreeMap<u64, Vec<(u8, ArgMeta)>>,
    /// Main-rooted syscall-flow automaton over the sensitive alphabet
    /// (initial nrs + ordered adjacency edges); nr-based, so rebasing is
    /// the identity. Empty means "no flow information" and consumers fall
    /// back to coarse reachability.
    pub syscall_flow: SyscallFlow,
    /// Table 5 statistics.
    pub stats: InstrStats,
}

impl ContextMetadata {
    /// The function containing `addr`, if any.
    pub fn func_of(&self, addr: u64) -> Option<&FuncMeta> {
        let (_, f) = self.functions.range(..=addr).next_back()?;
        (addr < f.end).then_some(f)
    }

    /// Translates every address by `delta` (runtime base − link base).
    pub fn rebased(&self, delta: i64) -> ContextMetadata {
        let r = |a: u64| a.wrapping_add(delta as u64);
        ContextMetadata {
            module_name: self.module_name.clone(),
            link_base: r(self.link_base),
            sensitive_nrs: self.sensitive_nrs.clone(),
            syscall_classes: self.syscall_classes.clone(),
            callsites: self
                .callsites
                .iter()
                .map(|(&a, m)| {
                    (
                        r(a),
                        CallsiteMeta {
                            kind: match m.kind {
                                CallsiteKind::Direct(t) => CallsiteKind::Direct(r(t)),
                                CallsiteKind::Indirect => CallsiteKind::Indirect,
                            },
                            in_func: r(m.in_func),
                            argc: m.argc,
                        },
                    )
                })
                .collect(),
            valid_callers: self
                .valid_callers
                .iter()
                .map(|(&callee, sites)| (r(callee), sites.iter().map(|&s| r(s)).collect()))
                .collect(),
            indirect_entries: self.indirect_entries.iter().map(|&a| r(a)).collect(),
            main_entry: r(self.main_entry),
            functions: self
                .functions
                .iter()
                .map(|(&e, f)| {
                    (
                        r(e),
                        FuncMeta {
                            entry: r(f.entry),
                            end: r(f.end),
                            ..f.clone()
                        },
                    )
                })
                .collect(),
            syscall_sites: self
                .syscall_sites
                .iter()
                .map(|(&a, s)| (r(a), rebase_site(s, delta)))
                .collect(),
            prop_sites: self
                .prop_sites
                .iter()
                .map(|(&a, v)| {
                    (
                        r(a),
                        v.iter().map(|(p, m)| (*p, rebase_arg(m, delta))).collect(),
                    )
                })
                .collect(),
            syscall_flow: self.syscall_flow.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Serializes to JSON (the "metadata file" shipped with the binary).
    ///
    /// # Errors
    /// Propagates serializer errors (practically infallible).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a metadata file.
    ///
    /// # Errors
    /// Fails on malformed JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

fn rebase_arg(m: &ArgMeta, _delta: i64) -> ArgMeta {
    // Symbol-named globals need no rebasing; constants are position-free.
    m.clone()
}

fn rebase_site(s: &SyscallSiteMeta, delta: i64) -> SyscallSiteMeta {
    SyscallSiteMeta {
        nr: s.nr,
        args: s.args.iter().map(|a| rebase_arg(a, delta)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ContextMetadata {
        let mut functions = BTreeMap::new();
        functions.insert(
            0x40_0000,
            FuncMeta {
                entry: 0x40_0000,
                end: 0x40_0040,
                name: "main".into(),
                frame_size: 16,
                slot_offsets: vec![0, 8],
                param_count: 0,
                stub_nr: None,
                address_taken: false,
            },
        );
        let mut syscall_sites = BTreeMap::new();
        syscall_sites.insert(
            0x40_0010,
            SyscallSiteMeta {
                nr: 59,
                args: vec![
                    ArgMeta::Global {
                        name: "upgrade_path".into(),
                        expected: Some(b"/bin/upgrade\0".to_vec()),
                    },
                    ArgMeta::Const(0),
                ],
            },
        );
        ContextMetadata {
            module_name: "t".into(),
            link_base: 0x40_0000,
            sensitive_nrs: [59].into(),
            syscall_classes: [(59, CallTypeClass::DirectOnly)].into(),
            callsites: BTreeMap::new(),
            valid_callers: BTreeMap::new(),
            indirect_entries: BTreeSet::new(),
            main_entry: 0x40_0000,
            functions,
            syscall_sites,
            prop_sites: BTreeMap::new(),
            syscall_flow: SyscallFlow::default(),
            stats: InstrStats::default(),
        }
    }

    #[test]
    fn func_of_range_lookup() {
        let m = tiny();
        assert_eq!(m.func_of(0x40_0000).unwrap().name, "main");
        assert_eq!(m.func_of(0x40_003c).unwrap().name, "main");
        assert!(m.func_of(0x40_0040).is_none());
        assert!(m.func_of(0x3f_ffff).is_none());
    }

    #[test]
    fn rebase_translates_everything() {
        let m = tiny().rebased(0x1000);
        assert_eq!(m.main_entry, 0x40_1000);
        assert!(m.functions.contains_key(&0x40_1000));
        let site = &m.syscall_sites[&0x40_1010];
        match &site.args[0] {
            ArgMeta::Global { name, expected } => {
                assert_eq!(name, "upgrade_path");
                assert!(expected.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Constants are untouched.
        assert_eq!(site.args[1], ArgMeta::Const(0));
    }

    #[test]
    fn json_roundtrip() {
        let m = tiny();
        let s = m.to_json().unwrap();
        let back = ContextMetadata::from_json(&s).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn stats_total() {
        let s = InstrStats {
            ctx_write_mem: 10,
            ctx_bind_mem: 4,
            ctx_bind_const: 3,
            ..InstrStats::default()
        };
        assert_eq!(s.total_instrumentation(), 17);
    }
}
