//! The instrumentation pass (paper §6.3.3).
//!
//! Rewrites a module's blocks, inserting the Table 2 runtime-library
//! intrinsics:
//!
//! * `ctx_write_mem(p, size)` *after* every store to a sensitive location
//!   (keeping the shadow copy up to date);
//! * `ctx_bind_mem_X(p)` / `ctx_bind_const_X(c)` *before* every sensitive
//!   syscall callsite and every propagation callsite, in argument-position
//!   order.
//!
//! Insertion shifts instruction indices, so the pass also returns a full
//! old-location → new-location map; the metadata generator translates all
//! analysis results through it before assigning final addresses.

use bastion_analysis::sensitive::{ArgSpec, SensitiveReport};
use bastion_ir::{Block, Inst, InstLoc, IntrinsicOp, Module, Operand, Reg, Width};
use std::collections::{HashMap, HashSet};

/// Output of the instrumentation pass.
#[derive(Debug)]
pub struct Instrumented {
    /// The rewritten module.
    pub module: Module,
    /// old `InstLoc` → new `InstLoc` for every original instruction.
    pub loc_map: HashMap<InstLoc, InstLoc>,
    /// `(old callsite, position)` pairs for which a memory binding was
    /// actually placed (specs whose address could not be re-derived are
    /// downgraded by the caller).
    pub placed_mem_binds: HashSet<(InstLoc, u8)>,
    /// Count of `ctx_bind_const` intrinsics inserted.
    pub const_binds: usize,
    /// Count of `ctx_write_mem` intrinsics inserted.
    pub write_mems: usize,
}

/// Runs the pass with BASTION's sensitive-only store breadth.
pub fn instrument(module: &Module, report: &SensitiveReport) -> Instrumented {
    instrument_with_breadth(module, report, crate::InstrumentationBreadth::SensitiveOnly)
}

/// Runs the pass with an explicit store-instrumentation breadth.
pub fn instrument_with_breadth(
    module: &Module,
    report: &SensitiveReport,
    breadth: crate::InstrumentationBreadth,
) -> Instrumented {
    // Index the plan by location.
    let mut write_after: HashMap<InstLoc, Width> = HashMap::new();
    if breadth == crate::InstrumentationBreadth::AllStores {
        // DFI-style: shadow every store in the program.
        for (fid, f) in module.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for (i, inst) in b.insts.iter().enumerate() {
                    if let Inst::Store { width, .. } = inst {
                        write_after.insert(
                            InstLoc {
                                func: fid,
                                block: bid,
                                inst: i,
                            },
                            *width,
                        );
                    }
                }
            }
        }
    }
    for s in &report.store_sites {
        write_after.insert(s.loc, s.width);
    }
    let mut bind_before: HashMap<InstLoc, Vec<(u8, ArgSpec)>> = HashMap::new();
    for s in &report.syscall_sites {
        let entry = bind_before.entry(s.callsite).or_default();
        for (i, spec) in s.args.iter().enumerate() {
            entry.push(((i + 1) as u8, spec.clone()));
        }
    }
    for s in &report.prop_sites {
        let entry = bind_before.entry(s.callsite).or_default();
        for (pos, spec) in &s.args {
            entry.push((*pos, spec.clone()));
        }
    }

    let mut out = Instrumented {
        module: module.clone(),
        loc_map: HashMap::new(),
        placed_mem_binds: HashSet::new(),
        const_binds: 0,
        write_mems: 0,
    };

    for (fid, f) in module.iter_funcs() {
        // Single-assignment def map for re-deriving bind addresses.
        let mut defs: HashMap<Reg, &Inst> = HashMap::new();
        for b in &f.blocks {
            for inst in &b.insts {
                if let Some(d) = inst.def() {
                    defs.insert(d, inst);
                }
            }
        }

        // Implicit parameter spills: refresh shadow copies of sensitive
        // parameter slots at function entry (Figure 2, `ctx_write_mem(&b2)`
        // at the top of `bar`). Uses fresh registers past reg_count.
        let mut next_reg = f.reg_count;
        let mut entry_prologue = Vec::new();
        for &(pf, slot) in &report.param_spills {
            if pf != fid {
                continue;
            }
            let r = bastion_ir::Reg(next_reg);
            next_reg += 1;
            entry_prologue.push(Inst::FrameAddr { dst: r, slot });
            entry_prologue.push(Inst::Intrinsic(IntrinsicOp::CtxWriteMem {
                addr: Operand::Reg(r),
                size: 8,
            }));
            out.write_mems += 1;
        }
        out.module.functions[fid.index()].reg_count = next_reg;

        let mut new_blocks = Vec::with_capacity(f.blocks.len());
        for (bid, b) in f.iter_blocks() {
            let mut insts = Vec::with_capacity(b.insts.len());
            if bid.index() == 0 {
                insts.append(&mut entry_prologue);
            }
            for (i, inst) in b.insts.iter().enumerate() {
                let old = InstLoc {
                    func: fid,
                    block: bid,
                    inst: i,
                };
                // Bindings go in front of the call.
                if let Some(binds) = bind_before.get(&old) {
                    let mut binds = binds.clone();
                    binds.sort_by_key(|(p, _)| *p);
                    for (pos, spec) in binds {
                        match spec {
                            ArgSpec::Const(v) => {
                                insts.push(Inst::Intrinsic(IntrinsicOp::CtxBindConst {
                                    pos,
                                    value: v,
                                }));
                                out.const_binds += 1;
                            }
                            ArgSpec::Mem(_) => {
                                let arg = call_arg(inst, pos);
                                if let Some(addr) = arg.and_then(|a| derive_addr(&defs, a, 0)) {
                                    insts.push(Inst::Intrinsic(IntrinsicOp::CtxBindMem {
                                        pos,
                                        addr,
                                    }));
                                    out.placed_mem_binds.insert((old, pos));
                                }
                            }
                            ArgSpec::GlobalAddr(_) | ArgSpec::StackAddr | ArgSpec::Opaque => {}
                        }
                    }
                }
                let new = InstLoc {
                    func: fid,
                    block: bid,
                    inst: insts.len(),
                };
                out.loc_map.insert(old, new);
                insts.push(inst.clone());
                // Shadow refresh right after a sensitive store.
                if let Some(width) = write_after.get(&old) {
                    if let Inst::Store { addr, .. } = inst {
                        insts.push(Inst::Intrinsic(IntrinsicOp::CtxWriteMem {
                            addr: *addr,
                            size: width.bytes() as u32,
                        }));
                        out.write_mems += 1;
                    }
                }
            }
            // The terminator keeps its (shifted) position; record it too.
            let old_term = InstLoc {
                func: fid,
                block: bid,
                inst: b.insts.len(),
            };
            let new_term = InstLoc {
                func: fid,
                block: bid,
                inst: insts.len(),
            };
            out.loc_map.insert(old_term, new_term);
            new_blocks.push(Block {
                insts,
                term: b.term,
            });
        }
        out.module.functions[fid.index()].blocks = new_blocks;
    }
    out
}

/// The argument operand at 1-based `pos` of a call instruction.
fn call_arg(inst: &Inst, pos: u8) -> Option<Operand> {
    if let Inst::Call { args, .. } = inst {
        args.get(pos as usize - 1).copied()
    } else {
        None
    }
}

/// Re-derives the address operand behind a loaded argument value: the
/// operand of the `load` that produced it (walking trivial moves).
fn derive_addr(defs: &HashMap<Reg, &Inst>, arg: Operand, depth: u32) -> Option<Operand> {
    if depth > 16 {
        return None;
    }
    let r = arg.as_reg()?;
    match defs.get(&r)? {
        Inst::Load { addr, .. } => Some(*addr),
        Inst::Mov { src, .. } => derive_addr(defs, *src, depth + 1),
        _ => None,
    }
}

/// Convenience: whether a block-id/func-id pair exists in the module
/// (used by debug assertions in the pass driver).
pub fn loc_exists(module: &Module, loc: InstLoc) -> bool {
    module
        .functions
        .get(loc.func.index())
        .and_then(|f| f.blocks.get(loc.block.index()))
        .is_some_and(|b| loc.inst <= b.insts.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_analysis::CallGraph;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{sysno, Ty};

    fn figure2_like() -> Module {
        let mut mb = ModuleBuilder::new("fig2");
        let mmap = mb.declare_syscall_stub("mmap", sysno::MMAP, 6);
        let mut f = mb.function("main", &[], Ty::I64);
        let prots = f.local("prots", Ty::I64);
        let pa = f.frame_addr(prots);
        f.store(pa, 3i64);
        let pa2 = f.frame_addr(prots);
        let pv = f.load(pa2);
        let _ = f.call_direct(
            mmap,
            &[
                0i64.into(),
                4096i64.into(),
                pv.into(),
                0x21i64.into(),
                (-1i64).into(),
                0i64.into(),
            ],
        );
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        mb.finish()
    }

    fn run(m: &Module) -> Instrumented {
        let cg = CallGraph::build(m);
        let report = SensitiveReport::build(m, &cg, &sysno::sensitive_set());
        instrument(m, &report)
    }

    #[test]
    fn inserts_write_mem_after_store_and_binds_before_call() {
        let m = figure2_like();
        let out = run(&m);
        assert!(out.module.validate().is_ok());
        let main = out.module.func(out.module.func_by_name("main").unwrap());
        let insts = &main.blocks[0].insts;
        // store prots; ctx_write_mem; ... binds ...; call mmap
        let store_idx = insts
            .iter()
            .position(|i| matches!(i, Inst::Store { .. }))
            .unwrap();
        assert!(matches!(
            insts[store_idx + 1],
            Inst::Intrinsic(IntrinsicOp::CtxWriteMem { size: 8, .. })
        ));
        let call_idx = insts.iter().position(Inst::is_call).unwrap();
        // Expect five const binds (0, 4096, 0x21, -1, 0) and one mem bind
        // immediately before the call.
        let n_binds = insts[..call_idx]
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Intrinsic(
                        IntrinsicOp::CtxBindConst { .. } | IntrinsicOp::CtxBindMem { .. }
                    )
                )
            })
            .count();
        assert_eq!(n_binds, 6);
        assert_eq!(out.const_binds, 5);
        assert_eq!(out.placed_mem_binds.len(), 1);
        assert_eq!(out.write_mems, 1);
    }

    #[test]
    fn loc_map_covers_all_original_instructions() {
        let m = figure2_like();
        let out = run(&m);
        for (fid, f) in m.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for i in 0..=b.insts.len() {
                    let old = InstLoc {
                        func: fid,
                        block: bid,
                        inst: i,
                    };
                    let new = out.loc_map[&old];
                    assert!(loc_exists(&out.module, new));
                    // Mapped instruction is identical to the original.
                    if i < b.insts.len() {
                        let ni =
                            &out.module.functions[fid.index()].blocks[bid.index()].insts[new.inst];
                        assert_eq!(ni, &b.insts[i]);
                    }
                }
            }
        }
    }

    #[test]
    fn uninstrumented_module_passes_through() {
        let mut mb = ModuleBuilder::new("plain");
        let mut f = mb.function("main", &[], Ty::I64);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let m = mb.finish();
        let out = run(&m);
        assert_eq!(out.module, m);
        assert_eq!(out.write_mems, 0);
        assert_eq!(out.const_binds, 0);
    }
}
