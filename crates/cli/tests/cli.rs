//! End-to-end tests of the `bastion` command-line binary.

use std::process::Command;

fn bastion() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bastion"))
}

fn write_demo() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bastion-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo.mc");
    std::fs::write(
        &path,
        r#"
        long main() {
            long a = mmap(0, 4096, 3, 0x21, 0 - 1, 0);
            mprotect(a, 4096, 1);
            puts("demo ok\n");
            return 0;
        }
        "#,
    )
    .unwrap();
    path
}

#[test]
fn run_executes_protected_program() {
    let src = write_demo();
    let out = bastion()
        .args(["run", src.to_str().unwrap(), "--verbose"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("demo ok"));
    assert!(stdout.contains("exited with status 0"));
    assert!(stdout.contains("traps: 2"), "{stdout}");
}

#[test]
fn run_protect_modes() {
    let src = write_demo();
    for mode in ["full", "ct", "ct-cf", "hook", "none"] {
        let out = bastion()
            .args(["run", src.to_str().unwrap(), &format!("--protect={mode}")])
            .output()
            .unwrap();
        assert!(out.status.success(), "mode {mode}");
    }
    let out = bastion()
        .args(["run", src.to_str().unwrap(), "--protect=bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn compile_emits_stats_and_metadata() {
    let src = write_demo();
    let md = src.with_file_name("md.json");
    let out = bastion()
        .args([
            "compile",
            src.to_str().unwrap(),
            &format!("--metadata={}", md.to_str().unwrap()),
            "--stats",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    // 2 app sites (mmap, mprotect) + libc system()'s fork and execve.
    assert!(stdout.contains("sensitive callsites: 4"), "{stdout}");
    let json = std::fs::read_to_string(&md).unwrap();
    let parsed = bastion::compiler::ContextMetadata::from_json(&json).unwrap();
    assert_eq!(parsed.syscall_sites.len(), 4);
}

#[test]
fn inspect_reports_call_types() {
    let src = write_demo();
    let out = bastion()
        .args(["inspect", src.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("mmap"));
    assert!(stdout.contains("DirectOnly"));
    assert!(stdout.contains("[sensitive]"));
}

#[test]
fn usage_on_no_args_and_unknown_command() {
    let out = bastion().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
    let out = bastion().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let out = bastion().arg("help").output().unwrap();
    assert!(out.status.success());
}

#[test]
fn compile_error_reporting() {
    let dir = std::env::temp_dir().join(format!("bastion-cli-err-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.mc");
    std::fs::write(&path, "long main() { return nope(); }").unwrap();
    let out = bastion()
        .args(["run", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("nope"));
}
