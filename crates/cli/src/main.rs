//! `bastion` — the reproduction's command-line front door.
//!
//! ```text
//! bastion compile <file.mc>...  [--metadata out.json] [--ir] [--stats]
//! bastion run     <file.mc>...  [--protect full|ct|ct-cf|hook|none] [--cet] [--verbose] [--stats]
//! bastion trace   <file.mc>...  [--protect MODE] [--cet] [--out=trace.json] [--capacity=N]
//! bastion stats   <file.mc>...  [--protect MODE] [--cet] [--json]
//! bastion attack  [id]
//! bastion inspect <file.mc>...  (call-type classes + control-flow edges)
//! ```

use bastion::compiler::BastionCompiler;
use bastion::kernel::{ExitReason, World};
use bastion::minic;
use bastion::monitor::ContextConfig;
use bastion::vm::{CostModel, Image, Machine};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "compile" => cmd_compile(rest),
        "run" => cmd_run(rest),
        "trace" => cmd_trace(rest),
        "stats" => cmd_stats(rest),
        "top" => cmd_top(rest),
        "serve" => cmd_serve(rest),
        "attack" => cmd_attack(rest),
        "chaos" => cmd_chaos(rest),
        "fleet" => cmd_fleet(rest),
        "inspect" => cmd_inspect(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bastion: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
bastion — System Call Integrity (BASTION reproduction)

USAGE:
    bastion compile <file.mc>... [--metadata OUT.json] [--ir] [--stats]
        Compile MiniC sources under the BASTION pass; optionally dump the
        context metadata, the instrumented IR, or Table 5-style statistics.

    bastion run <file.mc>... [--protect MODE] [--cet] [--verbose] [--stats]
        Compile and execute in the simulated world. MODE is one of
        full (default), ct, ct-cf, hook, none. --stats prints the full
        monitor statistics; --verbose streams structured deny records as
        they occur and dumps trap/syscall counts at exit.
        --no-prefilter forces every trap through the full ptrace monitor
        (disables the tier-1 seccomp-time check program) — the
        differential oracle for prefilter parity.

    bastion trace <file.mc>... [--protect MODE] [--cet] [--out=trace.json] [--capacity=N]
        Run with span tracing enabled and export a Chrome trace_event
        JSON document (open at chrome://tracing or in Perfetto).

    bastion stats <file.mc>... [--protect MODE] [--cet] [--json] [--prom]
        Run with telemetry enabled and print the monitor statistics and
        the metrics registry (--json dumps the metrics as JSON, --prom as
        Prometheus text exposition).

    bastion top [--rounds=N] [--batch=N] [--jsonl=OUT.jsonl]
        Live serving view: boots the three workload apps under full
        protection and drives load in rounds, refreshing a per-app table
        of trap rate, tier-1 hit rate, ladder rung, and p50/p95/p99/p999
        verify + request latency. --jsonl appends one labelled metrics
        line per app per round (the periodic snapshot surface).

    bastion serve [--tenants=N] [--seed=S] [--requests=R] [--quantum=C]
                  [--capacity=N] [--jobs=N] [--json=OUT.json]
                  [--jsonl=OUT.jsonl] [--prom]
        bastiond: the persistent multi-tenant supervisor. Admits N
        tenants (seeded http/tpcc/ftp mix) through a bounded queue and
        drives their protected worlds round-robin, one C-cycle quantum at
        a time, merging per-tenant telemetry into a live fleet view.
        Prints the per-tenant table; --json writes the BENCH_serve-shaped
        report, --jsonl appends one fleet metrics line, --prom prints the
        (validated) Prometheus exposition. Byte-identical for any --jobs.

    bastion attack [ID]
        Run the Table 6 security evaluation (one scenario or all 32).

    bastion chaos [--jobs=N] [--cold]
        Run the chaos matrix alone. Cells fork warm from a copy-on-write
        world checkpoint by default; --cold forces a full re-deploy per
        cell. The rendered report is byte-identical either way.

    bastion fleet [--jobs=N] [--only=chaos|table6|bench] [--cold]
        Run the evaluation surfaces — chaos matrix, Table 6, app
        benchmarks — sharded over N worker threads (default: one per
        core). The report is byte-identical for any N.

    bastion inspect <file.mc>...
        Print call-type classes and control-flow edges for sensitive
        system calls.
";

fn read_sources(paths: &[&str]) -> Result<Vec<String>, String> {
    if paths.is_empty() {
        return Err("no source files given".into());
    }
    paths
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}")))
        .collect()
}

fn split_flags(args: &[String]) -> (Vec<&str>, Vec<&str>) {
    let mut files = Vec::new();
    let mut flags = Vec::new();
    for a in args {
        if a.starts_with("--") {
            flags.push(a.as_str());
        } else {
            files.push(a.as_str());
        }
    }
    (files, flags)
}

fn flag_value<'a>(flags: &[&'a str], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find_map(|f| f.strip_prefix(&format!("--{name}=")))
}

fn compile(paths: &[&str]) -> Result<bastion::compiler::CompileOutput, String> {
    let sources = read_sources(paths)?;
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let module = minic::compile_program("cli", &refs).map_err(|e| format!("compile error: {e}"))?;
    BastionCompiler::new()
        .compile(module)
        .map_err(|e| format!("instrumentation error: {e}"))
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let (files, flags) = split_flags(args);
    let out = compile(&files)?;
    if flags.contains(&"--ir") {
        println!("{}", bastion::ir::printer::print_module(&out.module));
    }
    if let Some(path) = flag_value(&flags, "metadata") {
        let json = out
            .metadata
            .to_json()
            .map_err(|e| format!("metadata serialization: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("metadata written to {path}");
    }
    if flags.contains(&"--stats")
        || flags.len() == usize::from(flag_value(&flags, "metadata").is_some())
    {
        let s = &out.metadata.stats;
        println!(
            "callsites: {} total ({} direct, {} indirect)",
            s.total_callsites, s.direct_callsites, s.indirect_callsites
        );
        println!(
            "sensitive callsites: {} ({} indirectly-callable sensitive syscalls)",
            s.sensitive_callsites, s.sensitive_indirect
        );
        println!(
            "instrumentation: {} ctx_write_mem, {} ctx_bind_mem, {} ctx_bind_const ({} total)",
            s.ctx_write_mem,
            s.ctx_bind_mem,
            s.ctx_bind_const,
            s.total_instrumentation()
        );
    }
    Ok(())
}

/// Parses `--protect MODE` into a monitor configuration.
fn parse_protect(flags: &[&str]) -> Result<Option<ContextConfig>, String> {
    match flag_value(flags, "protect").unwrap_or("full") {
        "full" => Ok(Some(ContextConfig::full())),
        "ct" => Ok(Some(ContextConfig::ct())),
        "ct-cf" => Ok(Some(ContextConfig::ct_cf())),
        "hook" => Ok(Some(ContextConfig::hook_only())),
        "none" => Ok(None),
        other => Err(format!("unknown --protect mode `{other}`")),
    }
}

/// Compiles `files` and runs them in a fresh world under the flags'
/// protection. Returns the finished world and the victim pid.
fn execute(files: &[&str], flags: &[&str]) -> Result<(World, bastion::kernel::Pid), String> {
    // `--no-prefilter` pins tier-2-only verification for this run; the
    // flag is read at `protect()` time, when the filter is built.
    let _tier2_only = bastion::monitor::NoPrefilterGuard::new(flags.contains(&"--no-prefilter"));
    let monitor_cfg = parse_protect(flags)?;
    let out = compile(files)?;
    let image = Arc::new(Image::load(out.module).map_err(|e| format!("load: {e}"))?);
    let mut world = World::new(CostModel::default());
    let mut machine = Machine::new(image.clone(), CostModel::default());
    if flags.contains(&"--cet") {
        machine.enable_cet();
    }
    let pid = world.spawn(machine);
    if let Some(cfg) = monitor_cfg {
        bastion::monitor::protect(&mut world, pid, &image, &out.metadata, cfg);
    }
    let status = world.run(10_000_000_000);
    let console = String::from_utf8_lossy(&world.kernel.console).into_owned();
    if !console.is_empty() {
        print!("{console}");
    }
    match world.proc(pid).and_then(|p| p.exit.clone()) {
        Some(ExitReason::Exited(code)) => {
            println!(
                "[exited with status {code}; {} virtual cycles]",
                world.now()
            );
        }
        Some(ExitReason::MonitorKill { nr, reason }) => {
            println!(
                "[KILLED by BASTION monitor at syscall {} ({}): {reason}]",
                nr,
                bastion::ir::sysno::name(nr).unwrap_or("?")
            );
        }
        Some(ExitReason::SeccompKill { nr }) => {
            println!(
                "[KILLED by seccomp: not-callable syscall {} ({})]",
                nr,
                bastion::ir::sysno::name(nr).unwrap_or("?")
            );
        }
        Some(ExitReason::Fault(f)) => println!("[crashed: {f}]"),
        None => println!("[still running after budget; status {status:?}]"),
    }
    Ok((world, pid))
}

/// Renders one structured deny record the way `--verbose` streams it.
fn render_deny(rec: &bastion::obs::DenyRecord) -> String {
    let vals = match (rec.expected, rec.observed) {
        (Some(e), Some(o)) => format!(" expected={e:#x} observed={o:#x}"),
        _ => String::new(),
    };
    format!(
        "[deny #{seq}] syscall {nr} ({name}) {ctx}/{rule}{vals} ladder={rung} \
         retries={r} strikes={s}: {msg}",
        seq = rec.trap_seq,
        nr = rec.sysno,
        name = bastion::ir::sysno::name(rec.sysno).unwrap_or("?"),
        ctx = rec.context.label(),
        rule = rec.rule.name(),
        rung = rec.ladder_rung,
        r = rec.fault_ctx.retries,
        s = rec.fault_ctx.strikes,
        msg = rec.message,
    )
}

/// Prints the full monitor statistics block shared by `run --stats` and
/// the `stats` subcommand.
fn print_monitor_stats(stats: &bastion::monitor::MonitorStats) {
    println!("monitor statistics:");
    println!("  traps:                {}", stats.traps);
    println!(
        "  violations:           ct={} cf={} ai={} fc={} watchdog={}",
        stats.ct_violations,
        stats.cf_violations,
        stats.ai_violations,
        stats.fc_violations,
        stats.watchdog_denies
    );
    println!(
        "  stack walks:          {} frames (depth min={} max={} avg={:.2})",
        stats.frames_walked,
        stats.min_depth,
        stats.max_depth,
        stats.avg_depth()
    );
    println!(
        "  verification cache:   ct_hits={} walk_hits={} walk_collisions={}",
        stats.ct_cache_hits, stats.walk_cache_hits, stats.walk_cache_collisions
    );
    println!(
        "  batched reads:        frames={} pointees={}",
        stats.batched_frame_reads, stats.batched_pointee_reads
    );
    println!(
        "  substrate resilience: retries={} (recovered {}) strikes={} \
         watchdog_overruns={} shadow_quarantines={}",
        stats.retries,
        stats.retry_successes,
        stats.substrate_strikes,
        stats.watchdog_overruns,
        stats.shadow_quarantines
    );
    println!(
        "  degradation ladder:   rung={} transitions={}",
        stats.mode.label(),
        stats.mode_transitions
    );
    println!(
        "  memory:               resident_pages={} snapshot_shared_pages={}",
        stats.resident_pages, stats.snapshot_shared_pages
    );
    println!(
        "  prefilter:            checks={} hits={} escalations={} hit_rate={:.1}%",
        stats.prefilter_checks,
        stats.prefilter_hits,
        stats.prefilter_escalations,
        stats.prefilter_hit_rate() * 100.0
    );
    for (label, n) in stats.escalations_by_reason() {
        println!("    escalate[{label}]: {n}");
    }
    println!(
        "  init cycles:          {} (prefilter compile: {})",
        stats.init_cycles, stats.prefilter_compile_cycles
    );
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (files, flags) = split_flags(args);
    let verbose = flags.contains(&"--verbose");
    let want_stats = flags.contains(&"--stats");
    if verbose {
        // Stream structured deny provenance as it happens; denies are
        // captured regardless of the tracer enable flag.
        bastion::obs::set_deny_sink(Box::new(|rec| eprintln!("{}", render_deny(rec))));
    }
    let result = execute(&files, &flags);
    if verbose {
        bastion::obs::clear_deny_sink();
    }
    let (mut world, _pid) = result?;
    if verbose {
        println!("traps: {}", world.trap_count);
        for (nr, n) in &world.kernel.counts {
            println!(
                "  syscall {:<18} x{}",
                bastion::ir::sysno::name(*nr).unwrap_or("?"),
                n
            );
        }
    }
    if want_stats {
        match bastion::chaos::monitor_report(&mut world) {
            Some((stats, denies)) => {
                print_monitor_stats(&stats);
                if !denies.is_empty() {
                    println!("deny records: {}", denies.len());
                    for rec in &denies {
                        println!("  {}", render_deny(rec));
                    }
                }
            }
            None => println!("monitor statistics: no monitor attached (--protect none?)"),
        }
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (files, flags) = split_flags(args);
    let capacity = match flag_value(&flags, "capacity") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--capacity={v}: not a number"))?,
        None => 1 << 16,
    };
    let out_path = flag_value(&flags, "out").unwrap_or("trace.json");
    bastion::obs::enable(capacity);
    let result = execute(&files, &flags);
    let events = bastion::obs::take_events();
    bastion::obs::disable();
    result?;
    let json = bastion::obs::chrome_trace_json(&events);
    let shape = bastion::obs::validate_chrome_trace(&json)
        .map_err(|e| format!("exported trace failed validation: {e}"))?;
    std::fs::write(out_path, &json).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "trace written to {out_path}: {} events ({} trap spans, {} instants, depth {})",
        shape.events, shape.trap_spans, shape.instants, shape.max_depth
    );
    println!("phase breakdown (virtual cycles):");
    for t in bastion::obs::phase_totals(&events) {
        println!(
            "  {:<18} spans={:<6} instants={:<6} incl={:<10} self={}",
            t.phase.name(),
            t.spans,
            t.instants,
            t.cycles,
            t.self_cycles
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (files, flags) = split_flags(args);
    bastion::obs::enable(1 << 16);
    let result = execute(&files, &flags);
    let metrics = bastion::obs::metrics_snapshot();
    bastion::obs::disable();
    let (mut world, _pid) = result?;
    match bastion::chaos::monitor_report(&mut world) {
        Some((stats, _)) => print_monitor_stats(&stats),
        None => println!("monitor statistics: no monitor attached (--protect none?)"),
    }
    if flags.contains(&"--json") {
        println!("{}", bastion::obs::metrics_json(&metrics));
    } else if flags.contains(&"--prom") {
        let text = bastion::obs::prometheus_text(&metrics, &[]);
        bastion::obs::validate_prometheus(&text)
            .map_err(|e| format!("generated Prometheus exposition is malformed: {e}"))?;
        print!("{text}");
    } else {
        println!("metrics:");
        for c in &metrics.counters {
            println!("  {:<28} {}", c.name, c.value);
        }
        for h in &metrics.histograms {
            println!(
                "  {:<28} count={} min={} max={} mean={:.2}",
                h.name,
                h.count,
                h.min,
                h.max,
                h.mean()
            );
        }
        for s in &metrics.sketches {
            println!(
                "  {:<28} count={} p50={} p95={} p99={} p999={}",
                s.name, s.count, s.p50, s.p95, s.p99, s.p999
            );
        }
        println!(
            "  histogram bounds mismatches: {}",
            metrics.bounds_mismatches()
        );
    }
    Ok(())
}

/// One serving lane of `bastion top`: an app world under full protection
/// plus its accumulated metrics across rounds.
struct TopLane {
    app: bastion::apps::App,
    world: World,
    acc: bastion::obs::MetricsRegistry,
    served: u64,
}

fn boot_lane(app: bastion::apps::App) -> TopLane {
    let cost = CostModel::default();
    let protection = bastion::Protection::full();
    let out = BastionCompiler::new()
        .compile(app.module().expect("app compiles"))
        .expect("instrumentation succeeds");
    let metadata = out.metadata;
    let image = Arc::new(Image::load(out.module).expect("image loads"));
    let mut world = World::new(cost);
    app.setup_vfs(&mut world);
    let mut machine = Machine::new(image.clone(), cost);
    protection.hardening.apply(&mut machine);
    let pid = world.spawn(machine);
    bastion::monitor::protect(
        &mut world,
        pid,
        &image,
        &metadata,
        protection.monitor.expect("full protection has a monitor"),
    );
    world.run(1_000_000_000);
    assert!(world.alive_count() > 0, "{} died during boot", app.id());
    TopLane {
        app,
        world,
        acc: bastion::obs::MetricsRegistry::new(),
        served: 0,
    }
}

/// Drives one load batch against a lane under a fresh telemetry scope and
/// folds the scope's metrics into the lane accumulator.
fn drive_lane(lane: &mut TopLane, batch: u64) {
    use bastion::apps::{loadgen, App};
    let guard = bastion::obs::TelemetryGuard::enable(1 << 12);
    let port = lane.app.port();
    lane.served += match lane.app {
        App::Webserve => loadgen::http_load(&mut lane.world, port, 4, batch).requests,
        App::Dbkv => loadgen::tpcc_load(&mut lane.world, port, 4, batch.max(1)).transactions,
        App::Ftpd => {
            loadgen::ftp_load(
                &mut lane.world,
                port,
                (batch / 8).max(1),
                bastion::apps::ftpd::FILE_PATH,
            )
            .files
        }
    };
    let (_events, registry) = guard.finish();
    lane.acc.merge(registry);
}

/// Renders one refresh of the `bastion top` table.
fn render_top(lanes: &[TopLane], round: u64, rounds: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bastion top — round {}/{rounds} (virtual-time serving view)",
        round + 1
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>8} {:>7} {:>5}  {:>33}  {:>33}",
        "app",
        "served",
        "traps",
        "tier1%",
        "rung",
        "verify cycles p50/p95/p99/p999",
        "request cycles p50/p95/p99/p999"
    );
    for lane in lanes {
        let snap = lane.acc.snapshot();
        let quants = |name: &str| -> String {
            snap.sketch(name).map_or_else(
                || "-".into(),
                |s| format!("{}/{}/{}/{}", s.p50, s.p95, s.p99, s.p999),
            )
        };
        let (hit_pct, rung) = lane.world.tracer_ref().map_or((0.0, 0), |t| {
            let rung = t.ladder_rung();
            let hits = t
                .as_any()
                .downcast_ref::<bastion::monitor::Monitor>()
                .map_or(0.0, |m| {
                    if m.stats.prefilter_checks == 0 {
                        0.0
                    } else {
                        100.0 * m.stats.prefilter_hits as f64 / m.stats.prefilter_checks as f64
                    }
                });
            (hits, rung)
        });
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>8} {:>6.1}% {:>5}  {:>33}  {:>33}",
            lane.app.id(),
            lane.served,
            lane.world.trap_count,
            hit_pct,
            rung,
            quants("trap.verify_cycles"),
            quants(bastion::apps::loadgen::REQUEST_CYCLES_SKETCH),
        );
    }
    out
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    use bastion::apps::App;
    use std::io::IsTerminal as _;
    let (_files, flags) = split_flags(args);
    let rounds: u64 = flag_value(&flags, "rounds")
        .map_or(Ok(6), str::parse)
        .map_err(|e| format!("--rounds: {e}"))?;
    let batch: u64 = flag_value(&flags, "batch")
        .map_or(Ok(32), str::parse)
        .map_err(|e| format!("--batch: {e}"))?;
    let jsonl_path = flag_value(&flags, "jsonl");
    let mut jsonl = match jsonl_path {
        Some(p) => Some(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .map_err(|e| format!("{p}: {e}"))?,
        ),
        None => None,
    };

    eprintln!("booting webserve, dbkv, ftpd under full protection...");
    let mut lanes: Vec<TopLane> = [App::Webserve, App::Dbkv, App::Ftpd]
        .into_iter()
        .map(boot_lane)
        .collect();

    let live = std::io::stdout().is_terminal();
    for round in 0..rounds {
        for lane in &mut lanes {
            drive_lane(lane, batch);
            if let Some(f) = jsonl.as_mut() {
                use std::io::Write as _;
                let line = bastion::obs::metrics_jsonl_line(
                    &lane.acc.snapshot(),
                    &[("app", lane.app.id()), ("round", &round.to_string())],
                );
                writeln!(f, "{line}").map_err(|e| format!("jsonl write: {e}"))?;
            }
        }
        if live {
            // Clear and redraw in place, like top(1).
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(&lanes, round, rounds));
        if !live && round + 1 < rounds {
            println!();
        }
    }
    Ok(())
}

fn cmd_attack(args: &[String]) -> Result<(), String> {
    let id: Option<u32> = args.first().and_then(|a| a.parse().ok());
    let catalog = bastion::attacks::catalog();
    let mut all_ok = true;
    for s in &catalog {
        if let Some(id) = id {
            if s.id != id {
                continue;
            }
        }
        let r = bastion::attacks::evaluate(s);
        println!(
            "#{:2} [{}] {}",
            r.id,
            if r.matches_paper() {
                "matches paper"
            } else {
                "MISMATCH"
            },
            r.name
        );
        for d in &r.details {
            println!("     {d}");
        }
        all_ok &= r.matches_paper();
    }
    if all_ok {
        Ok(())
    } else {
        Err("some scenarios diverged from the paper's Table 6".into())
    }
}

/// `bastion serve` — run the bastiond supervisor over a seeded tenant
/// mix and print the per-tenant table plus the requested export surfaces.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use std::io::Write as _;

    let (_, flags) = split_flags(args);
    let num = |name: &str, default: u64| -> Result<u64, String> {
        match flag_value(&flags, name) {
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| format!("--{name}={v}: not a non-negative integer")),
            None => Ok(default),
        }
    };
    let tenants = num("tenants", 256)? as usize;
    let seed = num("seed", 0)?;
    let mut cfg = bastion::serve::ServeConfig::new(tenants, seed);
    cfg.requests_per_tenant = num("requests", cfg.requests_per_tenant)?;
    cfg.quantum = num("quantum", cfg.quantum)?.max(1);
    cfg.admission_capacity = num("capacity", cfg.admission_capacity as u64)? as usize;
    cfg.jobs = match flag_value(&flags, "jobs") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--jobs={v}: not a positive integer"))?,
        None => bastion::fleet::default_jobs(),
    };

    let run = bastion::serve::run_serve(&cfg);
    print!("{}", run.report.render());

    if let Some(path) = flag_value(&flags, "json") {
        let json = serde_json::to_string_pretty(&run.report)
            .map_err(|e| format!("report serialization: {e:?}"))?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("report written to {path}");
    }
    if let Some(path) = flag_value(&flags, "jsonl") {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("{path}: {e}"))?;
        let line = bastion::obs::metrics_jsonl_line(&run.fleet, &[("surface", "serve")]);
        writeln!(f, "{line}").map_err(|e| format!("jsonl write: {e}"))?;
        println!("fleet metrics line appended to {path}");
    }
    if flags.contains(&"--prom") {
        let text = bastion::obs::prometheus_text(&run.fleet, &[("surface", "serve")]);
        bastion::obs::validate_prometheus(&text)
            .map_err(|e| format!("prometheus self-check: {e}"))?;
        print!("{text}");
    }
    Ok(())
}

/// Shared chaos-matrix driver for `bastion chaos` and the fleet's chaos
/// section: runs the matrix, prints the report, and collects gate
/// failures.
fn run_chaos_section(jobs: usize, cold: bool, failures: &mut Vec<String>) {
    use bastion::fleet;
    let outcome = fleet::chaos_matrix_mode(jobs, fleet::ATTACK_SEEDS, None, cold);
    print!("{}", outcome.report);
    if outcome.faults_fired == 0 {
        failures.push("chaos matrix never injected a fault".into());
    }
    if outcome.flipped > 0 {
        failures.push(format!(
            "{} attack(s) flipped to Allow under faults",
            outcome.flipped
        ));
    }
}

fn cmd_chaos(args: &[String]) -> Result<(), String> {
    use bastion::fleet;
    let (_, flags) = split_flags(args);
    let jobs = match flag_value(&flags, "jobs") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--jobs={v}: not a positive integer"))?,
        None => fleet::default_jobs(),
    };
    let cold = flags.contains(&"--cold");
    let mut failures: Vec<String> = Vec::new();
    run_chaos_section(jobs, cold, &mut failures);
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn cmd_fleet(args: &[String]) -> Result<(), String> {
    use bastion::fleet;
    let (_, flags) = split_flags(args);
    let jobs = match flag_value(&flags, "jobs") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--jobs={v}: not a positive integer"))?,
        None => fleet::default_jobs(),
    };
    let cold = flags.contains(&"--cold");
    let only = flag_value(&flags, "only");
    let want = |section: &str| only.is_none_or(|o| o == section);
    let mut failures: Vec<String> = Vec::new();

    if want("chaos") {
        println!("== chaos matrix ==");
        run_chaos_section(jobs, cold, &mut failures);
        println!();
    }
    if want("table6") {
        println!("== table 6 ==");
        let results = fleet::table6_matrix(jobs);
        print!("{}", bastion::attacks::render(&results));
        let mismatched = results.iter().filter(|r| !r.matches_paper()).count();
        if mismatched > 0 {
            failures.push(format!("{mismatched} scenario(s) diverged from Table 6"));
        }
        println!();
    }
    if want("bench") {
        println!("== app benchmarks (quick workload) ==");
        let rows = fleet::bench_matrix(jobs, &bastion::harness::WorkloadSize::quick());
        print!("{}", fleet::render_bench(&rows));
    }

    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let (files, _) = split_flags(args);
    let out = compile(&files)?;
    let md = &out.metadata;
    println!("call-type classes:");
    for (nr, class) in &md.syscall_classes {
        let sensitive = if md.sensitive_nrs.contains(nr) {
            " [sensitive]"
        } else {
            ""
        };
        println!(
            "  {:<18} {:?}{sensitive}",
            bastion::ir::sysno::name(*nr).unwrap_or("?"),
            class
        );
    }
    println!();
    println!(
        "control-flow context ({} callee→caller edge sets):",
        md.valid_callers.len()
    );
    for (callee, sites) in &md.valid_callers {
        let name = md
            .functions
            .get(callee)
            .map(|f| f.name.as_str())
            .unwrap_or("?");
        println!("  {name:<28} {} valid caller callsite(s)", sites.len());
    }
    println!();
    println!(
        "sensitive syscall callsites: {} | indirect entries: {}",
        md.syscall_sites.len(),
        md.indirect_entries.len()
    );
    Ok(())
}
