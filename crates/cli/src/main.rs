//! `bastion` — the reproduction's command-line front door.
//!
//! ```text
//! bastion compile <file.mc>...  [--metadata out.json] [--ir] [--stats]
//! bastion run     <file.mc>...  [--protect full|ct|ct-cf|hook|none] [--cet] [--verbose]
//! bastion attack  [id]
//! bastion inspect <file.mc>...  (call-type classes + control-flow edges)
//! ```

use bastion::compiler::BastionCompiler;
use bastion::kernel::{ExitReason, World};
use bastion::minic;
use bastion::monitor::ContextConfig;
use bastion::vm::{CostModel, Image, Machine};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "compile" => cmd_compile(rest),
        "run" => cmd_run(rest),
        "attack" => cmd_attack(rest),
        "inspect" => cmd_inspect(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bastion: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
bastion — System Call Integrity (BASTION reproduction)

USAGE:
    bastion compile <file.mc>... [--metadata OUT.json] [--ir] [--stats]
        Compile MiniC sources under the BASTION pass; optionally dump the
        context metadata, the instrumented IR, or Table 5-style statistics.

    bastion run <file.mc>... [--protect MODE] [--cet] [--verbose]
        Compile and execute in the simulated world. MODE is one of
        full (default), ct, ct-cf, hook, none.

    bastion attack [ID]
        Run the Table 6 security evaluation (one scenario or all 32).

    bastion inspect <file.mc>...
        Print call-type classes and control-flow edges for sensitive
        system calls.
";

fn read_sources(paths: &[&str]) -> Result<Vec<String>, String> {
    if paths.is_empty() {
        return Err("no source files given".into());
    }
    paths
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}")))
        .collect()
}

fn split_flags(args: &[String]) -> (Vec<&str>, Vec<&str>) {
    let mut files = Vec::new();
    let mut flags = Vec::new();
    for a in args {
        if a.starts_with("--") {
            flags.push(a.as_str());
        } else {
            files.push(a.as_str());
        }
    }
    (files, flags)
}

fn flag_value<'a>(flags: &[&'a str], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find_map(|f| f.strip_prefix(&format!("--{name}=")))
}

fn compile(paths: &[&str]) -> Result<bastion::compiler::CompileOutput, String> {
    let sources = read_sources(paths)?;
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let module = minic::compile_program("cli", &refs).map_err(|e| format!("compile error: {e}"))?;
    BastionCompiler::new()
        .compile(module)
        .map_err(|e| format!("instrumentation error: {e}"))
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let (files, flags) = split_flags(args);
    let out = compile(&files)?;
    if flags.contains(&"--ir") {
        println!("{}", bastion::ir::printer::print_module(&out.module));
    }
    if let Some(path) = flag_value(&flags, "metadata") {
        let json = out
            .metadata
            .to_json()
            .map_err(|e| format!("metadata serialization: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        println!("metadata written to {path}");
    }
    if flags.contains(&"--stats")
        || flags.len() == usize::from(flag_value(&flags, "metadata").is_some())
    {
        let s = &out.metadata.stats;
        println!(
            "callsites: {} total ({} direct, {} indirect)",
            s.total_callsites, s.direct_callsites, s.indirect_callsites
        );
        println!(
            "sensitive callsites: {} ({} indirectly-callable sensitive syscalls)",
            s.sensitive_callsites, s.sensitive_indirect
        );
        println!(
            "instrumentation: {} ctx_write_mem, {} ctx_bind_mem, {} ctx_bind_const ({} total)",
            s.ctx_write_mem,
            s.ctx_bind_mem,
            s.ctx_bind_const,
            s.total_instrumentation()
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (files, flags) = split_flags(args);
    let mode = flag_value(&flags, "protect").unwrap_or("full");
    let monitor_cfg = match mode {
        "full" => Some(ContextConfig::full()),
        "ct" => Some(ContextConfig::ct()),
        "ct-cf" => Some(ContextConfig::ct_cf()),
        "hook" => Some(ContextConfig::hook_only()),
        "none" => None,
        other => return Err(format!("unknown --protect mode `{other}`")),
    };
    let out = compile(&files)?;
    let image = Arc::new(Image::load(out.module).map_err(|e| format!("load: {e}"))?);
    let mut world = World::new(CostModel::default());
    let mut machine = Machine::new(image.clone(), CostModel::default());
    if flags.contains(&"--cet") {
        machine.enable_cet();
    }
    let pid = world.spawn(machine);
    if let Some(cfg) = monitor_cfg {
        bastion::monitor::protect(&mut world, pid, &image, &out.metadata, cfg);
    }
    let status = world.run(10_000_000_000);
    let console = String::from_utf8_lossy(&world.kernel.console).into_owned();
    if !console.is_empty() {
        print!("{console}");
    }
    let verbose = flags.contains(&"--verbose");
    match world.proc(pid).and_then(|p| p.exit.clone()) {
        Some(ExitReason::Exited(code)) => {
            println!(
                "[exited with status {code}; {} virtual cycles]",
                world.now()
            );
        }
        Some(ExitReason::MonitorKill { nr, reason }) => {
            println!(
                "[KILLED by BASTION monitor at syscall {} ({}): {reason}]",
                nr,
                bastion::ir::sysno::name(nr).unwrap_or("?")
            );
        }
        Some(ExitReason::SeccompKill { nr }) => {
            println!(
                "[KILLED by seccomp: not-callable syscall {} ({})]",
                nr,
                bastion::ir::sysno::name(nr).unwrap_or("?")
            );
        }
        Some(ExitReason::Fault(f)) => println!("[crashed: {f}]"),
        None => println!("[still running after budget; status {status:?}]"),
    }
    if verbose {
        println!("traps: {}", world.trap_count);
        for (nr, n) in &world.kernel.counts {
            println!(
                "  syscall {:<18} x{}",
                bastion::ir::sysno::name(*nr).unwrap_or("?"),
                n
            );
        }
    }
    Ok(())
}

fn cmd_attack(args: &[String]) -> Result<(), String> {
    let id: Option<u32> = args.first().and_then(|a| a.parse().ok());
    let catalog = bastion::attacks::catalog();
    let mut all_ok = true;
    for s in &catalog {
        if let Some(id) = id {
            if s.id != id {
                continue;
            }
        }
        let r = bastion::attacks::evaluate(s);
        println!(
            "#{:2} [{}] {}",
            r.id,
            if r.matches_paper() {
                "matches paper"
            } else {
                "MISMATCH"
            },
            r.name
        );
        for d in &r.details {
            println!("     {d}");
        }
        all_ok &= r.matches_paper();
    }
    if all_ok {
        Ok(())
    } else {
        Err("some scenarios diverged from the paper's Table 6".into())
    }
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let (files, _) = split_flags(args);
    let out = compile(&files)?;
    let md = &out.metadata;
    println!("call-type classes:");
    for (nr, class) in &md.syscall_classes {
        let sensitive = if md.sensitive_nrs.contains(nr) {
            " [sensitive]"
        } else {
            ""
        };
        println!(
            "  {:<18} {:?}{sensitive}",
            bastion::ir::sysno::name(*nr).unwrap_or("?"),
            class
        );
    }
    println!();
    println!(
        "control-flow context ({} callee→caller edge sets):",
        md.valid_callers.len()
    );
    for (callee, sites) in &md.valid_callers {
        let name = md
            .functions
            .get(callee)
            .map(|f| f.name.as_str())
            .unwrap_or("?");
        println!("  {name:<28} {} valid caller callsite(s)", sites.len());
    }
    println!();
    println!(
        "sensitive syscall callsites: {} | indirect entries: {}",
        md.syscall_sites.len(),
        md.indirect_entries.len()
    );
    Ok(())
}
