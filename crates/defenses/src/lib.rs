//! # bastion-defenses
//!
//! The baseline defenses the paper compares against (Figure 3 / Table 3):
//!
//! * **CET** — Intel Control-flow Enforcement Technology's shadow stack
//!   (`-fcf-protection=full`): the VM maintains a protected return-address
//!   stack and faults (#CP) on mismatch. BASTION assumes CET is deployed
//!   (paper §4), so every BASTION configuration layers on top of it.
//! * **LLVM CFI** — clang's coarse, type-signature-based indirect-call
//!   check (`-fsanitize=cfi-icall`): an indirect call may only target an
//!   address-taken function whose signature matches the callsite. Same-
//!   signature hijacks (COOP, Control Jujutsu, AOCR) slip through — the
//!   weakness §10 exploits.
//!
//! [`HardeningConfig`] is the Figure 3 x-axis: it selects which baseline
//! mitigations are compiled into a [`bastion_vm::Machine`].

use bastion_analysis::{CallGraph, TypeSigReport};
use bastion_vm::{CfiPolicy, Image, Machine};
use serde::{Deserialize, Serialize};

/// Hardware/software mitigations applied to a machine (Figure 3 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HardeningConfig {
    /// CET shadow stack (backward-edge protection).
    pub cet: bool,
    /// LLVM CFI (forward-edge, type-based). The paper notes LLVM CFI and
    /// CET could not be enabled simultaneously on their toolchain; the
    /// harness honours the same constraint.
    pub llvm_cfi: bool,
}

impl HardeningConfig {
    /// Unprotected vanilla baseline.
    pub fn vanilla() -> Self {
        HardeningConfig::default()
    }

    /// CET only (the paper's "CET" column).
    pub fn cet() -> Self {
        HardeningConfig {
            cet: true,
            llvm_cfi: false,
        }
    }

    /// LLVM CFI only (the paper's "LLVM CFI" column).
    pub fn llvm_cfi() -> Self {
        HardeningConfig {
            cet: false,
            llvm_cfi: true,
        }
    }

    /// Applies the mitigations to a machine.
    ///
    /// # Panics
    /// Panics if both CET and LLVM CFI are requested — the paper could not
    /// enable them together ("LLVM CFI does not function properly when
    /// paired with CET", §9.2) and the harness preserves that constraint.
    pub fn apply(self, machine: &mut Machine) {
        assert!(
            !(self.cet && self.llvm_cfi),
            "LLVM CFI does not function properly when paired with CET (paper §9.2)"
        );
        if self.cet {
            machine.enable_cet();
        }
        if self.llvm_cfi {
            let policy = build_cfi_policy(&machine.image);
            machine.enable_cfi(policy);
        }
    }
}

/// Builds the LLVM-CFI policy for an image: every address-taken function,
/// keyed by entry address, allowed at callsites of matching arity.
pub fn build_cfi_policy(image: &Image) -> CfiPolicy {
    let cg = CallGraph::build(&image.module);
    let ts = TypeSigReport::build(&image.module, &cg);
    let mut allowed = std::collections::HashMap::new();
    for (arity, funcs) in &ts.classes {
        for f in funcs {
            allowed.insert(image.layout.func_entry(*f).raw(), *arity);
        }
    }
    CfiPolicy { allowed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{Operand, Ty};
    use bastion_vm::{CostModel, Event, Fault};
    use std::sync::Arc;

    fn image_with_fnptr() -> Arc<Image> {
        let mut mb = ModuleBuilder::new("d");
        let good = mb.declare("good", &[("x", Ty::I64)], Ty::I64);
        let victim = mb.declare("victim", &[], Ty::I64);
        let mut f = mb.define(good);
        f.ret(Some(Operand::Imm(1)));
        f.finish();
        let mut f = mb.define(victim);
        f.ret(Some(Operand::Imm(2)));
        f.finish();
        let mut f = mb.function("main", &[], Ty::I64);
        let slot = f.local("fp", Ty::Func { arity: 1 });
        let sa = f.frame_addr(slot);
        let gp = f.func_addr(good);
        f.store(sa, gp);
        let sa2 = f.frame_addr(slot);
        let p = f.load(sa2);
        let r = f.call_indirect(p, &[Operand::Imm(9)]);
        f.ret(Some(r.into()));
        f.finish();
        Arc::new(Image::load(mb.finish()).unwrap())
    }

    #[test]
    fn config_presets_and_exclusivity() {
        assert_eq!(HardeningConfig::vanilla(), HardeningConfig::default());
        assert!(HardeningConfig::cet().cet);
        assert!(HardeningConfig::llvm_cfi().llvm_cfi);
    }

    #[test]
    #[should_panic(expected = "paired with CET")]
    fn cet_plus_cfi_rejected() {
        let img = image_with_fnptr();
        let mut m = Machine::new(img, CostModel::default());
        HardeningConfig {
            cet: true,
            llvm_cfi: true,
        }
        .apply(&mut m);
    }

    #[test]
    fn cfi_allows_matching_signature_calls() {
        let img = image_with_fnptr();
        let mut m = Machine::new(img, CostModel::default());
        HardeningConfig::llvm_cfi().apply(&mut m);
        let e = bastion_vm::interp::run(&mut m, 100_000).event();
        assert_eq!(e, Event::Exited(1));
    }

    #[test]
    fn cfi_blocks_non_address_taken_target() {
        let img = image_with_fnptr();
        let victim_entry = img.symbol("victim").unwrap();
        let fp_slot;
        {
            let main = img.module.func_by_name("main").unwrap();
            let fi = img.frame(main);
            fp_slot = (img.stack_top - 16) - fi.frame_size + fi.slot_offsets[0];
        }
        let mut m = Machine::new(img, CostModel::default());
        HardeningConfig::llvm_cfi().apply(&mut m);
        // Attacker corrupts the function pointer to `victim` (address never
        // taken → not in any equivalence class).
        for _ in 0..100 {
            use bastion_vm::MemIo;
            if m.mem.read_u64(fp_slot).unwrap_or(0) != 0 {
                m.mem.write_unchecked(fp_slot, &victim_entry.to_le_bytes());
                break;
            }
            let _ = bastion_vm::interp::step(&mut m);
        }
        let e = bastion_vm::interp::run(&mut m, 100_000).event();
        assert!(
            matches!(e, Event::Fault(Fault::CfiViolation { .. })),
            "{e:?}"
        );
    }

    #[test]
    fn cfi_weakness_same_class_hijack_passes() {
        // Add a second one-arg address-taken function and hijack to it:
        // coarse CFI permits the transfer (the paper's §10 bypass shape).
        let mut mb = ModuleBuilder::new("d2");
        let a = mb.declare("a", &[("x", Ty::I64)], Ty::I64);
        let b = mb.declare("b", &[("x", Ty::I64)], Ty::I64);
        let mut f = mb.define(a);
        f.ret(Some(Operand::Imm(10)));
        f.finish();
        let mut f = mb.define(b);
        f.ret(Some(Operand::Imm(20)));
        f.finish();
        let mut f = mb.function("main", &[], Ty::I64);
        let slot = f.local("fp", Ty::Func { arity: 1 });
        let sa = f.frame_addr(slot);
        let ap = f.func_addr(a);
        f.store(sa, ap);
        let _bp = f.func_addr(b); // b is address-taken too
        let sa2 = f.frame_addr(slot);
        let p = f.load(sa2);
        let r = f.call_indirect(p, &[Operand::Imm(0)]);
        f.ret(Some(r.into()));
        f.finish();
        let img = Arc::new(Image::load(mb.finish()).unwrap());
        let b_entry = img.symbol("b").unwrap();
        let main = img.module.func_by_name("main").unwrap();
        let fi = img.frame(main);
        let fp_slot = (img.stack_top - 16) - fi.frame_size + fi.slot_offsets[0];
        let mut m = Machine::new(img, CostModel::default());
        HardeningConfig::llvm_cfi().apply(&mut m);
        for _ in 0..100 {
            use bastion_vm::MemIo;
            if m.mem.read_u64(fp_slot).unwrap_or(0) != 0 {
                m.mem.write_unchecked(fp_slot, &b_entry.to_le_bytes());
                break;
            }
            let _ = bastion_vm::interp::step(&mut m);
        }
        let e = bastion_vm::interp::run(&mut m, 100_000).event();
        // The hijack SUCCEEDS under coarse CFI — main returns b's value.
        assert_eq!(e, Event::Exited(20));
    }

    #[test]
    fn cet_protects_without_cfi() {
        let img = image_with_fnptr();
        let mut m = Machine::new(img, CostModel::default());
        HardeningConfig::cet().apply(&mut m);
        assert!(m.shadow_stack.is_some());
        assert!(m.cfi.is_none());
        let e = bastion_vm::interp::run(&mut m, 100_000).event();
        assert_eq!(e, Event::Exited(1));
    }
}
