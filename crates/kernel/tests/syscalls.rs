//! Syscall-surface coverage: each family of the dispatcher exercised by a
//! MiniC program, with kernel-side state asserted.

use bastion_kernel::{ExitReason, RunStatus, World};
use bastion_minic::compile_program;
use bastion_vm::{CostModel, Image, Machine};
use std::sync::Arc;

fn run(src: &str, setup: impl FnOnce(&mut World)) -> (World, i64) {
    let module = compile_program("t", &[src]).unwrap();
    let image = Arc::new(Image::load(module).unwrap());
    let machine = Machine::new(image, CostModel::default());
    let mut world = World::new(CostModel::default());
    setup(&mut world);
    let pid = world.spawn(machine);
    assert_eq!(world.run(200_000_000), RunStatus::AllExited);
    let Some(ExitReason::Exited(code)) = world.proc(pid).unwrap().exit.clone() else {
        panic!("abnormal exit: {:?}", world.proc(pid).unwrap().exit);
    };
    (world, code)
}

#[test]
fn open_create_write_read_back() {
    let (world, code) = run(
        r#"
        long main() {
            long fd;
            char buf[32];
            long n;
            fd = open("/data/new.txt", 0x41, 0644);   // O_WRONLY|O_CREAT
            if (fd < 0) { return 1; }
            write(fd, "persisted", 9);
            close(fd);
            fd = open("/data/new.txt", 0, 0);
            n = read(fd, buf, 31);
            buf[n] = 0;
            close(fd);
            if (strcmp(buf, "persisted") != 0) { return 2; }
            return 0;
        }
        "#,
        |_| {},
    );
    assert_eq!(code, 0);
    assert_eq!(
        world.kernel.vfs.file("/data/new.txt").unwrap().data,
        b"persisted"
    );
}

#[test]
fn lseek_whence_semantics() {
    let (_, code) = run(
        r#"
        long main() {
            long fd;
            char b[8];
            fd = open("/f", 0, 0);
            if (lseek(fd, 3, 0) != 3) { return 1; }     // SEEK_SET
            read(fd, b, 1);
            if (b[0] != 'd') { return 2; }
            if (lseek(fd, 2, 1) != 6) { return 3; }     // SEEK_CUR (4+2)
            if (lseek(fd, 0 - 2, 2) != 8) { return 4; } // SEEK_END (10-2)
            read(fd, b, 2);
            if (b[0] != 'i') { return 5; }
            if (lseek(fd, 0 - 99, 0) >= 0) { return 6; } // negative → EINVAL
            return 0;
        }
        "#,
        |w| w.kernel.vfs.put_file("/f", b"abcdefghij".to_vec(), 0o644),
    );
    assert_eq!(code, 0);
}

#[test]
fn stat_reports_size_and_mode() {
    let (_, code) = run(
        r#"
        long main() {
            long st[2];
            if (stat("/f", st) != 0) { return 1; }
            if (st[0] != 10) { return 2; }
            if (st[1] != 0644) { return 3; }
            if (stat("/missing", st) >= 0) { return 4; }
            return 0;
        }
        "#,
        |w| w.kernel.vfs.put_file("/f", b"abcdefghij".to_vec(), 0o644),
    );
    assert_eq!(code, 0);
}

#[test]
fn writev_gathers_iovecs() {
    let (world, code) = run(
        r#"
        long main() {
            long iov[4];
            char *a = "hello ";
            char *b = "world";
            iov[0] = a; iov[1] = 6;
            iov[2] = b; iov[3] = 5;
            return writev(1, iov, 2);
        }
        "#,
        |_| {},
    );
    assert_eq!(code, 11);
    assert_eq!(world.kernel.console, b"hello world");
}

#[test]
fn dup_shares_the_description() {
    let (world, code) = run(
        r#"
        long main() {
            long fd;
            long fd2;
            fd = open("/log", 0x41, 0600);
            fd2 = dup(fd);
            write(fd, "ab", 2);
            write(fd2, "cd", 2);   // shared offset: appends after "ab"
            close(fd);
            write(fd2, "ef", 2);   // description still alive through fd2
            close(fd2);
            return 0;
        }
        "#,
        |_| {},
    );
    assert_eq!(code, 0);
    assert_eq!(world.kernel.vfs.file("/log").unwrap().data, b"abcdef");
}

#[test]
fn rename_unlink_mkdir_chain() {
    let (world, code) = run(
        r#"
        long main() {
            mkdir("/tmp", 0777);
            long fd = open("/tmp/a", 0x41, 0600);
            write(fd, "x", 1);
            close(fd);
            if (rename("/tmp/a", "/tmp/b") != 0) { return 1; }
            if (open("/tmp/a", 0, 0) >= 0) { return 2; }
            if (unlink("/tmp/b") != 0) { return 3; }
            if (unlink("/tmp/b") >= 0) { return 4; }
            return 0;
        }
        "#,
        |_| {},
    );
    assert_eq!(code, 0);
    // Everything we created was renamed away and unlinked.
    assert_eq!(world.kernel.vfs.file_count(), 0);
}

#[test]
fn ftruncate_resizes() {
    let (world, code) = run(
        r#"
        long main() {
            long fd = open("/f", 1, 0);
            if (ftruncate(fd, 4) != 0) { return 1; }
            close(fd);
            long st[2];
            stat("/f", st);
            return st[0];
        }
        "#,
        |w| w.kernel.vfs.put_file("/f", b"abcdefghij".to_vec(), 0o644),
    );
    assert_eq!(code, 4);
    assert_eq!(world.kernel.vfs.file("/f").unwrap().data, b"abcd");
}

#[test]
fn brk_grows_the_heap() {
    let (_, code) = run(
        r#"
        long main() {
            long base = brk(0);
            long p = brk(base + 8192);
            if (p != base + 8192) { return 1; }
            // The new heap memory is usable.
            long *cell = base;
            *cell = 777;
            return *cell == 777;
        }
        "#,
        |_| {},
    );
    assert_eq!(code, 1);
}

#[test]
fn mmap_munmap_lifecycle() {
    let (world, code) = run(
        r#"
        long main() {
            long a = mmap(0, 8192, 3, 0x21, 0 - 1, 0);
            long *p = a;
            *p = 42;
            if (*p != 42) { return 1; }
            munmap(a, 8192);
            return 0;
        }
        "#,
        |_| {},
    );
    assert_eq!(code, 0);
    // The VMA was removed again.
    assert!(world.procs[0].vmas.is_empty());
}

#[test]
fn getrandom_is_deterministic_per_world() {
    let go = || {
        run(
            r#"
            long main() {
                char buf[16];
                getrandom(buf, 16, 0);
                long i;
                long acc = 0;
                for (i = 0; i < 16; i = i + 1) { acc = acc ^ (buf[i] << (i & 7)); }
                return acc & 0x7fffffff;
            }
            "#,
            |_| {},
        )
        .1
    };
    let a = go();
    let b = go();
    assert_eq!(a, b, "getrandom must be deterministic across worlds");
    assert_ne!(a, 0);
}

#[test]
fn bad_fds_and_unknown_syscalls_error_cleanly() {
    let (_, code) = run(
        r#"
        long main() {
            if (read(99, 0, 0) >= 0) { return 1; }      // EBADF
            if (close(99) >= 0) { return 2; }           // EBADF
            if (write(0, "x", 1) >= 0) { return 3; }    // stdin not writable? (EINVAL path)
            if (kill(42, 9) != 0) { return 4; }         // no-op success
            if (getcwd(0, 0) >= 0) { return 5; }        // EFAULT
            return 0;
        }
        "#,
        |_| {},
    );
    assert_eq!(code, 0);
}

#[test]
fn setuid_requires_privilege() {
    let (world, code) = run(
        r#"
        long main() {
            if (setuid(1000) != 0) { return 1; }    // root may drop
            if (setuid(0) >= 0) { return 2; }       // and cannot come back
            if (setgid(5) >= 0) { return 3; }       // unprivileged now
            return 0;
        }
        "#,
        |_| {},
    );
    assert_eq!(code, 0);
    assert_eq!(world.procs[0].creds.uid, 1000);
    assert_eq!(world.procs[0].creds.euid, 1000);
}

#[test]
fn sendfile_to_stdout() {
    let (world, code) = run(
        r#"
        long main() {
            long fd = open("/f", 0, 0);
            return sendfile(1, fd, 0, 5);
        }
        "#,
        |w| w.kernel.vfs.put_file("/f", b"abcdefghij".to_vec(), 0o644),
    );
    assert_eq!(code, 5);
    assert_eq!(world.kernel.console, b"abcde");
}
