//! Scheduler regression tests for the bugs the `bastion serve` supervisor
//! flushed out of `World::run`: sleep livelock, scan-order starvation,
//! budget overshoot, and `ConnRead` wake data loss. Each test fails on the
//! pre-fix scheduler.

use bastion_ir::build::ModuleBuilder;
use bastion_ir::{sysno, Operand, Ty};
use bastion_kernel::{ExitReason, RunStatus, World};
use bastion_vm::{CostModel, Image, Machine};
use std::sync::Arc;

fn spawn(world: &mut World, mb: ModuleBuilder) -> bastion_kernel::Pid {
    let img = Image::load(mb.finish()).unwrap();
    let machine = Machine::new(Arc::new(img), CostModel::default());
    world.spawn(machine)
}

/// A module whose `main` sleeps `cycles` of virtual time, then exits 0.
fn sleeper(cycles: i64) -> ModuleBuilder {
    let mut mb = ModuleBuilder::new("sleeper");
    let nanosleep = mb.declare_syscall_stub("nanosleep", sysno::NANOSLEEP, 2);
    let mut f = mb.function("main", &[], Ty::I64);
    let _ = f.call_direct(nanosleep, &[cycles.into(), 0i64.into()]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    mb
}

/// A module whose `main` spins forever (pure unit-cost control flow).
fn spinner() -> ModuleBuilder {
    let mut mb = ModuleBuilder::new("spin");
    let mut f = mb.function("main", &[], Ty::I64);
    let header = f.new_block();
    f.jmp(header);
    f.switch_to(header);
    f.jmp(header);
    f.finish();
    mb
}

/// Bugfix 1 — sleep livelock: a world where *every* live process is
/// blocked on a future sleep deadline must advance the clock to the
/// earliest wake instead of reporting Idle forever. Pre-fix, `run`
/// returned `Idle` with both sleepers parked and `now()` frozen, so no
/// number of calls made progress.
#[test]
fn all_sleeping_world_advances_to_wake_instead_of_idling() {
    let mut world = World::new(CostModel::default());
    let a = spawn(&mut world, sleeper(100_000));
    let b = spawn(&mut world, sleeper(250_000));
    let status = world.run(50_000_000);
    assert_eq!(status, RunStatus::AllExited, "{}", world.summary());
    assert_eq!(world.proc(a).unwrap().exit, Some(ExitReason::Exited(0)));
    assert_eq!(world.proc(b).unwrap().exit, Some(ExitReason::Exited(0)));
    // Virtual time covered the longest sleep.
    assert!(world.now() >= 250_000, "now={}", world.now());
}

/// The `next_wake()` hint: a budget too small to reach the deadline
/// returns `Budget` (idle time burned against the budget) and exposes the
/// earliest sleep deadline so a supervisor can park the world.
#[test]
fn next_wake_exposes_earliest_sleep_deadline() {
    let mut world = World::new(CostModel::default());
    spawn(&mut world, sleeper(500_000));
    spawn(&mut world, sleeper(900_000));
    // Run just far enough for both to park in nanosleep.
    assert_eq!(world.run(10_000), RunStatus::Budget);
    let wake = world.next_wake().expect("two sleepers must expose a wake");
    assert!(
        wake > world.now() && wake < 600_000,
        "earliest wake {wake} should be the 500k sleeper (now={})",
        world.now()
    );
    // An idle-but-sleeping world burns budget, never more than asked.
    let t0 = world.now();
    assert_eq!(world.run(1_000), RunStatus::Budget);
    assert_eq!(world.now() - t0, 1_000);
    // A world blocked on external input only has no wake hint.
    let mut idle = World::new(CostModel::default());
    let mut mb = ModuleBuilder::new("reader");
    let read = mb.declare_syscall_stub("read", sysno::READ, 3);
    let mut f = mb.function("main", &[], Ty::I64);
    let buf = f.local("buf", Ty::Array(Box::new(Ty::I8), 8));
    let ba = f.frame_addr(buf);
    let _ = f.call_direct(read, &[0i64.into(), ba.into(), 8i64.into()]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    spawn(&mut idle, mb);
    let _ = idle.run(1_000_000);
    assert_eq!(idle.next_wake(), None);
}

/// Bugfix 2 — scan-order starvation: with a budget that expires mid-round
/// the pre-fix scheduler restarted its scan at index 0 every `run` call,
/// so process 0 got every quantum and the others never ran. The cursor
/// must resume round-robin where the last call left off.
#[test]
fn tight_budget_shares_quanta_round_robin() {
    let mut world = World::new(CostModel::default());
    let pids: Vec<_> = (0..3).map(|_| spawn(&mut world, spinner())).collect();
    // Each call's budget (600) is below quantum (512) + a second quantum,
    // so every call expires mid-round. 30 calls = 18_000 cycles total.
    for _ in 0..30 {
        assert_eq!(world.run(600), RunStatus::Budget);
    }
    let cycles: Vec<u64> = pids
        .iter()
        .map(|&p| world.proc(p).unwrap().machine.cycles)
        .collect();
    let total: u64 = cycles.iter().sum();
    let fair = total / 3;
    for (i, &c) in cycles.iter().enumerate() {
        // Pre-fix: procs 1 and 2 sit at exactly 0 while proc 0 hoards
        // everything. Post-fix each stays within one quantum of fair.
        assert!(
            c + 512 >= fair && c <= fair + 512,
            "proc {i} got {c} of {total} cycles (fair share {fair}): {:?}",
            cycles
        );
    }
}

/// Bugfix 3 — budget overshoot: `run(n)` on unit-cost instructions must
/// consume *exactly* min(n, work) cycles — the last quantum is clamped to
/// the remaining budget. Pre-fix the final 512-step quantum ran to
/// completion past the deadline (overshoot up to a full quantum).
#[test]
fn run_budget_is_never_overshot() {
    let mut world = World::new(CostModel::default());
    spawn(&mut world, spinner());
    let t0 = world.now();
    // 10_000 is deliberately not a multiple of the 512-cycle quantum.
    assert_eq!(world.run(10_000), RunStatus::Budget);
    let used = world.now() - t0;
    assert!(used <= 10_000, "run(10_000) consumed {used} cycles");
    assert_eq!(used, 10_000, "a spinner must use the whole budget");
    // And again, from a mid-quantum resume point.
    let t1 = world.now();
    assert_eq!(world.run(777), RunStatus::Budget);
    assert_eq!(world.now() - t1, 777);
}

/// Serves one request with the given read destinations: the server reads
/// twice (first into `bad_addr`, then into its real buffer) and echoes
/// what the second read received.
fn echo_with_bad_first_read() -> ModuleBuilder {
    let mut mb = ModuleBuilder::new("echo2");
    let socket = mb.declare_syscall_stub("socket", sysno::SOCKET, 3);
    let bind = mb.declare_syscall_stub("bind", sysno::BIND, 3);
    let listen = mb.declare_syscall_stub("listen", sysno::LISTEN, 2);
    let accept = mb.declare_syscall_stub("accept", sysno::ACCEPT, 3);
    let read = mb.declare_syscall_stub("read", sysno::READ, 3);
    let write = mb.declare_syscall_stub("write", sysno::WRITE, 3);

    let mut f = mb.function("main", &[], Ty::I64);
    let sa_slot = f.local("sa", Ty::Array(Box::new(Ty::I8), 16));
    let buf = f.local("buf", Ty::Array(Box::new(Ty::I8), 64));
    let sfd = f.call_direct(socket, &[2i64.into(), 1i64.into(), 0i64.into()]);
    let sa = f.frame_addr(sa_slot);
    f.store(sa, 2i64 | (8080i64 << 16));
    let sa2 = f.frame_addr(sa_slot);
    let _ = f.call_direct(bind, &[sfd.into(), sa2.into(), 16i64.into()]);
    let _ = f.call_direct(listen, &[sfd.into(), 8i64.into()]);
    let cfd = f.call_direct(accept, &[sfd.into(), 0i64.into(), 0i64.into()]);
    // First read lands on an unmapped destination: EFAULT, but the stream
    // bytes must survive for the retry.
    let _ = f.call_direct(read, &[cfd.into(), 8i64.into(), 64i64.into()]);
    let ba = f.frame_addr(buf);
    let n = f.call_direct(read, &[cfd.into(), ba.into(), 64i64.into()]);
    let ba2 = f.frame_addr(buf);
    let _ = f.call_direct(write, &[cfd.into(), ba2.into(), n.into()]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();
    mb
}

/// Bugfix 4a — `ConnRead` wake data loss, blocked-read path: the server
/// parks in `read` with an unmapped buffer *before* the client sends.
/// The wake delivers EFAULT, but must leave the bytes queued so the
/// retry with a valid buffer still sees them. Pre-fix the wake consumed
/// the bytes, the retry blocked forever, and the world went Idle.
#[test]
fn efault_on_blocked_read_preserves_stream_bytes() {
    let mut world = World::new(CostModel::default());
    let pid = spawn(&mut world, echo_with_bad_first_read());
    // Server blocks in accept; client connects; server then blocks in the
    // bad read (no data yet).
    assert_eq!(world.run(10_000_000), RunStatus::Idle);
    let c = world.net_connect(8080).expect("listener bound");
    assert_eq!(world.run(10_000_000), RunStatus::Idle);
    // Client sends: the wake path hits the unmapped buffer.
    world.net_send(c, b"ping!");
    assert_eq!(
        world.run(10_000_000),
        RunStatus::AllExited,
        "{}",
        world.summary()
    );
    assert_eq!(world.net_recv(c), b"ping!");
    assert_eq!(world.proc(pid).unwrap().exit, Some(ExitReason::Exited(0)));
}

/// Bugfix 4b — same bug on the direct `sys_read` path: data is already
/// queued when the faulting read executes, so no blocking is involved.
#[test]
fn efault_on_direct_read_preserves_stream_bytes() {
    let mut world = World::new(CostModel::default());
    let pid = spawn(&mut world, echo_with_bad_first_read());
    assert_eq!(world.run(10_000_000), RunStatus::Idle);
    // Bytes are queued before accept completes: both reads execute
    // synchronously inside sys_read.
    let c = world.net_connect(8080).expect("listener bound");
    world.net_send(c, b"ping!");
    assert_eq!(
        world.run(10_000_000),
        RunStatus::AllExited,
        "{}",
        world.summary()
    );
    assert_eq!(world.net_recv(c), b"ping!");
    assert_eq!(world.proc(pid).unwrap().exit, Some(ExitReason::Exited(0)));
}
