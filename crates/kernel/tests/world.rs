//! End-to-end world tests: programs written against the syscall ABI,
//! driven through the scheduler, blocking syscalls, fork, and seccomp.

use bastion_ir::build::ModuleBuilder;
use bastion_ir::{sysno, Operand, Ty};
use bastion_kernel::process::ProcState;
use bastion_kernel::{ExitReason, RunStatus, SeccompAction, SeccompFilter, World};
use bastion_vm::{CostModel, Image, Machine};
use std::sync::Arc;

fn spawn(world: &mut World, mb: ModuleBuilder) -> bastion_kernel::Pid {
    let img = Image::load(mb.finish()).unwrap();
    let machine = Machine::new(Arc::new(img), CostModel::default());
    world.spawn(machine)
}

/// Builds a sockaddr{family=2, port} on the stack and returns its address reg.
fn make_sockaddr(
    f: &mut bastion_ir::build::FunctionBuilder<'_>,
    slot: bastion_ir::SlotId,
    port: u16,
) -> bastion_ir::Reg {
    let a = f.frame_addr(slot);
    // family=2 in the low u16, port at byte offset 2: 2 | port << 16.
    let word = 2i64 | (i64::from(port) << 16);
    f.store(a, word);
    f.frame_addr(slot)
}

#[test]
fn echo_server_serves_external_client() {
    // main: socket; bind :8080; listen; accept; read; write back; exit.
    let mut mb = ModuleBuilder::new("echo");
    let socket = mb.declare_syscall_stub("socket", sysno::SOCKET, 3);
    let bind = mb.declare_syscall_stub("bind", sysno::BIND, 3);
    let listen = mb.declare_syscall_stub("listen", sysno::LISTEN, 2);
    let accept = mb.declare_syscall_stub("accept", sysno::ACCEPT, 3);
    let read = mb.declare_syscall_stub("read", sysno::READ, 3);
    let write = mb.declare_syscall_stub("write", sysno::WRITE, 3);

    let mut f = mb.function("main", &[], Ty::I64);
    let sa_slot = f.local("sa", Ty::Array(Box::new(Ty::I8), 16));
    let buf = f.local("buf", Ty::Array(Box::new(Ty::I8), 64));
    let sfd = f.call_direct(socket, &[2i64.into(), 1i64.into(), 0i64.into()]);
    let sa = make_sockaddr(&mut f, sa_slot, 8080);
    let _ = f.call_direct(bind, &[sfd.into(), sa.into(), 16i64.into()]);
    let _ = f.call_direct(listen, &[sfd.into(), 8i64.into()]);
    let cfd = f.call_direct(accept, &[sfd.into(), 0i64.into(), 0i64.into()]);
    let ba = f.frame_addr(buf);
    let n = f.call_direct(read, &[cfd.into(), ba.into(), 64i64.into()]);
    let ba2 = f.frame_addr(buf);
    let _ = f.call_direct(write, &[cfd.into(), ba2.into(), n.into()]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();

    let mut world = World::new(CostModel::default());
    let pid = spawn(&mut world, mb);

    // Server runs until it blocks in accept.
    assert_eq!(world.run(10_000_000), RunStatus::Idle);
    assert!(matches!(
        world.proc(pid).unwrap().state,
        ProcState::Blocked(_)
    ));

    // Client connects and sends a request.
    let c = world.net_connect(8080).expect("listener bound");
    world.net_send(c, b"ping!");
    assert_eq!(world.run(10_000_000), RunStatus::AllExited);
    assert_eq!(world.net_recv(c), b"ping!");
    assert_eq!(world.proc(pid).unwrap().exit, Some(ExitReason::Exited(0)));
    // Syscall counters recorded everything.
    assert_eq!(world.kernel.count_of(sysno::ACCEPT), 1);
    assert_eq!(world.kernel.count_of(sysno::BIND), 1);
}

#[test]
fn fork_runs_parent_and_child() {
    // main: fork; child (ret 0) writes "c" to stdout and exits 7;
    // parent waits and exits with child's pid != 0.
    let mut mb = ModuleBuilder::new("forker");
    let fork = mb.declare_syscall_stub("fork", sysno::FORK, 0);
    let exit = mb.declare_syscall_stub("exit", sysno::EXIT, 1);
    let wait4 = mb.declare_syscall_stub("wait4", sysno::WAIT4, 4);
    let write = mb.declare_syscall_stub("write", sysno::WRITE, 3);
    let msg = mb.global_str("msg", "child!");

    let mut f = mb.function("main", &[], Ty::I64);
    let pid = f.call_direct(fork, &[]);
    let is_child = f.cmp(bastion_ir::CmpOp::Eq, pid, 0i64);
    let child_b = f.new_block();
    let parent_b = f.new_block();
    f.br(is_child, child_b, parent_b);
    f.switch_to(child_b);
    let m = f.global_addr(msg);
    let _ = f.call_direct(write, &[1i64.into(), m.into(), 6i64.into()]);
    let _ = f.call_direct(exit, &[7i64.into()]);
    f.ret(Some(Operand::Imm(0)));
    f.switch_to(parent_b);
    let st = f.local("status", Ty::I64);
    let sta = f.frame_addr(st);
    let reaped = f.call_direct(
        wait4,
        &[(-1i64).into(), sta.into(), 0i64.into(), 0i64.into()],
    );
    f.ret(Some(reaped.into()));
    f.finish();

    let mut world = World::new(CostModel::default());
    let parent = spawn(&mut world, mb);
    assert_eq!(world.run(10_000_000), RunStatus::AllExited);
    assert_eq!(world.kernel.console, b"child!");
    // Parent exited with the child's pid.
    let Some(ExitReason::Exited(code)) = &world.proc(parent).unwrap().exit else {
        panic!("parent did not exit cleanly");
    };
    assert!(*code > 1);
    // Child exit status visible.
    let child = world
        .procs
        .iter()
        .find(|p| p.parent == Some(parent))
        .unwrap();
    assert_eq!(child.exit, Some(ExitReason::Exited(7)));
}

#[test]
fn seccomp_kill_terminates_on_not_callable_syscall() {
    let mut mb = ModuleBuilder::new("killer");
    let ptrace = mb.declare_syscall_stub("ptrace", sysno::PTRACE, 4);
    let mut f = mb.function("main", &[], Ty::I64);
    let z = Operand::Imm(0);
    let _ = f.call_direct(ptrace, &[z, z, z, z]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();

    let mut world = World::new(CostModel::default());
    let pid = spawn(&mut world, mb);
    let mut filter = SeccompFilter::new(SeccompAction::Allow);
    filter.set(sysno::PTRACE, SeccompAction::Kill);
    world.install_seccomp(pid, filter.shared(), false);
    assert_eq!(world.run(10_000_000), RunStatus::AllExited);
    assert_eq!(
        world.proc(pid).unwrap().exit,
        Some(ExitReason::SeccompKill { nr: sysno::PTRACE })
    );
    // The killed syscall never executed.
    assert_eq!(world.kernel.count_of(sysno::PTRACE), 0);
}

#[test]
fn seccomp_filters_are_inherited_by_children() {
    // parent forks; the child calls mprotect and must be seccomp-killed.
    let mut mb = ModuleBuilder::new("inherit");
    let fork = mb.declare_syscall_stub("fork", sysno::FORK, 0);
    let mprotect = mb.declare_syscall_stub("mprotect", sysno::MPROTECT, 3);
    let mut f = mb.function("main", &[], Ty::I64);
    let pid = f.call_direct(fork, &[]);
    let is_child = f.cmp(bastion_ir::CmpOp::Eq, pid, 0i64);
    let child_b = f.new_block();
    let done = f.new_block();
    f.br(is_child, child_b, done);
    f.switch_to(child_b);
    let z = Operand::Imm(0);
    let _ = f.call_direct(mprotect, &[z, z, Operand::Imm(7)]);
    f.jmp(done);
    f.switch_to(done);
    f.ret(Some(Operand::Imm(0)));
    f.finish();

    let mut world = World::new(CostModel::default());
    let parent = spawn(&mut world, mb);
    let mut filter = SeccompFilter::new(SeccompAction::Allow);
    filter.set(sysno::MPROTECT, SeccompAction::Kill);
    world.install_seccomp(parent, filter.shared(), false);
    assert_eq!(world.run(10_000_000), RunStatus::AllExited);
    let child = world
        .procs
        .iter()
        .find(|p| p.parent == Some(parent))
        .expect("child spawned");
    assert_eq!(
        child.exit,
        Some(ExitReason::SeccompKill {
            nr: sysno::MPROTECT
        })
    );
    assert_eq!(
        world.proc(parent).unwrap().exit,
        Some(ExitReason::Exited(0))
    );
}

#[test]
fn tracer_allow_and_deny_paths() {
    struct DenyExecve;
    impl bastion_kernel::Tracer for DenyExecve {
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }

        fn on_trap(&mut self, t: &mut bastion_kernel::Tracee<'_>) -> bastion_kernel::TraceVerdict {
            let regs = t.getregs();
            if regs.nr == sysno::EXECVE {
                bastion_kernel::TraceVerdict::Deny("execve denied".into())
            } else {
                bastion_kernel::TraceVerdict::Allow
            }
        }
    }

    let mut mb = ModuleBuilder::new("traced");
    let getpid = mb.declare_syscall_stub("getpid", sysno::GETPID, 0);
    let execve = mb.declare_syscall_stub("execve", sysno::EXECVE, 3);
    let mut f = mb.function("main", &[], Ty::I64);
    let _ = f.call_direct(getpid, &[]);
    let z = Operand::Imm(0);
    let _ = f.call_direct(execve, &[z, z, z]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();

    let mut world = World::new(CostModel::default());
    let pid = spawn(&mut world, mb);
    let mut filter = SeccompFilter::new(SeccompAction::Allow);
    filter.set(sysno::GETPID, SeccompAction::Trace);
    filter.set(sysno::EXECVE, SeccompAction::Trace);
    world.install_seccomp(pid, filter.shared(), true);
    world.attach_tracer(Box::new(DenyExecve));
    assert_eq!(world.run(10_000_000), RunStatus::AllExited);
    let exit = world.proc(pid).unwrap().exit.clone().unwrap();
    assert!(matches!(exit, ExitReason::MonitorKill { nr, .. } if nr == sysno::EXECVE));
    // getpid was traced, allowed, and executed; monitoring cost accrued.
    assert_eq!(world.kernel.count_of(sysno::GETPID), 1);
    assert_eq!(world.kernel.count_of(sysno::EXECVE), 0);
    assert_eq!(world.trap_count, 2);
    assert!(world.trace_cycles > 0);
}

#[test]
fn nanosleep_advances_virtual_time() {
    let mut mb = ModuleBuilder::new("sleeper");
    let nanosleep = mb.declare_syscall_stub("nanosleep", sysno::NANOSLEEP, 2);
    let mut f = mb.function("main", &[], Ty::I64);
    let _ = f.call_direct(nanosleep, &[100_000i64.into(), 0i64.into()]);
    f.ret(Some(Operand::Imm(0)));
    f.finish();

    let mut world = World::new(CostModel::default());
    spawn(&mut world, mb);
    // A world whose only live process sleeps advances the clock to the
    // wake deadline by itself: one run call carries it over the sleep and
    // to exit, and virtual time reflects the full sleep duration.
    assert_eq!(world.run(50_000_000), RunStatus::AllExited);
    assert!(
        world.now() >= 100_000,
        "sleep must advance virtual time: now={}",
        world.now()
    );
}

#[test]
fn file_io_through_syscalls() {
    let mut mb = ModuleBuilder::new("files");
    let open = mb.declare_syscall_stub("open", sysno::OPEN, 3);
    let read = mb.declare_syscall_stub("read", sysno::READ, 3);
    let write = mb.declare_syscall_stub("write", sysno::WRITE, 3);
    let close = mb.declare_syscall_stub("close", sysno::CLOSE, 1);
    let path = mb.global_str("path", "/etc/motd");

    let mut f = mb.function("main", &[], Ty::I64);
    let buf = f.local("buf", Ty::Array(Box::new(Ty::I8), 32));
    let pa = f.global_addr(path);
    let fd = f.call_direct(open, &[pa.into(), 0i64.into(), 0i64.into()]);
    let ba = f.frame_addr(buf);
    let n = f.call_direct(read, &[fd.into(), ba.into(), 32i64.into()]);
    let ba2 = f.frame_addr(buf);
    let _ = f.call_direct(write, &[1i64.into(), ba2.into(), n.into()]);
    let _ = f.call_direct(close, &[fd.into()]);
    f.ret(Some(n.into()));
    f.finish();

    let mut world = World::new(CostModel::default());
    world
        .kernel
        .vfs
        .put_file("/etc/motd", b"hello world".to_vec(), 0o644);
    let pid = spawn(&mut world, mb);
    assert_eq!(world.run(10_000_000), RunStatus::AllExited);
    assert_eq!(world.kernel.console, b"hello world");
    assert_eq!(world.proc(pid).unwrap().exit, Some(ExitReason::Exited(11)));
}

#[test]
fn run_budget_is_respected() {
    // An infinite loop: run() must come back with Budget, repeatedly, and
    // the clock must advance monotonically.
    let mut mb = ModuleBuilder::new("spin");
    let mut f = mb.function("main", &[], Ty::I64);
    let header = f.new_block();
    f.jmp(header);
    f.switch_to(header);
    f.jmp(header);
    f.finish();
    let mut world = World::new(CostModel::default());
    spawn(&mut world, mb);
    let t0 = world.now();
    assert_eq!(world.run(10_000), RunStatus::Budget);
    let t1 = world.now();
    assert!(t1 > t0);
    assert_eq!(world.run(10_000), RunStatus::Budget);
    assert!(world.now() > t1);
    assert_eq!(world.alive_count(), 1);
}
