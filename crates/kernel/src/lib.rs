//! # bastion-kernel
//!
//! A simulated Linux-like kernel servicing the system calls of
//! [`bastion_vm`] processes. This is the substrate the BASTION runtime
//! monitor plugs into:
//!
//! * [`seccomp`] — a seccomp-BPF model: per-syscall `Allow`/`Kill`/`Trace`
//!   verdicts evaluated on every syscall entry, inherited across `clone`;
//! * [`trace`] — the `ptrace`/`process_vm_readv` analogue: a [`trace::Tracer`]
//!   registered with the [`world::World`] is woken synchronously on traced
//!   syscalls and inspects the stopped process through [`trace::Tracee`],
//!   paying context-switch costs from the VM's [`bastion_vm::CostModel`];
//! * [`fs`] — an in-memory VFS with modes (for `chmod`), sizes, and the
//!   usual `open/read/write/lseek/stat/unlink/rename/mkdir` surface;
//! * [`net`] — loopback TCP-ish sockets: listeners with backlogs, byte-queue
//!   connections, and an *external peer* API that workload generators (the
//!   `wrk`/`dkftpbench` analogues) use to drive servers;
//! * [`process`] — processes with credentials, fd tables (shared open file
//!   descriptions across `clone`), VMA lists (for `mmap`/`mprotect`), and
//!   exit reasons distinguishing seccomp kills from monitor kills;
//! * [`syscall`] — the dispatcher implementing ~40 Linux x86-64 syscalls
//!   over the above, with per-number invocation counters (Table 4);
//! * [`world`] — the deterministic round-robin scheduler tying machines,
//!   kernel, seccomp, and tracer together, and accounting global virtual
//!   time.

pub mod errno;
pub mod faults;
pub mod fs;
pub mod net;
pub mod process;
pub mod seccomp;
pub mod syscall;
pub mod trace;
pub mod world;

pub use faults::{
    AccessClass, FaultAction, FaultInjector, FaultKind, FaultSchedule, FaultSpec, InjectedFault,
    Trigger,
};
pub use process::{ExitReason, Pid, Process};
pub use seccomp::{SeccompAction, SeccompFilter};
pub use trace::{EscalateReason, PrefilterVerdict, Regs, TraceVerdict, Tracee, Tracer};
pub use world::{
    set_thread_legacy_interp, thread_legacy_interp, ExtConnId, LegacyInterpGuard, RunStatus, World,
    WorldSnapshot,
};
