//! In-memory virtual filesystem.
//!
//! Flat path → node map with POSIX-ish modes; enough surface for the three
//! workload applications (static pages for the web server, WAL and data
//! files for the database, download files for the FTP server) and for the
//! `chmod` privilege-escalation scenarios of Table 6.

use std::collections::BTreeMap;

/// A regular file.
#[derive(Debug, Clone, Default)]
pub struct FileNode {
    /// File contents.
    pub data: Vec<u8>,
    /// POSIX mode bits (e.g. 0o644).
    pub mode: u32,
    /// Whether the execute bit matters for `execve` (convenience flag).
    pub executable: bool,
}

/// The filesystem tree (flat namespace; directories are prefixes).
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    files: BTreeMap<String, FileNode>,
    dirs: BTreeMap<String, u32>,
}

impl Vfs {
    /// An empty filesystem with `/` present.
    pub fn new() -> Self {
        let mut v = Vfs::default();
        v.dirs.insert("/".into(), 0o755);
        v
    }

    /// Creates or replaces a file.
    pub fn put_file(&mut self, path: impl Into<String>, data: Vec<u8>, mode: u32) {
        let path = path.into();
        self.files.insert(
            path,
            FileNode {
                data,
                executable: mode & 0o111 != 0,
                mode,
            },
        );
    }

    /// Looks a file up.
    pub fn file(&self, path: &str) -> Option<&FileNode> {
        self.files.get(path)
    }

    /// Mutable file lookup.
    pub fn file_mut(&mut self, path: &str) -> Option<&mut FileNode> {
        self.files.get_mut(path)
    }

    /// Whether `path` names an existing file.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Creates an empty file if missing; returns whether it already existed.
    pub fn ensure_file(&mut self, path: &str, mode: u32) -> bool {
        if self.files.contains_key(path) {
            true
        } else {
            self.put_file(path.to_string(), Vec::new(), mode);
            false
        }
    }

    /// Removes a file.
    pub fn unlink(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Renames a file.
    pub fn rename(&mut self, from: &str, to: &str) -> bool {
        if let Some(node) = self.files.remove(from) {
            self.files.insert(to.to_string(), node);
            true
        } else {
            false
        }
    }

    /// Creates a directory entry.
    pub fn mkdir(&mut self, path: &str, mode: u32) -> bool {
        if self.dirs.contains_key(path) {
            false
        } else {
            self.dirs.insert(path.to_string(), mode);
            true
        }
    }

    /// Changes a file's mode (the `chmod` target).
    pub fn chmod(&mut self, path: &str, mode: u32) -> bool {
        if let Some(f) = self.files.get_mut(path) {
            f.mode = mode;
            f.executable = mode & 0o111 != 0;
            true
        } else {
            false
        }
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_unlink() {
        let mut v = Vfs::new();
        v.put_file("/srv/index.html", b"<html>".to_vec(), 0o644);
        assert!(v.exists("/srv/index.html"));
        assert_eq!(v.file("/srv/index.html").unwrap().data, b"<html>");
        assert!(v.unlink("/srv/index.html"));
        assert!(!v.exists("/srv/index.html"));
        assert!(!v.unlink("/srv/index.html"));
    }

    #[test]
    fn chmod_sets_executable_bit() {
        let mut v = Vfs::new();
        v.put_file("/bin/tool", vec![], 0o644);
        assert!(!v.file("/bin/tool").unwrap().executable);
        assert!(v.chmod("/bin/tool", 0o755));
        assert!(v.file("/bin/tool").unwrap().executable);
        assert!(!v.chmod("/missing", 0o755));
    }

    #[test]
    fn rename_moves_content() {
        let mut v = Vfs::new();
        v.put_file("/a", b"x".to_vec(), 0o644);
        assert!(v.rename("/a", "/b"));
        assert!(!v.exists("/a"));
        assert_eq!(v.file("/b").unwrap().data, b"x");
    }

    #[test]
    fn mkdir_rejects_duplicates() {
        let mut v = Vfs::new();
        assert!(v.mkdir("/tmp", 0o777));
        assert!(!v.mkdir("/tmp", 0o777));
    }
}
