//! Linux errno values and the negative-return convention.

/// No such file or directory.
pub const ENOENT: i64 = 2;
/// Bad file descriptor.
pub const EBADF: i64 = 9;
/// Try again (would block).
pub const EAGAIN: i64 = 11;
/// Out of memory / address space.
pub const ENOMEM: i64 = 12;
/// Permission denied.
pub const EACCES: i64 = 13;
/// Bad address.
pub const EFAULT: i64 = 14;
/// File exists.
pub const EEXIST: i64 = 17;
/// Not a directory.
pub const ENOTDIR: i64 = 20;
/// Is a directory.
pub const EISDIR: i64 = 21;
/// Invalid argument.
pub const EINVAL: i64 = 22;
/// Too many open files.
pub const EMFILE: i64 = 24;
/// Function not implemented.
pub const ENOSYS: i64 = 38;
/// Operation not supported.
pub const EOPNOTSUPP: i64 = 95;
/// Address already in use.
pub const EADDRINUSE: i64 = 98;
/// Connection refused.
pub const ECONNREFUSED: i64 = 111;
/// Operation not permitted.
pub const EPERM: i64 = 1;
/// No child processes.
pub const ECHILD: i64 = 10;

/// Encodes `-errno` in a syscall return register.
pub fn err(e: i64) -> u64 {
    (-e) as u64
}

/// Decodes a syscall return: `Err(errno)` for the last 4096 values.
pub fn decode(ret: u64) -> Result<u64, i64> {
    let s = ret as i64;
    if (-4096..0).contains(&s) {
        Err(-s)
    } else {
        Ok(ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        assert_eq!(decode(err(ENOENT)), Err(ENOENT));
        assert_eq!(decode(5), Ok(5));
        assert_eq!(decode(u64::MAX - 4096), Ok(u64::MAX - 4096));
    }
}
