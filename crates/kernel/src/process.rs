//! Processes: fd tables, credentials, VMAs, scheduling state.

use crate::net::{ConnId, ListenerId};
use crate::seccomp::SeccompFilter;
use bastion_vm::{Fault, Machine};
use std::sync::Arc;

/// Process identifier.
pub type Pid = u32;

/// What a blocked process is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// `accept`/`accept4` on an empty backlog. Completion allocates the
    /// connection fd and fills the peer sockaddr.
    Accept {
        /// The listening socket.
        lid: ListenerId,
        /// Where to write the peer sockaddr (0 = none).
        addr_out: u64,
        /// Whether this was accept4 (flags argument present).
        accept4: bool,
    },
    /// `read`/`recvfrom` on a connection with no data yet.
    ConnRead {
        /// The connection.
        cid: ConnId,
        /// Destination buffer.
        buf: u64,
        /// Buffer capacity.
        len: u64,
    },
    /// `nanosleep` until the given virtual time.
    Sleep {
        /// Absolute wake-up time in world cycles.
        until: u64,
    },
    /// `wait4` for any child to exit.
    Wait4 {
        /// Where to write the status (0 = none).
        status_out: u64,
    },
}

/// Why a process stopped existing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitReason {
    /// Normal exit with a status code.
    Exited(i64),
    /// Hardware fault (segfault, CET #CP, CFI trap, ...).
    Fault(Fault),
    /// seccomp `SECCOMP_RET_KILL` fired for this syscall number.
    SeccompKill {
        /// The offending syscall.
        nr: u32,
    },
    /// The BASTION monitor denied a traced syscall.
    MonitorKill {
        /// The offending syscall.
        nr: u32,
        /// Which context was violated (monitor-provided description).
        reason: String,
    },
}

impl ExitReason {
    /// Whether the process was killed by a defense (seccomp, monitor, or a
    /// defense-induced fault) rather than exiting normally.
    pub fn killed_by_defense(&self) -> bool {
        match self {
            ExitReason::Exited(_) => false,
            ExitReason::Fault(f) => matches!(
                f,
                Fault::ControlProtection { .. } | Fault::CfiViolation { .. }
            ),
            ExitReason::SeccompKill { .. } | ExitReason::MonitorKill { .. } => true,
        }
    }
}

/// Scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// May be stepped.
    Runnable,
    /// Parked in a blocking syscall.
    Blocked(WaitReason),
    /// Terminated; `exit` holds the reason.
    Zombie,
}

/// User/group credentials (for `setuid`-family syscalls and the
/// privilege-escalation scenarios).
/// Processes start privileged (all ids zero, i.e. root) and drop, like
/// nginx/vsftpd — hence the derived all-zero `Default`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Creds {
    /// Real user id.
    pub uid: u32,
    /// Effective user id.
    pub euid: u32,
    /// Real group id.
    pub gid: u32,
    /// Effective group id.
    pub egid: u32,
}

/// A virtual memory area created by `mmap` (tracked so `mprotect` outcomes
/// — e.g. an attacker achieving RWX — are observable ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// Start address.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
    /// PROT_* bits (1=read, 2=write, 4=exec).
    pub prot: u64,
}

/// The per-fd slot: an index into the kernel's open-file-description table.
pub type OfdId = usize;

/// A process's file descriptor table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    slots: Vec<Option<OfdId>>,
}

impl FdTable {
    /// A table with stdio wired to the given descriptions.
    pub fn with_stdio(stdin: OfdId, stdout: OfdId, stderr: OfdId) -> Self {
        FdTable {
            slots: vec![Some(stdin), Some(stdout), Some(stderr)],
        }
    }

    /// Allocates the lowest free fd for `ofd`.
    pub fn alloc(&mut self, ofd: OfdId) -> i64 {
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.is_none() {
                *s = Some(ofd);
                return i as i64;
            }
        }
        self.slots.push(Some(ofd));
        (self.slots.len() - 1) as i64
    }

    /// Resolves an fd.
    pub fn get(&self, fd: u64) -> Option<OfdId> {
        self.slots.get(fd as usize).copied().flatten()
    }

    /// Closes an fd, returning the description it referenced.
    pub fn close(&mut self, fd: u64) -> Option<OfdId> {
        self.slots.get_mut(fd as usize).and_then(Option::take)
    }

    /// All open descriptions (for refcounting on fork).
    pub fn iter_open(&self) -> impl Iterator<Item = OfdId> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }
}

/// One simulated process. `Clone` is the world-snapshot path: the machine's
/// memory clones copy-on-write (page table of shared `Arc` pages), and the
/// seccomp filter stays shared behind its `Arc`.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent pid, if any.
    pub parent: Option<Pid>,
    /// CPU + memory state.
    pub machine: Machine,
    /// Scheduling state.
    pub state: ProcState,
    /// File descriptors.
    pub fds: FdTable,
    /// Credentials.
    pub creds: Creds,
    /// mmap'd areas.
    pub vmas: Vec<Vma>,
    /// Next mmap allocation address.
    pub mmap_cursor: u64,
    /// Current program break.
    pub brk: u64,
    /// Installed seccomp filter (inherited by children).
    pub seccomp: Option<Arc<SeccompFilter>>,
    /// Whether a tracer is attached (inherited by children).
    pub traced: bool,
    /// Exit reason once a zombie.
    pub exit: Option<ExitReason>,
    /// Count of successful `execve`s (ground truth for attack tests).
    pub exec_count: u32,
    /// Cycles already folded into the world clock.
    pub cycles_accounted: u64,
    /// Whether `wait4` already reaped this zombie.
    pub reaped: bool,
}

impl Process {
    /// Wraps a machine as pid `pid`.
    pub fn new(pid: Pid, machine: Machine, fds: FdTable) -> Self {
        let mmap_cursor = machine.image.mmap_base;
        let brk = machine.image.heap_base;
        Process {
            pid,
            parent: None,
            machine,
            state: ProcState::Runnable,
            fds,
            creds: Creds::default(),
            vmas: Vec::new(),
            mmap_cursor,
            brk,
            seccomp: None,
            traced: false,
            exit: None,
            exec_count: 0,
            cycles_accounted: 0,
            reaped: false,
        }
    }

    /// Whether any VMA is simultaneously writable and executable — the
    /// ground-truth "memory permission attack succeeded" predicate.
    pub fn has_wx_mapping(&self) -> bool {
        self.vmas.iter().any(|v| v.prot & 0b110 == 0b110)
    }

    /// Kills the process with the given reason.
    pub fn kill(&mut self, reason: ExitReason) {
        self.state = ProcState::Zombie;
        self.exit = Some(reason);
    }

    /// Whether the process is alive (not a zombie).
    pub fn alive(&self) -> bool {
        self.state != ProcState::Zombie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_table_allocates_lowest_free() {
        let mut t = FdTable::with_stdio(0, 1, 2);
        assert_eq!(t.alloc(10), 3);
        assert_eq!(t.alloc(11), 4);
        assert_eq!(t.close(3), Some(10));
        assert_eq!(t.alloc(12), 3);
        assert_eq!(t.get(3), Some(12));
        assert_eq!(t.get(99), None);
    }

    #[test]
    fn exit_reason_classification() {
        assert!(!ExitReason::Exited(0).killed_by_defense());
        assert!(ExitReason::SeccompKill { nr: 59 }.killed_by_defense());
        assert!(ExitReason::MonitorKill {
            nr: 59,
            reason: "call-type".into()
        }
        .killed_by_defense());
        assert!(ExitReason::Fault(Fault::ControlProtection {
            expected: None,
            got: 0
        })
        .killed_by_defense());
        assert!(!ExitReason::Fault(Fault::DivByZero).killed_by_defense());
    }

    #[test]
    fn wx_detection() {
        use bastion_ir::build::ModuleBuilder;
        use bastion_ir::Ty;
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", &[], Ty::I64);
        f.ret(Some(bastion_ir::Operand::Imm(0)));
        f.finish();
        let img = bastion_vm::Image::load(mb.finish()).unwrap();
        let m = Machine::new(std::sync::Arc::new(img), bastion_vm::CostModel::default());
        let mut p = Process::new(1, m, FdTable::default());
        assert!(!p.has_wx_mapping());
        p.vmas.push(Vma {
            start: 0x1000,
            len: 0x1000,
            prot: 0b101,
        });
        assert!(!p.has_wx_mapping());
        p.vmas.push(Vma {
            start: 0x2000,
            len: 0x1000,
            prot: 0b111,
        });
        assert!(p.has_wx_mapping());
    }
}
