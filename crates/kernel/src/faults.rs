//! Deterministic, seeded fault injection for the monitor's substrate.
//!
//! BASTION's security argument assumes the monitor's view of the tracee —
//! `PTRACE_GETREGS` snapshots, `process_vm_readv` frame/pointee reads, the
//! shared shadow mapping — is always intact. This module makes that
//! assumption *testable*: a [`FaultSchedule`] describes, deterministically,
//! which substrate accesses misbehave and how, and a [`FaultInjector`]
//! installed on a [`crate::World`] replays the schedule against every
//! monitor access. Because worlds are fully deterministic (same module +
//! same workload ⇒ same trap sequence), a schedule pinned by `(seed,
//! triggers)` reproduces the exact same fault pattern on every run — chaos
//! tests are ordinary regression tests.
//!
//! Fault classes (tentpole list from the robustness issue):
//!
//! * [`FaultKind::ReadError`] — the access fails outright (transient if
//!   triggered once, permanent if triggered from an index onward);
//! * [`FaultKind::TornRead`] — a partial remote read: only a prefix of the
//!   requested bytes is transferred (`process_vm_readv` short-read);
//! * [`FaultKind::FrameCorrupt`] — the saved frame pointer fetched by
//!   [`crate::Tracee::read_frame`] is bit-flipped mid-walk;
//! * [`FaultKind::ShadowBitFlip`] — a bit flips in the shared shadow
//!   mapping as the monitor reads it;
//! * [`FaultKind::Stall`] — the access takes far longer than modeled
//!   (scheduling delay / contention), charged as extra virtual cycles.
//! * [`FaultKind::AppStateFlip`] — the dual family: a bit flips in the
//!   *application's* state (a frame register, a stack word, a shadow-bound
//!   local) at trap entry, before the monitor looks at anything. SFP-style:
//!   the app is the faulty component and the monitor must either observe a
//!   benign run or deny/escalate — never approve corrupted state.

/// Which substrate access a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// `PTRACE_GETREGS` register snapshot.
    GetRegs,
    /// Plain `process_vm_readv` ([`crate::Tracee::read_mem`] / `read_u64`).
    ReadMem,
    /// Batched 16-byte frame-head fetch ([`crate::Tracee::read_frame`]).
    ReadFrame,
    /// Bounded prefix read ([`crate::Tracee::read_mem_prefix`]).
    ReadPrefix,
    /// A load from the shared shadow mapping.
    Shadow,
    /// Not a substrate access at all: a trap-entry mutation of the app's
    /// own registers/stack/shadow-bound locals (see
    /// [`FaultKind::AppStateFlip`]).
    AppState,
}

impl AccessClass {
    /// Stable snake_case name for fault-log exports and join summaries.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::GetRegs => "getregs",
            AccessClass::ReadMem => "read_mem",
            AccessClass::ReadFrame => "read_frame",
            AccessClass::ReadPrefix => "read_prefix",
            AccessClass::Shadow => "shadow",
            AccessClass::AppState => "app_state",
        }
    }
}

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The access fails (as if the remote mapping vanished / ptrace
    /// returned `ESRCH`).
    ReadError,
    /// Only a prefix of the requested bytes is transferred; the fraction
    /// kept is drawn from the schedule's seeded stream.
    TornRead,
    /// The saved frame pointer in a frame-head fetch is corrupted
    /// (seeded XOR), derailing the stack walk mid-chain.
    FrameCorrupt,
    /// One seeded bit of the bytes read from the shadow mapping flips.
    ShadowBitFlip,
    /// The access stalls for `cycles` extra virtual cycles before
    /// completing normally (drives verification past a trap deadline).
    Stall {
        /// Extra virtual cycles charged to the trap.
        cycles: u64,
    },
    /// One seeded bit flips in the *app's* state at trap entry: a live
    /// frame register, a word of the current stack frame, or a word of the
    /// shadow region. Fires through [`FaultInjector::app_state_flips`]
    /// (trap-scoped triggers only), never through the per-access path, so
    /// adding an app-state rule leaves every substrate access index
    /// untouched.
    AppStateFlip,
    /// A seeded mix: each firing picks one of the above kinds applicable
    /// to the access class from the schedule's random stream.
    Mix,
}

impl FaultKind {
    /// Whether this kind can apply to `class` at all. Shadow reads are
    /// local loads from a shared mapping — they cannot fail or stall, only
    /// return corrupted bytes; frame corruption only makes sense on the
    /// frame-head fetch.
    fn applies(self, class: AccessClass) -> bool {
        match self {
            FaultKind::ReadError | FaultKind::Stall { .. } => class != AccessClass::Shadow,
            FaultKind::TornRead => matches!(
                class,
                AccessClass::ReadMem | AccessClass::ReadFrame | AccessClass::ReadPrefix
            ),
            FaultKind::FrameCorrupt => class == AccessClass::ReadFrame,
            FaultKind::ShadowBitFlip => class == AccessClass::Shadow,
            // App-state flips are trap-entry events, not substrate-access
            // mutations; they never match on the per-access path.
            FaultKind::AppStateFlip => false,
            FaultKind::Mix => class != AccessClass::AppState,
        }
    }
}

/// When a fault fires. Access indices count every substrate access the
/// injector sees (1-based); trap indices count monitor traps (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Exactly the `n`-th matching access (a transient fault).
    OnAccess(u64),
    /// Every matching access from the `n`-th onward (a permanent fault).
    FromAccess(u64),
    /// Every `n`-th matching access (`phase` offsets the comb).
    EveryNth {
        /// Period (must be ≥ 1).
        n: u64,
        /// Offset of the first firing access.
        phase: u64,
    },
    /// Every access within the `n`-th monitor trap.
    OnTrap(u64),
    /// Every access within traps `from..=to`.
    TrapRange {
        /// First trap index (1-based, inclusive).
        from: u64,
        /// Last trap index (inclusive).
        to: u64,
    },
}

impl Trigger {
    fn matches(self, access: u64, trap: u64) -> bool {
        match self {
            Trigger::OnAccess(n) => access == n,
            Trigger::FromAccess(n) => access >= n,
            Trigger::EveryNth { n, phase } => {
                n > 0 && access >= phase && (access - phase).is_multiple_of(n)
            }
            Trigger::OnTrap(n) => trap == n,
            Trigger::TrapRange { from, to } => trap >= from && trap <= to,
        }
    }
}

/// One fault rule: a kind plus the trigger that fires it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What goes wrong.
    pub kind: FaultKind,
    /// When it fires.
    pub trigger: Trigger,
}

/// A deterministic fault schedule: an ordered rule list plus the seed for
/// every random draw (torn-read lengths, corruption patterns, mix picks).
/// The first matching rule per access wins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Rules, checked in order.
    pub specs: Vec<FaultSpec>,
    /// Seed for the schedule's SplitMix64 stream.
    pub seed: u64,
}

impl FaultSchedule {
    /// An empty schedule with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            specs: Vec::new(),
            seed,
        }
    }

    /// Appends a rule (builder style).
    #[must_use]
    pub fn with(mut self, kind: FaultKind, trigger: Trigger) -> Self {
        self.specs.push(FaultSpec { kind, trigger });
        self
    }

    /// A sparse chaos mix: one seeded fault every `period` substrate
    /// accesses, kind drawn per firing. The workhorse schedule of the
    /// chaos suite.
    pub fn chaos(seed: u64, period: u64) -> Self {
        FaultSchedule::new(seed).with(
            FaultKind::Mix,
            Trigger::EveryNth {
                n: period.max(1),
                phase: 1,
            },
        )
    }
}

/// A fault that actually fired (for post-run assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Global access index (1-based) at which it fired.
    pub access: u64,
    /// Trap index since the schedule was installed (1-based; 0 = outside
    /// any trap). Trap-targeted triggers match on this counter.
    pub trap: u64,
    /// World-level trap sequence number at fire time (0 = outside any
    /// trap). Joins with the monitor's `DenyRecord::trap_seq`, which counts
    /// the same sequence.
    pub world_trap: u64,
    /// The access class it hit.
    pub class: AccessClass,
    /// The resolved kind (never [`FaultKind::Mix`]).
    pub kind: FaultKind,
}

/// The concrete mutation a faulted access must apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the access.
    Error,
    /// Transfer only the first `keep` bytes.
    Torn {
        /// Bytes actually transferred.
        keep: usize,
    },
    /// XOR the fetched saved frame pointer with this pattern (never 0).
    Corrupt {
        /// Corruption pattern.
        xor: u64,
    },
    /// Flip bit `bit` of byte `byte` (indices reduced modulo the buffer).
    FlipBit {
        /// Byte offset (mod buffer length).
        byte: usize,
        /// Bit index 0..8.
        bit: u32,
    },
    /// Charge `cycles` extra virtual cycles, then complete normally.
    Stall {
        /// Extra cycles.
        cycles: u64,
    },
}

/// Replays a [`FaultSchedule`] against a run. Deterministic: the random
/// stream advances only when a fault fires, so identical runs see identical
/// faults. `Clone` so a [`crate::World`] snapshot can capture mid-schedule
/// injector state.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    rng: u64,
    accesses: u64,
    traps: u64,
    world_trap: u64,
    log: Vec<InjectedFault>,
}

impl FaultInjector {
    /// Builds an injector for `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        let rng = schedule.seed ^ 0x9E37_79B9_7F4A_7C15;
        FaultInjector {
            schedule,
            rng,
            accesses: 0,
            traps: 0,
            world_trap: 0,
            log: Vec::new(),
        }
    }

    /// SplitMix64 step.
    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Marks the start of a monitor trap (called by the world before the
    /// tracer runs). `world_trap` is the world's trap sequence number,
    /// recorded into every fault fired during this trap so chaos
    /// assertions can join the fault log against deny records.
    pub fn begin_trap(&mut self, world_trap: u64) {
        self.traps += 1;
        self.world_trap = world_trap;
    }

    /// The current trap index (1-based; 0 before the first trap).
    pub fn trap_index(&self) -> u64 {
        self.traps
    }

    /// Total substrate accesses observed so far.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Faults that fired so far.
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// Consults the schedule for one substrate access of `class` moving
    /// `len` bytes. Returns the mutation to apply, if any.
    pub fn on_access(&mut self, class: AccessClass, len: usize) -> Option<FaultAction> {
        self.accesses += 1;
        let (access, trap) = (self.accesses, self.traps);
        let spec = *self
            .schedule
            .specs
            .iter()
            .find(|s| s.trigger.matches(access, trap) && s.kind.applies(class))?;
        let kind = self.resolve(spec.kind, class);
        let action = self.action_for(kind, len)?;
        self.log.push(InjectedFault {
            access,
            trap,
            world_trap: self.world_trap,
            class,
            kind,
        });
        Some(action)
    }

    /// Trap-entry hook for the app-state fault family. Called by the world
    /// once per monitor trap, right after [`FaultInjector::begin_trap`] and
    /// before the tracer sees the stop. Returns one `(a, b)` draw pair per
    /// `AppStateFlip` rule whose trap-scoped trigger matches this trap; the
    /// world spends the draws on [`bastion_vm::Machine::chaos_flip`].
    /// Deliberately leaves the access counter untouched, so installing an
    /// app-state rule never shifts the access indices substrate rules key
    /// on. Only [`Trigger::OnTrap`]/[`Trigger::TrapRange`] fire this family.
    pub fn app_state_flips(&mut self) -> Vec<(u64, u64)> {
        let trap = self.traps;
        let n = self
            .schedule
            .specs
            .iter()
            .filter(|s| {
                s.kind == FaultKind::AppStateFlip
                    && matches!(s.trigger, Trigger::OnTrap(_) | Trigger::TrapRange { .. })
                    && s.trigger.matches(0, trap)
            })
            .count();
        (0..n)
            .map(|_| {
                let draws = (self.next_rand(), self.next_rand());
                self.log.push(InjectedFault {
                    access: self.accesses,
                    trap,
                    world_trap: self.world_trap,
                    class: AccessClass::AppState,
                    kind: FaultKind::AppStateFlip,
                });
                draws
            })
            .collect()
    }

    /// Resolves [`FaultKind::Mix`] into a concrete kind applicable to
    /// `class` using the seeded stream.
    fn resolve(&mut self, kind: FaultKind, class: AccessClass) -> FaultKind {
        if kind != FaultKind::Mix {
            return kind;
        }
        let stall = FaultKind::Stall {
            cycles: 2_000 + (self.next_rand() % 30_000),
        };
        let pick = self.next_rand();
        match class {
            AccessClass::Shadow => FaultKind::ShadowBitFlip,
            AccessClass::GetRegs => {
                if pick.is_multiple_of(2) {
                    FaultKind::ReadError
                } else {
                    stall
                }
            }
            AccessClass::ReadMem | AccessClass::ReadPrefix => match pick % 3 {
                0 => FaultKind::ReadError,
                1 => FaultKind::TornRead,
                _ => stall,
            },
            AccessClass::ReadFrame => match pick % 4 {
                0 => FaultKind::ReadError,
                1 => FaultKind::TornRead,
                2 => FaultKind::FrameCorrupt,
                _ => stall,
            },
            // `applies` rejects Mix on AppState, so this arm is never hit;
            // it exists only for match exhaustiveness.
            AccessClass::AppState => FaultKind::AppStateFlip,
        }
    }

    /// Turns a concrete kind into the mutation for a `len`-byte access.
    /// Returns `None` when the access is too small to mutate that way
    /// (e.g. tearing a read that transfers nothing).
    fn action_for(&mut self, kind: FaultKind, len: usize) -> Option<FaultAction> {
        match kind {
            FaultKind::ReadError => Some(FaultAction::Error),
            FaultKind::TornRead => {
                if len == 0 {
                    return None;
                }
                Some(FaultAction::Torn {
                    keep: (self.next_rand() % len as u64) as usize,
                })
            }
            FaultKind::FrameCorrupt => {
                let xor = self.next_rand() | 1; // never the identity
                Some(FaultAction::Corrupt { xor })
            }
            FaultKind::ShadowBitFlip => {
                if len == 0 {
                    return None;
                }
                let r = self.next_rand();
                Some(FaultAction::FlipBit {
                    byte: (r >> 3) as usize % len,
                    bit: (r & 7) as u32,
                })
            }
            FaultKind::Stall { cycles } => Some(FaultAction::Stall { cycles }),
            // App-state flips fire through `app_state_flips`, never here.
            FaultKind::AppStateFlip => None,
            FaultKind::Mix => unreachable!("Mix resolved before action_for"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(inj: &mut FaultInjector, class: AccessClass, n: usize) -> Vec<Option<FaultAction>> {
        (0..n).map(|_| inj.on_access(class, 64)).collect()
    }

    #[test]
    fn schedules_are_deterministic() {
        let s = FaultSchedule::chaos(42, 3);
        let mut a = FaultInjector::new(s.clone());
        let mut b = FaultInjector::new(s);
        a.begin_trap(1);
        b.begin_trap(1);
        assert_eq!(
            drain(&mut a, AccessClass::ReadMem, 32),
            drain(&mut b, AccessClass::ReadMem, 32)
        );
        assert_eq!(a.log(), b.log());
        assert!(!a.log().is_empty());
    }

    #[test]
    fn on_access_transient_fires_once() {
        let s = FaultSchedule::new(1).with(FaultKind::ReadError, Trigger::OnAccess(2));
        let mut inj = FaultInjector::new(s);
        let fired: Vec<_> = drain(&mut inj, AccessClass::ReadMem, 5);
        assert_eq!(
            fired,
            vec![None, Some(FaultAction::Error), None, None, None]
        );
        assert_eq!(inj.log().len(), 1);
        assert_eq!(inj.log()[0].access, 2);
    }

    #[test]
    fn from_access_is_permanent() {
        let s = FaultSchedule::new(1).with(FaultKind::ReadError, Trigger::FromAccess(3));
        let mut inj = FaultInjector::new(s);
        let fired = drain(&mut inj, AccessClass::GetRegs, 5);
        assert_eq!(fired.iter().filter(|a| a.is_some()).count(), 3);
    }

    #[test]
    fn trap_ranges_gate_by_trap_index() {
        let s =
            FaultSchedule::new(7).with(FaultKind::ReadError, Trigger::TrapRange { from: 2, to: 2 });
        let mut inj = FaultInjector::new(s);
        inj.begin_trap(41);
        assert!(inj.on_access(AccessClass::ReadFrame, 16).is_none());
        inj.begin_trap(42);
        assert!(inj.on_access(AccessClass::ReadFrame, 16).is_some());
        inj.begin_trap(43);
        assert!(inj.on_access(AccessClass::ReadFrame, 16).is_none());
        // The fired fault carries the world trap sequence for joining
        // against deny records.
        assert_eq!(inj.log().len(), 1);
        assert_eq!(inj.log()[0].trap, 2);
        assert_eq!(inj.log()[0].world_trap, 42);
    }

    #[test]
    fn kinds_respect_access_classes() {
        // A frame-corruption rule never fires on plain reads or shadow
        // loads, only on frame-head fetches.
        let s = FaultSchedule::new(9).with(FaultKind::FrameCorrupt, Trigger::FromAccess(1));
        let mut inj = FaultInjector::new(s);
        assert!(inj.on_access(AccessClass::ReadMem, 8).is_none());
        assert!(inj.on_access(AccessClass::Shadow, 8).is_none());
        assert!(matches!(
            inj.on_access(AccessClass::ReadFrame, 16),
            Some(FaultAction::Corrupt { xor }) if xor != 0
        ));
    }

    #[test]
    fn shadow_flips_stay_in_bounds() {
        let s = FaultSchedule::new(3).with(FaultKind::ShadowBitFlip, Trigger::FromAccess(1));
        let mut inj = FaultInjector::new(s);
        for _ in 0..64 {
            match inj.on_access(AccessClass::Shadow, 8) {
                Some(FaultAction::FlipBit { byte, bit }) => {
                    assert!(byte < 8);
                    assert!(bit < 8);
                }
                other => panic!("expected FlipBit, got {other:?}"),
            }
        }
    }

    #[test]
    fn app_state_flips_fire_per_trap_without_touching_access_indices() {
        let s = FaultSchedule::new(11)
            .with(
                FaultKind::AppStateFlip,
                Trigger::TrapRange { from: 2, to: 3 },
            )
            .with(FaultKind::ReadError, Trigger::OnAccess(2));
        let mut inj = FaultInjector::new(s);
        inj.begin_trap(10);
        assert!(inj.app_state_flips().is_empty());
        inj.begin_trap(11);
        let flips = inj.app_state_flips();
        assert_eq!(flips.len(), 1);
        // The per-access stream is unperturbed: access #2 still errors.
        assert!(inj.on_access(AccessClass::ReadMem, 8).is_none());
        assert!(inj.on_access(AccessClass::ReadMem, 8).is_some());
        inj.begin_trap(12);
        assert_eq!(inj.app_state_flips().len(), 1);
        inj.begin_trap(13);
        assert!(inj.app_state_flips().is_empty());
        // Every firing is logged with the app_state class for provenance.
        let app = |f: &&InjectedFault| f.class == AccessClass::AppState;
        assert_eq!(inj.log().iter().filter(app).count(), 2);
        assert_eq!(inj.log().iter().find(app).unwrap().world_trap, 11);
    }

    #[test]
    fn app_state_rules_never_fire_on_substrate_accesses() {
        let s = FaultSchedule::new(13).with(FaultKind::AppStateFlip, Trigger::FromAccess(1));
        let mut inj = FaultInjector::new(s);
        inj.begin_trap(1);
        for class in [
            AccessClass::GetRegs,
            AccessClass::ReadMem,
            AccessClass::ReadFrame,
            AccessClass::ReadPrefix,
            AccessClass::Shadow,
        ] {
            assert!(inj.on_access(class, 16).is_none());
        }
        // And an access-scoped trigger never reaches the trap hook either.
        assert!(inj.app_state_flips().is_empty());
    }

    #[test]
    fn cloned_injector_replays_identically() {
        let s = FaultSchedule::chaos(21, 2).with(
            FaultKind::AppStateFlip,
            Trigger::TrapRange { from: 1, to: 8 },
        );
        let mut a = FaultInjector::new(s);
        a.begin_trap(1);
        a.app_state_flips();
        a.on_access(AccessClass::ReadMem, 32);
        let mut b = a.clone();
        a.begin_trap(2);
        b.begin_trap(2);
        assert_eq!(a.app_state_flips(), b.app_state_flips());
        assert_eq!(
            drain(&mut a, AccessClass::ReadFrame, 8),
            drain(&mut b, AccessClass::ReadFrame, 8)
        );
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn torn_reads_keep_a_strict_prefix() {
        let s = FaultSchedule::new(5).with(FaultKind::TornRead, Trigger::FromAccess(1));
        let mut inj = FaultInjector::new(s);
        for _ in 0..64 {
            match inj.on_access(AccessClass::ReadPrefix, 256) {
                Some(FaultAction::Torn { keep }) => assert!(keep < 256),
                other => panic!("expected Torn, got {other:?}"),
            }
        }
    }
}
