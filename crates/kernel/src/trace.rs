//! The ptrace / `process_vm_readv` analogue (paper §7.1).
//!
//! When seccomp returns `SECCOMP_RET_TRACE`, the world stops the process and
//! wakes the attached [`Tracer`] — the BASTION monitor — handing it a
//! [`Tracee`] view of the stopped process. Every access through the view
//! charges virtual cycles to the trap, reproducing the paper's key cost
//! observation (Table 7): *fetching process state dominates monitor
//! overhead* because each access implies context switches.

use crate::faults::{AccessClass, FaultAction, FaultInjector};
use crate::process::Pid;
use bastion_obs::{FlightEntry, FlightRecorder};
use bastion_vm::{Machine, MemIo, OutOfBounds};
use std::cell::RefCell;

/// The register snapshot `PTRACE_GETREGS` returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Regs {
    /// Trapped syscall number (`orig_rax`).
    pub nr: u32,
    /// Syscall argument registers (rdi, rsi, rdx, r10, r8, r9).
    pub args: [u64; 6],
    /// Address of the trapping `syscall` instruction (`rip`).
    pub rip: u64,
    /// Stack pointer.
    pub sp: u64,
    /// Frame pointer.
    pub fp: u64,
}

/// The monitor's window into a stopped process.
pub struct Tracee<'a> {
    machine: &'a Machine,
    pid: Pid,
    charge: &'a mut u64,
    /// Cycles already on `charge` when this trap's view was created; the
    /// watchdog deadline is measured against `charged() - start_charge`.
    start_charge: u64,
    /// Fault injector, when the world runs under a chaos schedule.
    faults: Option<&'a RefCell<FaultInjector>>,
    /// The world's always-on flight-recorder ring, so the monitor's deny
    /// path can join a dump of the run-up to the violation.
    flight: Option<&'a RefCell<FlightRecorder>>,
}

impl<'a> Tracee<'a> {
    /// Wraps a stopped machine. `charge` accumulates the virtual cycles the
    /// monitor's accesses cost (added to the world clock by the caller).
    pub fn new(machine: &'a Machine, pid: Pid, charge: &'a mut u64) -> Self {
        Tracee::with_faults(machine, pid, charge, None)
    }

    /// Like [`Tracee::new`] but with an optional fault injector every
    /// substrate access consults.
    pub fn with_faults(
        machine: &'a Machine,
        pid: Pid,
        charge: &'a mut u64,
        faults: Option<&'a RefCell<FaultInjector>>,
    ) -> Self {
        let start_charge = *charge;
        Tracee {
            machine,
            pid,
            charge,
            start_charge,
            faults,
            flight: None,
        }
    }

    /// Attaches the world's flight-recorder ring to this view so
    /// [`Tracee::flight_dump`] returns the run-up to the current trap.
    pub fn attach_flight(&mut self, flight: &'a RefCell<FlightRecorder>) {
        self.flight = Some(flight);
    }

    /// Flight-ring contents, oldest first — empty when no recorder is
    /// attached. Unlike every other accessor on this view, reading the
    /// ring is host-side observability only: **zero virtual cycles** are
    /// charged, so deny-path dumps never perturb clean-path cycle counts.
    #[must_use]
    pub fn flight_dump(&self) -> Vec<FlightEntry> {
        self.flight.map(|f| f.borrow().dump()).unwrap_or_default()
    }

    /// The stopped process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Consults the injector (no-op without one).
    fn fault(&mut self, class: AccessClass, len: usize) -> Option<FaultAction> {
        self.faults?.borrow_mut().on_access(class, len)
    }

    /// `PTRACE_GETREGS`: the trapped syscall state. Infallible view for
    /// harness code; the monitor uses [`Tracee::try_getregs`], which sees
    /// injected faults.
    pub fn getregs(&mut self) -> Regs {
        *self.charge += self.machine.cost.ptrace_getregs;
        Regs {
            nr: self.machine.trap_nr,
            args: self.machine.trap_args,
            rip: self.machine.trap_pc,
            sp: self.machine.sp,
            fp: self.machine.fp,
        }
    }

    /// `PTRACE_GETREGS` as the monitor calls it: same snapshot and charge
    /// as [`Tracee::getregs`], but an injected fault makes it fail the way
    /// a dead or detached tracee would.
    ///
    /// # Errors
    /// Fails only under an injected [`AccessClass::GetRegs`] fault.
    pub fn try_getregs(&mut self) -> Result<Regs, OutOfBounds> {
        match self.fault(AccessClass::GetRegs, 0) {
            Some(FaultAction::Error) => {
                *self.charge += self.machine.cost.ptrace_getregs;
                Err(OutOfBounds {
                    addr: 0,
                    write: false,
                })
            }
            Some(FaultAction::Stall { cycles }) => {
                *self.charge += cycles;
                Ok(self.getregs())
            }
            _ => Ok(self.getregs()),
        }
    }

    /// `process_vm_readv`: read remote memory.
    ///
    /// # Errors
    /// Fails if the range is unmapped in the tracee, or under an injected
    /// read fault. Callers of this API need the *whole* buffer, so a torn
    /// (short) injected read is surfaced as a failure at the cut point —
    /// never as silently zero-filled bytes a verifier might trust.
    pub fn read_mem(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), OutOfBounds> {
        *self.charge += self.machine.cost.remote_read
            + (buf.len() as u64 / 64) * self.machine.cost.remote_read_per_64b;
        match self.fault(AccessClass::ReadMem, buf.len()) {
            Some(FaultAction::Error) => {
                return Err(OutOfBounds { addr, write: false });
            }
            Some(FaultAction::Torn { keep }) => {
                return Err(OutOfBounds {
                    addr: addr + keep.min(buf.len()) as u64,
                    write: false,
                });
            }
            Some(FaultAction::Stall { cycles }) => *self.charge += cycles,
            _ => {}
        }
        self.machine.mem.read(addr, buf)
    }

    /// Remote read of one u64.
    ///
    /// # Errors
    /// Fails if the word is unmapped in the tracee.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, OutOfBounds> {
        let mut b = [0u8; 8];
        self.read_mem(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Batched frame fetch: the saved frame pointer (at `fp`) and the
    /// return address (at `fp + 8`) in ONE charged `process_vm_readv`,
    /// instead of two word reads each paying the full base cost. This is
    /// the trap-fast-path primitive Table 7 motivates: the base cost of a
    /// remote read dwarfs its per-byte cost, so fetching the 16-byte frame
    /// head at once halves the dominant per-frame charge.
    ///
    /// # Errors
    /// Fails if the 16-byte frame head is unmapped in the tracee, or under
    /// an injected frame-read fault. An injected corruption XORs the saved
    /// frame pointer; a torn frame read fails at the cut point — a
    /// zero-filled tail would fabricate a bottom-of-stack marker the
    /// walker must never trust.
    pub fn read_frame(&mut self, fp: u64) -> Result<(u64, u64), OutOfBounds> {
        *self.charge += self.machine.cost.remote_read;
        let mut b = [0u8; 16];
        let mut fp_xor = 0u64;
        match self.fault(AccessClass::ReadFrame, 16) {
            Some(FaultAction::Error) => {
                return Err(OutOfBounds {
                    addr: fp,
                    write: false,
                });
            }
            Some(FaultAction::Torn { keep }) => {
                return Err(OutOfBounds {
                    addr: fp + keep.min(16) as u64,
                    write: false,
                });
            }
            Some(FaultAction::Corrupt { xor }) => fp_xor = xor,
            Some(FaultAction::Stall { cycles }) => *self.charge += cycles,
            _ => {}
        }
        self.machine.mem.read(fp, &mut b)?;
        let saved_fp = u64::from_le_bytes(b[..8].try_into().expect("8 bytes")) ^ fp_xor;
        let ret = u64::from_le_bytes(b[8..].try_into().expect("8 bytes"));
        Ok((saved_fp, ret))
    }

    /// Bounded prefix read in ONE charged `process_vm_readv`: fills `buf`
    /// with as many bytes from `addr` as are mapped and returns that count
    /// (`Ok(0)` if `addr` itself is unmapped). Mirrors `process_vm_readv`'s
    /// partial-read semantics; the charge covers only the bytes actually
    /// transferred, plus the fixed base cost of the attempt.
    ///
    /// If the mapping check and the copy race with a concurrent unmap (or
    /// an injected torn read shortens the transfer), the returned count
    /// shrinks to whatever was actually readable — the call never panics
    /// and never reports bytes it did not fill.
    ///
    /// # Errors
    /// Fails only under an injected hard read fault; a merely-unmapped
    /// start is the `Ok(0)` case.
    pub fn read_mem_prefix(&mut self, addr: u64, buf: &mut [u8]) -> Result<usize, OutOfBounds> {
        let mut n = self.machine.mem.mapped_prefix_len(addr, buf.len() as u64) as usize;
        *self.charge +=
            self.machine.cost.remote_read + (n as u64 / 64) * self.machine.cost.remote_read_per_64b;
        match self.fault(AccessClass::ReadPrefix, n) {
            Some(FaultAction::Error) => {
                return Err(OutOfBounds { addr, write: false });
            }
            Some(FaultAction::Torn { keep }) => n = n.min(keep),
            Some(FaultAction::Stall { cycles }) => *self.charge += cycles,
            _ => {}
        }
        // The copy may still race with an unmap between the length probe
        // and the transfer: shrink (strictly, so this terminates) until a
        // whole prefix reads cleanly.
        while n > 0 {
            if self.machine.mem.read(addr, &mut buf[..n]).is_ok() {
                break;
            }
            let again = self.machine.mem.mapped_prefix_len(addr, n as u64) as usize;
            n = if again < n { again } else { n - 1 };
        }
        Ok(n)
    }

    /// The shadow-region base of the tracee (learned at launch, like the
    /// monitor's shared mapping in the paper).
    pub fn gs_base(&self) -> u64 {
        self.machine.gs_base
    }

    // ---- tier-1 prefilter primitives (in-kernel, no context switch) ----
    //
    // The prefilter runs at seccomp-classify time, inside the kernel, so
    // its reads cost `prefilter_read` cycles — same-address-space loads —
    // instead of a `process_vm_readv` round trip. Fault injection is
    // deliberately NOT consulted here: a world with any fault schedule
    // installed escalates every trap to tier 2 before the prefilter would
    // read anything, so faults always land on the monitor's resilience
    // ladder (DESIGN.md §6g).

    /// In-kernel register snapshot for the prefilter. At classify time the
    /// kernel already holds `seccomp_data` (nr, args, rip) and the stopped
    /// task's stack registers, so this is uncharged — the fixed
    /// `prefilter_eval` cost covers it.
    pub fn kernel_regs(&self) -> Regs {
        Regs {
            nr: self.machine.trap_nr,
            args: self.machine.trap_args,
            rip: self.machine.trap_pc,
            sp: self.machine.sp,
            fp: self.machine.fp,
        }
    }

    /// In-kernel tracee memory read (one `prefilter_read` charge).
    ///
    /// # Errors
    /// Fails if the range is unmapped in the tracee.
    pub fn kernel_read_mem(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), OutOfBounds> {
        *self.charge += self.machine.cost.prefilter_read;
        self.machine.mem.read(addr, buf)
    }

    /// In-kernel read of one u64 (one `prefilter_read` charge).
    ///
    /// # Errors
    /// Fails if the word is unmapped in the tracee.
    pub fn kernel_read_u64(&mut self, addr: u64) -> Result<u64, OutOfBounds> {
        let mut b = [0u8; 8];
        self.kernel_read_mem(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// In-kernel frame-head fetch: saved frame pointer and return address
    /// in one `prefilter_read` charge (the 16-byte head is one load pair).
    ///
    /// # Errors
    /// Fails if the frame head is unmapped in the tracee.
    pub fn kernel_read_frame(&mut self, fp: u64) -> Result<(u64, u64), OutOfBounds> {
        let mut b = [0u8; 16];
        self.kernel_read_mem(fp, &mut b)?;
        let saved_fp = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        let ret = u64::from_le_bytes(b[8..].try_into().expect("8 bytes"));
        Ok((saved_fp, ret))
    }

    /// In-kernel bounded prefix read (one `prefilter_read` charge): fills
    /// `buf` with as many bytes from `addr` as are mapped and returns the
    /// count (`0` if `addr` itself is unmapped). The in-kernel analogue of
    /// [`Tracee::read_mem_prefix`] — same partial-read and racing-unmap
    /// semantics, but no fault consultation (the faults-installed gate
    /// escalates before tier 1 ever reads) and no remote round trip, so
    /// the call is infallible.
    pub fn kernel_read_mem_prefix(&mut self, addr: u64, buf: &mut [u8]) -> usize {
        *self.charge += self.machine.cost.prefilter_read;
        let mut n = self.machine.mem.mapped_prefix_len(addr, buf.len() as u64) as usize;
        // Shrink (strictly, so this terminates) until a whole prefix
        // reads cleanly, mirroring read_mem_prefix's race handling.
        while n > 0 {
            if self.machine.mem.read(addr, &mut buf[..n]).is_ok() {
                break;
            }
            let again = self.machine.mem.mapped_prefix_len(addr, n as u64) as usize;
            n = if again < n { again } else { n - 1 };
        }
        n
    }

    /// Total cycles charged so far on this trap.
    pub fn charged(&self) -> u64 {
        *self.charge
    }

    /// Cycles charged since this tracee view was created — the quantity a
    /// per-trap verification deadline (watchdog) is measured against.
    pub fn charged_this_trap(&self) -> u64 {
        *self.charge - self.start_charge
    }

    /// Charges extra cycles without touching the tracee: retry backoff,
    /// deliberate waits. Counted like any other monitor-side work.
    pub fn stall(&mut self, cycles: u64) {
        *self.charge += cycles;
    }
}

/// A read-only adaptor over the tracee's memory implementing [`MemIo`].
///
/// The shadow region is a *shared mapping* between the application and the
/// monitor (paper §7.1: "a shadow memory region ... for shared use between
/// the application process and the Bastion monitor process"), so monitor
/// reads of shadow-table entries are local and cost nothing beyond ordinary
/// loads — use this adaptor only for the shadow region. Ordinary tracee
/// memory (stack frames, argument buffers) must instead be fetched with
/// [`Tracee::read_mem`], which pays the `process_vm_readv` cost.
pub struct SharedShadow<'a> {
    machine: &'a Machine,
    faults: Option<&'a RefCell<FaultInjector>>,
}

impl<'a> SharedShadow<'a> {
    /// Wraps the stopped machine for shadow-region access.
    pub fn new(machine: &'a Machine) -> Self {
        SharedShadow {
            machine,
            faults: None,
        }
    }
}

impl MemIo for SharedShadow<'_> {
    fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), OutOfBounds> {
        self.machine.mem.read(addr, buf)?;
        // Shared-mapping loads are local and cannot fail, but a chaos
        // schedule may flip a bit in what the monitor observes.
        if let Some(f) = self.faults {
            if let Some(FaultAction::FlipBit { byte, bit }) =
                f.borrow_mut().on_access(AccessClass::Shadow, buf.len())
            {
                buf[byte % buf.len().max(1)] ^= 1 << bit;
            }
        }
        Ok(())
    }

    fn write(&mut self, addr: u64, _buf: &[u8]) -> Result<(), OutOfBounds> {
        // The monitor's mapping is read-only.
        Err(OutOfBounds { addr, write: true })
    }
}

impl Tracee<'_> {
    /// Shared-mapping view for shadow-table lookups (uncharged, but
    /// subject to injected shadow bit-flips).
    pub fn shared_shadow(&self) -> SharedShadow<'_> {
        SharedShadow {
            machine: self.machine,
            faults: self.faults,
        }
    }
}

/// The verdict a tracer returns for a trapped syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceVerdict {
    /// Let the syscall execute.
    Allow,
    /// Kill the application (context violation).
    Deny(String),
}

/// Why the tier-1 prefilter handed a trap to the full monitor.
///
/// The codes are stable (exported as the `prefilter_escalate` span arg and
/// as per-reason counters), ordered roughly by check order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EscalateReason {
    /// The attached tracer implements no prefilter (default trait impl).
    NoPrefilter,
    /// A fault schedule is installed: faults must always land on the
    /// monitor's fail-closed resilience ladder, never on tier 1.
    FaultsInstalled,
    /// The monitor is on a non-`Full` resilience rung.
    NonFullMode,
    /// The shadow region is quarantined (checksum strike).
    ShadowQuarantine,
    /// The trapped nr is not reachable from the tracked flow state in the
    /// compiled syscall-flow digraph.
    FlowMiss,
    /// Call-Type table mismatch (unknown callsite, wrong kind, or a
    /// not-callable flag combination).
    CtMismatch,
    /// The frame-pointer chain failed the compiled chain checks.
    ChainAnomaly,
    /// A direct argument predicate (constant, binding, global, stack
    /// range) did not hold.
    ArgMismatch,
    /// The syscall has extended-pointee argument positions; the per-byte
    /// probe is monitor work by design.
    ExtendedArgs,
    /// An in-kernel read needed by a check failed.
    ReadFailure,
}

impl EscalateReason {
    /// Stable numeric code (span arg / export payload).
    pub fn code(self) -> u64 {
        match self {
            EscalateReason::NoPrefilter => 0,
            EscalateReason::FaultsInstalled => 1,
            EscalateReason::NonFullMode => 2,
            EscalateReason::ShadowQuarantine => 3,
            EscalateReason::FlowMiss => 4,
            EscalateReason::CtMismatch => 5,
            EscalateReason::ChainAnomaly => 6,
            EscalateReason::ArgMismatch => 7,
            EscalateReason::ExtendedArgs => 8,
            EscalateReason::ReadFailure => 9,
        }
    }

    /// Stable snake_case label (stats lines, exports).
    pub fn label(self) -> &'static str {
        match self {
            EscalateReason::NoPrefilter => "no_prefilter",
            EscalateReason::FaultsInstalled => "faults_installed",
            EscalateReason::NonFullMode => "non_full_mode",
            EscalateReason::ShadowQuarantine => "shadow_quarantine",
            EscalateReason::FlowMiss => "flow_miss",
            EscalateReason::CtMismatch => "ct_mismatch",
            EscalateReason::ChainAnomaly => "chain_anomaly",
            EscalateReason::ArgMismatch => "arg_mismatch",
            EscalateReason::ExtendedArgs => "extended_args",
            EscalateReason::ReadFailure => "read_failure",
        }
    }
}

/// The tier-1 verdict for a `TracePrefiltered` syscall.
///
/// Tier 1 **never denies**: it either proves the trap equivalent to a
/// full-monitor Allow, or it escalates and the authoritative monitor
/// decides. Every deny string in the system therefore still comes from
/// one place, byte-identical with the prefilter off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefilterVerdict {
    /// The compiled check program proved this trap clean; skip the stop.
    Allow,
    /// Hand the trap to the full monitor (with the reason why).
    Escalate(EscalateReason),
}

/// A syscall tracer — implemented by the BASTION runtime monitor.
///
/// `Send` is a supertrait so a [`crate::World`] carrying an attached
/// tracer can move across OS threads (the fleet runner shards independent
/// worlds over a thread pool). The monitor holds only owned state plus
/// interior-mutable cells, so this costs implementors nothing.
pub trait Tracer: std::any::Any + Send {
    /// Called when a traced syscall stops; inspect the tracee and decide.
    fn on_trap(&mut self, tracee: &mut Tracee<'_>) -> TraceVerdict;

    /// Tier-1 check at seccomp-classify time for `TracePrefiltered`
    /// syscalls, *before* any monitor stop. `faults_installed` tells the
    /// implementation whether the world carries any fault schedule —
    /// injected faults must always escalate so they land on the monitor's
    /// resilience ladder. The default implementation escalates everything,
    /// so tracers without a compiled prefilter behave exactly as under
    /// plain `Trace`.
    fn prefilter(&mut self, _tracee: &mut Tracee<'_>, _faults_installed: bool) -> PrefilterVerdict {
        PrefilterVerdict::Escalate(EscalateReason::NoPrefilter)
    }

    /// Called after a fork completes, once the child exists. The tracer
    /// can seed per-pid state (the prefilter copies the parent's flow
    /// state so the child's next trap classifies against the parent's
    /// last-trapped position). The default does nothing.
    fn on_fork(&mut self, _parent: Pid, _child: Pid) {}

    /// The prefilter's flow-automaton state word for `pid` (0 when no
    /// compiled flow digraph tracks the process) — recorded into each
    /// flight-recorder entry. Host-side observability only: an
    /// implementation must not charge virtual cycles here.
    fn flow_word(&self, _pid: Pid) -> u64 {
        0
    }

    /// The monitor's resilience-ladder rung as a stable small integer
    /// (0 = full verification, higher = degraded). The world captures a
    /// flight dump whenever this changes between traps. Host-side
    /// observability only: no virtual cycles.
    fn ladder_rung(&self) -> u8 {
        0
    }

    /// Downcast support so harnesses can recover concrete monitor
    /// statistics after a run.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Deep-copies the tracer for [`crate::World::snapshot`]. The default
    /// returns `None`, meaning the tracer does not support checkpointing;
    /// snapshotting a world with such a tracer attached panics. The BASTION
    /// monitor overrides this with a structural clone (stats, deny log,
    /// caches, prefilter per-pid state), so a restored world resumes
    /// verification exactly where the checkpoint left it.
    fn snapshot_box(&self) -> Option<Box<dyn Tracer>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{Operand, Ty};
    use bastion_vm::{CostModel, Image};
    use std::sync::Arc;

    fn machine() -> Machine {
        let mut mb = ModuleBuilder::new("t");
        let stub = mb.declare_syscall_stub("write", 1, 3);
        let mut f = mb.function("main", &[], Ty::I64);
        let r = f.call_direct(stub, &[1i64.into(), 2i64.into(), 3i64.into()]);
        f.ret(Some(Operand::Reg(r)));
        f.finish();
        let img = Image::load(mb.finish()).unwrap();
        let mut m = Machine::new(Arc::new(img), CostModel::default());
        let e = bastion_vm::interp::run(&mut m, 10_000).event();
        assert!(matches!(e, bastion_vm::Event::Syscall { nr: 1, .. }));
        m
    }

    #[test]
    fn getregs_reports_trap_state_and_charges() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 7, &mut charge);
        let regs = t.getregs();
        assert_eq!(regs.nr, 1);
        assert_eq!(regs.args[0], 1);
        assert_eq!(regs.args[2], 3);
        assert_eq!(t.pid(), 7);
        assert!(t.charged() >= m.cost.ptrace_getregs);
    }

    #[test]
    fn remote_reads_charge_per_volume() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        let _ = t.read_u64(m.fp).unwrap();
        let small = t.charged();
        let mut big = vec![0u8; 4096];
        t.read_mem(m.image.stack_base, &mut big).unwrap();
        assert!(t.charged() - small > small);
    }

    #[test]
    fn read_frame_matches_word_reads_at_half_the_charge() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        let saved = t.read_u64(m.fp).unwrap();
        let ret = t.read_u64(m.fp + 8).unwrap();
        let two_reads = t.charged();
        let mut charge2 = 0;
        let mut t2 = Tracee::new(&m, 1, &mut charge2);
        assert_eq!(t2.read_frame(m.fp).unwrap(), (saved, ret));
        assert_eq!(t2.charged() * 2, two_reads);
    }

    #[test]
    fn read_mem_prefix_is_partial_and_single_charged() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        // A read straddling the top of the stack mapping returns only the
        // mapped prefix, for one base charge.
        let mut buf = [0u8; 256];
        let start = m.image.stack_top - 32;
        let n = t.read_mem_prefix(start, &mut buf).unwrap();
        assert_eq!(n, 32);
        assert_eq!(
            t.charged(),
            m.cost.remote_read // 32 bytes are below the per-64B step
        );
        // Fully unmapped start: zero bytes, base charge only.
        let before = t.charged();
        assert_eq!(t.read_mem_prefix(0x10, &mut buf).unwrap(), 0);
        assert_eq!(t.charged() - before, m.cost.remote_read);
    }

    #[test]
    fn read_mem_prefix_zero_length_buffer() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        let mut empty = [0u8; 0];
        // A 0-byte request is satisfiable anywhere, mapped or not, for the
        // base charge of the attempt.
        assert_eq!(t.read_mem_prefix(m.fp, &mut empty).unwrap(), 0);
        assert_eq!(t.read_mem_prefix(0x10, &mut empty).unwrap(), 0);
        assert_eq!(t.charged(), 2 * m.cost.remote_read);
    }

    #[test]
    fn read_mem_prefix_partial_page_and_exact_boundary() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        let top = m.image.stack_top;
        // Partial page: a request reaching 7 bytes past the mapping end
        // keeps the in-bounds part.
        let mut buf = [0xAAu8; 64];
        assert_eq!(t.read_mem_prefix(top - 57, &mut buf).unwrap(), 57);
        // Exact boundary: a request ending at the very last mapped byte is
        // complete, not partial.
        assert_eq!(t.read_mem_prefix(top - 64, &mut buf).unwrap(), 64);
        // Starting exactly at the boundary: nothing is mapped.
        assert_eq!(t.read_mem_prefix(top, &mut buf).unwrap(), 0);
    }

    #[test]
    fn kernel_read_mem_prefix_is_partial_and_flat_charged() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        let top = m.image.stack_top;
        // A read straddling the top of the stack keeps the mapped prefix,
        // for exactly one prefilter_read charge (no remote round trip).
        let mut buf = [0u8; 256];
        assert_eq!(t.kernel_read_mem_prefix(top - 32, &mut buf), 32);
        assert_eq!(t.charged(), m.cost.prefilter_read);
        // Fully unmapped start: zero bytes, same flat charge.
        assert_eq!(t.kernel_read_mem_prefix(0x10, &mut buf), 0);
        assert_eq!(t.charged(), 2 * m.cost.prefilter_read);
        // Fully mapped: the whole buffer, identical bytes to a plain read.
        let base = m.image.stack_base;
        assert_eq!(t.kernel_read_mem_prefix(base, &mut buf), 256);
        let mut plain = [0u8; 256];
        m.mem.read(base, &mut plain).unwrap();
        assert_eq!(buf, plain);
    }

    #[test]
    fn injected_transient_read_error_fails_once() {
        use crate::faults::{FaultInjector, FaultKind, FaultSchedule, Trigger};
        let m = machine();
        let inj = RefCell::new(FaultInjector::new(
            FaultSchedule::new(11).with(FaultKind::ReadError, Trigger::OnAccess(1)),
        ));
        let mut charge = 0;
        let mut t = Tracee::with_faults(&m, 1, &mut charge, Some(&inj));
        assert!(t.read_u64(m.fp).is_err());
        // Transient: the retry succeeds.
        assert!(t.read_u64(m.fp).is_ok());
        assert_eq!(inj.borrow().log().len(), 1);
    }

    #[test]
    fn injected_torn_read_shortens_prefix_and_fails_full_reads() {
        use crate::faults::{FaultInjector, FaultKind, FaultSchedule, Trigger};
        let m = machine();
        let inj = RefCell::new(FaultInjector::new(
            FaultSchedule::new(23).with(FaultKind::TornRead, Trigger::FromAccess(1)),
        ));
        let mut charge = 0;
        let mut t = Tracee::with_faults(&m, 1, &mut charge, Some(&inj));
        // The prefix read reports the torn (shorter) count rather than
        // pretending the whole range was transferred.
        let mut buf = [0xFFu8; 64];
        let n = t.read_mem_prefix(m.fp, &mut buf).unwrap();
        assert!(n < 64, "torn read must shorten the prefix, got {n}");
        // Full-buffer reads have no partial semantics: a torn transfer is
        // an error at the cut point, never a zero-filled tail a verifier
        // could mistake for real memory.
        let mut b2 = [0xFFu8; 64];
        assert!(t.read_mem(m.image.stack_base, &mut b2).is_err());
        assert!(t.read_frame(m.fp).is_err());
        assert_eq!(inj.borrow().log().len(), 3);
        assert!(inj
            .borrow()
            .log()
            .iter()
            .all(|f| f.kind == FaultKind::TornRead));
    }

    #[test]
    fn injected_frame_corruption_flips_saved_fp() {
        use crate::faults::{FaultInjector, FaultKind, FaultSchedule, Trigger};
        let m = machine();
        let mut charge = 0;
        let mut clean_t = Tracee::new(&m, 1, &mut charge);
        let (clean_fp, clean_ret) = clean_t.read_frame(m.fp).unwrap();
        let inj = RefCell::new(FaultInjector::new(
            FaultSchedule::new(31).with(FaultKind::FrameCorrupt, Trigger::OnAccess(1)),
        ));
        let mut charge2 = 0;
        let mut t = Tracee::with_faults(&m, 1, &mut charge2, Some(&inj));
        let (bad_fp, ret) = t.read_frame(m.fp).unwrap();
        assert_ne!(bad_fp, clean_fp, "saved fp must be corrupted");
        assert_eq!(ret, clean_ret, "return address untouched");
        // The corruption was transient: the next fetch is clean.
        assert_eq!(t.read_frame(m.fp).unwrap(), (clean_fp, clean_ret));
    }

    #[test]
    fn injected_stall_charges_extra_cycles() {
        use crate::faults::{FaultInjector, FaultKind, FaultSchedule, Trigger};
        let m = machine();
        let inj = RefCell::new(FaultInjector::new(
            FaultSchedule::new(5).with(FaultKind::Stall { cycles: 9_999 }, Trigger::OnAccess(1)),
        ));
        let mut charge = 0;
        let mut t = Tracee::with_faults(&m, 1, &mut charge, Some(&inj));
        let r = t.try_getregs().unwrap();
        assert_eq!(r.nr, 1);
        assert_eq!(t.charged_this_trap(), m.cost.ptrace_getregs + 9_999);
    }

    #[test]
    fn injected_getregs_failure_surfaces_as_error() {
        use crate::faults::{FaultInjector, FaultKind, FaultSchedule, Trigger};
        let m = machine();
        let inj = RefCell::new(FaultInjector::new(
            FaultSchedule::new(5).with(FaultKind::ReadError, Trigger::OnAccess(1)),
        ));
        let mut charge = 0;
        let mut t = Tracee::with_faults(&m, 1, &mut charge, Some(&inj));
        assert!(t.try_getregs().is_err());
        assert!(t.try_getregs().is_ok());
    }

    #[test]
    fn injected_shadow_bit_flip_corrupts_shared_reads() {
        use crate::faults::{FaultInjector, FaultKind, FaultSchedule, Trigger};
        let m = machine();
        let inj = RefCell::new(FaultInjector::new(
            FaultSchedule::new(77).with(FaultKind::ShadowBitFlip, Trigger::OnAccess(1)),
        ));
        let mut charge = 0;
        let t = Tracee::with_faults(&m, 1, &mut charge, Some(&inj));
        let shadow = t.shared_shadow();
        let mut flipped = [0u8; 8];
        shadow.read(m.fp, &mut flipped).unwrap();
        let mut clean = [0u8; 8];
        m.mem.read(m.fp, &mut clean).unwrap();
        let diff: u32 = flipped
            .iter()
            .zip(clean.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flips");
    }

    #[test]
    fn unmapped_remote_read_fails() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        assert!(t.read_u64(0x10).is_err());
    }
}
