//! The ptrace / `process_vm_readv` analogue (paper §7.1).
//!
//! When seccomp returns `SECCOMP_RET_TRACE`, the world stops the process and
//! wakes the attached [`Tracer`] — the BASTION monitor — handing it a
//! [`Tracee`] view of the stopped process. Every access through the view
//! charges virtual cycles to the trap, reproducing the paper's key cost
//! observation (Table 7): *fetching process state dominates monitor
//! overhead* because each access implies context switches.

use crate::process::Pid;
use bastion_vm::{Machine, MemIo, OutOfBounds};

/// The register snapshot `PTRACE_GETREGS` returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Regs {
    /// Trapped syscall number (`orig_rax`).
    pub nr: u32,
    /// Syscall argument registers (rdi, rsi, rdx, r10, r8, r9).
    pub args: [u64; 6],
    /// Address of the trapping `syscall` instruction (`rip`).
    pub rip: u64,
    /// Stack pointer.
    pub sp: u64,
    /// Frame pointer.
    pub fp: u64,
}

/// The monitor's window into a stopped process.
pub struct Tracee<'a> {
    machine: &'a Machine,
    pid: Pid,
    charge: &'a mut u64,
}

impl<'a> Tracee<'a> {
    /// Wraps a stopped machine. `charge` accumulates the virtual cycles the
    /// monitor's accesses cost (added to the world clock by the caller).
    pub fn new(machine: &'a Machine, pid: Pid, charge: &'a mut u64) -> Self {
        Tracee {
            machine,
            pid,
            charge,
        }
    }

    /// The stopped process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// `PTRACE_GETREGS`: the trapped syscall state.
    pub fn getregs(&mut self) -> Regs {
        *self.charge += self.machine.cost.ptrace_getregs;
        Regs {
            nr: self.machine.trap_nr,
            args: self.machine.trap_args,
            rip: self.machine.trap_pc,
            sp: self.machine.sp,
            fp: self.machine.fp,
        }
    }

    /// `process_vm_readv`: read remote memory.
    ///
    /// # Errors
    /// Fails if the range is unmapped in the tracee.
    pub fn read_mem(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), OutOfBounds> {
        *self.charge += self.machine.cost.remote_read
            + (buf.len() as u64 / 64) * self.machine.cost.remote_read_per_64b;
        self.machine.mem.read(addr, buf)
    }

    /// Remote read of one u64.
    ///
    /// # Errors
    /// Fails if the word is unmapped in the tracee.
    pub fn read_u64(&mut self, addr: u64) -> Result<u64, OutOfBounds> {
        let mut b = [0u8; 8];
        self.read_mem(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Batched frame fetch: the saved frame pointer (at `fp`) and the
    /// return address (at `fp + 8`) in ONE charged `process_vm_readv`,
    /// instead of two word reads each paying the full base cost. This is
    /// the trap-fast-path primitive Table 7 motivates: the base cost of a
    /// remote read dwarfs its per-byte cost, so fetching the 16-byte frame
    /// head at once halves the dominant per-frame charge.
    ///
    /// # Errors
    /// Fails if the 16-byte frame head is unmapped in the tracee.
    pub fn read_frame(&mut self, fp: u64) -> Result<(u64, u64), OutOfBounds> {
        let mut b = [0u8; 16];
        self.read_mem(fp, &mut b)?;
        let saved_fp = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        let ret = u64::from_le_bytes(b[8..].try_into().expect("8 bytes"));
        Ok((saved_fp, ret))
    }

    /// Bounded prefix read in ONE charged `process_vm_readv`: fills `buf`
    /// with as many bytes from `addr` as are mapped and returns that count
    /// (0 if `addr` itself is unmapped). Mirrors `process_vm_readv`'s
    /// partial-read semantics; the charge covers only the bytes actually
    /// transferred, plus the fixed base cost of the attempt.
    pub fn read_mem_prefix(&mut self, addr: u64, buf: &mut [u8]) -> usize {
        let n = self.machine.mem.mapped_prefix_len(addr, buf.len() as u64) as usize;
        *self.charge +=
            self.machine.cost.remote_read + (n as u64 / 64) * self.machine.cost.remote_read_per_64b;
        if n > 0 {
            self.machine
                .mem
                .read(addr, &mut buf[..n])
                .expect("prefix is mapped");
        }
        n
    }

    /// The shadow-region base of the tracee (learned at launch, like the
    /// monitor's shared mapping in the paper).
    pub fn gs_base(&self) -> u64 {
        self.machine.gs_base
    }

    /// Total cycles charged so far on this trap.
    pub fn charged(&self) -> u64 {
        *self.charge
    }
}

/// A read-only adaptor over the tracee's memory implementing [`MemIo`].
///
/// The shadow region is a *shared mapping* between the application and the
/// monitor (paper §7.1: "a shadow memory region ... for shared use between
/// the application process and the Bastion monitor process"), so monitor
/// reads of shadow-table entries are local and cost nothing beyond ordinary
/// loads — use this adaptor only for the shadow region. Ordinary tracee
/// memory (stack frames, argument buffers) must instead be fetched with
/// [`Tracee::read_mem`], which pays the `process_vm_readv` cost.
pub struct SharedShadow<'a> {
    machine: &'a Machine,
}

impl<'a> SharedShadow<'a> {
    /// Wraps the stopped machine for shadow-region access.
    pub fn new(machine: &'a Machine) -> Self {
        SharedShadow { machine }
    }
}

impl MemIo for SharedShadow<'_> {
    fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), OutOfBounds> {
        self.machine.mem.read(addr, buf)
    }

    fn write(&mut self, addr: u64, _buf: &[u8]) -> Result<(), OutOfBounds> {
        // The monitor's mapping is read-only.
        Err(OutOfBounds { addr, write: true })
    }
}

impl Tracee<'_> {
    /// Shared-mapping view for shadow-table lookups (uncharged).
    pub fn shared_shadow(&self) -> SharedShadow<'_> {
        SharedShadow::new(self.machine)
    }
}

/// The verdict a tracer returns for a trapped syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceVerdict {
    /// Let the syscall execute.
    Allow,
    /// Kill the application (context violation).
    Deny(String),
}

/// A syscall tracer — implemented by the BASTION runtime monitor.
pub trait Tracer: std::any::Any {
    /// Called when a traced syscall stops; inspect the tracee and decide.
    fn on_trap(&mut self, tracee: &mut Tracee<'_>) -> TraceVerdict;

    /// Downcast support so harnesses can recover concrete monitor
    /// statistics after a run.
    fn as_any(&self) -> &dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{Operand, Ty};
    use bastion_vm::{CostModel, Image};
    use std::sync::Arc;

    fn machine() -> Machine {
        let mut mb = ModuleBuilder::new("t");
        let stub = mb.declare_syscall_stub("write", 1, 3);
        let mut f = mb.function("main", &[], Ty::I64);
        let r = f.call_direct(stub, &[1i64.into(), 2i64.into(), 3i64.into()]);
        f.ret(Some(Operand::Reg(r)));
        f.finish();
        let img = Image::load(mb.finish()).unwrap();
        let mut m = Machine::new(Arc::new(img), CostModel::default());
        let e = bastion_vm::interp::run(&mut m, 10_000).event();
        assert!(matches!(e, bastion_vm::Event::Syscall { nr: 1, .. }));
        m
    }

    #[test]
    fn getregs_reports_trap_state_and_charges() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 7, &mut charge);
        let regs = t.getregs();
        assert_eq!(regs.nr, 1);
        assert_eq!(regs.args[0], 1);
        assert_eq!(regs.args[2], 3);
        assert_eq!(t.pid(), 7);
        assert!(t.charged() >= m.cost.ptrace_getregs);
    }

    #[test]
    fn remote_reads_charge_per_volume() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        let _ = t.read_u64(m.fp).unwrap();
        let small = t.charged();
        let mut big = vec![0u8; 4096];
        t.read_mem(m.image.stack_base, &mut big).unwrap();
        assert!(t.charged() - small > small);
    }

    #[test]
    fn read_frame_matches_word_reads_at_half_the_charge() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        let saved = t.read_u64(m.fp).unwrap();
        let ret = t.read_u64(m.fp + 8).unwrap();
        let two_reads = t.charged();
        let mut charge2 = 0;
        let mut t2 = Tracee::new(&m, 1, &mut charge2);
        assert_eq!(t2.read_frame(m.fp).unwrap(), (saved, ret));
        assert_eq!(t2.charged() * 2, two_reads);
    }

    #[test]
    fn read_mem_prefix_is_partial_and_single_charged() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        // A read straddling the top of the stack mapping returns only the
        // mapped prefix, for one base charge.
        let mut buf = [0u8; 256];
        let start = m.image.stack_top - 32;
        let n = t.read_mem_prefix(start, &mut buf);
        assert_eq!(n, 32);
        assert_eq!(
            t.charged(),
            m.cost.remote_read // 32 bytes are below the per-64B step
        );
        // Fully unmapped start: zero bytes, base charge only.
        let before = t.charged();
        assert_eq!(t.read_mem_prefix(0x10, &mut buf), 0);
        assert_eq!(t.charged() - before, m.cost.remote_read);
    }

    #[test]
    fn unmapped_remote_read_fails() {
        let m = machine();
        let mut charge = 0;
        let mut t = Tracee::new(&m, 1, &mut charge);
        assert!(t.read_u64(0x10).is_err());
    }
}
