//! The world: processes + kernel + scheduler + tracer glue.
//!
//! A deterministic round-robin scheduler steps each runnable process for a
//! fixed quantum. Syscall events flow through seccomp (kill / trace /
//! allow), then the attached [`Tracer`] (the BASTION monitor) for traced
//! numbers, then the dispatcher. Blocking syscalls park the process until
//! the wake-up scan observes the awaited condition (data on a connection, a
//! pending accept, elapsed virtual time, a zombie child).
//!
//! Virtual time ([`World::now`]) is the sum of all machine cycles, all
//! kernel-side work, and all monitor-side work — the quantity every
//! benchmark reports, since the application is synchronously stopped while
//! the monitor verifies a trapped syscall.

use crate::faults::{FaultInjector, FaultSchedule, InjectedFault};
use crate::net::{ConnId, ReadOutcome};
use crate::process::{ExitReason, FdTable, Pid, ProcState, Process, WaitReason};
use crate::seccomp::{SeccompAction, SeccompFilter};
use crate::syscall::{Kernel, SysOutcome};
use crate::trace::{EscalateReason, PrefilterVerdict, TraceVerdict, Tracee, Tracer};
use bastion_obs::flight::verdict as flight_verdict;
use bastion_obs::{self as obs, FlightDump, FlightEntry, FlightRecorder, FlightTrigger, Phase};
use bastion_vm::{interp, CostModel, Event, Machine};
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Handle to an externally-driven (workload generator) connection.
pub type ExtConnId = ConnId;

thread_local! {
    /// Default interpreter selection for newly built worlds on this thread.
    static LEGACY_INTERP_DEFAULT: Cell<bool> = const { Cell::new(false) };
}

/// Makes every [`World`] subsequently constructed on this thread drive its
/// processes with the legacy tree-walking interpreter instead of the
/// predecoded fast path. The differential suite uses this to ablate the
/// whole stack (harness, attack scenarios) without threading a flag through
/// every constructor; results must be bit-identical either way.
pub fn set_thread_legacy_interp(on: bool) {
    LEGACY_INTERP_DEFAULT.with(|c| c.set(on));
}

/// The current thread-local default for [`set_thread_legacy_interp`].
pub fn thread_legacy_interp() -> bool {
    LEGACY_INTERP_DEFAULT.with(Cell::get)
}

/// RAII scope for [`set_thread_legacy_interp`]: sets the thread-local
/// interpreter default and restores the **previous** value on drop
/// (including on panic), so engine selection cannot leak into later tests
/// or into fleet workers that reuse the same OS thread.
#[derive(Debug)]
pub struct LegacyInterpGuard {
    prev: bool,
}

impl LegacyInterpGuard {
    /// Sets the thread-local default to `on` for the guard's lifetime.
    #[must_use = "dropping the guard immediately restores the previous value"]
    pub fn set(on: bool) -> Self {
        let prev = thread_legacy_interp();
        set_thread_legacy_interp(on);
        LegacyInterpGuard { prev }
    }
}

impl Drop for LegacyInterpGuard {
    fn drop(&mut self) {
        set_thread_legacy_interp(self.prev);
    }
}

/// Why [`World::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Every process is a zombie.
    AllExited,
    /// All live processes are blocked and nothing can wake them without
    /// external input.
    Idle,
    /// The cycle budget was exhausted.
    Budget,
}

/// The simulation world.
pub struct World {
    /// Kernel state.
    pub kernel: Kernel,
    /// All processes ever spawned (zombies retained for inspection).
    pub procs: Vec<Process>,
    tracer: Option<Box<dyn Tracer>>,
    /// Cycles spent in the monitor (tracer) on behalf of stopped processes.
    pub trace_cycles: u64,
    /// Number of tracer stops delivered (the "monitor hook" count).
    pub trap_count: u64,
    /// Total instructions executed across all processes (wall-clock
    /// throughput denominators in the bench crate).
    pub steps: u64,
    clock: u64,
    next_pid: Pid,
    quantum: u64,
    /// Round-robin resume point: the index the next scheduling pass starts
    /// scanning from (one past the process scheduled last), so budget
    /// expiry mid-round cannot starve high-index processes.
    cursor: usize,
    /// Drive processes with the legacy tree-walking interpreter instead of
    /// the predecoded fast path (differential testing / ablation).
    legacy_interp: bool,
    /// Fault injector replayed against every monitor substrate access
    /// (chaos testing); `None` on the clean path.
    faults: Option<RefCell<FaultInjector>>,
    /// Always-on flight recorder: a bounded ring of compact per-trap
    /// summaries. Recording is host-side memory writes only — zero
    /// virtual cycles — so clean-path cycle counts are byte-identical
    /// with and without anyone ever reading the ring.
    flight: RefCell<FlightRecorder>,
    /// Dumps captured on ladder-rung transitions and tier-1 escalation
    /// bursts, oldest first, capped at [`MAX_FLIGHT_DUMPS`].
    flight_dumps: Vec<FlightDump>,
    /// Tracer resilience-ladder rung observed after the last trap.
    last_rung: u8,
    /// Sliding window over prefiltered traps: one bit each, 1 = the trap
    /// escalated to tier 2.
    esc_window: u16,
    /// How many of `esc_window`'s bits are populated (saturates at 16).
    esc_window_len: u8,
    /// Trap ordinal before which no further burst dump is captured
    /// (cooldown so a sustained burst yields one dump, not one per trap).
    burst_cooldown: u64,
}

/// Upper bound on retained [`FlightDump`]s per world.
const MAX_FLIGHT_DUMPS: usize = 32;

/// Escalation-burst trigger: at least this many of the last 16
/// prefiltered traps escalated to tier 2.
const ESC_BURST_THRESHOLD: u32 = 12;

/// Captures the ring into the dump log (host-side only; zero vcycles).
fn capture_flight_dump(
    ring: &RefCell<FlightRecorder>,
    dumps: &mut Vec<FlightDump>,
    trigger: FlightTrigger,
    trap: u64,
) {
    if dumps.len() >= MAX_FLIGHT_DUMPS {
        dumps.remove(0);
    }
    dumps.push(FlightDump {
        trigger,
        trap,
        entries: ring.borrow().dump(),
    });
}

impl World {
    /// An empty world with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        World {
            kernel: Kernel::new(cost),
            procs: Vec::new(),
            tracer: None,
            trace_cycles: 0,
            trap_count: 0,
            steps: 0,
            clock: 0,
            next_pid: 1,
            quantum: 512,
            cursor: 0,
            legacy_interp: thread_legacy_interp(),
            faults: None,
            flight: RefCell::new(FlightRecorder::default()),
            flight_dumps: Vec::new(),
            last_rung: 0,
            esc_window: 0,
            esc_window_len: 0,
            burst_cooldown: 0,
        }
    }

    /// Installs a fault schedule: every subsequent monitor substrate
    /// access (register fetches, remote reads, shadow loads) consults it.
    pub fn install_faults(&mut self, schedule: FaultSchedule) {
        self.faults = Some(RefCell::new(FaultInjector::new(schedule)));
    }

    /// Removes any installed fault schedule.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Monitor traps seen since the current schedule was installed (the
    /// injector's trap counter). Used to calibrate trap-targeted schedules
    /// against a clean reference run.
    pub fn fault_trap_count(&self) -> u64 {
        self.faults
            .as_ref()
            .map(|f| f.borrow().trap_index())
            .unwrap_or(0)
    }

    /// Faults that fired so far under the installed schedule.
    pub fn fault_log(&self) -> Vec<InjectedFault> {
        self.faults
            .as_ref()
            .map(|f| f.borrow().log().to_vec())
            .unwrap_or_default()
    }

    /// Selects the interpreter driving this world's processes: `true` for
    /// the legacy tree-walking reference path, `false` (the default) for
    /// the predecoded fast path. Both are observably identical.
    pub fn set_legacy_interp(&mut self, on: bool) {
        self.legacy_interp = on;
    }

    /// Whether this world runs on the legacy interpreter.
    pub fn legacy_interp(&self) -> bool {
        self.legacy_interp
    }

    /// Spawns a process running `machine`; returns its pid.
    pub fn spawn(&mut self, machine: Machine) -> Pid {
        let (i, o, e) = self.kernel.stdio();
        let pid = self.next_pid;
        self.next_pid += 1;
        self.procs
            .push(Process::new(pid, machine, FdTable::with_stdio(i, o, e)));
        pid
    }

    /// Attaches the (single) tracer — the BASTION monitor.
    pub fn attach_tracer(&mut self, t: Box<dyn Tracer>) {
        self.tracer = Some(t);
    }

    /// Detaches and returns the tracer (to read its statistics).
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// Read-only view of the attached tracer without detaching it — live
    /// dashboards (`bastion top`) peek monitor stats mid-run through
    /// [`Tracer::as_any`] downcasts.
    pub fn tracer_ref(&self) -> Option<&dyn Tracer> {
        self.tracer.as_deref()
    }

    /// Current flight-recorder ring contents, oldest first (the always-on
    /// run-up to the most recent trap).
    pub fn flight_dump(&self) -> Vec<FlightEntry> {
        self.flight.borrow().dump()
    }

    /// Flight dumps captured on ladder-rung transitions and escalation
    /// bursts so far, oldest first.
    pub fn flight_dumps(&self) -> &[FlightDump] {
        &self.flight_dumps
    }

    /// Total flight entries ever recorded — equals [`World::trap_count`]
    /// by construction (every trap records exactly one entry).
    pub fn flight_total(&self) -> u64 {
        self.flight.borrow().total_recorded()
    }

    /// Installs a seccomp filter on `pid` and marks it traced.
    pub fn install_seccomp(&mut self, pid: Pid, filter: Arc<SeccompFilter>, traced: bool) {
        if let Some(p) = self.proc_mut(pid) {
            p.seccomp = Some(filter);
            p.traced = traced;
        }
    }

    /// Looks a process up by pid.
    pub fn proc(&self, pid: Pid) -> Option<&Process> {
        self.procs.iter().find(|p| p.pid == pid)
    }

    /// Mutable process lookup.
    pub fn proc_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.iter_mut().find(|p| p.pid == pid)
    }

    /// Total virtual time: app + kernel + monitor cycles.
    pub fn now(&self) -> u64 {
        self.clock + self.kernel.cycles + self.trace_cycles
    }

    /// Number of live (non-zombie) processes.
    pub fn alive_count(&self) -> usize {
        self.procs.iter().filter(|p| p.alive()).count()
    }

    /// Earliest virtual time at which a sleeping process wakes, if any
    /// live process is blocked on a deadline. `None` means every blocked
    /// process waits on external input (net bytes, a pending accept, a
    /// child exit) — the caller must deliver something before another
    /// [`World::run`] can make progress. Supervisors use this to park an
    /// [`RunStatus::Idle`] tenant until its wake instead of spinning.
    pub fn next_wake(&self) -> Option<u64> {
        self.procs
            .iter()
            .filter_map(|p| match p.state {
                ProcState::Blocked(WaitReason::Sleep { until }) => Some(until),
                _ => None,
            })
            .min()
    }

    /// Advances the idle clock to absolute virtual time `t` (no-op if `t`
    /// is in the past). Models the CPU sitting idle until a timer fires.
    fn advance_clock_to(&mut self, t: u64) {
        let now = self.now();
        if t > now {
            self.clock += t - now;
        }
    }

    /// Runs until everything exits, everything blocks on external input,
    /// or `max_cycles` elapse.
    ///
    /// Scheduling is round-robin with a persistent cursor: each pass picks
    /// the next runnable process *after* the last one scheduled, so a
    /// budget expiring mid-round does not systematically favor low-index
    /// processes across calls. The final quantum is clamped to the
    /// remaining budget (exact for unit-cost instructions; a trapping
    /// syscall still completes verification atomically), and a world whose
    /// every live process sleeps on a future deadline advances the clock
    /// to the earliest wake instead of reporting a spurious
    /// [`RunStatus::Idle`].
    pub fn run(&mut self, max_cycles: u64) -> RunStatus {
        let deadline = self.now().saturating_add(max_cycles);
        loop {
            self.wake_blocked();
            if self.alive_count() == 0 {
                return RunStatus::AllExited;
            }
            if self.now() >= deadline {
                return RunStatus::Budget;
            }
            let n = self.procs.len();
            let first = self.cursor % n;
            let mut picked = None;
            for k in 0..n {
                let idx = (first + k) % n;
                if self.procs[idx].state == ProcState::Runnable {
                    picked = Some(idx);
                    break;
                }
            }
            let Some(idx) = picked else {
                // Nothing runnable. Sleeping processes make progress by
                // letting virtual time pass; anything else needs external
                // input and the world is genuinely idle.
                match self.next_wake() {
                    Some(until) if until <= deadline => {
                        self.advance_clock_to(until);
                        continue; // the next wake_blocked pass unparks it
                    }
                    Some(_) => {
                        self.advance_clock_to(deadline);
                        return RunStatus::Budget;
                    }
                    None => return RunStatus::Idle,
                }
            };
            self.cursor = idx + 1;
            self.run_quantum(idx, deadline);
        }
    }

    /// Runs `idx` for up to one quantum, never scheduling a burst past
    /// `deadline`. Burst boundaries are computed identically for both
    /// interpreter engines (a step cap fixed at burst entry), so the fast
    /// and legacy paths execute byte-identical instruction sequences.
    fn run_quantum(&mut self, idx: usize, deadline: u64) {
        let start = self.procs[idx].machine.cycles;
        let mut left = self.quantum;
        while left > 0 && self.procs[idx].state == ProcState::Runnable {
            // Clamp the burst to the cycles left in the budget. Machine
            // cycles accrued this quantum are not yet folded into `clock`,
            // so add them to `now()` by hand. Each step costs at least one
            // cycle, so a step cap of `cycles_left` can never overshoot a
            // unit-cost stretch.
            let live_now = self.now() + (self.procs[idx].machine.cycles - start);
            if live_now >= deadline {
                break;
            }
            let cap = left.min(deadline - live_now);
            // The fast path runs whole bursts inside the fused interpreter
            // loop; `None` means the burst cap ran out mid-burst. The
            // legacy path emulates the same burst by stepping one
            // instruction at a time up to the same cap.
            let (n, ev) = if self.legacy_interp {
                let mut taken = 0u64;
                let mut ev = None;
                while taken < cap {
                    taken += 1;
                    match interp::step(&mut self.procs[idx].machine) {
                        Event::Continue => {}
                        e => {
                            ev = Some(e);
                            break;
                        }
                    }
                }
                (taken, ev)
            } else {
                interp::run_bounded(&mut self.procs[idx].machine, cap)
            };
            left -= n;
            self.steps += n;
            match ev {
                None | Some(Event::Continue) => {}
                Some(Event::Syscall { nr, args }) => {
                    self.handle_syscall(idx, nr, args);
                }
                Some(Event::Exited(code)) => {
                    self.procs[idx].kill(ExitReason::Exited(code));
                }
                Some(Event::Fault(f)) => {
                    self.procs[idx].kill(ExitReason::Fault(f));
                }
            }
        }
        let delta = self.procs[idx].machine.cycles - start;
        self.clock += delta;
    }

    fn handle_syscall(&mut self, idx: usize, nr: u32, args: [u64; 6]) {
        // 1. seccomp.
        let action = match &self.procs[idx].seccomp {
            Some(f) => {
                self.kernel.cycles += self.kernel.cost.seccomp;
                obs::counter_add("kernel.seccomp_evals", 1);
                f.eval(nr)
            }
            None => SeccompAction::Allow,
        };
        match action {
            SeccompAction::Kill => {
                self.procs[idx].kill(ExitReason::SeccompKill { nr });
                return;
            }
            SeccompAction::Trace | SeccompAction::TracePrefiltered => {
                if let (true, Some(tracer)) = (self.procs[idx].traced, self.tracer.as_mut()) {
                    self.trap_count += 1;
                    // The trap span opens on the monitor-time axis before
                    // the ptrace-stop cost lands, so per-trap durations sum
                    // to exactly `trace_cycles - init_cycles`.
                    let trap_start = self.trace_cycles;
                    obs::span_begin(Phase::Trap, self.trap_count, trap_start);
                    obs::instant(
                        Phase::SeccompClassify,
                        self.trap_count,
                        trap_start,
                        u64::from(nr),
                    );
                    // Tier 1: for prefiltered numbers, evaluate the
                    // compiled check program at classify time — a hit
                    // skips the monitor stop entirely.
                    let mut tier1_allow = false;
                    let mut esc_code = EscalateReason::NoPrefilter.code() as u8;
                    if action == SeccompAction::TracePrefiltered {
                        let pf_start = self.trace_cycles;
                        obs::span_begin(Phase::PrefilterCheck, self.trap_count, pf_start);
                        self.trace_cycles += self.kernel.cost.prefilter_eval;
                        let faults_installed = self.faults.is_some();
                        let verdict = {
                            let p = &self.procs[idx];
                            // Tier 1 never sees injected faults: any
                            // installed schedule escalates (the tracer is
                            // told via `faults_installed`), so faults
                            // always land on the monitor's fail-closed
                            // resilience ladder, never on tier 1.
                            let mut tracee = Tracee::new(&p.machine, p.pid, &mut self.trace_cycles);
                            tracer.prefilter(&mut tracee, faults_installed)
                        };
                        let hit = matches!(verdict, PrefilterVerdict::Allow);
                        obs::span_end(
                            Phase::PrefilterCheck,
                            self.trap_count,
                            self.trace_cycles,
                            u64::from(hit),
                        );
                        match verdict {
                            PrefilterVerdict::Allow => tier1_allow = true,
                            PrefilterVerdict::Escalate(reason) => {
                                esc_code = reason.code() as u8;
                                obs::instant(
                                    Phase::PrefilterEscalate,
                                    self.trap_count,
                                    self.trace_cycles,
                                    reason.code(),
                                );
                            }
                        }
                    }
                    let mut deny_reason: Option<String> = None;
                    if tier1_allow {
                        obs::span_end(Phase::Trap, self.trap_count, self.trace_cycles, 0);
                        let verify = self.trace_cycles.saturating_sub(trap_start);
                        obs::observe("kernel.cycles_per_trap", verify);
                        obs::sketch_observe("trap.verify_cycles", verify);
                        obs::sketch_observe("trap.tier1_cycles", verify);
                        self.flight.borrow_mut().record(FlightEntry {
                            trap: self.trap_count,
                            sysno: nr,
                            tier: 1,
                            verdict: flight_verdict::ALLOW,
                            esc: u8::MAX,
                            vcycles: verify,
                            flow: tracer.flow_word(self.procs[idx].pid),
                        });
                    } else {
                        // Tier 2: the authoritative monitor stop.
                        self.trace_cycles += self.kernel.cost.ptrace_stop;
                        if let Some(f) = &self.faults {
                            let flips = {
                                let mut inj = f.borrow_mut();
                                inj.begin_trap(self.trap_count);
                                // App-state fault family: flip bits in the
                                // *app's* registers/stack/shadow locals at
                                // trap entry, before the monitor fetches
                                // anything — the monitor must verify the
                                // post-fault state, never approve it.
                                inj.app_state_flips()
                            };
                            for (a, b) in flips {
                                let label = self.procs[idx].machine.chaos_flip(a, b);
                                obs::counter_add(label, 1);
                            }
                        }
                        // Record the in-flight trap before the stop so a
                        // deny dump always includes the trap being denied
                        // (finalized with the real verdict below).
                        let slot = self.flight.borrow_mut().record(FlightEntry {
                            trap: self.trap_count,
                            sysno: nr,
                            tier: 2,
                            verdict: flight_verdict::PENDING,
                            esc: esc_code,
                            vcycles: 0,
                            flow: tracer.flow_word(self.procs[idx].pid),
                        });
                        let verdict = {
                            let p = &self.procs[idx];
                            let mut tracee = Tracee::with_faults(
                                &p.machine,
                                p.pid,
                                &mut self.trace_cycles,
                                self.faults.as_ref(),
                            );
                            tracee.attach_flight(&self.flight);
                            tracer.on_trap(&mut tracee)
                        };
                        let denied = matches!(verdict, TraceVerdict::Deny(_));
                        obs::span_end(
                            Phase::Trap,
                            self.trap_count,
                            self.trace_cycles,
                            u64::from(denied),
                        );
                        let verify = self.trace_cycles.saturating_sub(trap_start);
                        obs::observe("kernel.cycles_per_trap", verify);
                        obs::sketch_observe("trap.verify_cycles", verify);
                        obs::sketch_observe("trap.tier2_cycles", verify);
                        self.flight.borrow_mut().finalize(
                            slot,
                            if denied {
                                flight_verdict::DENY
                            } else {
                                flight_verdict::ALLOW
                            },
                            verify,
                        );
                        if let TraceVerdict::Deny(reason) = verdict {
                            deny_reason = Some(reason);
                        }
                    }
                    // Flight-recorder triggers, checked once per trap
                    // after the entry settles (host-side; zero vcycles).
                    let rung = tracer.ladder_rung();
                    if rung != self.last_rung {
                        self.last_rung = rung;
                        capture_flight_dump(
                            &self.flight,
                            &mut self.flight_dumps,
                            FlightTrigger::LadderRung,
                            self.trap_count,
                        );
                    }
                    if action == SeccompAction::TracePrefiltered {
                        self.esc_window = (self.esc_window << 1) | u16::from(!tier1_allow);
                        self.esc_window_len = (self.esc_window_len + 1).min(16);
                        if self.esc_window_len == 16
                            && self.esc_window.count_ones() >= ESC_BURST_THRESHOLD
                            && self.trap_count >= self.burst_cooldown
                        {
                            self.burst_cooldown = self.trap_count + 16;
                            capture_flight_dump(
                                &self.flight,
                                &mut self.flight_dumps,
                                FlightTrigger::EscalationBurst,
                                self.trap_count,
                            );
                        }
                    }
                    if let Some(reason) = deny_reason {
                        self.procs[idx].kill(ExitReason::MonitorKill { nr, reason });
                        return;
                    }
                } else {
                    // SECCOMP_RET_TRACE with no tracer attached: Linux
                    // returns ENOSYS to the caller.
                    self.procs[idx]
                        .machine
                        .complete_syscall(crate::errno::err(crate::errno::ENOSYS));
                    return;
                }
            }
            SeccompAction::Allow => {}
        }
        // 2. dispatch.
        let now = self.now();
        let outcome = self.kernel.dispatch(&mut self.procs[idx], nr, args, now);
        match outcome {
            SysOutcome::Done(ret) => self.procs[idx].machine.complete_syscall(ret),
            SysOutcome::Block(reason) => {
                self.procs[idx].state = ProcState::Blocked(reason);
            }
            SysOutcome::Exit(code) => self.procs[idx].kill(ExitReason::Exited(code)),
            SysOutcome::Fork => self.do_fork(idx),
        }
    }

    fn do_fork(&mut self, idx: usize) {
        let child_pid = self.next_pid;
        self.next_pid += 1;
        let parent = &mut self.procs[idx];
        let mut child_machine = parent.machine.clone();
        parent.machine.complete_syscall(u64::from(child_pid));
        child_machine.complete_syscall(0);
        let mut child = Process::new(child_pid, child_machine, parent.fds.clone());
        child.parent = Some(parent.pid);
        child.creds = parent.creds;
        child.vmas = parent.vmas.clone();
        child.brk = parent.brk;
        child.mmap_cursor = parent.mmap_cursor + 0x1000_0000; // disjoint arenas
        child.seccomp = parent.seccomp.clone();
        child.traced = parent.traced;
        let fds = child.fds.clone();
        let parent_pid = self.procs[idx].pid;
        self.procs.push(child);
        self.kernel.ref_table(&fds);
        // Let the tracer seed per-pid state for the new process (the
        // prefilter inherits the parent's flow position).
        if let Some(t) = self.tracer.as_mut() {
            t.on_fork(parent_pid, child_pid);
        }
    }

    fn wake_blocked(&mut self) {
        let now = self.now();
        for idx in 0..self.procs.len() {
            let ProcState::Blocked(reason) = self.procs[idx].state else {
                continue;
            };
            match reason {
                WaitReason::Accept { lid, addr_out, .. } => {
                    if self.kernel.net.has_pending(lid) {
                        let ret = {
                            let p = &mut self.procs[idx];
                            self.kernel.complete_accept(p, lid, addr_out)
                        };
                        self.procs[idx].machine.complete_syscall(ret);
                        self.procs[idx].state = ProcState::Runnable;
                    }
                }
                WaitReason::ConnRead { cid, buf, len } => {
                    if self.kernel.net.server_readable(cid) {
                        // Peek-validate-consume: only dequeue the stream
                        // bytes once the destination mapping accepted them.
                        // An unmapped buffer returns EFAULT but leaves the
                        // data queued for a later, correctly-mapped read.
                        let mut tmp = vec![0u8; len.min(1 << 20) as usize];
                        let ret = match self.kernel.net.server_peek(cid, &mut tmp) {
                            ReadOutcome::Data(n) => {
                                use bastion_vm::MemIo;
                                match self.procs[idx].machine.mem.write(buf, &tmp[..n]) {
                                    Ok(()) => {
                                        self.kernel.net.server_consume(cid, n);
                                        n as u64
                                    }
                                    Err(_) => crate::errno::err(crate::errno::EFAULT),
                                }
                            }
                            ReadOutcome::Eof => 0,
                            ReadOutcome::WouldBlock => continue,
                        };
                        self.procs[idx].machine.complete_syscall(ret);
                        self.procs[idx].state = ProcState::Runnable;
                    }
                }
                WaitReason::Sleep { until } => {
                    if now >= until {
                        self.procs[idx].machine.complete_syscall(0);
                        self.procs[idx].state = ProcState::Runnable;
                    }
                }
                WaitReason::Wait4 { status_out } => {
                    let me = self.procs[idx].pid;
                    let zombie = self
                        .procs
                        .iter()
                        .position(|c| c.parent == Some(me) && !c.alive() && !c.reaped);
                    if let Some(z) = zombie {
                        self.procs[z].reaped = true;
                        let zpid = self.procs[z].pid;
                        let status = match &self.procs[z].exit {
                            Some(ExitReason::Exited(c)) => (*c as u64) << 8,
                            _ => 0x7f,
                        };
                        if status_out != 0 {
                            use bastion_vm::MemIo;
                            let _ = self.procs[idx].machine.mem.write_u64(status_out, status);
                        }
                        self.procs[idx].machine.complete_syscall(u64::from(zpid));
                        self.procs[idx].state = ProcState::Runnable;
                    }
                }
            }
        }
    }

    // ---- external (workload generator) network API ----

    /// An external client connects to `port`; `None` if nothing listens or
    /// the backlog is full.
    pub fn net_connect(&mut self, port: u16) -> Option<ExtConnId> {
        self.kernel.net.external_connect(port)
    }

    /// Sends client bytes on an external connection.
    pub fn net_send(&mut self, c: ExtConnId, bytes: &[u8]) {
        self.kernel.net.client_send(c, bytes);
    }

    /// Drains server→client bytes from an external connection.
    pub fn net_recv(&mut self, c: ExtConnId) -> Vec<u8> {
        self.kernel.net.client_recv(c)
    }

    /// Closes the client side of an external connection.
    pub fn net_close(&mut self, c: ExtConnId) {
        self.kernel.net.client_close(c);
    }

    /// Whether the server has closed its side of an external connection
    /// (HTTP/1.0-style end-of-response signal for load generators).
    pub fn net_server_closed(&self, c: ExtConnId) -> bool {
        self.kernel.net.server_closed(c)
    }
}

/// A copy-on-write checkpoint of a whole [`World`]: kernel (VFS, network,
/// open files, logs, RNG), every process (machine registers, frames, CoW
/// page table, fd table, seccomp), the attached tracer (monitor stats, deny
/// log, caches, prefilter per-pid flow state), the scheduler words, and any
/// installed fault injector. Because worlds are deterministic, restoring a
/// snapshot and resuming reproduces a cold run bit-for-bit from the capture
/// point — the basis of warm-forked chaos cells (DESIGN.md §6i).
///
/// Memory is the only large state: pages are shared `Arc`s, so a snapshot
/// costs one page-table clone and each restored world copies only the pages
/// it subsequently writes.
pub struct WorldSnapshot {
    kernel: Kernel,
    procs: Vec<Process>,
    tracer: Option<Box<dyn Tracer>>,
    trace_cycles: u64,
    trap_count: u64,
    steps: u64,
    clock: u64,
    next_pid: Pid,
    quantum: u64,
    cursor: usize,
    legacy_interp: bool,
    faults: Option<FaultInjector>,
    flight: FlightRecorder,
    flight_dumps: Vec<FlightDump>,
    last_rung: u8,
    esc_window: u16,
    esc_window_len: u8,
    burst_cooldown: u64,
    shared_pages: u64,
}

impl std::fmt::Debug for WorldSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldSnapshot")
            .field("procs", &self.procs.len())
            .field("traps", &self.trap_count)
            .field("shared_pages", &self.shared_pages)
            .finish()
    }
}

impl WorldSnapshot {
    /// Pages shared between the snapshot and the live world at capture
    /// time (all resident pages, by construction).
    pub fn shared_pages(&self) -> u64 {
        self.shared_pages
    }

    /// World trap count at capture time (the deterministic checkpoint
    /// index).
    pub fn trap_count(&self) -> u64 {
        self.trap_count
    }
}

impl World {
    /// Captures a copy-on-write checkpoint of the world. All-zero pages are
    /// pruned from the *live* page tables first (snapshot hygiene: a page
    /// dirtied and later zeroed reads identically to one never touched), so
    /// the checkpoint and the original agree on resident pages and the
    /// snapshot pins no dead memory.
    ///
    /// # Panics
    /// Panics if an attached tracer does not implement
    /// [`Tracer::snapshot_box`] — checkpointing a world mid-verification
    /// with a tracer that cannot be cloned would silently drop monitor
    /// state.
    pub fn snapshot(&mut self) -> WorldSnapshot {
        for p in &mut self.procs {
            p.machine.mem.prune_zero_pages();
        }
        let tracer = self.tracer.as_ref().map(|t| {
            t.snapshot_box()
                .expect("attached tracer does not support world snapshots")
        });
        let procs = self.procs.clone();
        let shared_pages = procs.iter().map(|p| p.machine.mem.shared_pages()).sum();
        WorldSnapshot {
            kernel: self.kernel.clone(),
            procs,
            tracer,
            trace_cycles: self.trace_cycles,
            trap_count: self.trap_count,
            steps: self.steps,
            clock: self.clock,
            next_pid: self.next_pid,
            quantum: self.quantum,
            cursor: self.cursor,
            legacy_interp: self.legacy_interp,
            faults: self.faults.as_ref().map(|f| f.borrow().clone()),
            flight: self.flight.borrow().clone(),
            flight_dumps: self.flight_dumps.clone(),
            last_rung: self.last_rung,
            esc_window: self.esc_window,
            esc_window_len: self.esc_window_len,
            burst_cooldown: self.burst_cooldown,
            shared_pages,
        }
    }

    /// Builds a fresh world from a checkpoint. The snapshot is not
    /// consumed: any number of worlds can fork from one checkpoint, each
    /// sharing its pages copy-on-write. The restored world keeps the
    /// snapshot's interpreter selection (not the thread-local default), so
    /// a checkpoint taken under the legacy interpreter replays on it.
    pub fn restore(snap: &WorldSnapshot) -> World {
        World {
            kernel: snap.kernel.clone(),
            procs: snap.procs.clone(),
            tracer: snap.tracer.as_ref().map(|t| {
                t.snapshot_box()
                    .expect("snapshotted tracer lost snapshot support")
            }),
            trace_cycles: snap.trace_cycles,
            trap_count: snap.trap_count,
            steps: snap.steps,
            clock: snap.clock,
            next_pid: snap.next_pid,
            quantum: snap.quantum,
            cursor: snap.cursor,
            legacy_interp: snap.legacy_interp,
            faults: snap.faults.clone().map(RefCell::new),
            flight: RefCell::new(snap.flight.clone()),
            flight_dumps: snap.flight_dumps.clone(),
            last_rung: snap.last_rung,
            esc_window: snap.esc_window,
            esc_window_len: snap.esc_window_len,
            burst_cooldown: snap.burst_cooldown,
        }
    }

    /// Runs until at least `traps` tracer stops have been delivered (or
    /// exit/idle/budget). Places checkpoints at a deterministic trap index
    /// instead of an arbitrary cycle count.
    pub fn run_until_traps(&mut self, traps: u64, max_cycles: u64) -> RunStatus {
        let deadline = self.now().saturating_add(max_cycles);
        let mut status = RunStatus::Budget;
        while self.trap_count < traps && self.now() < deadline {
            status = self.run((deadline - self.now()).min(100_000));
            if status != RunStatus::Budget {
                break;
            }
        }
        status
    }

    /// Page-table totals across all processes, as
    /// `(resident_pages, shared_pages)`: how many backing pages exist and
    /// how many are shared with a live snapshot or fork sibling.
    pub fn page_stats(&self) -> (u64, u64) {
        self.procs.iter().fold((0, 0), |(r, s), p| {
            (
                r + p.machine.mem.resident_pages(),
                s + p.machine.mem.shared_pages(),
            )
        })
    }
}

impl World {
    /// Compact diagnostic summary for assertion messages: one line of
    /// world totals plus one line per process with its scheduler state,
    /// blocked-on reason, and exit status. Bounded output by design —
    /// formatting a whole `World` into a CI failure message is unreadable.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "cycles={} steps={} traps={} procs={} alive={}",
            self.now(),
            self.steps,
            self.trap_count,
            self.procs.len(),
            self.alive_count()
        );
        for p in &self.procs {
            let state = match p.state {
                ProcState::Runnable => "runnable".to_string(),
                ProcState::Blocked(reason) => format!("blocked on {reason:?}"),
                ProcState::Zombie => match &p.exit {
                    Some(reason) => format!("zombie ({reason:?})"),
                    None => "zombie".to_string(),
                },
            };
            let _ = write!(s, "\n  pid {:<3} {state}", p.pid);
        }
        s
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("procs", &self.procs.len())
            .field("now", &self.now())
            .field("traps", &self.trap_count)
            .finish()
    }
}
