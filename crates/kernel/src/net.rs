//! Loopback socket simulation.
//!
//! Listeners hold backlogs of pending connections; a connection is a pair of
//! byte queues. The *server* side is driven by application syscalls
//! (`accept`, `read`, `write`, `sendfile`); the *client* side is driven by
//! the Rust workload generators (the `wrk`/`DBT2`/`dkftpbench` analogues)
//! through [`Net::external_connect`] / [`Net::client_send`] /
//! [`Net::client_recv`].

use std::collections::{BTreeMap, VecDeque};

/// Identifies a connection.
pub type ConnId = usize;
/// Identifies a listening socket.
pub type ListenerId = usize;

/// One established (or pending) connection.
#[derive(Debug, Clone, Default)]
pub struct Conn {
    to_server: VecDeque<u8>,
    to_client: VecDeque<u8>,
    client_closed: bool,
    server_closed: bool,
    /// Synthetic peer port, reported by `accept`.
    pub peer_port: u16,
}

/// A listening socket.
#[derive(Debug, Clone)]
pub struct Listener {
    /// Bound port.
    pub port: u16,
    backlog: VecDeque<ConnId>,
    backlog_cap: usize,
}

/// Result of a read on one side of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n` bytes were copied out.
    Data(usize),
    /// No data yet and the peer is still open.
    WouldBlock,
    /// Peer closed and the queue is drained.
    Eof,
}

/// Binding a port that already has a listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortInUse(pub u16);

impl std::fmt::Display for PortInUse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port {} already in use", self.0)
    }
}

impl std::error::Error for PortInUse {}

/// The network namespace.
#[derive(Debug, Clone, Default)]
pub struct Net {
    listeners: Vec<Listener>,
    conns: Vec<Conn>,
    ports: BTreeMap<u16, ListenerId>,
    next_peer_port: u16,
}

impl Net {
    /// An empty namespace.
    pub fn new() -> Self {
        Net {
            next_peer_port: 40000,
            ..Net::default()
        }
    }

    /// Binds and listens on `port`.
    ///
    /// # Errors
    /// Fails if another listener already owns the port.
    pub fn listen(&mut self, port: u16, backlog: usize) -> Result<ListenerId, PortInUse> {
        if self.ports.contains_key(&port) {
            return Err(PortInUse(port));
        }
        let id = self.listeners.len();
        self.listeners.push(Listener {
            port,
            backlog: VecDeque::new(),
            backlog_cap: backlog.max(1),
        });
        self.ports.insert(port, id);
        Ok(id)
    }

    /// An external client connects to `port`; queued on the backlog.
    /// Returns `None` if no listener is bound or the backlog is full.
    pub fn external_connect(&mut self, port: u16) -> Option<ConnId> {
        let &lid = self.ports.get(&port)?;
        let l = &mut self.listeners[lid];
        if l.backlog.len() >= l.backlog_cap {
            return None;
        }
        let cid = self.conns.len();
        // Ephemeral ports roll over to the bottom of the range and keep
        // incrementing (`.max(40000)` here would pin every post-wrap
        // connection to port 40000, aliasing their peer identities).
        self.next_peer_port = if self.next_peer_port == u16::MAX {
            40000
        } else {
            self.next_peer_port + 1
        };
        self.conns.push(Conn {
            peer_port: self.next_peer_port,
            ..Conn::default()
        });
        self.listeners[lid].backlog.push_back(cid);
        Some(cid)
    }

    /// Whether `accept` on this listener would succeed now.
    pub fn has_pending(&self, lid: ListenerId) -> bool {
        self.listeners
            .get(lid)
            .is_some_and(|l| !l.backlog.is_empty())
    }

    /// Dequeues a pending connection.
    pub fn accept(&mut self, lid: ListenerId) -> Option<ConnId> {
        self.listeners.get_mut(lid)?.backlog.pop_front()
    }

    /// Server-side read into `buf`.
    pub fn server_read(&mut self, cid: ConnId, buf: &mut [u8]) -> ReadOutcome {
        let c = &mut self.conns[cid];
        if c.to_server.is_empty() {
            return if c.client_closed {
                ReadOutcome::Eof
            } else {
                ReadOutcome::WouldBlock
            };
        }
        let n = buf.len().min(c.to_server.len());
        for b in buf.iter_mut().take(n) {
            *b = c.to_server.pop_front().unwrap();
        }
        ReadOutcome::Data(n)
    }

    /// Server-side peek into `buf`: like [`Net::server_read`] but leaves
    /// the bytes queued. Callers that must validate a destination (a guest
    /// buffer mapping) before committing the read peek first and
    /// [`Net::server_consume`] only once delivery is guaranteed, so a
    /// faulting destination does not silently drop stream bytes.
    pub fn server_peek(&self, cid: ConnId, buf: &mut [u8]) -> ReadOutcome {
        let c = &self.conns[cid];
        if c.to_server.is_empty() {
            return if c.client_closed {
                ReadOutcome::Eof
            } else {
                ReadOutcome::WouldBlock
            };
        }
        let n = buf.len().min(c.to_server.len());
        for (b, q) in buf.iter_mut().zip(c.to_server.iter()).take(n) {
            *b = *q;
        }
        ReadOutcome::Data(n)
    }

    /// Discards the first `n` queued server-side bytes (pairs with
    /// [`Net::server_peek`] to commit a peeked read).
    pub fn server_consume(&mut self, cid: ConnId, n: usize) {
        let c = &mut self.conns[cid];
        let n = n.min(c.to_server.len());
        c.to_server.drain(..n);
    }

    /// Server-side write (always succeeds; queues are unbounded).
    pub fn server_write(&mut self, cid: ConnId, bytes: &[u8]) -> usize {
        let c = &mut self.conns[cid];
        if c.client_closed {
            return bytes.len(); // RST-free simplification: bytes vanish.
        }
        c.to_client.extend(bytes);
        bytes.len()
    }

    /// Whether the server side has readable data (or EOF) available.
    pub fn server_readable(&self, cid: ConnId) -> bool {
        let c = &self.conns[cid];
        !c.to_server.is_empty() || c.client_closed
    }

    /// Server closes its side.
    pub fn server_close(&mut self, cid: ConnId) {
        self.conns[cid].server_closed = true;
    }

    /// Client-side send.
    pub fn client_send(&mut self, cid: ConnId, bytes: &[u8]) {
        let c = &mut self.conns[cid];
        if !c.server_closed {
            c.to_server.extend(bytes);
        }
    }

    /// Client-side receive: drains everything available.
    pub fn client_recv(&mut self, cid: ConnId) -> Vec<u8> {
        let c = &mut self.conns[cid];
        c.to_client.drain(..).collect()
    }

    /// Client closes its side (server reads then see EOF).
    pub fn client_close(&mut self, cid: ConnId) {
        self.conns[cid].client_closed = true;
    }

    /// Whether the server has closed this connection.
    pub fn server_closed(&self, cid: ConnId) -> bool {
        self.conns[cid].server_closed
    }

    /// Peer port of a connection (reported via accept's sockaddr).
    pub fn peer_port(&self, cid: ConnId) -> u16 {
        self.conns[cid].peer_port
    }

    /// Number of connections ever created.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// An outbound connection from the application to an unmodelled local
    /// service (used by the app-side `connect` syscall): writes are
    /// swallowed, reads see immediate EOF.
    pub fn blackhole(&mut self) -> ConnId {
        let cid = self.conns.len();
        self.conns.push(Conn {
            client_closed: true,
            peer_port: 0,
            ..Conn::default()
        });
        cid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_accept_roundtrip() {
        let mut n = Net::new();
        let l = n.listen(8080, 16).unwrap();
        assert!(!n.has_pending(l));
        let c = n.external_connect(8080).unwrap();
        assert!(n.has_pending(l));
        assert_eq!(n.accept(l), Some(c));
        assert!(!n.has_pending(l));
    }

    #[test]
    fn duplicate_bind_fails() {
        let mut n = Net::new();
        n.listen(80, 4).unwrap();
        assert!(n.listen(80, 4).is_err());
    }

    #[test]
    fn backlog_capacity_limits_pending() {
        let mut n = Net::new();
        let _ = n.listen(80, 2).unwrap();
        assert!(n.external_connect(80).is_some());
        assert!(n.external_connect(80).is_some());
        assert!(n.external_connect(80).is_none());
    }

    #[test]
    fn bytes_flow_both_ways() {
        let mut n = Net::new();
        let l = n.listen(80, 4).unwrap();
        let c = n.external_connect(80).unwrap();
        let c2 = n.accept(l).unwrap();
        assert_eq!(c, c2);
        n.client_send(c, b"GET /");
        let mut buf = [0u8; 3];
        assert_eq!(n.server_read(c, &mut buf), ReadOutcome::Data(3));
        assert_eq!(&buf, b"GET");
        n.server_write(c, b"200 OK");
        assert_eq!(n.client_recv(c), b"200 OK");
    }

    #[test]
    fn peek_leaves_bytes_queued_until_consumed() {
        let mut n = Net::new();
        let l = n.listen(80, 4).unwrap();
        let c = n.external_connect(80).unwrap();
        n.accept(l).unwrap();
        n.client_send(c, b"GET /index");
        let mut buf = [0u8; 5];
        // Peeking any number of times returns the same prefix.
        assert_eq!(n.server_peek(c, &mut buf), ReadOutcome::Data(5));
        assert_eq!(&buf, b"GET /");
        assert_eq!(n.server_peek(c, &mut buf), ReadOutcome::Data(5));
        assert_eq!(&buf, b"GET /");
        // Consuming commits the peeked prefix; the rest stays readable.
        n.server_consume(c, 5);
        let mut rest = [0u8; 8];
        assert_eq!(n.server_read(c, &mut rest), ReadOutcome::Data(5));
        assert_eq!(&rest[..5], b"index");
        // Peek mirrors read's EOF/WouldBlock outcomes.
        assert_eq!(n.server_peek(c, &mut rest), ReadOutcome::WouldBlock);
        n.client_close(c);
        assert_eq!(n.server_peek(c, &mut rest), ReadOutcome::Eof);
        // Over-long consume saturates instead of panicking.
        n.server_consume(c, 99);
    }

    #[test]
    fn eof_after_client_close() {
        let mut n = Net::new();
        let l = n.listen(80, 4).unwrap();
        let c = n.external_connect(80).unwrap();
        n.accept(l).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(n.server_read(c, &mut buf), ReadOutcome::WouldBlock);
        n.client_close(c);
        assert_eq!(n.server_read(c, &mut buf), ReadOutcome::Eof);
        assert!(n.server_readable(c));
    }

    #[test]
    fn connect_to_unbound_port_fails() {
        let mut n = Net::new();
        assert!(n.external_connect(9999).is_none());
    }

    #[test]
    fn peer_ports_keep_advancing_across_wraparound() {
        let mut n = Net::new();
        let l = n.listen(80, 1).unwrap();
        let mut prev = 0u16;
        let mut wrapped = false;
        // Enough connections to cross 65535 from the 40000 starting point.
        for i in 0..30_000 {
            let c = n.external_connect(80).unwrap();
            n.accept(l).unwrap();
            let p = n.peer_port(c);
            assert!(p >= 40000, "conn {i}: port {p} left the ephemeral range");
            if i > 0 {
                if p < prev {
                    assert_eq!(p, 40000, "wrap must land at the range bottom");
                    wrapped = true;
                } else {
                    assert_eq!(p, prev + 1, "ports must keep incrementing");
                }
            }
            prev = p;
        }
        assert!(wrapped, "test must cross 65535 to exercise the wrap");
    }
}
