//! The system call dispatcher.
//!
//! Implements ~40 Linux x86-64 syscalls over the VFS, network, and process
//! state, with Linux numbering ([`bastion_ir::sysno`]) and the `-errno`
//! return convention. Every *executed* syscall increments a per-number
//! counter — the raw data behind Table 4.
//!
//! ## ABI conventions (simulator)
//!
//! * `sockaddr` is 16 bytes: `u16` family at +0, `u16` port at +2
//!   (little-endian), zero padding;
//! * `iovec` entries are `(ptr: u64, len: u64)` pairs;
//! * `nanosleep` takes a duration in *virtual cycles* in its first argument;
//! * `PROT_READ/WRITE/EXEC` are 1/2/4; `MAP_FIXED` is 0x10;
//! * `O_WRONLY/O_RDWR/O_CREAT/O_TRUNC` are 1/2/0x40/0x200.

use crate::errno::{self, err};
use crate::fs::Vfs;
use crate::net::{Net, ReadOutcome};
use crate::process::{OfdId, Pid, Process, Vma, WaitReason};
use bastion_ir::sysno;
use bastion_vm::{CostModel, MemIo};
use std::collections::BTreeMap;

/// What an open file descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfdKind {
    /// Standard input (always at EOF).
    Stdin,
    /// Standard output (appended to the kernel console).
    Stdout,
    /// Standard error (appended to the kernel console).
    Stderr,
    /// A regular file with a cursor.
    File {
        /// VFS path.
        path: String,
        /// Read/write cursor.
        offset: u64,
        /// Opened writable.
        writable: bool,
    },
    /// A socket created but not yet listening.
    Socket {
        /// Port recorded by `bind`.
        bound_port: Option<u16>,
    },
    /// A listening socket.
    Listener(crate::net::ListenerId),
    /// An established connection.
    Conn(crate::net::ConnId),
}

/// A refcounted open file description (shared across `clone`).
#[derive(Debug, Clone)]
pub struct Ofd {
    /// What it refers to.
    pub kind: OfdKind,
    /// Reference count across fd tables.
    pub refs: u32,
}

/// The outcome of dispatching a syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysOutcome {
    /// Completed with a return value.
    Done(u64),
    /// Must block; the world parks the process.
    Block(WaitReason),
    /// The process exits with this status.
    Exit(i64),
    /// `fork`/`vfork`/`clone`: the world must duplicate the process.
    Fork,
}

/// Shared kernel state. `Clone` is the world-snapshot path: VFS, network
/// namespace, open-file table, logs, and the seeded RNG are all captured so
/// a restored world replays syscalls bit-identically.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The filesystem.
    pub vfs: Vfs,
    /// The network namespace.
    pub net: Net,
    /// Open file description table.
    pub ofds: Vec<Ofd>,
    /// Executed-syscall counters (Table 4 ground truth).
    pub counts: BTreeMap<u32, u64>,
    /// Kernel-side virtual cycles (folded into the world clock).
    pub cycles: u64,
    /// Bytes written to stdout/stderr.
    pub console: Vec<u8>,
    /// Successful `execve`s: (pid, path, euid) — attack ground truth.
    pub exec_log: Vec<(Pid, String, u32)>,
    /// Successful `chmod`s: (path, mode) — attack ground truth.
    pub chmod_log: Vec<(String, u32)>,
    /// All `mprotect`s: (pid, addr, len, prot) — attack ground truth.
    pub mprotect_log: Vec<(Pid, u64, u64, u64)>,
    /// Cost model for kernel-side charging.
    pub cost: CostModel,
    rng_state: u64,
}

impl Kernel {
    /// A fresh kernel with an empty VFS and network.
    pub fn new(cost: CostModel) -> Self {
        Kernel {
            vfs: Vfs::new(),
            net: Net::new(),
            ofds: vec![
                Ofd {
                    kind: OfdKind::Stdin,
                    refs: 1,
                },
                Ofd {
                    kind: OfdKind::Stdout,
                    refs: 1,
                },
                Ofd {
                    kind: OfdKind::Stderr,
                    refs: 1,
                },
            ],
            counts: BTreeMap::new(),
            cycles: 0,
            console: Vec::new(),
            exec_log: Vec::new(),
            chmod_log: Vec::new(),
            mprotect_log: Vec::new(),
            cost,
            rng_state: 0x1234_5678_9abc_def0,
        }
    }

    /// The stdio description ids for a new process's fd table.
    pub fn stdio(&mut self) -> (OfdId, OfdId, OfdId) {
        self.ofds[0].refs += 1;
        self.ofds[1].refs += 1;
        self.ofds[2].refs += 1;
        (0, 1, 2)
    }

    /// Allocates an open file description.
    pub fn alloc_ofd(&mut self, kind: OfdKind) -> OfdId {
        for (i, o) in self.ofds.iter_mut().enumerate() {
            if o.refs == 0 {
                *o = Ofd { kind, refs: 1 };
                return i;
            }
        }
        self.ofds.push(Ofd { kind, refs: 1 });
        self.ofds.len() - 1
    }

    /// Increments refcounts for every fd in a forked child's table.
    pub fn ref_table(&mut self, fds: &crate::process::FdTable) {
        for id in fds.iter_open() {
            self.ofds[id].refs += 1;
        }
    }

    /// Drops one reference; closes the description at zero.
    pub fn deref_ofd(&mut self, id: OfdId) {
        let o = &mut self.ofds[id];
        o.refs = o.refs.saturating_sub(1);
        if o.refs == 0 {
            if let OfdKind::Conn(cid) = o.kind {
                self.net.server_close(cid);
            }
        }
    }

    /// Total executed syscalls for `nr`.
    pub fn count_of(&self, nr: u32) -> u64 {
        self.counts.get(&nr).copied().unwrap_or(0)
    }

    fn charge_io(&mut self, bytes: u64) {
        // ~1 cycle per 16 bytes moved: kernel-side copy bandwidth.
        self.cycles += bytes / 16;
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*: deterministic "randomness" for getrandom.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Completes a pending `accept`: allocates the connection fd and fills
    /// the peer sockaddr. Shared by the dispatcher and the scheduler's
    /// wake-up path.
    pub fn complete_accept(
        &mut self,
        p: &mut Process,
        lid: crate::net::ListenerId,
        addr_out: u64,
    ) -> u64 {
        let Some(cid) = self.net.accept(lid) else {
            return err(errno::EAGAIN);
        };
        let port = self.net.peer_port(cid);
        if addr_out != 0 {
            let mut sa = [0u8; 16];
            sa[0] = 2; // AF_INET
            sa[2..4].copy_from_slice(&port.to_le_bytes());
            let _ = p.machine.mem.write(addr_out, &sa);
        }
        let ofd = self.alloc_ofd(OfdKind::Conn(cid));
        p.fds.alloc(ofd) as u64
    }

    /// Dispatches one syscall for process `p` at virtual time `now`.
    ///
    /// # Panics
    /// Never panics on untrusted input; unknown syscalls return `-ENOSYS`.
    pub fn dispatch(&mut self, p: &mut Process, nr: u32, args: [u64; 6], now: u64) -> SysOutcome {
        *self.counts.entry(nr).or_insert(0) += 1;
        self.cycles += self.cost.syscall;
        match nr {
            sysno::READ => self.sys_read(p, args[0], args[1], args[2]),
            sysno::WRITE => self.sys_write(p, args[0], args[1], args[2]),
            sysno::OPEN => self.sys_open(p, args[0], args[1]),
            sysno::OPENAT => self.sys_open(p, args[1], args[2]),
            sysno::CLOSE => match p.fds.close(args[0]) {
                Some(id) => {
                    self.deref_ofd(id);
                    SysOutcome::Done(0)
                }
                None => SysOutcome::Done(err(errno::EBADF)),
            },
            sysno::STAT => self.sys_stat(p, args[0], args[1]),
            sysno::LSEEK => self.sys_lseek(p, args[0], args[1] as i64, args[2]),
            sysno::MMAP => self.sys_mmap(p, args),
            sysno::MPROTECT => {
                self.mprotect_log.push((p.pid, args[0], args[1], args[2]));
                for v in &mut p.vmas {
                    if args[0] < v.start + v.len && v.start < args[0] + args[1] {
                        v.prot = args[2];
                    }
                }
                SysOutcome::Done(0)
            }
            sysno::MUNMAP => {
                p.machine.mem.unmap_region(args[0], args[1]);
                p.vmas.retain(|v| v.start != args[0]);
                SysOutcome::Done(0)
            }
            sysno::BRK => {
                let cur = p.brk;
                if args[0] == 0 {
                    return SysOutcome::Done(cur);
                }
                if args[0] > cur {
                    p.machine.mem.map_region(cur, args[0] - cur);
                }
                p.brk = args[0];
                SysOutcome::Done(args[0])
            }
            sysno::MREMAP => SysOutcome::Done(args[0]),
            sysno::REMAP_FILE_PAGES => SysOutcome::Done(0),
            sysno::SOCKET => {
                let ofd = self.alloc_ofd(OfdKind::Socket { bound_port: None });
                SysOutcome::Done(p.fds.alloc(ofd) as u64)
            }
            sysno::BIND => self.sys_bind(p, args[0], args[1]),
            sysno::LISTEN => self.sys_listen(p, args[0], args[1]),
            sysno::ACCEPT => self.sys_accept(p, args[0], args[1], false),
            sysno::ACCEPT4 => self.sys_accept(p, args[0], args[1], true),
            sysno::CONNECT => {
                // Connects the socket to an unmodelled local peer: the fd
                // becomes a blackhole connection (writes vanish, reads EOF).
                let Some(id) = p.fds.get(args[0]) else {
                    return SysOutcome::Done(err(errno::EBADF));
                };
                let cid = self.net.blackhole();
                self.ofds[id].kind = OfdKind::Conn(cid);
                SysOutcome::Done(0)
            }
            sysno::SENDTO => self.sys_write(p, args[0], args[1], args[2]),
            sysno::RECVFROM => self.sys_read(p, args[0], args[1], args[2]),
            sysno::SENDFILE => self.sys_sendfile(p, args[0], args[1], args[3]),
            sysno::WRITEV => self.sys_writev(p, args[0], args[1], args[2]),
            sysno::SHUTDOWN => SysOutcome::Done(0),
            sysno::CLONE | sysno::FORK | sysno::VFORK => SysOutcome::Fork,
            sysno::EXECVE => self.sys_execve(p, args[0]),
            sysno::EXECVEAT => self.sys_execve(p, args[1]),
            sysno::EXIT | sysno::EXIT_GROUP => SysOutcome::Exit(args[0] as i64),
            sysno::WAIT4 => SysOutcome::Block(WaitReason::Wait4 {
                status_out: args[1],
            }),
            sysno::KILL => SysOutcome::Done(0),
            sysno::GETPID => SysOutcome::Done(u64::from(p.pid)),
            sysno::GETUID => SysOutcome::Done(u64::from(p.creds.uid)),
            sysno::SETUID => {
                if p.creds.euid == 0 {
                    p.creds.uid = args[0] as u32;
                    p.creds.euid = args[0] as u32;
                    SysOutcome::Done(0)
                } else {
                    SysOutcome::Done(err(errno::EPERM))
                }
            }
            sysno::SETGID => {
                if p.creds.euid == 0 {
                    p.creds.gid = args[0] as u32;
                    p.creds.egid = args[0] as u32;
                    SysOutcome::Done(0)
                } else {
                    SysOutcome::Done(err(errno::EPERM))
                }
            }
            sysno::SETREUID => {
                if p.creds.euid == 0 {
                    p.creds.uid = args[0] as u32;
                    p.creds.euid = args[1] as u32;
                    SysOutcome::Done(0)
                } else {
                    SysOutcome::Done(err(errno::EPERM))
                }
            }
            sysno::CHMOD => self.sys_chmod(p, args[0], args[1]),
            sysno::NANOSLEEP => SysOutcome::Block(WaitReason::Sleep {
                until: now + args[0],
            }),
            sysno::FTRUNCATE => self.sys_ftruncate(p, args[0], args[1]),
            sysno::UNLINK => match self.read_str(p, args[0]) {
                Some(path) if self.vfs.unlink(&path) => SysOutcome::Done(0),
                Some(_) => SysOutcome::Done(err(errno::ENOENT)),
                None => SysOutcome::Done(err(errno::EFAULT)),
            },
            sysno::MKDIR => match self.read_str(p, args[0]) {
                Some(path) => {
                    self.vfs.mkdir(&path, args[1] as u32);
                    SysOutcome::Done(0)
                }
                None => SysOutcome::Done(err(errno::EFAULT)),
            },
            sysno::RENAME => {
                let (Some(a), Some(b)) = (self.read_str(p, args[0]), self.read_str(p, args[1]))
                else {
                    return SysOutcome::Done(err(errno::EFAULT));
                };
                if self.vfs.rename(&a, &b) {
                    SysOutcome::Done(0)
                } else {
                    SysOutcome::Done(err(errno::ENOENT))
                }
            }
            sysno::GETCWD => {
                let cwd = b"/\0";
                if args[1] >= 2 && p.machine.mem.write(args[0], cwd).is_ok() {
                    SysOutcome::Done(2)
                } else {
                    SysOutcome::Done(err(errno::EFAULT))
                }
            }
            sysno::DUP => match p.fds.get(args[0]) {
                Some(id) => {
                    self.ofds[id].refs += 1;
                    SysOutcome::Done(p.fds.alloc(id) as u64)
                }
                None => SysOutcome::Done(err(errno::EBADF)),
            },
            sysno::FCNTL | sysno::IOCTL => SysOutcome::Done(0),
            sysno::PTRACE => SysOutcome::Done(err(errno::EPERM)),
            sysno::GETRANDOM => {
                let len = args[1].min(4096);
                let mut buf = vec![0u8; len as usize];
                for chunk in buf.chunks_mut(8) {
                    let r = self.next_random().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&r[..n]);
                }
                match p.machine.mem.write(args[0], &buf) {
                    Ok(()) => SysOutcome::Done(len),
                    Err(_) => SysOutcome::Done(err(errno::EFAULT)),
                }
            }
            _ => SysOutcome::Done(err(errno::ENOSYS)),
        }
    }

    fn read_str(&self, p: &Process, addr: u64) -> Option<String> {
        if addr == 0 {
            return None;
        }
        let mut out = Vec::new();
        for i in 0..4096u64 {
            let mut b = [0u8; 1];
            p.machine.mem.read(addr + i, &mut b).ok()?;
            if b[0] == 0 {
                break;
            }
            out.push(b[0]);
        }
        String::from_utf8(out).ok()
    }

    fn sys_read(&mut self, p: &mut Process, fd: u64, buf: u64, len: u64) -> SysOutcome {
        let Some(id) = p.fds.get(fd) else {
            return SysOutcome::Done(err(errno::EBADF));
        };
        let len = len.min(1 << 20);
        match self.ofds[id].kind.clone() {
            OfdKind::Stdin => SysOutcome::Done(0),
            OfdKind::File { path, offset, .. } => {
                let Some(f) = self.vfs.file(&path) else {
                    return SysOutcome::Done(err(errno::ENOENT));
                };
                let start = (offset as usize).min(f.data.len());
                let n = ((len as usize).min(f.data.len() - start)).min(f.data.len());
                let chunk = f.data[start..start + n].to_vec();
                if p.machine.mem.write(buf, &chunk).is_err() {
                    return SysOutcome::Done(err(errno::EFAULT));
                }
                if let OfdKind::File { offset, .. } = &mut self.ofds[id].kind {
                    *offset += n as u64;
                }
                self.charge_io(n as u64);
                SysOutcome::Done(n as u64)
            }
            OfdKind::Conn(cid) => {
                // Peek-validate-consume: the stream bytes are only dequeued
                // once the destination mapping accepted them, so an EFAULT
                // leaves the data readable by a later, correctly-mapped read.
                let mut tmp = vec![0u8; len as usize];
                match self.net.server_peek(cid, &mut tmp) {
                    ReadOutcome::Data(n) => {
                        if p.machine.mem.write(buf, &tmp[..n]).is_err() {
                            return SysOutcome::Done(err(errno::EFAULT));
                        }
                        self.net.server_consume(cid, n);
                        self.charge_io(n as u64);
                        SysOutcome::Done(n as u64)
                    }
                    ReadOutcome::Eof => SysOutcome::Done(0),
                    ReadOutcome::WouldBlock => {
                        SysOutcome::Block(WaitReason::ConnRead { cid, buf, len })
                    }
                }
            }
            _ => SysOutcome::Done(err(errno::EINVAL)),
        }
    }

    fn sys_write(&mut self, p: &mut Process, fd: u64, buf: u64, len: u64) -> SysOutcome {
        let Some(id) = p.fds.get(fd) else {
            return SysOutcome::Done(err(errno::EBADF));
        };
        let len = len.min(1 << 20);
        let mut data = vec![0u8; len as usize];
        if p.machine.mem.read(buf, &mut data).is_err() {
            return SysOutcome::Done(err(errno::EFAULT));
        }
        self.charge_io(len);
        match self.ofds[id].kind.clone() {
            OfdKind::Stdout | OfdKind::Stderr => {
                self.console.extend_from_slice(&data);
                SysOutcome::Done(len)
            }
            OfdKind::File {
                path,
                offset,
                writable,
            } => {
                if !writable {
                    return SysOutcome::Done(err(errno::EBADF));
                }
                let Some(f) = self.vfs.file_mut(&path) else {
                    return SysOutcome::Done(err(errno::ENOENT));
                };
                let end = offset as usize + data.len();
                if f.data.len() < end {
                    f.data.resize(end, 0);
                }
                f.data[offset as usize..end].copy_from_slice(&data);
                if let OfdKind::File { offset, .. } = &mut self.ofds[id].kind {
                    *offset += data.len() as u64;
                }
                SysOutcome::Done(len)
            }
            OfdKind::Conn(cid) => {
                let n = self.net.server_write(cid, &data);
                SysOutcome::Done(n as u64)
            }
            _ => SysOutcome::Done(err(errno::EINVAL)),
        }
    }

    fn sys_open(&mut self, p: &mut Process, path_ptr: u64, flags: u64) -> SysOutcome {
        let Some(path) = self.read_str(p, path_ptr) else {
            return SysOutcome::Done(err(errno::EFAULT));
        };
        let creat = flags & 0x40 != 0;
        let trunc = flags & 0x200 != 0;
        let writable = flags & 3 != 0;
        if !self.vfs.exists(&path) {
            if !creat {
                return SysOutcome::Done(err(errno::ENOENT));
            }
            self.vfs.ensure_file(&path, 0o644);
        }
        if trunc {
            if let Some(f) = self.vfs.file_mut(&path) {
                f.data.clear();
            }
        }
        let ofd = self.alloc_ofd(OfdKind::File {
            path,
            offset: 0,
            writable,
        });
        SysOutcome::Done(p.fds.alloc(ofd) as u64)
    }

    fn sys_stat(&mut self, p: &mut Process, path_ptr: u64, statbuf: u64) -> SysOutcome {
        let Some(path) = self.read_str(p, path_ptr) else {
            return SysOutcome::Done(err(errno::EFAULT));
        };
        let Some(f) = self.vfs.file(&path) else {
            return SysOutcome::Done(err(errno::ENOENT));
        };
        let (size, mode) = (f.data.len() as u64, u64::from(f.mode));
        let ok = p.machine.mem.write_u64(statbuf, size).is_ok()
            && p.machine.mem.write_u64(statbuf + 8, mode).is_ok();
        SysOutcome::Done(if ok { 0 } else { err(errno::EFAULT) })
    }

    fn sys_lseek(&mut self, p: &mut Process, fd: u64, off: i64, whence: u64) -> SysOutcome {
        let Some(id) = p.fds.get(fd) else {
            return SysOutcome::Done(err(errno::EBADF));
        };
        let size = if let OfdKind::File { path, .. } = &self.ofds[id].kind {
            self.vfs.file(path).map_or(0, |f| f.data.len() as i64)
        } else {
            return SysOutcome::Done(err(errno::EINVAL));
        };
        if let OfdKind::File { offset, .. } = &mut self.ofds[id].kind {
            let new = match whence {
                0 => off,
                1 => *offset as i64 + off,
                2 => size + off,
                _ => return SysOutcome::Done(err(errno::EINVAL)),
            };
            if new < 0 {
                return SysOutcome::Done(err(errno::EINVAL));
            }
            *offset = new as u64;
            SysOutcome::Done(new as u64)
        } else {
            SysOutcome::Done(err(errno::EINVAL))
        }
    }

    fn sys_mmap(&mut self, p: &mut Process, args: [u64; 6]) -> SysOutcome {
        let (addr, len, prot, flags) = (args[0], args[1], args[2], args[3]);
        if len == 0 {
            return SysOutcome::Done(err(errno::EINVAL));
        }
        let len = len.div_ceil(4096) * 4096;
        let base = if addr != 0 && flags & 0x10 != 0 {
            addr
        } else {
            let b = p.mmap_cursor;
            p.mmap_cursor += len + 4096;
            b
        };
        p.machine.mem.map_region(base, len);
        p.vmas.push(Vma {
            start: base,
            len,
            prot,
        });
        SysOutcome::Done(base)
    }

    fn sys_bind(&mut self, p: &mut Process, fd: u64, addr_ptr: u64) -> SysOutcome {
        let Some(id) = p.fds.get(fd) else {
            return SysOutcome::Done(err(errno::EBADF));
        };
        let mut sa = [0u8; 4];
        if p.machine.mem.read(addr_ptr, &mut sa).is_err() {
            return SysOutcome::Done(err(errno::EFAULT));
        }
        let port = u16::from_le_bytes([sa[2], sa[3]]);
        if let OfdKind::Socket { bound_port } = &mut self.ofds[id].kind {
            *bound_port = Some(port);
            SysOutcome::Done(0)
        } else {
            SysOutcome::Done(err(errno::EINVAL))
        }
    }

    fn sys_listen(&mut self, p: &mut Process, fd: u64, backlog: u64) -> SysOutcome {
        let Some(id) = p.fds.get(fd) else {
            return SysOutcome::Done(err(errno::EBADF));
        };
        let OfdKind::Socket {
            bound_port: Some(port),
        } = self.ofds[id].kind
        else {
            return SysOutcome::Done(err(errno::EINVAL));
        };
        match self.net.listen(port, backlog as usize) {
            Ok(lid) => {
                self.ofds[id].kind = OfdKind::Listener(lid);
                SysOutcome::Done(0)
            }
            Err(_) => SysOutcome::Done(err(errno::EADDRINUSE)),
        }
    }

    fn sys_accept(&mut self, p: &mut Process, fd: u64, addr_out: u64, accept4: bool) -> SysOutcome {
        let Some(id) = p.fds.get(fd) else {
            return SysOutcome::Done(err(errno::EBADF));
        };
        let OfdKind::Listener(lid) = self.ofds[id].kind else {
            return SysOutcome::Done(err(errno::EINVAL));
        };
        if self.net.has_pending(lid) {
            SysOutcome::Done(self.complete_accept(p, lid, addr_out))
        } else {
            SysOutcome::Block(WaitReason::Accept {
                lid,
                addr_out,
                accept4,
            })
        }
    }

    fn sys_sendfile(&mut self, p: &mut Process, out_fd: u64, in_fd: u64, count: u64) -> SysOutcome {
        let (Some(out_id), Some(in_id)) = (p.fds.get(out_fd), p.fds.get(in_fd)) else {
            return SysOutcome::Done(err(errno::EBADF));
        };
        let OfdKind::File { path, offset, .. } = self.ofds[in_id].kind.clone() else {
            return SysOutcome::Done(err(errno::EINVAL));
        };
        let Some(f) = self.vfs.file(&path) else {
            return SysOutcome::Done(err(errno::ENOENT));
        };
        let start = (offset as usize).min(f.data.len());
        let n = (count as usize).min(f.data.len() - start);
        let chunk = f.data[start..start + n].to_vec();
        self.charge_io(n as u64);
        match self.ofds[out_id].kind {
            OfdKind::Conn(cid) => {
                self.net.server_write(cid, &chunk);
            }
            OfdKind::Stdout | OfdKind::Stderr => self.console.extend_from_slice(&chunk),
            _ => return SysOutcome::Done(err(errno::EINVAL)),
        }
        if let OfdKind::File { offset, .. } = &mut self.ofds[in_id].kind {
            *offset += n as u64;
        }
        SysOutcome::Done(n as u64)
    }

    fn sys_writev(&mut self, p: &mut Process, fd: u64, iov: u64, cnt: u64) -> SysOutcome {
        let mut total = 0u64;
        for i in 0..cnt.min(64) {
            let (Ok(ptr), Ok(len)) = (
                p.machine.mem.read_u64(iov + i * 16),
                p.machine.mem.read_u64(iov + i * 16 + 8),
            ) else {
                return SysOutcome::Done(err(errno::EFAULT));
            };
            match self.sys_write(p, fd, ptr, len) {
                SysOutcome::Done(n) if (n as i64) >= 0 => total += n,
                other => return other,
            }
        }
        SysOutcome::Done(total)
    }

    fn sys_execve(&mut self, p: &mut Process, path_ptr: u64) -> SysOutcome {
        let Some(path) = self.read_str(p, path_ptr) else {
            return SysOutcome::Done(err(errno::EFAULT));
        };
        let Some(f) = self.vfs.file(&path) else {
            return SysOutcome::Done(err(errno::ENOENT));
        };
        if !f.executable {
            return SysOutcome::Done(err(errno::EACCES));
        }
        p.exec_count += 1;
        self.exec_log.push((p.pid, path, p.creds.euid));
        SysOutcome::Done(0)
    }

    fn sys_chmod(&mut self, p: &mut Process, path_ptr: u64, mode: u64) -> SysOutcome {
        let Some(path) = self.read_str(p, path_ptr) else {
            return SysOutcome::Done(err(errno::EFAULT));
        };
        if self.vfs.chmod(&path, mode as u32) {
            self.chmod_log.push((path, mode as u32));
            SysOutcome::Done(0)
        } else {
            SysOutcome::Done(err(errno::ENOENT))
        }
    }

    fn sys_ftruncate(&mut self, p: &mut Process, fd: u64, len: u64) -> SysOutcome {
        let Some(id) = p.fds.get(fd) else {
            return SysOutcome::Done(err(errno::EBADF));
        };
        if let OfdKind::File { path, .. } = &self.ofds[id].kind {
            let path = path.clone();
            if let Some(f) = self.vfs.file_mut(&path) {
                f.data.resize(len as usize, 0);
                return SysOutcome::Done(0);
            }
        }
        SysOutcome::Done(err(errno::EINVAL))
    }
}
