//! The seccomp-BPF model (paper §7.1, "Trapping a system call invocation").
//!
//! # Default-action semantics (authoritative)
//!
//! The *mechanism* in this file has no opinion: every [`SeccompFilter`]
//! carries an explicit caller-chosen default, and `eval` falls back to it
//! for any number without a rule. The *policy* lives in
//! `monitor/src/filter.rs` and is **fail-closed**: the monitor builds its
//! filter with a `Kill` default, so a syscall number absent from the
//! compiled CT table kills the process. The allow-list is explicit:
//!
//! * `SECCOMP_RET_ALLOW` — an explicit per-number rule for every *callable
//!   non-sensitive* syscall in the CT table (the doc shorthand
//!   "non-sensitive → Allow" means these rules, never the default);
//! * `SECCOMP_RET_KILL` — *not-callable* syscalls, plus the fail-closed
//!   default for numbers the CT table has never heard of;
//! * `SECCOMP_RET_TRACE` — callable sensitive syscalls, which stop the
//!   process and wake the tracer;
//! * `SECCOMP_RET_TRACE`-with-prefilter ([`SeccompAction::TracePrefiltered`])
//!   — same set as `Trace`, but the world first evaluates the tier-1
//!   prefilter at classify time and only stops the process on escalation.
//!
//! The tier-1 prefilter compiles against this single authoritative
//! default: anything it has no table entry for is already dead at the
//! filter, so the prefilter never needs a second default of its own.
//!
//! Filters are evaluated on every syscall entry (a fixed per-syscall cycle
//! cost) and are inherited by children, matching seccomp semantics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The verdict a filter returns for one syscall number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeccompAction {
    /// `SECCOMP_RET_ALLOW` — execute normally.
    Allow,
    /// `SECCOMP_RET_KILL` — kill the process immediately.
    Kill,
    /// `SECCOMP_RET_TRACE` — stop and wake the attached tracer.
    Trace,
    /// `SECCOMP_RET_TRACE` with a tier-1 prefilter: evaluate the compiled
    /// check program at classify time, in-kernel; stop and wake the tracer
    /// only when the prefilter escalates.
    TracePrefiltered,
}

/// A compiled filter: default action plus per-number overrides.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeccompFilter {
    default: SeccompAction,
    rules: BTreeMap<u32, SeccompAction>,
}

impl SeccompFilter {
    /// A filter that applies `default` unless a rule overrides it.
    pub fn new(default: SeccompAction) -> Self {
        SeccompFilter {
            default,
            rules: BTreeMap::new(),
        }
    }

    /// Sets the action for one syscall number.
    pub fn set(&mut self, nr: u32, action: SeccompAction) -> &mut Self {
        self.rules.insert(nr, action);
        self
    }

    /// Evaluates the filter.
    pub fn eval(&self, nr: u32) -> SeccompAction {
        self.rules.get(&nr).copied().unwrap_or(self.default)
    }

    /// Number of explicit rules (filter size proxy).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Wraps the filter for sharing across forked processes.
    pub fn shared(self) -> Arc<SeccompFilter> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_overrides() {
        let mut f = SeccompFilter::new(SeccompAction::Allow);
        f.set(59, SeccompAction::Trace)
            .set(101, SeccompAction::Kill);
        assert_eq!(f.eval(0), SeccompAction::Allow);
        assert_eq!(f.eval(59), SeccompAction::Trace);
        assert_eq!(f.eval(101), SeccompAction::Kill);
        assert_eq!(f.rule_count(), 2);
    }

    #[test]
    fn kill_by_default_policy() {
        let mut f = SeccompFilter::new(SeccompAction::Kill);
        f.set(60, SeccompAction::Allow);
        assert_eq!(f.eval(60), SeccompAction::Allow);
        assert_eq!(f.eval(59), SeccompAction::Kill);
    }

    #[test]
    fn default_is_caller_authoritative_not_baked_in() {
        // The mechanism must not smuggle in its own default: two filters
        // differing only in default action diverge exactly on the numbers
        // no rule covers. This is the contract the monitor's fail-closed
        // `Kill` default (monitor/src/filter.rs) and the tier-1 prefilter
        // both compile against.
        for default in [
            SeccompAction::Allow,
            SeccompAction::Kill,
            SeccompAction::Trace,
            SeccompAction::TracePrefiltered,
        ] {
            let mut f = SeccompFilter::new(default);
            f.set(1, SeccompAction::Allow);
            assert_eq!(f.eval(1), SeccompAction::Allow);
            assert_eq!(f.eval(0xFFFF), default, "uncovered nr takes default");
        }
    }
}
