//! The seccomp-BPF model (paper §7.1, "Trapping a system call invocation").
//!
//! The BASTION monitor programs a filter with:
//! * `SECCOMP_RET_ALLOW` for all non-sensitive syscalls,
//! * `SECCOMP_RET_KILL` for *not-callable* syscalls, and
//! * `SECCOMP_RET_TRACE` for directly/indirectly-callable sensitive
//!   syscalls, which stop the process and wake the tracer.
//!
//! Filters are evaluated on every syscall entry (a fixed per-syscall cycle
//! cost) and are inherited by children, matching seccomp semantics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The verdict a filter returns for one syscall number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeccompAction {
    /// `SECCOMP_RET_ALLOW` — execute normally.
    Allow,
    /// `SECCOMP_RET_KILL` — kill the process immediately.
    Kill,
    /// `SECCOMP_RET_TRACE` — stop and wake the attached tracer.
    Trace,
}

/// A compiled filter: default action plus per-number overrides.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeccompFilter {
    default: SeccompAction,
    rules: BTreeMap<u32, SeccompAction>,
}

impl SeccompFilter {
    /// A filter that applies `default` unless a rule overrides it.
    pub fn new(default: SeccompAction) -> Self {
        SeccompFilter {
            default,
            rules: BTreeMap::new(),
        }
    }

    /// Sets the action for one syscall number.
    pub fn set(&mut self, nr: u32, action: SeccompAction) -> &mut Self {
        self.rules.insert(nr, action);
        self
    }

    /// Evaluates the filter.
    pub fn eval(&self, nr: u32) -> SeccompAction {
        self.rules.get(&nr).copied().unwrap_or(self.default)
    }

    /// Number of explicit rules (filter size proxy).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Wraps the filter for sharing across forked processes.
    pub fn shared(self) -> Arc<SeccompFilter> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_overrides() {
        let mut f = SeccompFilter::new(SeccompAction::Allow);
        f.set(59, SeccompAction::Trace)
            .set(101, SeccompAction::Kill);
        assert_eq!(f.eval(0), SeccompAction::Allow);
        assert_eq!(f.eval(59), SeccompAction::Trace);
        assert_eq!(f.eval(101), SeccompAction::Kill);
        assert_eq!(f.rule_count(), 2);
    }

    #[test]
    fn kill_by_default_policy() {
        let mut f = SeccompFilter::new(SeccompAction::Kill);
        f.set(60, SeccompAction::Allow);
        assert_eq!(f.eval(60), SeccompAction::Allow);
        assert_eq!(f.eval(59), SeccompAction::Kill);
    }
}
