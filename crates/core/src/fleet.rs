//! Deterministic parallel fleet runner (DESIGN.md §6f).
//!
//! Every evaluation surface — the 32-attack × 6-fault chaos matrix, the
//! Table 6 catalog, the Figure 3 app benchmarks — is a list of *independent*
//! tasks: each builds its own [`World`]s from scratch and reads nothing but
//! its inputs. The fleet shards those tasks across OS threads with a
//! work-stealing index and re-assembles the results **in task order**, so
//! the aggregate report is a pure function of the task list: byte-identical
//! whether it ran on one worker or eight.
//!
//! ## Determinism contract
//!
//! * Tasks share no mutable state; each constructs its own worlds, monitors
//!   and fault injectors, and the simulation clock is virtual.
//! * Workers steal *indices*, results are reordered by index before any
//!   aggregation — scheduling decides only *when* a task runs, never where
//!   its result lands.
//! * Thread-local substrate state (legacy-interp default, telemetry rings)
//!   is scoped per task with RAII guards ([`LegacyInterpGuard`],
//!   [`obs::TelemetryGuard`]), so a reused pool thread leaks nothing into
//!   the next task.
//! * Telemetry merges are order-fixed: registries merge in task order
//!   (commutative sums, but fixed order anyway) and span rings are
//!   stitched into one Chrome trace with `tid` = task index + 1 — a task's
//!   lane is its identity, not the OS thread it happened to run on.
//!
//! Wall-clock numbers (and only those) vary run to run; nothing derived
//! from them enters a fleet report.

use crate::chaos::{attack_chaos_mode, benign_chaos_suite, AttackChaosReport, BenignChaosReport};
use crate::harness::{run_app_benchmark, AppBenchmark, WorkloadSize};
use crate::Protection;
use bastion_apps::App;
use bastion_attacks::{catalog, evaluate, generate, Scenario, ScenarioResult};
use bastion_compiler::BastionCompiler;
use bastion_kernel::{LegacyInterpGuard, Tracer, World};
use bastion_monitor::{ContextConfig, Monitor};
use bastion_obs as obs;
use bastion_vm::CostModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

// The Send-audit, enforced at compile time: a World (with an attached
// monitor) and the monitor itself must be movable across the fleet's
// worker threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<World>();
    assert_send::<Monitor>();
    assert_send::<Box<dyn Tracer>>();
};

/// Worker-count default: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on up to `jobs` worker threads and returns
/// the results **in item order** regardless of scheduling. Workers steal
/// the next unclaimed index from a shared counter, so a slow task never
/// idles the rest of the pool. `jobs <= 1` degenerates to a plain serial
/// map on the calling thread (no pool, no channels).
///
/// # Panics
/// A panicking task propagates to the caller once the pool drains (the
/// scoped-thread join re-raises it), so assertion failures inside tasks
/// surface exactly as they would serially.
pub fn run_ordered<I, R, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let (next, items, f) = (&next, &items, &f);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = items.iter().map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every index was claimed and completed"))
            .collect()
    })
}

/// Merged telemetry from a traced fleet run.
#[derive(Debug, Clone)]
pub struct FleetTelemetry {
    /// Per-task registries merged in task order.
    pub metrics: obs::MetricsSnapshot,
    /// Per-task span rings stitched into one Chrome trace document,
    /// `tid` = task index + 1.
    pub trace_json: String,
    /// Total span events across all tasks.
    pub events: u64,
}

/// [`run_ordered`] with per-task telemetry: each task runs under a fresh
/// [`obs::TelemetryGuard`] scope (ring of `capacity` events + its own
/// metrics registry) and a pinned fast-path interpreter default; the
/// harvested state is merged in task order into one [`FleetTelemetry`].
/// Because lanes and merge order are keyed by task index, the telemetry —
/// like the results — is byte-identical for any worker count.
pub fn run_ordered_traced<I, R, F>(
    jobs: usize,
    capacity: usize,
    items: Vec<I>,
    f: F,
) -> (Vec<R>, FleetTelemetry)
where
    I: Sync,
    R: Send,
    F: Fn(usize, &I) -> R + Sync,
{
    let per_task = run_ordered(jobs, items, |i, it| {
        let _interp = LegacyInterpGuard::set(false);
        let guard = obs::TelemetryGuard::enable(capacity);
        let r = f(i, it);
        let (events, registry) = guard.finish();
        (r, events, registry)
    });
    let mut merged = obs::MetricsRegistry::new();
    let mut rings: Vec<Vec<obs::TraceEvent>> = Vec::with_capacity(per_task.len());
    let mut results = Vec::with_capacity(per_task.len());
    for (r, mut events, registry) in per_task {
        results.push(r);
        merged.merge(registry);
        // The stitched document must be byte-identical for any worker
        // count; the diagnostic wall clock is scheduling-dependent, so it
        // is dropped from fleet lanes (single-run exports keep it).
        for ev in &mut events {
            ev.wall_ns = 0;
        }
        rings.push(events);
    }
    let events = rings.iter().map(|e| e.len() as u64).sum();
    let parts: Vec<(u64, &[obs::TraceEvent])> = rings
        .iter()
        .enumerate()
        .map(|(i, e)| (i as u64 + 1, e.as_slice()))
        .collect();
    let telemetry = FleetTelemetry {
        metrics: merged.snapshot(),
        trace_json: obs::chrome_trace_json_parts(&parts),
        events,
    };
    (results, telemetry)
}

/// Seeds of the benign half of the chaos matrix (one app each).
pub const BENIGN_SEEDS: &[(App, u64)] = &[
    (App::Webserve, 0x0B5E_0001),
    (App::Dbkv, 0x0B5E_0002),
    (App::Ftpd, 0x0B5E_0003),
];

/// Attack-replay seeds of the chaos matrix (pinned; CI replays bit-for-bit).
pub const ATTACK_SEEDS: &[u64] = &[0xA77C_0001, 0xA77C_0002];

/// Aggregate outcome of a fleet chaos-matrix run. `report` is the full
/// human-readable matrix — the determinism artifact the fleet smoke test
/// byte-compares across worker counts.
#[derive(Debug, Clone)]
pub struct ChaosMatrixOutcome {
    /// The rendered matrix (benign table, attack table, provenance tail).
    pub report: String,
    /// Attacks that flipped to Allow under some fault schedule (must be 0).
    pub flipped: u32,
    /// Faults that actually fired across the whole matrix (must be > 0).
    pub faults_fired: u64,
    /// Structured deny records collected.
    pub deny_total: u64,
    /// Fault→deny provenance joins observed.
    pub join_total: u64,
    /// Generated attack programs whose malicious effect landed under full
    /// protection (must be 0; counted into `flipped` as well).
    pub generated_flipped: u32,
    /// Deny records *not* carrying a flight-recorder dump of the denied
    /// trap (must be 0: every deny joins its ring dump).
    pub flight_missing: u64,
}

/// Runs the full chaos matrix with warm copy-on-write cell forking (see
/// [`chaos_matrix_mode`]).
pub fn chaos_matrix(jobs: usize, seeds: &[u64], filter: Option<&[u32]>) -> ChaosMatrixOutcome {
    chaos_matrix_mode(jobs, seeds, filter, false)
}

/// Runs the full chaos matrix — benign degradation for the three apps
/// under each schedule family, every catalog attack replayed under each
/// fault class and seed, plus the generated adversarial-program corpus —
/// sharded over `jobs` workers, and renders the canonical report.
/// `filter` limits the attack half to the given scenario ids (tests use a
/// small subset). `cold` forces every cell to re-deploy from scratch
/// instead of forking the warmed checkpoint; the rendered report is
/// byte-identical either way (that identity is CI-gated).
pub fn chaos_matrix_mode(
    jobs: usize,
    seeds: &[u64],
    filter: Option<&[u32]>,
    cold: bool,
) -> ChaosMatrixOutcome {
    use std::fmt::Write as _;

    let benign: Vec<Vec<(&'static str, BenignChaosReport)>> =
        run_ordered(jobs, BENIGN_SEEDS.to_vec(), |_, &(app, seed)| {
            let _interp = LegacyInterpGuard::set(false);
            benign_chaos_suite(app, ContextConfig::full(), seed, 6, cold)
        });

    let scenarios: Vec<Scenario> = catalog()
        .into_iter()
        .filter(|s| filter.is_none_or(|ids| ids.contains(&s.id)))
        .collect();
    let per_scenario: Vec<Vec<AttackChaosReport>> = run_ordered(jobs, scenarios, |_, scenario| {
        let _interp = LegacyInterpGuard::set(false);
        attack_chaos_mode(scenario, ContextConfig::full(), seeds, cold)
    });

    let corpus = generate::corpus();
    let generated: Vec<(&'static str, &'static str, generate::GenReport)> =
        run_ordered(jobs, corpus, |_, &(family, expect, source)| {
            let _interp = LegacyInterpGuard::set(false);
            (family, expect, generate::run_protected(source))
        });

    // ---- ordered aggregation: everything below is scheduling-blind ----
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(
        w,
        "benign chaos (per-app schedule families, 6 requests each)"
    );
    let _ = writeln!(
        w,
        "{:<10} {:<9} {:>6} {:>9} {:>7} {:>8} {:>8}  mode",
        "app", "schedule", "served", "attempted", "faults", "strikes", "survived"
    );
    for suite in &benign {
        for (label, r) in suite {
            let stats = r.stats.as_ref().expect("monitor attached");
            let _ = writeln!(
                w,
                "{:<10} {:<9} {:>6} {:>9} {:>7} {:>8} {:>8}  {:?}",
                r.app.id(),
                label,
                r.served,
                r.attempted,
                r.faults_fired,
                stats.substrate_strikes,
                r.survived,
                stats.mode
            );
        }
    }

    let _ = writeln!(
        w,
        "\nattack chaos matrix (blocked attacks under targeted faults)"
    );
    let _ = writeln!(
        w,
        "{:<4} {:<34} {:>6} {:>7} {:>10}  outcome",
        "id", "attack", "traps", "faults", "contained"
    );
    let mut flipped = 0u32;
    let mut faults_fired = 0u64;
    let mut deny_total = 0u64;
    let mut join_total = 0u64;
    let mut flight_missing = 0u64;
    let mut flight_dump_total = 0u64;
    let mut joins_by_class: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for reports in &per_scenario {
        let fired: u64 = reports.iter().map(|r| r.faults_fired).sum();
        faults_fired += fired;
        for r in reports {
            deny_total += r.deny_records.len() as u64;
            join_total += r.fault_deny_joins.len() as u64;
            flight_dump_total += r.flight_dumps.len() as u64;
            if !r.denies_carry_flight() {
                flight_missing += r
                    .deny_records
                    .iter()
                    .filter(|d| {
                        d.flight
                            .last()
                            .is_none_or(|e| e.trap != d.trap_seq || e.tier != 2)
                    })
                    .count() as u64;
            }
            for &(_, class) in &r.fault_deny_joins {
                *joins_by_class.entry(class).or_insert(0) += 1;
            }
        }
        let contained = reports.iter().all(|r| r.attack_contained());
        let worst = reports
            .iter()
            .find(|r| !r.attack_contained())
            .or_else(|| reports.iter().max_by_key(|r| r.faults_fired))
            .expect("at least one replay per scenario");
        let _ = writeln!(
            w,
            "{:<4} {:<34} {:>6} {:>7} {:>10}  {:?}",
            worst.id, worst.name, worst.clean_traps, fired, contained, worst.outcome.defense
        );
        if !contained {
            flipped += 1;
        }
    }
    if flipped == 0 && faults_fired > 0 {
        let _ = writeln!(
            w,
            "\nall attacks contained under every fault schedule ({faults_fired} faults fired)"
        );
    }
    let _ = writeln!(
        w,
        "\ndeny provenance: {deny_total} structured deny records, {join_total} fault->deny joins"
    );
    let _ = writeln!(
        w,
        "flight recorder: {}/{deny_total} deny records carry a ring dump of the denied trap, \
         {flight_dump_total} triggered dump(s)",
        deny_total - flight_missing
    );
    for (class, n) in &joins_by_class {
        let _ = writeln!(
            w,
            "  substrate access {class:<12} implicated in {n} deny(s)"
        );
    }

    let _ = writeln!(
        w,
        "\ngenerated attack corpus ({} programs, one per deny-rule family)",
        generated.len()
    );
    let _ = writeln!(
        w,
        "{:<20} {:<28} {:<28}  outcome",
        "family", "expected", "observed"
    );
    let mut generated_flipped = 0u32;
    for (family, expect, rep) in &generated {
        let observed = rep.verdict.key();
        let ok = !rep.flipped_to_allow() && observed == *expect;
        let _ = writeln!(
            w,
            "{:<20} {:<28} {:<28}  {}",
            family,
            expect,
            observed,
            if rep.flipped_to_allow() {
                "FLIPPED-TO-ALLOW"
            } else if ok {
                "denied"
            } else {
                "off-family"
            }
        );
        if rep.flipped_to_allow() {
            generated_flipped += 1;
            flipped += 1;
        }
    }
    if generated_flipped == 0 && !generated.is_empty() {
        let _ = writeln!(w, "all generated programs stopped (zero flips to Allow)");
    }

    ChaosMatrixOutcome {
        report: out,
        flipped,
        faults_fired,
        deny_total,
        join_total,
        generated_flipped,
        flight_missing,
    }
}

/// Evaluates the Table 6 catalog sharded over `jobs` workers, in catalog
/// order. Render with [`bastion_attacks::render`] for the paper-style
/// table — identical to a serial `evaluate_all()`.
pub fn table6_matrix(jobs: usize) -> Vec<ScenarioResult> {
    run_ordered(jobs, catalog(), |_, s| {
        let _interp = LegacyInterpGuard::set(false);
        evaluate(s)
    })
}

/// Runs the three workload apps under vanilla and full protection sharded
/// over `jobs` workers (six independent benchmark worlds).
pub fn bench_matrix(jobs: usize, size: &WorkloadSize) -> Vec<AppBenchmark> {
    let tasks: Vec<(App, Protection)> = [App::Webserve, App::Dbkv, App::Ftpd]
        .into_iter()
        .flat_map(|app| [(app, Protection::vanilla()), (app, Protection::full())])
        .collect();
    run_ordered(jobs, tasks, |_, (app, protection)| {
        let _interp = LegacyInterpGuard::set(false);
        run_app_benchmark(
            *app,
            protection,
            size,
            &BastionCompiler::new(),
            CostModel::default(),
        )
    })
}

/// Renders the deterministic columns of a benchmark matrix (virtual-cycle
/// quantities only; wall-clock throughput never enters a fleet report).
pub fn render_bench(rows: &[AppBenchmark]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:>12} {:>14} {:>8}  metric",
        "app", "protection", "cycles", "steps", "traps"
    );
    for b in rows {
        let _ = writeln!(
            out,
            "{:<10} {:<14} {:>12} {:>14} {:>8}  {:.3}",
            b.app.id(),
            b.protection,
            b.cycles,
            b.steps,
            b.traps,
            b.metric
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ordered_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = run_ordered(1, items.clone(), |i, &x| (i as u64, x * x));
        let pooled = run_ordered(8, items, |i, &x| (i as u64, x * x));
        assert_eq!(serial, pooled);
        assert_eq!(pooled[37], (37, 37 * 37));
    }

    #[test]
    fn run_ordered_handles_empty_and_oversized_pools() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_ordered(4, empty, |_, _: &u8| 0u8).is_empty());
        assert_eq!(run_ordered(64, vec![5u64], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn traced_fleet_merges_metrics_and_stitches_lanes() {
        let (results, tel) = run_ordered_traced(4, 64, vec![1u64, 2, 3], |i, &x| {
            obs::counter_add("fleet.test", x);
            obs::span_begin(obs::Phase::Trap, i as u64, 10);
            obs::span_end(obs::Phase::Trap, i as u64, 20, 0);
            x
        });
        assert_eq!(results, vec![1, 2, 3]);
        assert_eq!(tel.metrics.counter("fleet.test"), Some(6));
        assert_eq!(tel.events, 6);
        let shape = obs::validate_chrome_trace(&tel.trace_json).expect("stitched trace validates");
        assert_eq!(shape.tids, 3);
        assert_eq!(shape.trap_spans, 3);
        // Telemetry stays scoped to the workers: none leaked to this thread.
        assert!(!obs::is_enabled());
    }

    #[test]
    fn traced_fleet_is_deterministic_across_worker_counts() {
        let run = |jobs| {
            run_ordered_traced(jobs, 32, (0..9u64).collect::<Vec<_>>(), |_, &x| {
                obs::counter_add("c", x);
                obs::observe("h", x);
                obs::instant(obs::Phase::Retry, x, x, 0);
                x * 2
            })
        };
        let (r1, t1) = run(1);
        let (r4, t4) = run(4);
        assert_eq!(r1, r4);
        assert_eq!(t1.trace_json, t4.trace_json, "stitched traces diverged");
        assert_eq!(
            serde_json::to_string(&t1.metrics).unwrap(),
            serde_json::to_string(&t4.metrics).unwrap()
        );
    }
}
