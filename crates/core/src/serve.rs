//! `bastiond` — the persistent multi-tenant serving supervisor behind
//! `bastion serve`.
//!
//! The [`harness`](crate::harness) runs one protected application to
//! completion; production BASTION (§10) sits under long-lived servers that
//! host *many* protected processes at once. This module is that deployment
//! shape: a supervisor that
//!
//! 1. admits tenants through a bounded [`AdmissionQueue`] (overflow is
//!    rejected deterministically, before any world boots),
//! 2. compiles each distinct program **once** and shares the
//!    [`Deployment`] (instrumented image + context metadata) across every
//!    tenant that runs it,
//! 3. drives hundreds of concurrent protected worlds with a round-robin
//!    run queue — each runnable tenant gets a fixed cycle quantum
//!    ([`ServeConfig::quantum`]), yields on [`RunStatus::Budget`] or
//!    [`RunStatus::Idle`], and re-enters the queue; sleeping worlds park
//!    until their earliest wake inside [`World::run`] (see
//!    `World::next_wake`), and net-idle worlds park until the next client
//!    pump,
//! 4. merges each tenant's per-turn [`MetricsRegistry`] (latency
//!    [`QuantileSketch`] lanes included) into a live fleet-level view that
//!    exports through the existing Prometheus / JSONL surfaces.
//!
//! Tenants whose program a defense kills (seccomp, monitor deny, CET
//! fault) are **evicted**: finalized and removed from the run queue
//! without perturbing any neighbor — every tenant owns a private world,
//! so eviction is O(1) and contention-free.
//!
//! The whole schedule is a pure function of [`ServeConfig`]: the tenant
//! mix is drawn from a seeded xorshift generator, every world is
//! deterministic, and per-tenant results do not depend on which worker
//! shard ran them — so reports are byte-identical for any `jobs` count.

use crate::fleet;
use crate::{Deployment, Protection};
use bastion_apps::loadgen::REQUEST_CYCLES_SKETCH;
use bastion_apps::{traffic::Traffic, App, ALL_APPS};
use bastion_kernel::{ExitReason, LegacyInterpGuard, RunStatus, World};
use bastion_obs::{
    MetricsRegistry, MetricsSnapshot, QuantileSketch, SketchSnapshot, TelemetryGuard,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Sketch lane carrying per-trap verification cycles (observed by the
/// kernel's trap path and captured per tenant turn).
pub const VERIFY_CYCLES_SKETCH: &str = "trap.verify_cycles";

/// Cycle budget for booting one tenant to its accept loop.
const BOOT_BUDGET: u64 = 1_000_000_000;

/// Span-ring capacity per tenant turn (spans are discarded; only the
/// metrics registry is kept, so this stays small).
const TURN_SPANS: usize = 64;

/// Consecutive no-progress idle turns before a tenant is evicted as
/// stalled. Healthy protocol round-trips alternate progress/no-progress,
/// so a genuine deadlock is flagged within `STALL_LIMIT` quanta.
const STALL_LIMIT: u32 = 64;

/// Supervisor configuration; the entire schedule is a pure function of it.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Tenants submitted to the admission queue.
    pub tenants: usize,
    /// Seed for the tenant-mix generator.
    pub seed: u64,
    /// Requests (HTTP) / transactions (TPC-C) per tenant; FTP tenants
    /// download `max(1, requests/8)` files (a session is ~8 round trips).
    pub requests_per_tenant: u64,
    /// Client connections per tenant (FTP is sequential by protocol).
    pub concurrency: usize,
    /// Admission-queue capacity; submissions past it are rejected.
    pub admission_capacity: usize,
    /// Scheduler quantum in cycles: how long one tenant runs per turn.
    pub quantum: u64,
    /// Worker threads (tenant shards). Any value yields byte-identical
    /// reports; it only changes wall-clock time.
    pub jobs: usize,
}

impl ServeConfig {
    /// The standard configuration for `tenants` tenants under `seed`.
    pub fn new(tenants: usize, seed: u64) -> Self {
        ServeConfig {
            tenants,
            seed,
            requests_per_tenant: 24,
            concurrency: 2,
            admission_capacity: tenants,
            quantum: 200_000,
            jobs: 1,
        }
    }

    /// Worker-thread override (builder style).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

/// What a tenant runs.
#[derive(Debug, Clone)]
pub enum TenantKind {
    /// One of the three paper applications, driven by its traffic mix.
    App(App),
    /// An arbitrary MiniC program (no client traffic) — how tests inject
    /// rogue tenants that the monitor must evict.
    Custom {
        /// Display / program name.
        name: String,
        /// MiniC source.
        source: String,
    },
}

impl TenantKind {
    /// Program key: tenants with equal keys share one compiled image.
    pub fn key(&self) -> String {
        match self {
            TenantKind::App(a) => a.id().to_string(),
            TenantKind::Custom { name, .. } => format!("custom:{name}"),
        }
    }
}

/// One tenant submission.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Stable tenant id (report order).
    pub id: u32,
    /// Program to run.
    pub kind: TenantKind,
    /// Workload size (requests / transactions / downloads).
    pub requests: u64,
}

/// The bounded admission queue: submissions beyond `capacity` are
/// rejected immediately (recorded by id), never booted, and never touch
/// the scheduler.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    queue: VecDeque<TenantSpec>,
    rejected: Vec<u32>,
}

impl AdmissionQueue {
    /// An empty queue holding at most `capacity` pending tenants.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity: capacity.max(1),
            queue: VecDeque::new(),
            rejected: Vec::new(),
        }
    }

    /// Submits a tenant; returns whether it was admitted.
    pub fn submit(&mut self, spec: TenantSpec) -> bool {
        if self.queue.len() >= self.capacity {
            self.rejected.push(spec.id);
            return false;
        }
        self.queue.push_back(spec);
        true
    }

    /// Pending (admitted, not yet scheduled) tenants.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drains the queue for scheduling, yielding `(admitted, rejected)`.
    pub fn drain(self) -> (Vec<TenantSpec>, Vec<u32>) {
        (self.queue.into_iter().collect(), self.rejected)
    }
}

/// The seeded tenant mix: ~1/2 webserve, ~1/3 dbkv, ~1/6 ftpd (heaviest
/// workload gets the smallest share), drawn from xorshift64 over
/// [`ServeConfig::seed`].
pub fn tenant_mix(cfg: &ServeConfig) -> Vec<TenantSpec> {
    let mut s = cfg.seed ^ 0x9E37_79B9_7F4A_7C15;
    if s == 0 {
        s = 1;
    }
    (0..cfg.tenants as u32)
        .map(|id| {
            let r = xorshift(&mut s);
            let app = match r % 6 {
                0..=2 => App::Webserve,
                3..=4 => App::Dbkv,
                _ => App::Ftpd,
            };
            let requests = match app {
                App::Ftpd => (cfg.requests_per_tenant / 8).max(1),
                _ => cfg.requests_per_tenant,
            };
            TenantSpec {
                id,
                kind: TenantKind::App(app),
                requests,
            }
        })
        .collect()
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Quantile quartet of one latency lane.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyLane {
    /// Observations in the lane.
    pub count: u64,
    /// Median (cycles).
    pub p50: u64,
    /// 95th percentile (cycles).
    pub p95: u64,
    /// 99th percentile (cycles).
    pub p99: u64,
    /// 99.9th percentile (cycles).
    pub p999: u64,
}

impl LatencyLane {
    fn from_snapshot(s: Option<&SketchSnapshot>) -> Self {
        s.map_or_else(LatencyLane::default, |s| LatencyLane {
            count: s.count,
            p50: s.p50,
            p95: s.p95,
            p99: s.p99,
            p999: s.p999,
        })
    }

    fn from_sketch(sk: &QuantileSketch) -> Self {
        LatencyLane {
            count: sk.count(),
            p50: sk.quantile(0.50),
            p95: sk.quantile(0.95),
            p99: sk.quantile(0.99),
            p999: sk.quantile(0.999),
        }
    }
}

/// Per-application aggregate across the fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppLane {
    /// Program key (`webserve`, `dbkv`, `ftpd`, `custom:*`).
    pub app: String,
    /// Tenants running this program.
    pub tenants: u64,
    /// Merged request-latency lane.
    pub latency: LatencyLane,
}

/// Final state of one tenant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant id (submission order).
    pub id: u32,
    /// Program key.
    pub app: String,
    /// `completed`, `exited[c]`, `denied[nr:reason]`, `seccomp[nr]`,
    /// `faulted`, `stalled`, or `compile-error: …`.
    pub status: String,
    /// Requests / transactions / downloads served.
    pub served: u64,
    /// Workload target.
    pub target: u64,
    /// Scheduler quanta consumed.
    pub turns: u64,
    /// Quanta that ended [`RunStatus::Idle`] (world parked on input).
    pub parked: u64,
    /// Virtual cycles of the tenant's world at finalization.
    pub cycles: u64,
    /// Traps delivered to this tenant's monitor.
    pub traps: u64,
    /// Traps settled by the tier-1 prefilter (no full walk).
    pub tier1_hits: u64,
    /// Deny-audit records the monitor emitted.
    pub denies: u64,
    /// Per-tenant request latency.
    pub latency: LatencyLane,
}

/// The serialized `BENCH_serve.json` shape. Deliberately excludes `jobs`
/// and wall-clock time so the same config is byte-identical at any
/// parallelism.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    /// Report discriminator (`"serve"`).
    pub bench: String,
    /// Tenants submitted.
    pub tenants: u64,
    /// Mix / schedule seed.
    pub seed: u64,
    /// Scheduler quantum (cycles).
    pub quantum: u64,
    /// Tenants admitted by the queue.
    pub admitted: u64,
    /// Ids rejected by the admission queue (submission order).
    pub rejected: Vec<u32>,
    /// Tenants that finished their whole workload.
    pub completed: u64,
    /// Tenants evicted early (denied / seccomp / faulted / stalled).
    pub evicted: u64,
    /// Requests served across the fleet.
    pub total_requests: u64,
    /// Response payload bytes across the fleet.
    pub total_bytes: u64,
    /// Scheduler quanta issued across the fleet.
    pub total_turns: u64,
    /// Traps across the fleet.
    pub total_traps: u64,
    /// Monitor deny records across the fleet.
    pub total_denies: u64,
    /// Sum of tenant world clocks (virtual fleet work).
    pub fleet_cycles: u64,
    /// Fleet-wide request latency.
    pub request_latency: LatencyLane,
    /// Fleet-wide per-trap verification latency.
    pub verify_latency: LatencyLane,
    /// Per-application aggregates (sorted by key).
    pub apps: Vec<AppLane>,
    /// One row per admitted tenant, id order.
    pub rows: Vec<TenantReport>,
}

impl ServeReport {
    /// `bastion top`-style fixed-width table: fleet summary plus one row
    /// per tenant. Deterministic byte-for-byte for a given config.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bastiond: {} submitted, {} admitted, {} rejected | completed {} evicted {}",
            self.tenants,
            self.admitted,
            self.rejected.len(),
            self.completed,
            self.evicted,
        );
        let _ = writeln!(
            out,
            "fleet: {} requests, {} traps, {} denies, {} cycles | req p50/p95/p99/p999 = {}/{}/{}/{}",
            self.total_requests,
            self.total_traps,
            self.total_denies,
            self.fleet_cycles,
            self.request_latency.p50,
            self.request_latency.p95,
            self.request_latency.p99,
            self.request_latency.p999,
        );
        for lane in &self.apps {
            let _ = writeln!(
                out,
                "  app {:<14} tenants {:>4}  requests {:>7}  p50 {:>8}  p95 {:>8}  p99 {:>8}  p999 {:>8}",
                lane.app,
                lane.tenants,
                lane.latency.count,
                lane.latency.p50,
                lane.latency.p95,
                lane.latency.p99,
                lane.latency.p999,
            );
        }
        let _ = writeln!(
            out,
            "{:>5} {:<14} {:<28} {:>7} {:>6} {:>6} {:>9} {:>6} {:>8} {:>8} {:>8}",
            "id",
            "app",
            "status",
            "served",
            "turns",
            "park",
            "cycles",
            "traps",
            "p50",
            "p99",
            "p999",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>5} {:<14} {:<28} {:>3}/{:<3} {:>6} {:>6} {:>9} {:>6} {:>8} {:>8} {:>8}",
                r.id,
                r.app,
                r.status,
                r.served,
                r.target,
                r.turns,
                r.parked,
                r.cycles,
                r.traps,
                r.latency.p50,
                r.latency.p99,
                r.latency.p999,
            );
        }
        out
    }
}

/// A finished serve run: the serializable report plus the merged fleet
/// metrics snapshot (for Prometheus / JSONL export).
#[derive(Debug)]
pub struct ServeRun {
    /// The `BENCH_serve.json` report.
    pub report: ServeReport,
    /// Fleet-level merged metrics (tenant registries merged in id order).
    pub fleet: MetricsSnapshot,
}

/// Runs the supervisor over the standard seeded tenant mix.
pub fn run_serve(cfg: &ServeConfig) -> ServeRun {
    serve_with_specs(cfg, tenant_mix(cfg))
}

/// Runs the supervisor over an explicit tenant list (tests inject rogue
/// tenants this way).
pub fn serve_with_specs(cfg: &ServeConfig, specs: Vec<TenantSpec>) -> ServeRun {
    let mut queue = AdmissionQueue::new(cfg.admission_capacity);
    for spec in specs {
        queue.submit(spec);
    }
    let (admitted, rejected) = queue.drain();
    let programs = compile_programs(&admitted);
    let shards = shard(admitted, cfg.jobs);
    let per_shard = fleet::run_ordered(shards.len().max(1), shards, |_, sh| {
        run_shard(sh, &programs, cfg)
    });

    let mut fleet_reg = MetricsRegistry::new();
    let mut per_app: BTreeMap<String, (u64, QuantileSketch)> = BTreeMap::new();
    let mut rows = Vec::new();
    let mut total_bytes = 0u64;
    for (row, bytes, reg) in per_shard.into_iter().flatten() {
        let entry = per_app.entry(row.app.clone()).or_default();
        entry.0 += 1;
        if let Some(sk) = reg.sketch(REQUEST_CYCLES_SKETCH) {
            entry.1.merge(sk);
        }
        total_bytes += bytes;
        rows.push(row);
        fleet_reg.merge(reg);
    }
    let fleet = fleet_reg.snapshot();

    let completed = rows.iter().filter(|r| r.status == "completed").count() as u64;
    let evicted = rows
        .iter()
        .filter(|r| {
            r.status.starts_with("denied")
                || r.status.starts_with("seccomp")
                || r.status.starts_with("faulted")
                || r.status.starts_with("stalled")
                || r.status.starts_with("compile-error")
        })
        .count() as u64;
    let report = ServeReport {
        bench: "serve".to_string(),
        tenants: cfg.tenants as u64,
        seed: cfg.seed,
        quantum: cfg.quantum,
        admitted: rows.len() as u64,
        rejected,
        completed,
        evicted,
        total_requests: rows.iter().map(|r| r.served).sum(),
        total_bytes,
        total_turns: rows.iter().map(|r| r.turns).sum(),
        total_traps: rows.iter().map(|r| r.traps).sum(),
        total_denies: rows.iter().map(|r| r.denies).sum(),
        fleet_cycles: rows.iter().map(|r| r.cycles).sum(),
        request_latency: LatencyLane::from_snapshot(fleet.sketch(REQUEST_CYCLES_SKETCH)),
        verify_latency: LatencyLane::from_snapshot(fleet.sketch(VERIFY_CYCLES_SKETCH)),
        apps: per_app
            .into_iter()
            .map(|(app, (tenants, sk))| AppLane {
                app,
                tenants,
                latency: LatencyLane::from_sketch(&sk),
            })
            .collect(),
        rows,
    };
    ServeRun { report, fleet }
}

/// Compiles each distinct program once; tenants share the deployment.
fn compile_programs(specs: &[TenantSpec]) -> BTreeMap<String, Result<Deployment, String>> {
    let mut programs = BTreeMap::new();
    for spec in specs {
        let key = spec.kind.key();
        if programs.contains_key(&key) {
            continue;
        }
        let built = match &spec.kind {
            TenantKind::App(app) => app
                .module()
                .map_err(|e| e.to_string())
                .and_then(|m| Deployment::from_module(m).map_err(|e| e.to_string())),
            TenantKind::Custom { name, source } => {
                Deployment::from_minic(name, &[source.as_str()]).map_err(|e| e.to_string())
            }
        };
        programs.insert(key, built);
    }
    programs
}

/// Contiguous shards, as equal as possible, preserving id order.
fn shard(specs: Vec<TenantSpec>, jobs: usize) -> Vec<Vec<TenantSpec>> {
    if specs.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, specs.len());
    let n = specs.len();
    let (base, extra) = (n / jobs, n % jobs);
    let mut it = specs.into_iter();
    (0..jobs)
        .map(|i| {
            let take = base + usize::from(i < extra);
            it.by_ref().take(take).collect()
        })
        .collect()
}

/// One live tenant in a shard's run queue.
struct Tenant {
    spec: TenantSpec,
    world: World,
    traffic: Option<Traffic>,
    registry: MetricsRegistry,
    turns: u64,
    parked: u64,
    stall: u32,
}

enum Turn {
    /// Quantum expired or world parked; re-enter the run queue.
    Yield,
    /// Workload finished or tenant evicted, with its final status.
    Finished(String),
}

/// Boots every tenant of the shard, then round-robins the run queue until
/// it drains. Returns `(row, payload_bytes, registry)` per tenant in
/// submission order.
fn run_shard(
    specs: &[TenantSpec],
    programs: &BTreeMap<String, Result<Deployment, String>>,
    cfg: &ServeConfig,
) -> Vec<(TenantReport, u64, MetricsRegistry)> {
    let _interp = LegacyInterpGuard::set(false);
    let mut done: BTreeMap<u32, (TenantReport, u64, MetricsRegistry)> = BTreeMap::new();
    let mut queue: VecDeque<Tenant> = VecDeque::new();
    for spec in specs {
        match boot(spec.clone(), programs, cfg) {
            // A world dead straight out of boot never enters the queue.
            Ok(t) if t.world.alive_count() == 0 => {
                let status = classify(&t.world);
                done.insert(spec.id, finalize(t, status));
            }
            Ok(t) => queue.push_back(t),
            Err(status) => {
                done.insert(spec.id, reject_row(spec, status));
            }
        }
    }
    while let Some(mut t) = queue.pop_front() {
        match turn(&mut t, cfg.quantum) {
            Turn::Yield => queue.push_back(t),
            Turn::Finished(status) => {
                done.insert(t.spec.id, finalize(t, status));
            }
        }
    }
    specs
        .iter()
        .map(|s| done.remove(&s.id).expect("every tenant finalized"))
        .collect()
}

/// Boots one tenant: fresh world, VFS fixtures, protected launch, run to
/// the accept loop. Boot telemetry (monitor init, boot traps) lands in
/// the tenant's registry.
fn boot(
    spec: TenantSpec,
    programs: &BTreeMap<String, Result<Deployment, String>>,
    cfg: &ServeConfig,
) -> Result<Tenant, String> {
    let d = match programs.get(&spec.kind.key()) {
        Some(Ok(d)) => d,
        Some(Err(e)) => return Err(format!("compile-error: {e}")),
        None => return Err("compile-error: program missing".to_string()),
    };
    let mut world = d.world();
    if let TenantKind::App(app) = &spec.kind {
        app.setup_vfs(&mut world);
    }
    let guard = TelemetryGuard::enable(TURN_SPANS);
    d.launch(&mut world, &Protection::full());
    world.run(BOOT_BUDGET);
    let (_, registry) = guard.finish();
    let traffic = match &spec.kind {
        TenantKind::App(app) if world.alive_count() > 0 => {
            Some(Traffic::for_app(*app, spec.requests, cfg.concurrency))
        }
        _ => None,
    };
    Ok(Tenant {
        spec,
        world,
        traffic,
        registry,
        turns: 0,
        parked: 0,
        stall: 0,
    })
}

/// One scheduler quantum: pump the tenant's client side, run the world
/// for `quantum` cycles, fold the turn's telemetry into the tenant.
fn turn(t: &mut Tenant, quantum: u64) -> Turn {
    let guard = TelemetryGuard::enable(TURN_SPANS);
    let progressed = t.traffic.as_mut().is_some_and(|tr| tr.pump(&mut t.world));
    let status = t.world.run(quantum);
    let (_, reg) = guard.finish();
    t.registry.merge(reg);
    t.turns += 1;
    match status {
        RunStatus::AllExited => Turn::Finished(classify(&t.world)),
        RunStatus::Budget => {
            t.stall = 0;
            Turn::Yield
        }
        RunStatus::Idle => {
            // Parked: nothing runnable and no sleeper pending (sleepers are
            // absorbed inside `World::run` via its next-wake fast-forward).
            // Progress can only come from a later client pump.
            t.parked += 1;
            if t.traffic.as_ref().is_some_and(Traffic::done) {
                return Turn::Finished("completed".to_string());
            }
            if progressed {
                t.stall = 0;
                Turn::Yield
            } else {
                t.stall += 1;
                if t.stall >= STALL_LIMIT {
                    Turn::Finished("stalled".to_string())
                } else {
                    Turn::Yield
                }
            }
        }
    }
}

/// Status string for a fully exited world. A defense kill on any process
/// marks the tenant denied/seccomp/faulted; otherwise the first process's
/// exit code is reported.
fn classify(world: &World) -> String {
    for p in &world.procs {
        match &p.exit {
            Some(ExitReason::MonitorKill { nr, reason }) => {
                return format!("denied[{nr}:{reason}]")
            }
            Some(ExitReason::SeccompKill { nr }) => return format!("seccomp[{nr}]"),
            Some(ExitReason::Fault(_)) => return "faulted".to_string(),
            _ => {}
        }
    }
    match world.procs.first().and_then(|p| p.exit.as_ref()) {
        Some(ExitReason::Exited(c)) => format!("exited[{c}]"),
        _ => "exited".to_string(),
    }
}

/// Finalizes a tenant: detach the monitor for its stats, snapshot its
/// registry, and build the report row.
fn finalize(mut t: Tenant, status: String) -> (TenantReport, u64, MetricsRegistry) {
    let (tier1_hits, denies) = crate::chaos::monitor_report(&mut t.world)
        .map_or((0, 0), |(stats, log)| {
            (stats.prefilter_hits, log.len() as u64)
        });
    let snap = t.registry.snapshot();
    let row = TenantReport {
        id: t.spec.id,
        app: t.spec.kind.key(),
        status,
        served: t.traffic.as_ref().map_or(0, Traffic::served),
        target: t.traffic.as_ref().map_or(0, Traffic::target),
        turns: t.turns,
        parked: t.parked,
        cycles: t.world.now(),
        traps: t.world.trap_count,
        tier1_hits,
        denies,
        latency: LatencyLane::from_snapshot(snap.sketch(REQUEST_CYCLES_SKETCH)),
    };
    let bytes = t.traffic.as_ref().map_or(0, Traffic::bytes);
    (row, bytes, t.registry)
}

/// Row for a tenant that never booted (compile failure).
fn reject_row(spec: &TenantSpec, status: String) -> (TenantReport, u64, MetricsRegistry) {
    (
        TenantReport {
            id: spec.id,
            app: spec.kind.key(),
            status,
            served: 0,
            target: spec.requests,
            turns: 0,
            parked: 0,
            cycles: 0,
            traps: 0,
            tier1_hits: 0,
            denies: 0,
            latency: LatencyLane::default(),
        },
        0,
        MetricsRegistry::new(),
    )
}

/// All three applications appear in any mix of ≥ 8 tenants (used by smoke
/// checks to assert coverage).
pub fn mix_covers_all_apps(specs: &[TenantSpec]) -> bool {
    ALL_APPS.iter().all(|app| {
        specs
            .iter()
            .any(|s| matches!(&s.kind, TenantKind::App(a) if a == app))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_queue_rejects_overflow_in_order() {
        let mut q = AdmissionQueue::new(2);
        for id in 0..4 {
            q.submit(TenantSpec {
                id,
                kind: TenantKind::App(App::Webserve),
                requests: 1,
            });
        }
        assert_eq!(q.len(), 2);
        let (admitted, rejected) = q.drain();
        assert_eq!(admitted.iter().map(|s| s.id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(rejected, [2, 3]);
    }

    #[test]
    fn tenant_mix_is_seed_deterministic_and_covering() {
        let cfg = ServeConfig::new(32, 7);
        let a = tenant_mix(&cfg);
        let b = tenant_mix(&cfg);
        assert_eq!(a.len(), 32);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind.key(), y.kind.key());
            assert_eq!(x.requests, y.requests);
        }
        assert!(mix_covers_all_apps(&a));
        let other = tenant_mix(&ServeConfig::new(32, 8));
        assert!(
            a.iter()
                .zip(&other)
                .any(|(x, y)| x.kind.key() != y.kind.key()),
            "different seeds must draw different mixes"
        );
    }

    #[test]
    fn sharding_is_contiguous_and_exhaustive() {
        let cfg = ServeConfig::new(10, 0);
        let specs = tenant_mix(&cfg);
        let shards = shard(specs, 4);
        assert_eq!(shards.len(), 4);
        let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
        assert_eq!(sizes, [3, 3, 2, 2]);
        let ids: Vec<u32> = shards.iter().flatten().map(|s| s.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert!(shard(Vec::new(), 4).is_empty());
    }

    #[test]
    fn single_tenant_serves_its_whole_workload() {
        let mut cfg = ServeConfig::new(1, 3);
        cfg.requests_per_tenant = 6;
        let run = run_serve(&cfg);
        let r = &run.report;
        assert_eq!(r.admitted, 1);
        assert_eq!(r.completed, 1);
        assert_eq!(r.evicted, 0);
        assert_eq!(r.rows[0].served, r.rows[0].target);
        assert!(r.rows[0].turns > 1, "quantum must force multiple turns");
        assert!(r.total_traps > 0, "protected tenant must trap");
        assert_eq!(r.request_latency.count, r.total_requests);
        assert!(run.fleet.sketch(REQUEST_CYCLES_SKETCH).is_some());
    }

    #[test]
    fn custom_exit_tenant_finishes_without_traffic() {
        let cfg = ServeConfig::new(1, 0);
        let spec = TenantSpec {
            id: 0,
            kind: TenantKind::Custom {
                name: "ret7".to_string(),
                source: "long main() { return 7; }".to_string(),
            },
            requests: 0,
        };
        let run = serve_with_specs(&cfg, vec![spec]);
        assert_eq!(run.report.rows[0].status, "exited[7]");
        assert_eq!(run.report.completed, 0);
        assert_eq!(run.report.evicted, 0);
    }

    #[test]
    fn compile_error_tenant_is_reported_not_booted() {
        let cfg = ServeConfig::new(1, 0);
        let spec = TenantSpec {
            id: 0,
            kind: TenantKind::Custom {
                name: "broken".to_string(),
                source: "long main( {".to_string(),
            },
            requests: 0,
        };
        let run = serve_with_specs(&cfg, vec![spec]);
        assert!(run.report.rows[0].status.starts_with("compile-error"));
        assert_eq!(run.report.evicted, 1);
    }
}
