//! Protection configurations — the x-axis of Figure 3 and Table 7.

use bastion_defenses::HardeningConfig;
use bastion_monitor::ContextConfig;

/// A complete defense configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protection {
    /// Short label as printed in the paper's figures.
    pub label: &'static str,
    /// Baseline hardware/software mitigations.
    pub hardening: HardeningConfig,
    /// BASTION monitor configuration, if attached.
    pub monitor: Option<ContextConfig>,
}

impl Protection {
    /// Unprotected vanilla baseline.
    pub fn vanilla() -> Self {
        Protection {
            label: "Vanilla",
            hardening: HardeningConfig::vanilla(),
            monitor: None,
        }
    }

    /// LLVM CFI alone (coarse forward-edge CFI).
    pub fn llvm_cfi() -> Self {
        Protection {
            label: "LLVM CFI",
            hardening: HardeningConfig::llvm_cfi(),
            monitor: None,
        }
    }

    /// CET alone (hardware shadow stack).
    pub fn cet() -> Self {
        Protection {
            label: "CET",
            hardening: HardeningConfig::cet(),
            monitor: None,
        }
    }

    /// CET + Call-Type context.
    pub fn cet_ct() -> Self {
        Protection {
            label: "CET+CT",
            hardening: HardeningConfig::cet(),
            monitor: Some(ContextConfig::ct()),
        }
    }

    /// CET + Call-Type + Control-Flow contexts.
    pub fn cet_ct_cf() -> Self {
        Protection {
            label: "CET+CT+CF",
            hardening: HardeningConfig::cet(),
            monitor: Some(ContextConfig::ct_cf()),
        }
    }

    /// Full BASTION: CET + all three contexts.
    pub fn full() -> Self {
        Protection {
            label: "CET+CT+CF+AI",
            hardening: HardeningConfig::cet(),
            monitor: Some(ContextConfig::full()),
        }
    }

    /// BASTION without CET (for the §10.1 "older processors" discussion).
    pub fn bastion_no_cet() -> Self {
        Protection {
            label: "BASTION (no CET)",
            hardening: HardeningConfig::vanilla(),
            monitor: Some(ContextConfig::full()),
        }
    }

    /// Table 7 row 1: seccomp hook only.
    pub fn hook_only() -> Self {
        Protection {
            label: "seccomp hook only",
            hardening: HardeningConfig::cet(),
            monitor: Some(ContextConfig::hook_only()),
        }
    }

    /// Table 7 row 2: hook + fetch process state, no verification.
    pub fn fetch_state() -> Self {
        Protection {
            label: "fetch process state",
            hardening: HardeningConfig::cet(),
            monitor: Some(ContextConfig::fetch_state()),
        }
    }

    /// The Figure 3 column set, in paper order.
    pub fn figure3() -> [Protection; 5] {
        [
            Protection::llvm_cfi(),
            Protection::cet(),
            Protection::cet_ct(),
            Protection::cet_ct_cf(),
            Protection::full(),
        ]
    }

    /// The Table 7 row set, in paper order.
    ///
    /// Table 7 decomposes the *ptrace* monitor's trap cost (§11.2: hook →
    /// state fetch → full verification), so its full row runs with the
    /// tier-1 prefilter disabled — the prefilter's stop-free clean path
    /// would hide exactly the state-fetch increment the table measures.
    pub fn table7() -> [Protection; 3] {
        let mut full = Protection::full();
        full.monitor = Some(ContextConfig::full().with_prefilter(false));
        [Protection::hook_only(), Protection::fetch_state(), full]
    }

    /// Extended-scope two-tier companion to Table 7 (§11.2): the same
    /// filesystem-extended sensitive set, full verification, with the
    /// tier-1/tier-2 split **on**. Table 7 itself stays ptrace-only —
    /// this row is the counterpart showing what the prefilter buys once
    /// the sensitive surface grows.
    pub fn extended_two_tier() -> Self {
        Protection {
            label: "extended two-tier",
            hardening: HardeningConfig::cet(),
            monitor: Some(ContextConfig::full()),
        }
    }

    /// Extended-scope tier-2-only baseline: identical verification to
    /// [`Protection::extended_two_tier`] with the prefilter off — the
    /// denominator of the §11.2 two-tier speedup.
    pub fn extended_tier2_only() -> Self {
        Protection {
            label: "extended tier-2 only",
            hardening: HardeningConfig::cet(),
            monitor: Some(ContextConfig::full().with_prefilter(false)),
        }
    }

    /// Whether a BASTION monitor is attached.
    pub fn has_monitor(&self) -> bool {
        self.monitor.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_order_matches_paper() {
        let cols = Protection::figure3();
        assert_eq!(cols[0].label, "LLVM CFI");
        assert_eq!(cols[4].label, "CET+CT+CF+AI");
        assert!(!cols[0].has_monitor());
        assert!(cols[2].has_monitor());
        // All BASTION columns layer on CET, per the paper.
        for c in &cols[2..] {
            assert!(c.hardening.cet);
            assert!(!c.hardening.llvm_cfi);
        }
    }

    #[test]
    fn table7_rows_escalate() {
        let rows = Protection::table7();
        assert!(!rows[0].monitor.unwrap().fetch_state);
        assert!(rows[1].monitor.unwrap().fetch_state);
        assert!(!rows[1].monitor.unwrap().verifies());
        assert!(rows[2].monitor.unwrap().verifies());
        // Table 7 decomposes ptrace costs: its full row must stay
        // prefilter-free even now that an extended two-tier preset exists.
        assert!(!rows[2].monitor.unwrap().prefilter);
    }

    #[test]
    fn extended_scope_pair_differs_only_in_prefilter() {
        let two_tier = Protection::extended_two_tier().monitor.unwrap();
        let t2 = Protection::extended_tier2_only().monitor.unwrap();
        assert!(two_tier.prefilter);
        assert!(!t2.prefilter);
        assert_eq!(
            ContextConfig {
                prefilter: false,
                ..two_tier
            },
            t2
        );
    }
}
