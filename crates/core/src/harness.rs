//! The experiment harness: boots an application under a protection
//! configuration, drives its workload, and reports the paper's metrics.
//!
//! Everything is measured in deterministic virtual time, so a single run
//! per configuration regenerates each table bit-for-bit.

use crate::protection::Protection;
use bastion_apps::{loadgen, App};
use bastion_compiler::{BastionCompiler, InstrStats};
use bastion_kernel::{Pid, World};
use bastion_monitor::MonitorStats;
use bastion_vm::{CostModel, Image, Machine};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Workload sizes (requests / transactions / downloads).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSize {
    /// HTTP requests for webserve.
    pub http_requests: u64,
    /// Concurrent HTTP connections.
    pub http_concurrency: usize,
    /// New-order transactions for dbkv.
    pub tpcc_tx: u64,
    /// Concurrent DBT2 sessions.
    pub tpcc_sessions: usize,
    /// Sequential FTP downloads.
    pub ftp_downloads: u64,
}

impl WorkloadSize {
    /// Small sizes for unit/integration tests.
    pub fn quick() -> Self {
        WorkloadSize {
            http_requests: 60,
            http_concurrency: 8,
            tpcc_tx: 80,
            tpcc_sessions: 4,
            ftp_downloads: 2,
        }
    }

    /// The sizes used to regenerate the paper tables.
    pub fn standard() -> Self {
        WorkloadSize {
            http_requests: 1200,
            http_concurrency: 16,
            tpcc_tx: 1500,
            tpcc_sessions: 8,
            ftp_downloads: 8,
        }
    }
}

/// The result of one application × protection run.
#[derive(Debug, Clone)]
pub struct AppBenchmark {
    /// Application measured.
    pub app: App,
    /// Protection label (Figure 3 column / Table 7 row).
    pub protection: &'static str,
    /// The paper's metric: MB/s (webserve), NOTPM (dbkv), seconds for a
    /// 100 MB download (ftpd).
    pub metric: f64,
    /// Virtual cycles the measurement took.
    pub cycles: u64,
    /// VM instructions retired over the whole run (boot + workload).
    pub steps: u64,
    /// Virtual cycles spent in monitor tracing (ptrace stops + remote
    /// reads + monitor init) — the numerator of the per-trap cost.
    pub trace_cycles: u64,
    /// Monitor traps delivered during the whole run.
    pub traps: u64,
    /// Executed-syscall counters at the end of the run.
    pub syscall_counts: BTreeMap<u32, u64>,
    /// Monitor statistics (when a monitor was attached).
    pub monitor: Option<MonitorStats>,
    /// Compiler instrumentation statistics (when instrumented).
    pub instr: Option<InstrStats>,
}

impl AppBenchmark {
    /// Whether higher metric values are better for this app (throughput)
    /// or worse (download time).
    pub fn higher_is_better(&self) -> bool {
        !matches!(self.app, App::Ftpd)
    }

    /// Overhead percentage relative to a baseline run of the same app.
    pub fn overhead_vs(&self, baseline: &AppBenchmark) -> f64 {
        if self.higher_is_better() {
            (baseline.metric - self.metric) / baseline.metric * 100.0
        } else {
            (self.metric - baseline.metric) / baseline.metric * 100.0
        }
    }
}

/// Runs one application under one protection configuration.
///
/// The `compiler` argument selects the sensitive-syscall scope (default
/// Table 1 set, or the extended §11.2 set for Table 7); it is only used
/// when the protection attaches a monitor — baseline columns run the
/// uninstrumented binary, exactly as the paper's baselines do.
///
/// # Panics
/// Panics if the application fails to compile or serve (all shipped apps
/// are tested to do both).
pub fn run_app_benchmark(
    app: App,
    protection: &Protection,
    size: &WorkloadSize,
    compiler: &BastionCompiler,
    cost: CostModel,
) -> AppBenchmark {
    let module = app.module().expect("app compiles");
    let (image, metadata, instr) = if protection.has_monitor() {
        let out = compiler.compile(module).expect("instrumentation succeeds");
        let stats = out.metadata.stats.clone();
        (
            Arc::new(Image::load(out.module).expect("image loads")),
            Some(out.metadata),
            Some(stats),
        )
    } else {
        (
            Arc::new(Image::load(module).expect("image loads")),
            None,
            None,
        )
    };

    let mut world = World::new(cost);
    app.setup_vfs(&mut world);
    let mut machine = Machine::new(image.clone(), cost);
    protection.hardening.apply(&mut machine);
    let pid: Pid = world.spawn(machine);
    if let Some(cfg) = protection.monitor {
        let md = metadata.as_ref().expect("metadata built with monitor");
        bastion_monitor::protect(&mut world, pid, &image, md, cfg);
    }

    // Boot until every process parks (workers blocked in accept).
    world.run(1_000_000_000);
    assert!(
        world.alive_count() > 0,
        "{} died during boot under {}: {:?}",
        app.id(),
        protection.label,
        world.proc(pid).and_then(|p| p.exit.clone())
    );

    let metric = match app {
        App::Webserve => {
            let s = loadgen::http_load(
                &mut world,
                app.port(),
                size.http_concurrency,
                size.http_requests,
            );
            s.throughput_mb_s(cost.cpu_hz)
        }
        App::Dbkv => {
            let s = loadgen::tpcc_load(&mut world, app.port(), size.tpcc_sessions, size.tpcc_tx);
            s.notpm(cost.cpu_hz)
        }
        App::Ftpd => {
            let s = loadgen::ftp_load(
                &mut world,
                app.port(),
                size.ftp_downloads,
                bastion_apps::ftpd::FILE_PATH,
            );
            s.seconds_for(100_000_000, cost.cpu_hz)
        }
    };

    let monitor = world.take_tracer().and_then(|t| {
        t.as_any()
            .downcast_ref::<bastion_monitor::Monitor>()
            .map(|m| m.stats.clone())
    });

    AppBenchmark {
        app,
        protection: protection.label,
        metric,
        cycles: world.now(),
        steps: world.steps,
        trace_cycles: world.trace_cycles,
        traps: world.trap_count,
        syscall_counts: world.kernel.counts.clone(),
        monitor,
        instr,
    }
}

/// Runs the full Figure 3 / Table 3 grid for one app: the vanilla baseline
/// followed by every protection column. Returns `(baseline, columns)`.
pub fn run_figure3_row(
    app: App,
    size: &WorkloadSize,
    cost: CostModel,
) -> (AppBenchmark, Vec<AppBenchmark>) {
    let compiler = BastionCompiler::new();
    let baseline = run_app_benchmark(app, &Protection::vanilla(), size, &compiler, cost);
    let columns = Protection::figure3()
        .iter()
        .map(|p| run_app_benchmark(app, p, size, &compiler, cost))
        .collect();
    (baseline, columns)
}

/// Runs the Table 7 grid for one app: vanilla baseline + the three
/// extended-scope rows (filesystem syscalls protected).
pub fn run_table7_row(
    app: App,
    size: &WorkloadSize,
    cost: CostModel,
) -> (AppBenchmark, Vec<AppBenchmark>) {
    let compiler = BastionCompiler::with_sensitive(bastion_ir::sysno::extended_sensitive_set());
    let baseline = run_app_benchmark(app, &Protection::vanilla(), size, &compiler, cost);
    let rows = Protection::table7()
        .iter()
        .map(|p| run_app_benchmark(app, p, size, &compiler, cost))
        .collect();
    (baseline, rows)
}

/// Runs one app under the extended filesystem scope (§11.2) twice — the
/// two-tier split on and off — and returns `(two_tier, tier2_only)`. The
/// pair shares one compiler so both runs verify the identical sensitive
/// surface; only the tier-1 prefilter differs.
pub fn run_extended_scope_pair(
    app: App,
    size: &WorkloadSize,
    cost: CostModel,
) -> (AppBenchmark, AppBenchmark) {
    let compiler = BastionCompiler::with_sensitive(bastion_ir::sysno::extended_sensitive_set());
    let two_tier = run_app_benchmark(app, &Protection::extended_two_tier(), size, &compiler, cost);
    let tier2_only = run_app_benchmark(
        app,
        &Protection::extended_tier2_only(),
        size,
        &compiler,
        cost,
    );
    (two_tier, tier2_only)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webserve_benchmark_under_full_protection() {
        let size = WorkloadSize::quick();
        let compiler = BastionCompiler::new();
        let cost = CostModel::default();
        let base = run_app_benchmark(
            App::Webserve,
            &Protection::vanilla(),
            &size,
            &compiler,
            cost,
        );
        let full = run_app_benchmark(App::Webserve, &Protection::full(), &size, &compiler, cost);
        assert!(base.metric > 0.0);
        assert!(full.metric > 0.0);
        assert!(full.traps > 0, "sensitive syscalls must trap");
        // Protection costs something but not everything.
        let overhead = full.overhead_vs(&base);
        assert!(overhead > 0.0, "overhead {overhead}");
        assert!(overhead < 50.0, "overhead {overhead}");
        assert!(full.monitor.is_some());
        assert!(full.instr.is_some());
    }

    #[test]
    fn ftpd_overhead_uses_inverted_metric() {
        let size = WorkloadSize::quick();
        let compiler = BastionCompiler::new();
        let cost = CostModel::default();
        let base = run_app_benchmark(App::Ftpd, &Protection::vanilla(), &size, &compiler, cost);
        let cet = run_app_benchmark(App::Ftpd, &Protection::cet(), &size, &compiler, cost);
        assert!(!base.higher_is_better());
        // CET alone should be near-free.
        let overhead = cet.overhead_vs(&base);
        assert!(overhead.abs() < 5.0, "CET overhead {overhead}");
    }
}
