//! Chaos harness: seeded deterministic fault injection against live
//! deployments (DESIGN.md §6d).
//!
//! Two drivers share the [`bastion_kernel::FaultSchedule`] machinery:
//!
//! * **benign chaos** — boots a workload application under a monitor
//!   configuration, installs a fault schedule, and drives traffic with a
//!   *lenient* load generator that tolerates a degraded or killed server
//!   (the stock `loadgen` drivers assert liveness, which is exactly what a
//!   chaos run must not do);
//! * **attack chaos** — replays Table 6 scenarios with faults targeted at
//!   the traps the attack itself produces, asserting the monitor's
//!   fail-closed invariant: **no fault may flip a blocked attack to
//!   Allow**.
//!
//! Fault placement is calibrated, not guessed: the same deterministic
//! world replays identically, so a clean reference run's trap count pins
//! the window where the attack's sensitive syscalls trap, and the chaos
//! run re-targets exactly those traps. Priming traffic (connection
//! set-up, priming requests) stays fault-free, which keeps the attack
//! payload itself deliverable — the faults hit the *verification* of the
//! malicious syscall, the worst case for the monitor.
//!
//! Both drivers fork their cells from a warm copy-on-write checkpoint
//! ([`bastion_kernel::World::snapshot`]) taken right after the fault-free
//! boot, instead of recompiling and rebooting the victim per cell; a
//! `cold` flag forces the full replay, and reports are byte-identical
//! either way (CI gates the diff). The schedule families cover the
//! monitor-substrate faults (DESIGN.md §6d) plus the `app-flip` family:
//! SFP-style bit flips in the *application's* registers, stack frames and
//! shadow-bound locals at trap entry, which the monitor must survive
//! without ever approving corrupted state.

use bastion_apps::App;
use bastion_attacks::env::{AttackEnv, RunOutcome};
use bastion_attacks::scenario::Scenario;
use bastion_kernel::{FaultKind, FaultSchedule, Trigger, World};
use bastion_monitor::{ContextConfig, MonitorStats};
use bastion_obs::{flight::verdict as flight_verdict, DenyRecord, FlightDump};

/// Cycle slice between net-poll rounds of the lenient driver.
const SLICE: u64 = 250_000;

/// Recovers monitor statistics from a finished world (detaches the
/// tracer). `None` when no monitor was attached.
pub fn monitor_stats(world: &mut World) -> Option<MonitorStats> {
    monitor_report(world).map(|(stats, _)| stats)
}

/// Recovers monitor statistics *and* the deny-provenance audit log from a
/// finished world (detaches the tracer). `None` when no monitor was
/// attached. The deny records join against the world's fault log via
/// `DenyRecord::trap_seq` == `InjectedFault::world_trap`.
pub fn monitor_report(world: &mut World) -> Option<(MonitorStats, Vec<DenyRecord>)> {
    let (resident, shared) = world.page_stats();
    world.take_tracer().and_then(|t| {
        t.as_any()
            .downcast_ref::<bastion_monitor::Monitor>()
            .map(|m| {
                let mut stats = m.stats.clone();
                stats.resident_pages = resident;
                stats.snapshot_shared_pages = shared;
                (stats, m.deny_log.clone())
            })
    })
}

/// Outcome of one benign chaos run.
#[derive(Debug, Clone)]
pub struct BenignChaosReport {
    /// Application driven.
    pub app: App,
    /// Requests that received at least one response byte.
    pub served: u64,
    /// Requests attempted.
    pub attempted: u64,
    /// Faults that actually fired.
    pub faults_fired: u64,
    /// Whether any victim process was still alive at the end.
    pub survived: bool,
    /// Final monitor statistics (mode, strikes, denies...).
    pub stats: Option<MonitorStats>,
}

/// Boots `app` under `cfg` to the point where the server listens (boot is
/// always fault-free: the chaos clock starts afterwards).
///
/// # Panics
/// Panics only if the application fails to compile or boot *without*
/// faults (shipped apps are tested to do both).
fn deploy_benign(app: App, cfg: ContextConfig) -> World {
    let compiler = bastion_compiler::BastionCompiler::new();
    let module = app.module().expect("app compiles");
    let out = compiler.compile(module).expect("instrumentation succeeds");
    let image = std::sync::Arc::new(bastion_vm::Image::load(out.module).expect("image loads"));
    let cost = bastion_vm::CostModel::default();
    let mut world = World::new(cost);
    app.setup_vfs(&mut world);
    let machine = bastion_vm::Machine::new(image.clone(), cost);
    let pid = world.spawn(machine);
    bastion_monitor::protect(&mut world, pid, &image, &out.metadata, cfg);
    world.run(1_000_000_000);
    assert!(
        world.alive_count() > 0,
        "{} died during clean boot",
        app.id()
    );
    world
}

/// Boots `app` under `cfg`, installs `schedule` *after* a clean boot, and
/// drives `requests` lenient requests. Never panics on a dead or
/// degraded server — that is the outcome being measured.
///
/// # Panics
/// Panics only if the application fails to compile or boot *without*
/// faults (shipped apps are tested to do both).
pub fn benign_chaos(
    app: App,
    cfg: ContextConfig,
    schedule: FaultSchedule,
    requests: u64,
) -> BenignChaosReport {
    drive_benign(deploy_benign(app, cfg), app, schedule, requests)
}

/// Runs the benign half's full schedule family for one app: one fault-free
/// deploy, then one cell per [`benign_schedules`] entry. Warm cells fork
/// the booted world from a copy-on-write checkpoint; `cold` forces a full
/// re-deploy per cell (byte-identical reports either way).
pub fn benign_chaos_suite(
    app: App,
    cfg: ContextConfig,
    seed: u64,
    requests: u64,
    cold: bool,
) -> Vec<(&'static str, BenignChaosReport)> {
    let mut checkpoint = (!cold).then(|| deploy_benign(app, cfg).snapshot());
    benign_schedules(seed)
        .into_iter()
        .map(|(label, schedule)| {
            let world = match &mut checkpoint {
                Some(ck) => World::restore(ck),
                None => deploy_benign(app, cfg),
            };
            (label, drive_benign(world, app, schedule, requests))
        })
        .collect()
}

/// The benign half's schedule families: the sparse substrate chaos mix
/// plus the app-state flip family (the SFP dual — one bit of the app's
/// own state flips at every monitor trap).
pub fn benign_schedules(seed: u64) -> Vec<(&'static str, FaultSchedule)> {
    vec![
        ("mix", FaultSchedule::chaos(seed, 7)),
        (
            "app-flip",
            FaultSchedule::new(seed).with(
                FaultKind::AppStateFlip,
                Trigger::TrapRange {
                    from: 1,
                    to: u64::MAX,
                },
            ),
        ),
    ]
}

/// Drives `requests` lenient requests against a booted world, with
/// `schedule` installed before the first request.
fn drive_benign(
    mut world: World,
    app: App,
    schedule: FaultSchedule,
    requests: u64,
) -> BenignChaosReport {
    world.install_faults(schedule);

    let request: &[u8] = match app {
        App::Webserve => b"GET /index.html HTTP/1.1\r\nHost: chaos\r\n\r\n",
        App::Dbkv => b"NEWORDER 1 17 3\n",
        // The ftpd control banner + USER round-trip exercises the same
        // accept/read/write trap mix as a download preamble.
        App::Ftpd => b"USER chaos\n",
    };
    let mut served = 0u64;
    let mut attempted = 0u64;
    for _ in 0..requests {
        if world.alive_count() == 0 {
            break;
        }
        attempted += 1;
        let Some(conn) = world.net_connect(app.port()) else {
            // Listener gone or backlog full: give the world a slice and
            // move on; a killed server simply stops serving.
            world.run(SLICE);
            continue;
        };
        world.net_send(conn, request);
        let mut got = false;
        for _ in 0..32 {
            world.run(SLICE);
            if !world.net_recv(conn).is_empty() {
                got = true;
                break;
            }
            if world.alive_count() == 0 {
                break;
            }
        }
        if got {
            served += 1;
        }
        world.net_close(conn);
    }
    // Let in-flight denials and exits settle.
    world.run(20_000_000);

    BenignChaosReport {
        app,
        served,
        attempted,
        faults_fired: world.fault_log().len() as u64,
        survived: world.alive_count() > 0,
        stats: monitor_stats(&mut world),
    }
}

/// Outcome of one attack-under-faults run.
#[derive(Debug, Clone)]
pub struct AttackChaosReport {
    /// Table 6 row id.
    pub id: u32,
    /// Scenario name.
    pub name: String,
    /// Schedule label (fault class driven).
    pub schedule: &'static str,
    /// PRNG seed of the schedule.
    pub seed: u64,
    /// Trap count of the calibration (fault-free) run.
    pub clean_traps: u64,
    /// Faults that actually fired.
    pub faults_fired: u64,
    /// Defense/success classification of the faulted run.
    pub outcome: RunOutcome,
    /// Final monitor statistics.
    pub stats: Option<MonitorStats>,
    /// Structured deny records from the faulted run, for fault↔deny joins.
    pub deny_records: Vec<DenyRecord>,
    /// `(world_trap, access class label)` of every fault that fired inside
    /// a trap that also produced a deny record — the provenance join the
    /// chaos assertions consume.
    pub fault_deny_joins: Vec<(u64, &'static str)>,
    /// Flight-recorder dumps the world captured on ladder-rung
    /// transitions and escalation bursts during the faulted run.
    pub flight_dumps: Vec<FlightDump>,
}

impl AttackChaosReport {
    /// The fail-closed invariant: the malicious effect must not have
    /// happened. (The *defense label* may legitimately change — e.g. an
    /// AI deny becoming an FC deny when the substrate is down — but a
    /// fault must never buy the attacker a success.)
    pub fn attack_contained(&self) -> bool {
        !self.outcome.succeeded
    }

    /// The flight-recorder join invariant: every deny record carries a
    /// non-empty ring dump whose newest entry is the denied trap itself,
    /// still marked in-flight (the ring settles the final verdict only
    /// after the monitor returns).
    pub fn denies_carry_flight(&self) -> bool {
        self.deny_records.iter().all(|d| {
            d.flight.last().is_some_and(|e| {
                e.trap == d.trap_seq && e.tier == 2 && e.verdict == flight_verdict::PENDING
            })
        })
    }
}

/// The attack scripts' own liveness expectations (`attacks::env`): each
/// assumes the victim is still serving while the attack stages. A faulted
/// trap *denies* — i.e. kills — the process it interrupts, so a chaos
/// replay can legitimately pull a worker out from under the script. That
/// is a fully contained outcome (the malicious syscall never ran), not a
/// monitor defect. Any panic **not** in this list propagates: the suite
/// still fails on a genuine monitor panic.
const HARNESS_LIVENESS: &[&str] = &[
    "victim pid",
    "victim listener bound",
    "a worker parked reading our connection",
    "a process parked in accept",
];

/// Runs `scenario.attack`, absorbing only harness-liveness panics.
/// Returns the panic message when staging was cut short by a fault.
fn stage(scenario: &Scenario, env: &mut AttackEnv) -> Option<String> {
    let hook = std::panic::take_hook();
    // Silence the default hook for the duration: an absorbed liveness
    // panic would otherwise spray a backtrace per chaos replay.
    std::panic::set_hook(Box::new(|_| {}));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (scenario.attack)(env)));
    std::panic::set_hook(hook);
    match r {
        Ok(()) => None,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if HARNESS_LIVENESS.iter().any(|h| msg.contains(h)) {
                Some(msg)
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

/// Everything one attack replay produced.
struct AttackRun {
    outcome: RunOutcome,
    traps: u64,
    fired: u64,
    stats: Option<MonitorStats>,
    deny_records: Vec<DenyRecord>,
    fault_deny_joins: Vec<(u64, &'static str)>,
    flight_dumps: Vec<FlightDump>,
}

/// Runs `scenario` under `cfg` with an optional fault schedule installed
/// right after boot (one cold deploy per call).
fn run_attack(
    scenario: &Scenario,
    cfg: ContextConfig,
    schedule: Option<FaultSchedule>,
) -> AttackRun {
    let env = AttackEnv::deploy(scenario.victim, Some(cfg), scenario.extended_set, false);
    run_attack_in(scenario, env, schedule)
}

/// Stages and settles `scenario` against an already-deployed environment
/// — freshly booted or warm-forked from a [`bastion_attacks::env::DeployCheckpoint`].
fn run_attack_in(
    scenario: &Scenario,
    mut env: AttackEnv,
    schedule: Option<FaultSchedule>,
) -> AttackRun {
    // Install even for calibration: an empty schedule injects nothing but
    // counts traps, pinning the window for the chaos replay.
    env.world
        .install_faults(schedule.unwrap_or_else(|| FaultSchedule::new(0)));
    let staging_failure = stage(scenario, &mut env);
    env.settle();
    let outcome = RunOutcome {
        defense: env.defense_fired(),
        // An attack whose staging was cut short by a fault never issued
        // its malicious syscall; evaluating the success probe against the
        // half-staged world could only mis-report.
        succeeded: staging_failure.is_none() && (scenario.success)(&env),
    };
    let traps = env.world.fault_trap_count();
    let faults: Vec<_> = env.world.fault_log().to_vec();
    let flight_dumps = env.world.flight_dumps().to_vec();
    let (stats, deny_records) = match monitor_report(&mut env.world) {
        Some((s, d)) => (Some(s), d),
        None => (None, Vec::new()),
    };
    // Join: faults that fired inside a trap that was then denied.
    let fault_deny_joins = faults
        .iter()
        .filter(|f| deny_records.iter().any(|d| d.trap_seq == f.world_trap))
        .map(|f| (f.world_trap, f.class.label()))
        .collect();
    AttackRun {
        outcome,
        traps,
        fired: faults.len() as u64,
        stats,
        deny_records,
        fault_deny_joins,
        flight_dumps,
    }
}

/// Fault-free reference run: the trap count that calibrates the chaos
/// window for `scenario` under `cfg`.
pub fn calibrate(scenario: &Scenario, cfg: ContextConfig) -> u64 {
    run_attack(scenario, cfg, None).traps
}

/// The per-fault-class schedules of the chaos matrix, all targeting the
/// calibrated final-trap window (where the attack's own syscalls trap).
pub fn chaos_schedules(seed: u64, clean_traps: u64) -> Vec<(&'static str, FaultSchedule)> {
    // Centre the window on the clean run's final trap: for a blocked
    // attack that is the verification of the malicious syscall itself —
    // the worst case for the monitor. The trap before it is included so
    // schedules also exercise staging-infrastructure faults (a denied
    // serving worker, which the driver tolerates as a contained outcome).
    let to = clean_traps.max(1);
    let from = to.saturating_sub(1).max(1);
    let window = |kind| FaultSchedule::new(seed).with(kind, Trigger::TrapRange { from, to });
    vec![
        ("mix", window(FaultKind::Mix)),
        ("read-error", window(FaultKind::ReadError)),
        ("torn-read", window(FaultKind::TornRead)),
        ("frame-corrupt", window(FaultKind::FrameCorrupt)),
        ("shadow-flip", window(FaultKind::ShadowBitFlip)),
        ("stall", window(FaultKind::Stall { cycles: 120_000 })),
        ("app-flip", window(FaultKind::AppStateFlip)),
    ]
}

/// Runs the full chaos matrix for one scenario, warm-forked: one cold
/// deploy, then calibration and every `seeds` × [`chaos_schedules`] cell
/// restores from the copy-on-write checkpoint. See [`attack_chaos_mode`]
/// for the cold variant (byte-identical reports, one deploy per cell).
pub fn attack_chaos(
    scenario: &Scenario,
    cfg: ContextConfig,
    seeds: &[u64],
) -> Vec<AttackChaosReport> {
    attack_chaos_mode(scenario, cfg, seeds, false)
}

/// [`attack_chaos`] with an explicit replay mode: `cold` re-deploys the
/// victim for every cell (the pre-checkpoint behaviour), warm forks every
/// cell from one post-boot checkpoint. Reports are byte-identical across
/// modes — worlds are deterministic and the checkpoint is taken exactly
/// where a cold deploy hands the world to the cell — which CI gates.
pub fn attack_chaos_mode(
    scenario: &Scenario,
    cfg: ContextConfig,
    seeds: &[u64],
    cold: bool,
) -> Vec<AttackChaosReport> {
    let checkpoint = (!cold).then(|| {
        AttackEnv::deploy(scenario.victim, Some(cfg), scenario.extended_set, false).checkpoint()
    });
    let cell = |schedule: Option<FaultSchedule>| match &checkpoint {
        Some(ck) => run_attack_in(scenario, AttackEnv::restore(ck), schedule),
        None => run_attack(scenario, cfg, schedule),
    };
    let clean_traps = cell(None).traps;
    let mut reports = Vec::new();
    for &seed in seeds {
        for (label, schedule) in chaos_schedules(seed, clean_traps) {
            let run = cell(Some(schedule));
            reports.push(AttackChaosReport {
                id: scenario.id,
                name: scenario.name.clone(),
                schedule: label,
                seed,
                clean_traps,
                faults_fired: run.fired,
                outcome: run.outcome,
                stats: run.stats,
                deny_records: run.deny_records,
                fault_deny_joins: run.fault_deny_joins,
                flight_dumps: run.flight_dumps,
            });
        }
    }
    reports
}
