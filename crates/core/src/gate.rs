//! Perf-regression gate: diff re-measured hot-path numbers against the
//! checked-in benchmark baselines (`BENCH_interp.json`,
//! `BENCH_fleet.json`) with explicit tolerance bands.
//!
//! The policy mirrors the repo's determinism contract. Quantities the
//! simulator fully controls — virtual cycles, trap counts — are
//! **exact**: any drift means a code change silently altered the modeled
//! cost of a hot path, which is precisely what the gate exists to catch.
//! Derived per-trap ratios get a small relative band (rounding under
//! workload recalibration), and nothing wall-clock-based is gated here —
//! wall time on shared CI is noise, and the bench bins already report it
//! separately.
//!
//! The comparison logic is pure (`GateCheck`/`GateReport` over parsed
//! baselines), so the injected-regression test can prove the gate
//! actually fails when a baseline and a measurement disagree — a gate
//! that cannot fail is decoration. The `perf_gate` bench bin owns the
//! re-measuring and feeds this module.

use serde::{Deserialize, Serialize};

/// One gated comparison: a named measurement against its baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateCheck {
    /// What is being compared (e.g. `webserve.virtual_cycles`).
    pub name: String,
    /// The checked-in baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub measured: f64,
    /// Allowed relative regression in percent; `0` means byte-exact.
    pub tolerance_pct: f64,
    /// Whether the measurement is within the band.
    pub ok: bool,
}

/// Exact check for deterministic virtual quantities: any difference —
/// faster or slower — fails, because deterministic counts never drift.
pub fn check_exact(name: impl Into<String>, baseline: u64, measured: u64) -> GateCheck {
    GateCheck {
        name: name.into(),
        baseline: baseline as f64,
        measured: measured as f64,
        tolerance_pct: 0.0,
        ok: baseline == measured,
    }
}

/// One-sided regression band: the measurement may improve freely but may
/// not exceed `baseline * (1 + tolerance_pct/100)`.
pub fn check_max_regression(
    name: impl Into<String>,
    baseline: f64,
    measured: f64,
    tolerance_pct: f64,
) -> GateCheck {
    let limit = baseline * (1.0 + tolerance_pct / 100.0);
    GateCheck {
        name: name.into(),
        baseline,
        measured,
        tolerance_pct,
        ok: baseline.is_finite() && measured.is_finite() && measured <= limit,
    }
}

/// Two-sided band for quantities that must stay *near* the baseline in
/// either direction (e.g. sketch-vs-exact percentile error).
pub fn check_within(
    name: impl Into<String>,
    baseline: f64,
    measured: f64,
    tolerance_pct: f64,
) -> GateCheck {
    let band = baseline.abs() * tolerance_pct / 100.0;
    GateCheck {
        name: name.into(),
        baseline,
        measured,
        tolerance_pct,
        ok: baseline.is_finite() && measured.is_finite() && (measured - baseline).abs() <= band,
    }
}

/// Boolean invariant rendered in the same table (1 = holds).
pub fn check_flag(name: impl Into<String>, expected: bool, observed: bool) -> GateCheck {
    GateCheck {
        name: name.into(),
        baseline: f64::from(u8::from(expected)),
        measured: f64::from(u8::from(observed)),
        tolerance_pct: 0.0,
        ok: expected == observed,
    }
}

/// The gate's verdict: every check, pass or fail, in evaluation order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GateReport {
    /// All comparisons made.
    pub checks: Vec<GateCheck>,
}

impl GateReport {
    /// Appends one check.
    pub fn push(&mut self, check: GateCheck) {
        self.checks.push(check);
    }

    /// Whether every check passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The failing checks, in order.
    #[must_use]
    pub fn failures(&self) -> Vec<&GateCheck> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }

    /// Fixed-width table for CI logs: one line per check plus a verdict.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>16} {:>16} {:>7}  verdict",
            "check", "baseline", "measured", "tol%"
        );
        for c in &self.checks {
            let _ = writeln!(
                out,
                "{:<44} {:>16} {:>16} {:>7}  {}",
                c.name,
                trim_float(c.baseline),
                trim_float(c.measured),
                trim_float(c.tolerance_pct),
                if c.ok { "pass" } else { "FAIL" }
            );
        }
        let fails = self.failures().len();
        let _ = writeln!(
            out,
            "{} checks, {} failed{}",
            self.checks.len(),
            fails,
            if fails == 0 { " — gate passes" } else { "" }
        );
        out
    }
}

/// Renders integral floats without a trailing `.0`, others to 4 places.
fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

// ---- checked-in baseline parsing ----

/// The per-app row of `BENCH_interp.json` the gate consumes (extra fields
/// in the file are ignored).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppBaseline {
    /// Application id (`webserve`, `dbkv`, `ftpd`).
    pub app: String,
    /// Protection label the row was measured under.
    pub protection: String,
    /// Deterministic virtual cycles of the workload run.
    pub virtual_cycles: u64,
    /// Deterministic trap count.
    pub traps: u64,
    /// Monitor cycles per trap excluding init (drifts only if hot-path
    /// verification cost changes).
    pub steady_cycles_per_trap: f64,
}

/// The subset of `BENCH_interp.json` the gate reads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterpBaseline {
    /// Per-app deterministic rows.
    pub apps: Vec<AppBaseline>,
}

impl InterpBaseline {
    /// Looks an app row up by id.
    #[must_use]
    pub fn app(&self, id: &str) -> Option<&AppBaseline> {
        self.apps.iter().find(|a| a.app == id)
    }
}

/// The subset of `BENCH_fleet.json` the gate reads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetBaseline {
    /// Whether every worker count produced a byte-identical report when
    /// the baseline was captured (must still hold when re-measured).
    pub all_byte_identical: bool,
}

/// The subset of `BENCH_serve.json` the gate reads. The serve schedule is
/// fully deterministic (seeded mix, virtual clocks, jobs-invariant
/// sharding), so *every* gated quantity is exact — including the latency
/// quartet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBaseline {
    /// Tenants admitted by the queue.
    pub admitted: u64,
    /// Tenants that completed their whole workload.
    pub completed: u64,
    /// Tenants evicted early.
    pub evicted: u64,
    /// Requests served across the fleet.
    pub total_requests: u64,
    /// Traps across the fleet.
    pub total_traps: u64,
    /// Sum of tenant world clocks.
    pub fleet_cycles: u64,
    /// Fleet request-latency quartet.
    pub request_latency: ServeLatencyBaseline,
}

/// The latency quartet of a serve baseline lane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeLatencyBaseline {
    /// Observations.
    pub count: u64,
    /// Median (cycles).
    pub p50: u64,
    /// 95th percentile (cycles).
    pub p95: u64,
    /// 99th percentile (cycles).
    pub p99: u64,
    /// 99.9th percentile (cycles).
    pub p999: u64,
}

/// Parses the checked-in `BENCH_interp.json`.
///
/// # Errors
/// Fails with the parse/shape error message when the file does not carry
/// the expected fields.
pub fn parse_interp_baseline(json: &str) -> Result<InterpBaseline, String> {
    serde_json::from_str(json).map_err(|e| format!("BENCH_interp.json: {e:?}"))
}

/// Parses the checked-in `BENCH_fleet.json`.
///
/// # Errors
/// Fails with the parse/shape error message on a malformed file.
pub fn parse_fleet_baseline(json: &str) -> Result<FleetBaseline, String> {
    serde_json::from_str(json).map_err(|e| format!("BENCH_fleet.json: {e:?}"))
}

/// Parses the checked-in `BENCH_serve.json`.
///
/// # Errors
/// Fails with the parse/shape error message on a malformed file.
pub fn parse_serve_baseline(json: &str) -> Result<ServeBaseline, String> {
    serde_json::from_str(json).map_err(|e| format!("BENCH_serve.json: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
        "bench": "interp",
        "apps": [
            {"app": "webserve", "protection": "CET+CT+CF+AI",
             "metric": 197.6, "virtual_cycles": 4747561, "traps": 1066,
             "cycles_per_trap": 128.49, "steady_cycles_per_trap": 124.42}
        ]
    }"#;

    #[test]
    fn baseline_subset_parses_with_extra_fields() {
        let b = parse_interp_baseline(BASELINE).unwrap();
        let app = b.app("webserve").unwrap();
        assert_eq!(app.virtual_cycles, 4_747_561);
        assert_eq!(app.traps, 1066);
        assert!(b.app("nosuch").is_none());
        let f = parse_fleet_baseline(r#"{"bench":"fleet","all_byte_identical":true}"#).unwrap();
        assert!(f.all_byte_identical);
        assert!(parse_interp_baseline("{").is_err());
        assert!(parse_fleet_baseline("[]").is_err());
        let s = parse_serve_baseline(
            r#"{"bench":"serve","tenants":16,"admitted":16,"completed":15,
                "evicted":1,"total_requests":384,"total_traps":9000,
                "fleet_cycles":123456,
                "request_latency":{"count":384,"p50":10,"p95":20,"p99":30,"p999":40}}"#,
        )
        .unwrap();
        assert_eq!(s.admitted, 16);
        assert_eq!(s.request_latency.p999, 40);
        assert!(parse_serve_baseline("nope").is_err());
    }

    #[test]
    fn gate_fails_on_injected_regression() {
        let b = parse_interp_baseline(BASELINE).unwrap();
        let app = b.app("webserve").unwrap();
        // Clean re-measurement: every check passes.
        let mut clean = GateReport::default();
        clean.push(check_exact(
            "webserve.virtual_cycles",
            app.virtual_cycles,
            4_747_561,
        ));
        clean.push(check_exact("webserve.traps", app.traps, 1066));
        clean.push(check_max_regression(
            "webserve.steady_cycles_per_trap",
            app.steady_cycles_per_trap,
            124.42,
            2.0,
        ));
        assert!(clean.passed(), "{}", clean.render());

        // Injected regression: one extra virtual cycle must fail the gate.
        let mut tampered = GateReport::default();
        tampered.push(check_exact(
            "webserve.virtual_cycles",
            app.virtual_cycles,
            app.virtual_cycles + 1,
        ));
        assert!(!tampered.passed());
        assert_eq!(tampered.failures().len(), 1);
        assert!(tampered.render().contains("FAIL"));

        // A hot path 2.1% slower than baseline breaches the 2% band; 1.9%
        // does not; a free improvement always passes.
        let base = app.steady_cycles_per_trap;
        assert!(!check_max_regression("steady", base, base * 1.021, 2.0).ok);
        assert!(check_max_regression("steady", base, base * 1.019, 2.0).ok);
        assert!(check_max_regression("steady", base, base * 0.5, 2.0).ok);
    }

    #[test]
    fn two_sided_band_and_flags() {
        assert!(check_within("err", 100.0, 101.9, 2.0).ok);
        assert!(!check_within("err", 100.0, 102.1, 2.0).ok);
        assert!(!check_within("err", 100.0, 97.0, 2.0).ok);
        assert!(check_flag("byte_identical", true, true).ok);
        assert!(!check_flag("byte_identical", true, false).ok);
        let json = serde_json::to_string(&check_flag("x", true, true)).unwrap();
        assert!(json.contains("\"ok\":true"), "{json}");
    }
}
