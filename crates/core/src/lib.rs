//! # bastion — System Call Integrity
//!
//! A full reproduction of *"Protect the System Call, Protect (Most of) the
//! World with BASTION"* (ASPLOS 2023) as a self-contained Rust library.
//!
//! BASTION enforces the legitimate use of sensitive system calls through
//! three contexts — **Call-Type**, **Control-Flow**, and **Argument
//! Integrity** — implemented as a compiler pass plus a runtime monitor.
//! This crate ties the whole reproduction together:
//!
//! * [`Deployment`] — compile a program (MiniC source or IR) under the
//!   BASTION compiler and launch it, protected, in a simulated world;
//! * [`Protection`] — the defense configurations of Figure 3 (vanilla,
//!   LLVM CFI, CET, CET+CT, CET+CT+CF, CET+CT+CF+AI) plus the Table 7
//!   extended-scope variants;
//! * [`harness`] — runs the paper's three workload applications under any
//!   protection and reports the paper's metrics;
//! * [`fleet`] — deterministic parallel runner sharding the chaos matrix,
//!   Table 6, and the benchmarks across OS threads with byte-identical
//!   aggregate reports for any worker count;
//! * [`serve`] — `bastiond`, the persistent supervisor multiplexing
//!   hundreds of protected tenant worlds under a round-robin quantum
//!   scheduler with live fleet-level telemetry;
//! * re-exports of every layer (`ir`, `minic`, `analysis`, `compiler`,
//!   `vm`, `kernel`, `monitor`, `defenses`, `apps`, `attacks`).
//!
//! ## Quickstart
//!
//! ```
//! use bastion::{Deployment, Protection};
//!
//! # fn main() -> Result<(), bastion::Error> {
//! let src = r#"
//!     long main() {
//!         long arena;
//!         arena = mmap(0, 4096, 3, 0x21, 0 - 1, 0);
//!         return arena > 0;
//!     }
//! "#;
//! let deployment = Deployment::from_minic("demo", &[src])?;
//! let mut world = deployment.world();
//! let pid = deployment.launch(&mut world, &Protection::full());
//! world.run(10_000_000);
//! let proc = world.proc(pid).unwrap();
//! assert!(matches!(
//!     proc.exit,
//!     Some(bastion::kernel::ExitReason::Exited(1))
//! ));
//! # Ok(())
//! # }
//! ```

pub mod chaos;
pub mod fleet;
pub mod gate;
pub mod harness;
pub mod protection;
pub mod serve;

pub use chaos::{
    attack_chaos, attack_chaos_mode, benign_chaos, benign_chaos_suite, AttackChaosReport,
    BenignChaosReport,
};
pub use fleet::{run_ordered, run_ordered_traced, ChaosMatrixOutcome, FleetTelemetry};
pub use gate::{GateCheck, GateReport};
pub use harness::{run_app_benchmark, run_extended_scope_pair, AppBenchmark, WorkloadSize};
pub use protection::Protection;
pub use serve::{run_serve, serve_with_specs, ServeConfig, ServeReport, ServeRun, TenantKind};

/// Re-export: static analyses.
pub use bastion_analysis as analysis;
/// Re-export: the workload applications.
pub use bastion_apps as apps;
/// Re-export: the attack framework.
pub use bastion_attacks as attacks;
/// Re-export: the BASTION compiler pass.
pub use bastion_compiler as compiler;
/// Re-export: baseline defenses.
pub use bastion_defenses as defenses;
/// Re-export: the IR layer.
pub use bastion_ir as ir;
/// Re-export: the simulated kernel.
pub use bastion_kernel as kernel;
/// Re-export: the MiniC front-end.
pub use bastion_minic as minic;
/// Re-export: the runtime monitor.
pub use bastion_monitor as monitor;
/// Re-export: the telemetry layer (span tracing, metrics, deny audit log).
pub use bastion_obs as obs;
/// Re-export: the process VM.
pub use bastion_vm as vm;

use bastion_compiler::{BastionCompiler, ContextMetadata};
use bastion_kernel::{Pid, World};
use bastion_vm::{CostModel, Image, Machine};
use std::fmt;
use std::sync::Arc;

/// Any pipeline error.
#[derive(Debug)]
pub enum Error {
    /// MiniC front-end failure.
    Front(bastion_minic::FrontError),
    /// IR validation failure.
    Validate(bastion_ir::ValidateError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Front(e) => write!(f, "front-end: {e}"),
            Error::Validate(e) => write!(f, "validation: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<bastion_minic::FrontError> for Error {
    fn from(e: bastion_minic::FrontError) -> Self {
        Error::Front(e)
    }
}

impl From<bastion_ir::ValidateError> for Error {
    fn from(e: bastion_ir::ValidateError) -> Self {
        Error::Validate(e)
    }
}

/// A program compiled under BASTION and ready to launch.
///
/// Holds both the instrumented image and the context metadata; launching
/// installs the seccomp filter and attaches the runtime monitor according
/// to the chosen [`Protection`].
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The loaded (instrumented) program image.
    pub image: Arc<Image>,
    /// The compiler-generated context metadata.
    pub metadata: ContextMetadata,
    /// Cost model used for machines and worlds.
    pub cost: CostModel,
}

impl Deployment {
    /// Compiles MiniC sources (libc prelude included) under the default
    /// sensitive set.
    ///
    /// # Errors
    /// Propagates front-end and validation errors.
    pub fn from_minic(name: &str, sources: &[&str]) -> Result<Self, Error> {
        let module = bastion_minic::compile_program(name, sources)?;
        Self::from_module(module)
    }

    /// Compiles an IR module under the default sensitive set.
    ///
    /// # Errors
    /// Propagates validation errors.
    pub fn from_module(module: bastion_ir::Module) -> Result<Self, Error> {
        Self::with_compiler(module, &BastionCompiler::new())
    }

    /// Compiles with an explicit compiler configuration (e.g. the Table 7
    /// extended sensitive set).
    ///
    /// # Errors
    /// Propagates validation errors.
    pub fn with_compiler(
        module: bastion_ir::Module,
        compiler: &BastionCompiler,
    ) -> Result<Self, Error> {
        let out = compiler.compile(module)?;
        let image = Arc::new(Image::load(out.module)?);
        Ok(Deployment {
            image,
            metadata: out.metadata,
            cost: CostModel::default(),
        })
    }

    /// Overrides the cost model (e.g. the §11.2 in-kernel monitor ablation).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// A fresh world with this deployment's cost model.
    pub fn world(&self) -> World {
        World::new(self.cost)
    }

    /// Spawns the program in `world` with the given protection: applies
    /// CET / LLVM-CFI hardening to the machine, and (when configured)
    /// installs the BASTION seccomp filter and monitor.
    pub fn launch(&self, world: &mut World, protection: &Protection) -> Pid {
        let mut machine = Machine::new(self.image.clone(), self.cost);
        protection.hardening.apply(&mut machine);
        let pid = world.spawn(machine);
        if let Some(cfg) = protection.monitor {
            bastion_monitor::protect(world, pid, &self.image, &self.metadata, cfg);
        }
        pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_kernel::ExitReason;

    #[test]
    fn deployment_pipeline_end_to_end() {
        let d = Deployment::from_minic("t", &["long main() { return getpid(); }"]).unwrap();
        let mut world = d.world();
        let pid = d.launch(&mut world, &Protection::full());
        world.run(10_000_000);
        // getpid is not sensitive: allowed without a trap.
        assert_eq!(world.trap_count, 0);
        let p = world.proc(pid).unwrap();
        assert_eq!(p.exit, Some(ExitReason::Exited(1)));
    }

    #[test]
    fn vanilla_launch_has_no_monitor() {
        let d = Deployment::from_minic("t", &["long main() { return 0; }"]).unwrap();
        let mut world = d.world();
        let pid = d.launch(&mut world, &Protection::vanilla());
        world.run(10_000_000);
        assert!(world.proc(pid).unwrap().seccomp.is_none());
    }

    #[test]
    fn sensitive_syscall_traps_under_full_protection() {
        let d = Deployment::from_minic("t", &["long main() { return socket(2, 1, 0); }"]).unwrap();
        let mut world = d.world();
        let pid = d.launch(&mut world, &Protection::full());
        world.run(10_000_000);
        assert_eq!(world.trap_count, 1);
        let p = world.proc(pid).unwrap();
        assert!(matches!(p.exit, Some(ExitReason::Exited(_))));
    }
}
