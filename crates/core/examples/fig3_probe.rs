use bastion::apps::ALL_APPS;
use bastion::harness::{run_figure3_row, WorkloadSize};
use bastion_vm::CostModel;
fn main() {
    for app in ALL_APPS {
        let (base, cols) = run_figure3_row(app, &WorkloadSize::standard(), CostModel::default());
        print!("{:22} base={:10.2}", app.label(), base.metric);
        for c in &cols {
            print!(" | {} {:+.2}%", c.protection, c.overhead_vs(&base));
        }
        println!();
    }
}
