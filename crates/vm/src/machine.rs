//! Architectural state of one simulated process.
//!
//! The split between *registers* and *memory* is load-bearing for the whole
//! reproduction: virtual registers live in native frames and cannot be
//! corrupted (the paper's threat model gives attackers arbitrary memory
//! read/write, not register control), while return addresses, saved frame
//! pointers, and every named variable live in simulated memory where the
//! attack framework can overwrite them byte-wise.
//!
//! Stack frame layout (grows down):
//!
//! ```text
//! fp + 8   return address
//! fp       saved caller fp
//! fp - frame_size .. fp     slot area (params spilled first, then locals)
//! ```
//!
//! `ret` trusts *memory*, so a corrupted return address redirects control
//! (ROP); the optional CET shadow stack (a protected native vector, like
//! the hardware's) detects the mismatch when enabled.

use crate::cost::CostModel;
use crate::image::Image;
use crate::mem::{MemIo, Memory, OutOfBounds};
use bastion_ir::{CodeAddr, FuncId, InstLoc, Operand, Reg, SlotId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A native execution frame: the register file of one activation.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Function this frame executes.
    pub func: FuncId,
    /// Virtual register file.
    pub regs: Vec<u64>,
    /// Register in the *caller* that receives the return value.
    pub ret_dst: Option<Reg>,
}

/// LLVM-CFI policy: permitted indirect-call targets (entry address → arity).
#[derive(Debug, Clone, Default)]
pub struct CfiPolicy {
    /// Allowed targets: function entry address → declared arity.
    pub allowed: HashMap<u64, u8>,
}

impl CfiPolicy {
    /// Whether an indirect call with `argc` arguments may land on `target`.
    pub fn allows(&self, target: u64, argc: usize) -> bool {
        self.allowed.get(&target) == Some(&(argc as u8))
    }
}

/// A hardware-level fault terminating the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Access to unmapped memory.
    Mem(OutOfBounds),
    /// Integer division by zero.
    DivByZero,
    /// Control transferred to a non-code address.
    BadJump(u64),
    /// CET shadow-stack mismatch (#CP fault).
    ControlProtection {
        /// Shadow-stack value (`None` if the shadow stack underflowed).
        expected: Option<u64>,
        /// Return address found in memory.
        got: u64,
    },
    /// LLVM-CFI indirect-call check failed.
    CfiViolation {
        /// The attempted target address.
        target: u64,
        /// Arguments at the callsite.
        argc: usize,
    },
    /// Stack exhausted.
    StackOverflow,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Mem(e) => write!(f, "segmentation fault: {e}"),
            Fault::DivByZero => write!(f, "division by zero"),
            Fault::BadJump(a) => write!(f, "jump to non-code address {a:#x}"),
            Fault::ControlProtection { expected, got } => write!(
                f,
                "control-protection fault: shadow {expected:?} vs return {got:#x}"
            ),
            Fault::CfiViolation { target, argc } => {
                write!(f, "cfi violation: indirect call/{argc} to {target:#x}")
            }
            Fault::StackOverflow => write!(f, "stack overflow"),
        }
    }
}

/// The CPU + memory state of one process.
#[derive(Debug, Clone)]
pub struct Machine {
    /// The program image (shared, immutable).
    pub image: Arc<Image>,
    /// The process address space.
    pub mem: Memory,
    /// Virtual-time cost model.
    pub cost: CostModel,
    /// Current instruction.
    pub pc: InstLoc,
    /// Stack pointer.
    pub sp: u64,
    /// Frame pointer.
    pub fp: u64,
    /// Native frames (register files).
    pub frames: Vec<Frame>,
    /// Shadow-region segment base ($gs).
    pub gs_base: u64,
    /// Virtual cycle counter.
    pub cycles: u64,
    /// Last trapped syscall: number.
    pub trap_nr: u32,
    /// Last trapped syscall: argument registers (rdi..r9).
    pub trap_args: [u64; 6],
    /// Last trapped syscall: address of the `syscall` instruction (rip).
    pub trap_pc: u64,
    /// Where the pending syscall's return value goes.
    pending_ret: Option<Reg>,
    /// Reusable argument buffer for the predecoded call path (avoids a
    /// per-call allocation; not part of the architectural state).
    pub(crate) call_scratch: Vec<u64>,
    /// Recycled register files for popped frames (avoids a heap
    /// allocation per call; not part of the architectural state).
    frame_pool: Vec<Vec<u64>>,
    /// CET shadow stack, when the defense is enabled.
    pub shadow_stack: Option<Vec<u64>>,
    /// LLVM-CFI policy, when the baseline defense is enabled.
    pub cfi: Option<CfiPolicy>,
    /// Exit status once the process has terminated.
    pub exited: Option<i64>,
}

impl Machine {
    /// Creates a process at `main`'s entry with a fresh address space.
    pub fn new(image: Arc<Image>, cost: CostModel) -> Self {
        let mem = image.fresh_memory();
        let gs_base = image.shadow.base;
        let entry = image.entry;
        let mut m = Machine {
            image,
            mem,
            cost,
            pc: InstLoc {
                func: entry,
                block: bastion_ir::BlockId(0),
                inst: 0,
            },
            sp: 0,
            fp: 0,
            frames: Vec::new(),
            gs_base,
            cycles: 0,
            trap_nr: 0,
            trap_args: [0; 6],
            trap_pc: 0,
            pending_ret: None,
            call_scratch: Vec::new(),
            frame_pool: Vec::new(),
            shadow_stack: None,
            cfi: None,
            exited: None,
        };
        // Build main's initial frame: null return address and saved fp.
        let top = m.image.stack_top;
        m.sp = top - 8;
        m.mem.write_u64(m.sp, 0).expect("stack mapped");
        m.sp -= 8;
        m.mem.write_u64(m.sp, 0).expect("stack mapped");
        m.fp = m.sp;
        let fi = &m.image.frame_info[entry.index()];
        m.sp -= fi.frame_size;
        let regs = vec![0u64; m.image.module.func(entry).reg_count as usize];
        m.frames.push(Frame {
            func: entry,
            regs,
            ret_dst: None,
        });
        m
    }

    /// Enables the CET shadow stack (`-fcf-protection=full` analogue).
    pub fn enable_cet(&mut self) {
        self.shadow_stack = Some(Vec::new());
    }

    /// Enables the LLVM-CFI baseline with the given policy.
    pub fn enable_cfi(&mut self, policy: CfiPolicy) {
        self.cfi = Some(policy);
    }

    /// Flips one bit of *application* state — a live frame register, a word
    /// of the current stack frame (locals, saved fp, return address), or a
    /// word of the $gs shadow region backing shadow-bound locals — selected
    /// by the seeded draws `a`/`b`. This is the dual of the substrate faults
    /// the kernel injector applies to the monitor's read path: it models an
    /// SFP-style soft error inside the protected app itself. Returns a
    /// stable label for the fault log.
    pub fn chaos_flip(&mut self, a: u64, b: u64) -> &'static str {
        let bit = (b >> 56) % 64;
        match a % 3 {
            0 if !self.frames.is_empty() => {
                let fi = (a / 3) as usize % self.frames.len();
                let regs = &mut self.frames[fi].regs;
                if !regs.is_empty() {
                    let ri = (b & 0xffff_ffff) as usize % regs.len();
                    regs[ri] ^= 1 << bit;
                    return "app_reg";
                }
                self.flip_stack_word(b, bit)
            }
            1 => self.flip_stack_word(b, bit),
            _ => {
                // A word inside the shadow region: corrupts a shadow-bound
                // local's duplicate copy or its checksum.
                let slots = crate::shadow::SHADOW_REGION_SIZE / 8;
                let addr = self.gs_base + 8 * ((b & 0xffff_ffff) % slots);
                self.flip_word_at(addr, bit);
                "app_shadow"
            }
        }
    }

    /// Flips `bit` of an 8-byte-aligned word in `[sp, fp + 16)`: the active
    /// frame's locals plus its saved frame pointer and return address.
    fn flip_stack_word(&mut self, b: u64, bit: u64) -> &'static str {
        let lo = self.sp & !7;
        let hi = (self.fp + 16).max(lo + 8);
        let slots = (hi - lo) / 8;
        let addr = lo + 8 * ((b & 0xffff_ffff) % slots);
        self.flip_word_at(addr, bit);
        "app_stack"
    }

    fn flip_word_at(&mut self, addr: u64, bit: u64) {
        let mut w = [0u8; 8];
        self.mem.read_unchecked(addr, &mut w);
        let v = u64::from_le_bytes(w) ^ (1 << bit);
        self.mem.write_unchecked(addr, &v.to_le_bytes());
    }

    /// The current frame.
    ///
    /// # Panics
    /// Panics if the process has fully unwound (use only while running).
    #[inline]
    pub fn frame(&self) -> &Frame {
        self.frames.last().expect("no active frame")
    }

    fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("no active frame")
    }

    /// Evaluates an operand against the current register file.
    #[inline]
    pub fn eval(&self, op: Operand) -> u64 {
        match op {
            Operand::Imm(v) => v as u64,
            Operand::Reg(r) => self.frame().regs[r.index()],
        }
    }

    /// Writes a register in the current frame.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        self.frame_mut().regs[r.index()] = v;
    }

    /// Runtime address of a slot in the current frame.
    pub fn slot_addr(&self, slot: SlotId) -> u64 {
        let fi = &self.image.frame_info[self.frame().func.index()];
        self.fp - fi.frame_size + fi.slot_offsets[slot.index()]
    }

    /// The code address of the current pc.
    pub fn pc_addr(&self) -> CodeAddr {
        self.image.layout.addr_of(self.pc)
    }

    /// Charges `c` virtual cycles.
    #[inline]
    pub fn charge(&mut self, c: u64) {
        self.cycles += c;
    }

    /// Advances pc to the next instruction in the block.
    pub fn advance(&mut self) {
        self.pc.inst += 1;
    }

    /// Performs the call sequence onto `target` (an instruction address —
    /// usually a function entry, but ROP/JOP may land mid-function).
    ///
    /// # Errors
    /// Faults on stack overflow, unmapped stack, or a non-code target.
    pub fn do_call(
        &mut self,
        target: CodeAddr,
        args: &[u64],
        ret_dst: Option<Reg>,
        retaddr: CodeAddr,
    ) -> Result<(), Fault> {
        let loc = self
            .image
            .layout
            .loc_of(target)
            .ok_or(Fault::BadJump(target.raw()))?;
        self.do_call_resolved(loc, args, ret_dst, retaddr)
    }

    /// [`Self::do_call`] with the target already resolved to an instruction
    /// location (the predecoded engine resolves direct-call targets at image
    /// load and indirect targets before calling in).
    ///
    /// # Errors
    /// Faults on stack overflow or an unmapped stack.
    pub fn do_call_resolved(
        &mut self,
        loc: InstLoc,
        args: &[u64],
        ret_dst: Option<Reg>,
        retaddr: CodeAddr,
    ) -> Result<(), Fault> {
        let callee = loc.func;
        let fi = &self.image.frame_info[callee.index()];
        if self.sp < self.image.stack_base + fi.frame_size + 64 {
            return Err(Fault::StackOverflow);
        }
        // Push return address and saved fp.
        self.sp -= 8;
        self.mem
            .write_u64(self.sp, retaddr.raw())
            .map_err(Fault::Mem)?;
        self.sp -= 8;
        self.mem.write_u64(self.sp, self.fp).map_err(Fault::Mem)?;
        self.fp = self.sp;
        self.sp -= fi.frame_size;
        // Spill arguments into parameter slots.
        let func = self.image.module.func(callee);
        let base = self.fp - fi.frame_size;
        for (i, &a) in args.iter().enumerate().take(func.params.len()) {
            let addr = base + fi.slot_offsets[i];
            self.mem.write_u64(addr, a).map_err(Fault::Mem)?;
        }
        if let Some(ss) = &mut self.shadow_stack {
            ss.push(retaddr.raw());
        }
        let nregs = func.reg_count as usize;
        let regs = self.fresh_regs(nregs);
        self.frames.push(Frame {
            func: callee,
            regs,
            ret_dst,
        });
        self.pc = loc;
        Ok(())
    }

    /// A zeroed register file, recycled from [`Self::frame_pool`] when one
    /// is available.
    fn fresh_regs(&mut self, n: usize) -> Vec<u64> {
        let mut regs = self.frame_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(n, 0);
        regs
    }

    /// Performs the return sequence, trusting the in-memory frame chain.
    /// Returns the process exit value when `main` returns.
    ///
    /// # Errors
    /// Faults on unmapped stack, CET mismatch, or a non-code return target.
    pub fn do_ret(&mut self, val: u64) -> Result<Option<i64>, Fault> {
        let saved_fp = self.mem.read_u64(self.fp).map_err(Fault::Mem)?;
        let retaddr = self.mem.read_u64(self.fp + 8).map_err(Fault::Mem)?;
        if let Some(ss) = &mut self.shadow_stack {
            let expected = ss.pop();
            if expected != Some(retaddr) {
                // main's sentinel return (0) with an empty shadow stack is
                // the legitimate process exit, not a violation.
                if !(retaddr == 0 && expected.is_none()) {
                    return Err(Fault::ControlProtection {
                        expected,
                        got: retaddr,
                    });
                }
            }
        }
        self.sp = self.fp + 16;
        self.fp = saved_fp;
        let popped = self.frames.pop().expect("ret without frame");
        let ret_dst = popped.ret_dst;
        if self.frame_pool.len() < 64 {
            self.frame_pool.push(popped.regs);
        }
        if retaddr == 0 {
            self.exited = Some(val as i64);
            return Ok(Some(val as i64));
        }
        let loc = self
            .image
            .layout
            .loc_of(CodeAddr(retaddr))
            .ok_or(Fault::BadJump(retaddr))?;
        match self.frames.last_mut() {
            Some(parent) if parent.func == loc.func => {
                if let Some(dst) = ret_dst {
                    parent.regs[dst.index()] = val;
                }
            }
            _ => {
                // ROP-style return into a foreign frame: synthesize a
                // register file so execution continues in the target
                // function's context over the attacker-controlled stack.
                let regs = self.fresh_regs(self.image.module.func(loc.func).reg_count as usize);
                self.frames.push(Frame {
                    func: loc.func,
                    regs,
                    ret_dst: None,
                });
            }
        }
        self.pc = loc;
        Ok(None)
    }

    /// Records the trapped syscall state (the registers the monitor reads).
    pub fn set_trap(&mut self, nr: u32, args: [u64; 6], dst: Reg) {
        self.trap_nr = nr;
        self.trap_args = args;
        self.trap_pc = self.pc_addr().raw();
        self.pending_ret = Some(dst);
    }

    /// Completes the pending syscall with `ret` and resumes after it.
    ///
    /// # Panics
    /// Panics if no syscall is pending.
    pub fn complete_syscall(&mut self, ret: u64) {
        let dst = self.pending_ret.take().expect("no pending syscall");
        self.set_reg(dst, ret);
        self.advance();
    }

    /// Whether a syscall is awaiting completion (blocked in the kernel).
    pub fn in_syscall(&self) -> bool {
        self.pending_ret.is_some()
    }

    /// Current call depth (native frames).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{Operand, Ty};

    fn machine() -> Machine {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.declare("callee", &[("x", Ty::I64)], Ty::I64);
        let mut f = mb.define(callee);
        let a = f.frame_addr(f.param_slot(0));
        let v = f.load(a);
        f.ret(Some(v.into()));
        f.finish();
        let mut f = mb.function("main", &[], Ty::I64);
        let r = f.call_direct(callee, &[Operand::Imm(5)]);
        f.ret(Some(r.into()));
        f.finish();
        let img = Image::load(mb.finish()).unwrap();
        Machine::new(Arc::new(img), CostModel::default())
    }

    #[test]
    fn call_spills_args_to_memory() {
        let mut m = machine();
        let callee = m.image.module.func_by_name("callee").unwrap();
        let entry = m.image.layout.func_entry(callee);
        let ra = m.pc_addr().offset(bastion_ir::CALL_SIZE);
        m.do_call(entry, &[5], None, ra).unwrap();
        // The spilled param is readable at the slot address.
        let slot = m.slot_addr(SlotId(0));
        assert_eq!(m.mem.read_u64(slot).unwrap(), 5);
        // Return address sits at fp+8.
        assert_eq!(m.mem.read_u64(m.fp + 8).unwrap(), ra.raw());
        assert_eq!(m.depth(), 2);
    }

    #[test]
    fn ret_restores_caller_and_passes_value() {
        let mut m = machine();
        let callee = m.image.module.func_by_name("callee").unwrap();
        let entry = m.image.layout.func_entry(callee);
        let ra = m.pc_addr().offset(bastion_ir::CALL_SIZE);
        let old_fp = m.fp;
        m.do_call(entry, &[5], Some(Reg(0)), ra).unwrap();
        let exited = m.do_ret(42).unwrap();
        assert_eq!(exited, None);
        assert_eq!(m.fp, old_fp);
        assert_eq!(m.frame().regs[0], 42);
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn main_ret_exits() {
        let mut m = machine();
        let exited = m.do_ret(7).unwrap();
        assert_eq!(exited, Some(7));
        assert_eq!(m.exited, Some(7));
    }

    #[test]
    fn corrupted_return_address_redirects_control() {
        let mut m = machine();
        let callee = m.image.module.func_by_name("callee").unwrap();
        let entry = m.image.layout.func_entry(callee);
        let ra = m.pc_addr().offset(bastion_ir::CALL_SIZE);
        m.do_call(entry, &[5], None, ra).unwrap();
        // Attacker overwrites the return address with callee's own entry.
        m.mem.write_u64(m.fp + 8, entry.raw()).unwrap();
        m.do_ret(0).unwrap();
        // Control went to the attacker's address, with a synthesized frame.
        assert_eq!(m.pc, m.image.layout.loc_of(entry).unwrap());
    }

    #[test]
    fn cet_catches_corrupted_return() {
        let mut m = machine();
        m.enable_cet();
        let callee = m.image.module.func_by_name("callee").unwrap();
        let entry = m.image.layout.func_entry(callee);
        let ra = m.pc_addr().offset(bastion_ir::CALL_SIZE);
        m.do_call(entry, &[5], None, ra).unwrap();
        m.mem.write_u64(m.fp + 8, entry.raw()).unwrap();
        let e = m.do_ret(0).unwrap_err();
        assert!(matches!(e, Fault::ControlProtection { .. }));
    }

    #[test]
    fn cet_allows_legitimate_returns() {
        let mut m = machine();
        m.enable_cet();
        let callee = m.image.module.func_by_name("callee").unwrap();
        let entry = m.image.layout.func_entry(callee);
        let ra = m.pc_addr().offset(bastion_ir::CALL_SIZE);
        m.do_call(entry, &[5], None, ra).unwrap();
        assert_eq!(m.do_ret(1).unwrap(), None);
        assert_eq!(m.do_ret(0).unwrap(), Some(0));
    }

    #[test]
    fn stack_overflow_detected() {
        let mut m = machine();
        let callee = m.image.module.func_by_name("callee").unwrap();
        let entry = m.image.layout.func_entry(callee);
        let ra = m.pc_addr().offset(bastion_ir::CALL_SIZE);
        let mut res = Ok(());
        for _ in 0..100_000 {
            res = m.do_call(entry, &[1], None, ra);
            if res.is_err() {
                break;
            }
        }
        assert_eq!(res.unwrap_err(), Fault::StackOverflow);
    }

    #[test]
    fn cfi_policy_allows_matching_arity_only() {
        let p = CfiPolicy {
            allowed: [(0x1000u64, 2u8)].into_iter().collect(),
        };
        assert!(p.allows(0x1000, 2));
        assert!(!p.allows(0x1000, 3));
        assert!(!p.allows(0x2000, 2));
    }
}
