//! The instruction interpreter.
//!
//! Two execution paths share one observable semantics:
//!
//! * the **predecoded fast path** — [`run`]/[`run_bounded`] dispatch over
//!   the flat [`crate::decode::DecodedProgram`] built at image load,
//!   keeping the program counter (as a flat unit index) and the cycle
//!   counter in locals between events;
//! * the **legacy reference path** — [`step`] executes exactly one
//!   instruction by walking the IR tree, and [`run_legacy`] loops it. It is
//!   kept as the differential-testing oracle and as the single-step
//!   interface the defenses/monitor tests use.
//!
//! Both paths produce bit-identical [`Event`] streams, virtual cycle
//! counts, and fault behaviour; `tests/differential.rs` asserts this over
//! the shipped apps, the Table 6 scenarios, and random IR modules.
//!
//! The kernel crate drives the loop: it handles [`Event::Syscall`] through
//! the simulated Linux syscall layer (seccomp, tracing, blocking) and
//! resumes the machine with [`Machine::complete_syscall`]; faults and exits
//! terminate the process.

use crate::decode::DecodedInst;
use crate::machine::{Fault, Machine};
use crate::mem::MemIo;
use crate::shadow::ShadowTable;
use bastion_ir::{
    BinOp, Callee, CmpOp, CodeAddr, Inst, IntrinsicOp, Operand, Terminator, Width, CALL_SIZE,
};
use std::sync::Arc;

/// The outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Execution may continue with another [`step`].
    Continue,
    /// A `syscall` instruction trapped; the kernel must service it and call
    /// [`Machine::complete_syscall`] (or kill the process).
    Syscall {
        /// Syscall number.
        nr: u32,
        /// Argument registers.
        args: [u64; 6],
    },
    /// `main` returned or the process exited.
    Exited(i64),
    /// A hardware fault; the process is dead.
    Fault(Fault),
}

/// Why [`run`] returned: a real event, or the step budget ran out with the
/// machine still runnable. Distinct from [`Event::Continue`] so a wedged
/// (looping) app can never be mistaken for one that produced an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// A syscall trap, exit, or fault occurred.
    Event(Event),
    /// `max_steps` instructions executed without an event; the machine can
    /// keep running.
    BudgetExhausted,
}

impl RunOutcome {
    /// The event, for callers that know the budget is ample.
    ///
    /// # Panics
    /// Panics if the budget was exhausted without an event.
    pub fn event(self) -> Event {
        match self {
            RunOutcome::Event(e) => e,
            RunOutcome::BudgetExhausted => panic!("step budget exhausted without an event"),
        }
    }

    /// Whether the budget ran out before any event.
    pub fn exhausted(self) -> bool {
        matches!(self, RunOutcome::BudgetExhausted)
    }
}

/// Executes one instruction of `m` (legacy tree-walking path).
///
/// # Panics
/// Panics if the machine has already exited or is blocked in a syscall.
pub fn step(m: &mut Machine) -> Event {
    assert!(m.exited.is_none(), "stepping an exited machine");
    assert!(!m.in_syscall(), "stepping a machine blocked in a syscall");
    let func = &m.image.module.functions[m.pc.func.index()];
    let block = &func.blocks[m.pc.block.index()];
    if m.pc.inst < block.insts.len() {
        let inst = block.insts[m.pc.inst].clone();
        exec_inst(m, &inst)
    } else {
        let term = block.term;
        exec_term(m, term)
    }
}

/// Runs the predecoded fast path until the next event or until `max_steps`
/// instructions have executed.
pub fn run(m: &mut Machine, max_steps: u64) -> RunOutcome {
    match run_bounded(m, max_steps) {
        (_, Some(e)) => RunOutcome::Event(e),
        (_, None) => RunOutcome::BudgetExhausted,
    }
}

/// Runs the legacy tree-walking path until the next event or until
/// `max_steps` instructions have executed (the differential oracle).
pub fn run_legacy(m: &mut Machine, max_steps: u64) -> RunOutcome {
    for _ in 0..max_steps {
        match step(m) {
            Event::Continue => {}
            e => return RunOutcome::Event(e),
        }
    }
    RunOutcome::BudgetExhausted
}

/// The fused dispatch loop over the predecoded stream. Returns the number
/// of instructions executed (the event-producing one included) and the
/// event, if any; `None` means the step budget ran out.
///
/// The architectural `pc` and `cycles` live in locals while the loop runs
/// and are synced back to `m` at every exit point (and before a syscall
/// trap is recorded, since [`Machine::set_trap`] snapshots `pc`).
///
/// # Panics
/// Panics if the machine has already exited or is blocked in a syscall.
#[allow(clippy::too_many_lines)]
pub fn run_bounded(m: &mut Machine, max_steps: u64) -> (u64, Option<Event>) {
    assert!(m.exited.is_none(), "stepping an exited machine");
    assert!(!m.in_syscall(), "stepping a machine blocked in a syscall");
    let image = Arc::clone(&m.image);
    let prog = &image.decoded;
    let insts = prog.insts();
    let cost = m.cost;
    let mut cycles = m.cycles;
    let mut idx = prog.unit_of_addr(image.layout.addr_of(m.pc).raw());
    let mut steps = 0u64;

    macro_rules! exit_at {
        ($idx:expr, $ev:expr) => {{
            m.pc = prog.loc_at($idx);
            m.cycles = cycles;
            bastion_obs::counter_add("vm.steps", steps);
            return (steps, Some($ev));
        }};
    }

    /// Operand evaluation against an explicit register file, so each arm
    /// resolves the current frame once instead of once per operand.
    #[inline(always)]
    fn ev(regs: &[u64], op: Operand) -> u64 {
        match op {
            Operand::Imm(v) => v as u64,
            Operand::Reg(r) => regs[r.index()],
        }
    }

    while steps < max_steps {
        steps += 1;
        match insts[idx] {
            DecodedInst::Mov { dst, src } => {
                let fr = m.frames.last_mut().expect("no active frame");
                let v = ev(&fr.regs, src);
                fr.regs[dst.index()] = v;
                cycles += cost.inst;
                idx += 1;
            }
            DecodedInst::Bin { dst, op, a, b } => {
                let fr = m.frames.last_mut().expect("no active frame");
                let (a, b) = (ev(&fr.regs, a), ev(&fr.regs, b));
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            exit_at!(idx, Event::Fault(Fault::DivByZero));
                        }
                        (a as i64).wrapping_div(b as i64) as u64
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            exit_at!(idx, Event::Fault(Fault::DivByZero));
                        }
                        (a as i64).wrapping_rem(b as i64) as u64
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a << (b & 63),
                    BinOp::Shr => a >> (b & 63),
                };
                fr.regs[dst.index()] = v;
                cycles += cost.inst;
                idx += 1;
            }
            DecodedInst::Cmp { dst, op, a, b } => {
                let fr = m.frames.last_mut().expect("no active frame");
                let (a, b) = (ev(&fr.regs, a) as i64, ev(&fr.regs, b) as i64);
                let v = match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                };
                fr.regs[dst.index()] = u64::from(v);
                cycles += cost.inst;
                idx += 1;
            }
            DecodedInst::Load { dst, addr, width } => {
                let Machine { frames, mem, .. } = &mut *m;
                let fr = frames.last_mut().expect("no active frame");
                let a = ev(&fr.regs, addr);
                let v = match width {
                    Width::W8 => {
                        let mut b = [0u8; 1];
                        match mem.read(a, &mut b) {
                            Ok(()) => u64::from(b[0]),
                            Err(e) => exit_at!(idx, Event::Fault(Fault::Mem(e))),
                        }
                    }
                    Width::W64 => match mem.read_u64(a) {
                        Ok(v) => v,
                        Err(e) => exit_at!(idx, Event::Fault(Fault::Mem(e))),
                    },
                };
                fr.regs[dst.index()] = v;
                cycles += cost.mem;
                idx += 1;
            }
            DecodedInst::Store { addr, src, width } => {
                let Machine { frames, mem, .. } = &mut *m;
                let fr = frames.last().expect("no active frame");
                let a = ev(&fr.regs, addr);
                let v = ev(&fr.regs, src);
                let res = match width {
                    Width::W8 => mem.write(a, &[v as u8]),
                    Width::W64 => mem.write_u64(a, v),
                };
                if let Err(e) = res {
                    exit_at!(idx, Event::Fault(Fault::Mem(e)));
                }
                cycles += cost.mem;
                idx += 1;
            }
            DecodedInst::FrameAddr { dst, neg_off } => {
                let a = m.fp - neg_off;
                m.frames.last_mut().expect("no active frame").regs[dst.index()] = a;
                cycles += cost.inst;
                idx += 1;
            }
            DecodedInst::LoadAddr { dst, addr } => {
                m.frames.last_mut().expect("no active frame").regs[dst.index()] = addr;
                cycles += cost.inst;
                idx += 1;
            }
            DecodedInst::FieldAddr { dst, base, off } => {
                let fr = m.frames.last_mut().expect("no active frame");
                let v = ev(&fr.regs, base).wrapping_add(off);
                fr.regs[dst.index()] = v;
                cycles += cost.inst;
                idx += 1;
            }
            DecodedInst::IndexAddr {
                dst,
                base,
                elem_size,
                index,
            } => {
                let fr = m.frames.last_mut().expect("no active frame");
                let v =
                    ev(&fr.regs, base).wrapping_add(ev(&fr.regs, index).wrapping_mul(elem_size));
                fr.regs[dst.index()] = v;
                cycles += cost.inst;
                idx += 1;
            }
            DecodedInst::CallDirect {
                dst,
                args,
                target_unit,
                retaddr,
            } => {
                let mut argv = std::mem::take(&mut m.call_scratch);
                argv.clear();
                argv.extend(prog.arg_ops(args).iter().map(|&a| m.eval(a)));
                cycles += cost.call;
                if m.shadow_stack.is_some() {
                    cycles += cost.cet;
                }
                let loc = prog.loc_at(target_unit as usize);
                let res = m.do_call_resolved(loc, &argv, dst, CodeAddr(retaddr));
                m.call_scratch = argv;
                match res {
                    Ok(()) => idx = target_unit as usize,
                    Err(f) => exit_at!(idx, Event::Fault(f)),
                }
            }
            DecodedInst::CallIndirect {
                dst,
                args,
                target,
                retaddr,
            } => {
                let mut argv = std::mem::take(&mut m.call_scratch);
                argv.clear();
                argv.extend(prog.arg_ops(args).iter().map(|&a| m.eval(a)));
                let t = m.eval(target);
                if let Some(policy) = &m.cfi {
                    let ok = policy.allows(t, argv.len());
                    cycles += cost.cfi_check;
                    if !ok {
                        m.call_scratch = argv;
                        exit_at!(
                            idx,
                            Event::Fault(Fault::CfiViolation {
                                target: t,
                                argc: args.len(),
                            })
                        );
                    }
                }
                cycles += cost.call;
                if m.shadow_stack.is_some() {
                    cycles += cost.cet;
                }
                let Some(loc) = image.layout.loc_of(CodeAddr(t)) else {
                    m.call_scratch = argv;
                    exit_at!(idx, Event::Fault(Fault::BadJump(t)));
                };
                let res = m.do_call_resolved(loc, &argv, dst, CodeAddr(retaddr));
                m.call_scratch = argv;
                match res {
                    Ok(()) => idx = prog.unit_of_addr(t),
                    Err(f) => exit_at!(idx, Event::Fault(f)),
                }
            }
            DecodedInst::Syscall { dst, nr, args } => {
                let mut a = [0u64; 6];
                for (i, &op) in prog.arg_ops(args).iter().take(6).enumerate() {
                    a[i] = m.eval(op);
                }
                // set_trap snapshots the trapped rip from m.pc: sync first.
                m.pc = prog.loc_at(idx);
                m.cycles = cycles;
                m.set_trap(nr, a, dst);
                return (steps, Some(Event::Syscall { nr, args: a }));
            }
            DecodedInst::CtxWriteMem { addr, size } => {
                cycles += cost.intrinsic;
                let shadow = ShadowTable::new(m.gs_base);
                let a = m.eval(addr);
                let sz = size.min(8) as usize;
                let mut buf = [0u8; 8];
                let res = match m.mem.read(a, &mut buf[..sz]) {
                    Ok(()) => shadow.write_value(&mut m.mem, a, u64::from_le_bytes(buf), sz as u8),
                    Err(e) => Err(e),
                };
                if let Err(e) = res {
                    exit_at!(idx, Event::Fault(Fault::Mem(e)));
                }
                idx += 1;
            }
            DecodedInst::CtxBindMem {
                pos,
                addr,
                callsite,
            } => {
                cycles += cost.intrinsic;
                let shadow = ShadowTable::new(m.gs_base);
                let a = m.eval(addr);
                let res = match callsite {
                    Some(cs) => shadow.bind_mem(&mut m.mem, cs, pos, a),
                    None => Ok(()),
                };
                if let Err(e) = res {
                    exit_at!(idx, Event::Fault(Fault::Mem(e)));
                }
                idx += 1;
            }
            DecodedInst::CtxBindConst {
                pos,
                value,
                callsite,
            } => {
                cycles += cost.intrinsic;
                let shadow = ShadowTable::new(m.gs_base);
                let res = match callsite {
                    Some(cs) => shadow.bind_const(&mut m.mem, cs, pos, value),
                    None => Ok(()),
                };
                if let Err(e) = res {
                    exit_at!(idx, Event::Fault(Fault::Mem(e)));
                }
                idx += 1;
            }
            DecodedInst::Jmp { target } => {
                cycles += cost.inst;
                idx = target as usize;
            }
            DecodedInst::Br { cond, then_, else_ } => {
                let c = ev(&m.frames.last().expect("no active frame").regs, cond);
                cycles += cost.inst;
                idx = if c != 0 { then_ } else { else_ } as usize;
            }
            DecodedInst::Ret { val } => {
                let v = val.map_or(0, |op| m.eval(op));
                cycles += cost.call;
                match m.do_ret(v) {
                    Ok(Some(code)) => exit_at!(idx, Event::Exited(code)),
                    Ok(None) => idx = prog.unit_of_addr(image.layout.addr_of(m.pc).raw()),
                    Err(f) => exit_at!(idx, Event::Fault(f)),
                }
            }
            DecodedInst::Pad => unreachable!("executed inter-function alignment padding"),
        }
    }
    m.pc = prog.loc_at(idx);
    m.cycles = cycles;
    bastion_obs::counter_add("vm.steps", steps);
    (steps, None)
}

fn exec_inst(m: &mut Machine, inst: &Inst) -> Event {
    match inst {
        Inst::Mov { dst, src } => {
            let v = m.eval(*src);
            m.set_reg(*dst, v);
            m.charge(m.cost.inst);
            m.advance();
            Event::Continue
        }
        Inst::Bin { dst, op, a, b } => {
            let (a, b) = (m.eval(*a), m.eval(*b));
            let v = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Event::Fault(Fault::DivByZero);
                    }
                    (a as i64).wrapping_div(b as i64) as u64
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Event::Fault(Fault::DivByZero);
                    }
                    (a as i64).wrapping_rem(b as i64) as u64
                }
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a << (b & 63),
                BinOp::Shr => a >> (b & 63),
            };
            m.set_reg(*dst, v);
            m.charge(m.cost.inst);
            m.advance();
            Event::Continue
        }
        Inst::Cmp { dst, op, a, b } => {
            let (a, b) = (m.eval(*a) as i64, m.eval(*b) as i64);
            let v = match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            };
            m.set_reg(*dst, u64::from(v));
            m.charge(m.cost.inst);
            m.advance();
            Event::Continue
        }
        Inst::Load { dst, addr, width } => {
            let a = m.eval(*addr);
            let v = match width {
                Width::W8 => {
                    let mut b = [0u8; 1];
                    match crate::mem::MemIo::read(&m.mem, a, &mut b) {
                        Ok(()) => u64::from(b[0]),
                        Err(e) => return Event::Fault(Fault::Mem(e)),
                    }
                }
                Width::W64 => match crate::mem::MemIo::read_u64(&m.mem, a) {
                    Ok(v) => v,
                    Err(e) => return Event::Fault(Fault::Mem(e)),
                },
            };
            m.set_reg(*dst, v);
            m.charge(m.cost.mem);
            m.advance();
            Event::Continue
        }
        Inst::Store { addr, src, width } => {
            let a = m.eval(*addr);
            let v = m.eval(*src);
            let res = match width {
                Width::W8 => crate::mem::MemIo::write(&mut m.mem, a, &[v as u8]),
                Width::W64 => crate::mem::MemIo::write_u64(&mut m.mem, a, v),
            };
            if let Err(e) = res {
                return Event::Fault(Fault::Mem(e));
            }
            m.charge(m.cost.mem);
            m.advance();
            Event::Continue
        }
        Inst::FrameAddr { dst, slot } => {
            let a = m.slot_addr(*slot);
            m.set_reg(*dst, a);
            m.charge(m.cost.inst);
            m.advance();
            Event::Continue
        }
        Inst::GlobalAddr { dst, global } => {
            let a = m.image.global_addr(*global);
            m.set_reg(*dst, a);
            m.charge(m.cost.inst);
            m.advance();
            Event::Continue
        }
        Inst::FuncAddr { dst, func } => {
            let a = m.image.layout.func_entry(*func).raw();
            m.set_reg(*dst, a);
            m.charge(m.cost.inst);
            m.advance();
            Event::Continue
        }
        Inst::FieldAddr {
            dst,
            base,
            struct_id,
            field,
        } => {
            let structs = &m.image.module.structs;
            let off = structs[struct_id.index()].field_offset(*field as usize, structs);
            let v = m.eval(*base).wrapping_add(off);
            m.set_reg(*dst, v);
            m.charge(m.cost.inst);
            m.advance();
            Event::Continue
        }
        Inst::IndexAddr {
            dst,
            base,
            elem_size,
            index,
        } => {
            let v = m
                .eval(*base)
                .wrapping_add(m.eval(*index).wrapping_mul(*elem_size));
            m.set_reg(*dst, v);
            m.charge(m.cost.inst);
            m.advance();
            Event::Continue
        }
        Inst::Call { dst, callee, args } => {
            let argv: Vec<u64> = args.iter().map(|a| m.eval(*a)).collect();
            let retaddr = m.pc_addr().offset(CALL_SIZE);
            let target = match callee {
                Callee::Direct(f) => m.image.layout.func_entry(*f),
                Callee::Indirect(op) => {
                    let t = m.eval(*op);
                    if let Some(policy) = &m.cfi {
                        let ok = policy.allows(t, args.len());
                        m.charge(m.cost.cfi_check);
                        if !ok {
                            return Event::Fault(Fault::CfiViolation {
                                target: t,
                                argc: args.len(),
                            });
                        }
                    }
                    CodeAddr(t)
                }
            };
            m.charge(m.cost.call);
            if m.shadow_stack.is_some() {
                m.charge(m.cost.cet);
            }
            match m.do_call(target, &argv, *dst, retaddr) {
                Ok(()) => Event::Continue,
                Err(f) => Event::Fault(f),
            }
        }
        Inst::Syscall { dst, nr, args } => {
            let mut a = [0u64; 6];
            for (i, op) in args.iter().take(6).enumerate() {
                a[i] = m.eval(*op);
            }
            m.set_trap(*nr, a, *dst);
            Event::Syscall { nr: *nr, args: a }
        }
        Inst::Intrinsic(op) => {
            m.charge(m.cost.intrinsic);
            let shadow = ShadowTable::new(m.gs_base);
            let res = match op {
                IntrinsicOp::CtxWriteMem { addr, size } => {
                    let a = m.eval(*addr);
                    let sz = (*size).min(8) as usize;
                    let mut buf = [0u8; 8];
                    match crate::mem::MemIo::read(&m.mem, a, &mut buf[..sz]) {
                        Ok(()) => {
                            shadow.write_value(&mut m.mem, a, u64::from_le_bytes(buf), sz as u8)
                        }
                        Err(e) => Err(e),
                    }
                }
                IntrinsicOp::CtxBindMem { pos, addr } => {
                    let a = m.eval(*addr);
                    match next_callsite_addr(m) {
                        Some(cs) => shadow.bind_mem(&mut m.mem, cs, *pos, a),
                        None => Ok(()),
                    }
                }
                IntrinsicOp::CtxBindConst { pos, value } => match next_callsite_addr(m) {
                    Some(cs) => shadow.bind_const(&mut m.mem, cs, *pos, *value),
                    None => Ok(()),
                },
            };
            if let Err(e) = res {
                return Event::Fault(Fault::Mem(e));
            }
            m.advance();
            Event::Continue
        }
    }
}

/// Address of the next call instruction in the current block (the callsite
/// a `ctx_bind_*` intrinsic refers to).
fn next_callsite_addr(m: &Machine) -> Option<u64> {
    let func = &m.image.module.functions[m.pc.func.index()];
    let block = &func.blocks[m.pc.block.index()];
    for i in (m.pc.inst + 1)..block.insts.len() {
        if block.insts[i].is_call() {
            let loc = bastion_ir::InstLoc { inst: i, ..m.pc };
            return Some(m.image.layout.addr_of(loc).raw());
        }
    }
    None
}

fn exec_term(m: &mut Machine, term: Terminator) -> Event {
    match term {
        Terminator::Jmp(b) => {
            m.pc.block = b;
            m.pc.inst = 0;
            m.charge(m.cost.inst);
            Event::Continue
        }
        Terminator::Br { cond, then_, else_ } => {
            let c = m.eval(cond);
            m.pc.block = if c != 0 { then_ } else { else_ };
            m.pc.inst = 0;
            m.charge(m.cost.inst);
            Event::Continue
        }
        Terminator::Ret(val) => {
            let v = val.map_or(0, |op| m.eval(op));
            m.charge(m.cost.call);
            match m.do_ret(v) {
                Ok(Some(code)) => Event::Exited(code),
                Ok(None) => Event::Continue,
                Err(f) => Event::Fault(f),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::image::Image;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::{Operand, Ty};
    use std::sync::Arc;

    fn run_main(mb: ModuleBuilder) -> (Machine, Event) {
        let img = Arc::new(Image::load(mb.finish()).unwrap());
        // Drive the legacy oracle alongside the fast path and insist on
        // identical events, cycles, and stack geometry.
        let mut legacy = Machine::new(img.clone(), CostModel::default());
        let le = run_legacy(&mut legacy, 1_000_000).event();
        let mut m = Machine::new(img, CostModel::default());
        let e = run(&mut m, 1_000_000).event();
        assert_eq!(e, le, "fast path event diverged from legacy");
        assert_eq!(m.cycles, legacy.cycles, "fast path cycles diverged");
        assert_eq!((m.sp, m.fp), (legacy.sp, legacy.fp));
        (m, e)
    }

    #[test]
    fn arithmetic_and_branching() {
        // Computes sum of 1..=10 with a loop; returns 55.
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", &[], Ty::I64);
        let i = f.local("i", Ty::I64);
        let acc = f.local("acc", Ty::I64);
        let ia = f.frame_addr(i);
        f.store(ia, 1i64);
        let aa = f.frame_addr(acc);
        f.store(aa, 0i64);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jmp(header);
        f.switch_to(header);
        let ia2 = f.frame_addr(i);
        let iv = f.load(ia2);
        let c = f.cmp(CmpOp::Le, iv, 10i64);
        f.br(c, body, exit);
        f.switch_to(body);
        let aa2 = f.frame_addr(acc);
        let av = f.load(aa2);
        let sum = f.bin(BinOp::Add, av, iv);
        let aa3 = f.frame_addr(acc);
        f.store(aa3, sum);
        let inc = f.bin(BinOp::Add, iv, 1i64);
        let ia3 = f.frame_addr(i);
        f.store(ia3, inc);
        f.jmp(header);
        f.switch_to(exit);
        let aa4 = f.frame_addr(acc);
        let fin = f.load(aa4);
        f.ret(Some(fin.into()));
        f.finish();
        let (_, e) = run_main(mb);
        assert_eq!(e, Event::Exited(55));
    }

    #[test]
    fn nested_calls_return_values() {
        let mut mb = ModuleBuilder::new("t");
        let double = mb.declare("double", &[("x", Ty::I64)], Ty::I64);
        let mut f = mb.define(double);
        let a = f.frame_addr(f.param_slot(0));
        let v = f.load(a);
        let d = f.bin(BinOp::Mul, v, 2i64);
        f.ret(Some(d.into()));
        f.finish();
        let mut f = mb.function("main", &[], Ty::I64);
        let r1 = f.call_direct(double, &[Operand::Imm(10)]);
        let r2 = f.call_direct(double, &[r1.into()]);
        f.ret(Some(r2.into()));
        f.finish();
        let (_, e) = run_main(mb);
        assert_eq!(e, Event::Exited(40));
    }

    #[test]
    fn indirect_calls_through_function_pointers() {
        let mut mb = ModuleBuilder::new("t");
        let add3 = mb.declare("add3", &[("x", Ty::I64)], Ty::I64);
        let mut f = mb.define(add3);
        let a = f.frame_addr(f.param_slot(0));
        let v = f.load(a);
        let d = f.bin(BinOp::Add, v, 3i64);
        f.ret(Some(d.into()));
        f.finish();
        let mut f = mb.function("main", &[], Ty::I64);
        let p = f.func_addr(add3);
        let r = f.call_indirect(p, &[Operand::Imm(4)]);
        f.ret(Some(r.into()));
        f.finish();
        let (_, e) = run_main(mb);
        assert_eq!(e, Event::Exited(7));
    }

    #[test]
    fn syscall_traps_with_arg_registers() {
        let mut mb = ModuleBuilder::new("t");
        let stub = mb.declare_syscall_stub("write", 1, 3);
        let mut f = mb.function("main", &[], Ty::I64);
        let r = f.call_direct(stub, &[1i64.into(), 0x1234i64.into(), 5i64.into()]);
        f.ret(Some(r.into()));
        f.finish();
        let img = Image::load(mb.finish()).unwrap();
        let mut m = Machine::new(Arc::new(img), CostModel::default());
        let e = run(&mut m, 10_000).event();
        assert_eq!(
            e,
            Event::Syscall {
                nr: 1,
                args: [1, 0x1234, 5, 0, 0, 0]
            }
        );
        assert_eq!(m.trap_nr, 1);
        assert!(m.in_syscall());
        // The kernel resumes it with a return value.
        m.complete_syscall(5);
        let e = run(&mut m, 10_000).event();
        assert_eq!(e, Event::Exited(5));
    }

    #[test]
    fn byte_loads_zero_extend() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.global_str("s", "\u{7f}");
        let mut f = mb.function("main", &[], Ty::I64);
        let a = f.global_addr(g);
        let v = f.load_w(a, Width::W8);
        f.ret(Some(v.into()));
        f.finish();
        let (_, e) = run_main(mb);
        assert_eq!(e, Event::Exited(0x7f));
    }

    #[test]
    fn wild_store_faults() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", &[], Ty::I64);
        f.store(Operand::Imm(0x10), Operand::Imm(1));
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let (_, e) = run_main(mb);
        assert!(matches!(e, Event::Fault(Fault::Mem(_))));
    }

    #[test]
    fn division_by_zero_faults() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", &[], Ty::I64);
        let r = f.bin(BinOp::Div, 10i64, 0i64);
        f.ret(Some(r.into()));
        f.finish();
        let (_, e) = run_main(mb);
        assert_eq!(e, Event::Fault(Fault::DivByZero));
    }

    #[test]
    fn intrinsics_update_shadow_table() {
        use bastion_ir::Inst;
        let mut mb = ModuleBuilder::new("t");
        let callee = mb.declare("callee", &[("x", Ty::I64)], Ty::I64);
        let mut f = mb.define(callee);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let mut f = mb.function("main", &[], Ty::I64);
        let x = f.local("x", Ty::I64);
        let xa = f.frame_addr(x);
        f.store(xa, 77i64);
        f.emit(Inst::Intrinsic(IntrinsicOp::CtxWriteMem {
            addr: xa.into(),
            size: 8,
        }));
        f.emit(Inst::Intrinsic(IntrinsicOp::CtxBindMem {
            pos: 1,
            addr: xa.into(),
        }));
        let xv = f.load(xa);
        let _ = f.call_direct(callee, &[xv.into()]);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        let img = Image::load(mb.finish()).unwrap();
        let layout_probe = img.clone();
        let mut m = Machine::new(Arc::new(img), CostModel::default());
        let e = run(&mut m, 100_000).event();
        assert_eq!(e, Event::Exited(0));
        // The shadow table holds x's value and the callsite binding.
        let shadow = ShadowTable::new(m.gs_base);
        // Recompute x's address in main's (now-popped) frame: the initial
        // fp is stack_top - 16.
        let main = layout_probe.module.func_by_name("main").unwrap();
        let fi = layout_probe.frame(main);
        let x_addr = (layout_probe.stack_top - 16) - fi.frame_size + fi.slot_offsets[0];
        assert_eq!(shadow.read_value(&m.mem, x_addr).unwrap(), Some((77, 8)));
    }

    #[test]
    fn wild_indirect_call_is_a_bad_jump() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", &[], Ty::I64);
        let r = f.call_indirect(Operand::Imm(0xdead_0000), &[]);
        f.ret(Some(r.into()));
        f.finish();
        let img = Image::load(mb.finish()).unwrap();
        let mut m = Machine::new(Arc::new(img), CostModel::default());
        let e = run(&mut m, 1_000).event();
        assert_eq!(e, Event::Fault(Fault::BadJump(0xdead_0000)));
    }

    #[test]
    fn indirect_call_mid_function_executes_from_there() {
        // JOP-style: an indirect call may land past a function's entry;
        // execution continues at that instruction with a fresh frame.
        let mut mb = ModuleBuilder::new("t");
        let gadget = mb.declare("gadget", &[], Ty::I64);
        let mut f = mb.define(gadget);
        let _ = f.mov(1i64); // skipped when entering at +1 inst
        let v = f.mov(55i64);
        f.ret(Some(v.into()));
        f.finish();
        let mut f = mb.function("main", &[], Ty::I64);
        let entry = f.func_addr(gadget);
        let mid = f.bin(BinOp::Add, entry, bastion_ir::layout::INST_SIZE as i64);
        let r = f.call_indirect(mid, &[]);
        f.ret(Some(r.into()));
        f.finish();
        let img = Image::load(mb.finish()).unwrap();
        let mut m = Machine::new(Arc::new(img), CostModel::default());
        assert_eq!(run(&mut m, 10_000).event(), Event::Exited(55));
    }

    #[test]
    fn cycles_accumulate() {
        let mut mb = ModuleBuilder::new("t");
        let mut f = mb.function("main", &[], Ty::I64);
        let a = f.mov(1i64);
        let b = f.bin(BinOp::Add, a, 2i64);
        f.ret(Some(b.into()));
        f.finish();
        let (m, e) = run_main(mb);
        assert_eq!(e, Event::Exited(3));
        assert!(m.cycles >= 3);
    }
}
