//! The virtual-time cost model.
//!
//! All experiments report *virtual cycles* so results are deterministic and
//! machine-independent. The constants are chosen to mirror the cost
//! structure the paper measures on real hardware:
//!
//! * ordinary instructions are cheap and uniform;
//! * a syscall costs a few hundred cycles of kernel entry/exit;
//! * a seccomp filter evaluation is a small fixed cost on *every* syscall;
//! * a **ptrace stop** (monitor wake-up) and each remote access (`ptrace`
//!   register fetch, `process_vm_readv`) cost thousands of cycles of
//!   context switching — the dominant term the paper identifies in Table 7;
//! * CET and inlined instrumentation intrinsics cost ~1 cycle, matching the
//!   paper's "negligible overhead" observations for CET and `ctx_*` calls.

use serde::{Deserialize, Serialize};

/// Cycle costs for every simulated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Plain ALU / move instruction.
    pub inst: u64,
    /// Memory load or store.
    pub mem: u64,
    /// Call or return (frame push/pop).
    pub call: u64,
    /// One inlined instrumentation intrinsic (`ctx_*`).
    pub intrinsic: u64,
    /// CET shadow-stack push/check.
    pub cet: u64,
    /// LLVM-CFI indirect-call check.
    pub cfi_check: u64,
    /// Kernel entry/exit for any syscall.
    pub syscall: u64,
    /// seccomp-BPF filter evaluation (charged on every syscall when a
    /// filter is installed).
    pub seccomp: u64,
    /// Monitor wake-up on a traced syscall (two context switches).
    pub ptrace_stop: u64,
    /// Tier-1 prefilter evaluation at seccomp-classify time: one dense
    /// table lookup plus the compiled check program, all in-kernel — no
    /// context switch, no monitor stop.
    pub prefilter_eval: u64,
    /// One in-kernel tracee memory read issued by the prefilter (same
    /// address space, no `process_vm_readv` round trip).
    pub prefilter_read: u64,
    /// One `ptrace(PTRACE_GETREGS)`-style call.
    pub ptrace_getregs: u64,
    /// Base cost of one `process_vm_readv` call...
    pub remote_read: u64,
    /// ...plus this much per 64 bytes transferred.
    pub remote_read_per_64b: u64,
    /// Simulated CPU frequency used to convert cycles to seconds.
    pub cpu_hz: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            inst: 1,
            mem: 2,
            call: 4,
            intrinsic: 2,
            cet: 1,
            cfi_check: 12,
            syscall: 400,
            seccomp: 10,
            ptrace_stop: 3600,
            prefilter_eval: 40,
            prefilter_read: 16,
            ptrace_getregs: 700,
            remote_read: 500,
            remote_read_per_64b: 8,
            cpu_hz: 2_000_000_000,
        }
    }
}

impl CostModel {
    /// A model with free monitor access, emulating the in-kernel monitor
    /// the paper proposes in §11.2 (`ablation_inkernel`).
    pub fn in_kernel_monitor() -> Self {
        CostModel {
            ptrace_stop: 60,
            prefilter_eval: 40,
            prefilter_read: 4,
            ptrace_getregs: 10,
            remote_read: 10,
            remote_read_per_64b: 1,
            ..CostModel::default()
        }
    }

    /// Converts a cycle count to virtual seconds.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cpu_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptrace_dominates_by_construction() {
        let c = CostModel::default();
        assert!(c.ptrace_stop > 5 * c.syscall);
        assert!(c.remote_read > 10 * c.seccomp);
        assert!(c.cet <= c.inst);
        // The whole point of the tier-1 prefilter: evaluating it must be
        // integer factors cheaper than even reaching the monitor.
        assert!(c.prefilter_eval * 10 < c.ptrace_stop);
        assert!(c.prefilter_read * 10 < c.remote_read);
    }

    #[test]
    fn in_kernel_model_removes_context_switches() {
        let k = CostModel::in_kernel_monitor();
        let d = CostModel::default();
        assert!(k.ptrace_stop < d.ptrace_stop / 10);
        assert_eq!(k.syscall, d.syscall);
    }

    #[test]
    fn cycle_conversion() {
        let c = CostModel::default();
        assert!((c.cycles_to_secs(c.cpu_hz) - 1.0).abs() < 1e-12);
    }
}
