//! The BASTION shadow-memory hash table (paper §7.1).
//!
//! An open-addressing hash table living *inside the protected application's
//! address space* under a segment base (`$gs` in the paper). It holds two
//! kinds of entries:
//!
//! * **value entries** — the legitimate value of a sensitive variable,
//!   keyed by the variable's address (written by `ctx_write_mem`);
//! * **binding entries** — which constant or which variable address is
//!   bound to argument position X of a callsite, keyed by the callsite
//!   address and position (written by `ctx_bind_mem_X`/`ctx_bind_const_X`).
//!
//! The logic is implemented over the [`MemIo`] trait so the *same code*
//! runs inline in the application (through direct memory access) and in
//! the monitor (through the `process_vm_readv` simulation), exactly like
//! the paper's shared shadow region.

use crate::mem::{MemIo, OutOfBounds};
use serde::{Deserialize, Serialize};

/// Entry slot count (power of two).
pub const SHADOW_CAPACITY: u64 = 1 << 15;
/// Bytes per entry: key, meta, value.
pub const ENTRY_SIZE: u64 = 24;
/// Total region size in bytes.
pub const SHADOW_REGION_SIZE: u64 = SHADOW_CAPACITY * ENTRY_SIZE;

const KIND_VALUE: u64 = 1;
const KIND_BIND_MEM: u64 = 2;
const KIND_BIND_CONST: u64 = 3;
const BIND_TAG: u64 = 1 << 63;
/// Meta layout: kind in bits 0..8, size in bits 8..16, entry checksum in
/// bits 16..24 (computed over key, kind|size, and value by
/// [`entry_sum`]). The checksum lets monitor-side readers detect shadow
/// corruption (bit flips, hostile scribbles) instead of trusting the
/// mapping blindly.
const META_SUM_SHIFT: u64 = 16;
const META_LOW_MASK: u64 = 0xffff;

/// 8-bit integrity checksum over one shadow entry. A mixed (splitmix-style)
/// fold so a single flipped bit anywhere in (key, kind|size, value)
/// changes the sum with high probability.
fn entry_sum(key: u64, kindsize: u64, value: u64) -> u64 {
    let mut x = key ^ value.rotate_left(17) ^ (kindsize << 1) ^ 0xB5A1_C3D9_7E4F_0253;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 29;
    x & 0xff
}

/// Why a checked shadow read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowError {
    /// The shadow mapping itself faulted.
    Fault(OutOfBounds),
    /// An entry failed its integrity checksum.
    Corrupt {
        /// Address of the corrupt entry.
        addr: u64,
    },
}

impl From<OutOfBounds> for ShadowError {
    fn from(e: OutOfBounds) -> Self {
        ShadowError::Fault(e)
    }
}

impl std::fmt::Display for ShadowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShadowError::Fault(e) => write!(f, "shadow mapping fault at {:#x}", e.addr),
            ShadowError::Corrupt { addr } => {
                write!(f, "shadow entry at {addr:#x} failed its checksum")
            }
        }
    }
}

/// A runtime argument binding recorded for a callsite position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Binding {
    /// Position is bound to the sensitive variable at this address.
    Mem(u64),
    /// Position is bound to this constant.
    Const(i64),
}

/// Descriptor of a shadow region mapped at `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowTable {
    /// Base address of the region (the `$gs` segment base).
    pub base: u64,
}

impl ShadowTable {
    /// Creates a descriptor for a region at `base`.
    pub fn new(base: u64) -> Self {
        ShadowTable { base }
    }

    fn slot_addr(&self, slot: u64) -> u64 {
        self.base + (slot & (SHADOW_CAPACITY - 1)) * ENTRY_SIZE
    }

    fn hash(key: u64) -> u64 {
        // Fibonacci hashing; good dispersion for address-shaped keys.
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17
    }

    fn bind_key(callsite: u64, pos: u8) -> u64 {
        // Position in bits 62..60 under the tag, callsite in the low 60
        // bits with any bits above 59 XOR-folded back in. Injective for
        // every canonical code address (callsite < 2^60). The previous
        // `callsite << 3` packing silently shifted the top callsite bits
        // out under BIND_TAG — any callsite ≥ 2^60 aliased its low-bits
        // twin at the same position, returning the wrong binding.
        const MASK: u64 = (1 << 60) - 1;
        BIND_TAG | (u64::from(pos & 7) << 60) | ((callsite & MASK) ^ (callsite >> 60))
    }

    /// Probes for `key`; returns the address of its entry or of the first
    /// empty slot.
    fn probe<M: MemIo>(&self, mem: &M, key: u64) -> Result<(u64, bool), OutOfBounds> {
        let mut slot = Self::hash(key);
        for _ in 0..SHADOW_CAPACITY {
            let ea = self.slot_addr(slot);
            let k = mem.read_u64(ea)?;
            if k == key {
                return Ok((ea, true));
            }
            if k == 0 {
                return Ok((ea, false));
            }
            slot = slot.wrapping_add(1);
        }
        // Table full: overwrite the home slot (bounded memory, like a real
        // fixed-size metadata store under pressure).
        Ok((self.slot_addr(Self::hash(key)), false))
    }

    /// `ctx_write_mem`: refresh the shadow copy of the `size`-byte variable
    /// at `addr` with `value`.
    ///
    /// # Errors
    /// Propagates faults on the shadow region itself.
    pub fn write_value<M: MemIo>(
        &self,
        mem: &mut M,
        addr: u64,
        value: u64,
        size: u8,
    ) -> Result<(), OutOfBounds> {
        let (ea, _) = self.probe(mem, addr)?;
        let kindsize = KIND_VALUE | (u64::from(size) << 8);
        mem.write_u64(ea, addr)?;
        mem.write_u64(
            ea + 8,
            kindsize | (entry_sum(addr, kindsize, value) << META_SUM_SHIFT),
        )?;
        mem.write_u64(ea + 16, value)
    }

    /// Reads the shadow copy of the variable at `addr`, if one exists.
    ///
    /// # Errors
    /// Propagates faults on the shadow region itself.
    pub fn read_value<M: MemIo>(
        &self,
        mem: &M,
        addr: u64,
    ) -> Result<Option<(u64, u8)>, OutOfBounds> {
        let (ea, found) = self.probe(mem, addr)?;
        if !found {
            return Ok(None);
        }
        let meta = mem.read_u64(ea + 8)?;
        if meta & 0xff != KIND_VALUE {
            return Ok(None);
        }
        let size = ((meta >> 8) & 0xff) as u8;
        Ok(Some((mem.read_u64(ea + 16)?, size)))
    }

    /// `ctx_bind_mem_X`: bind the variable at `var_addr` to position `pos`
    /// of callsite `callsite`.
    ///
    /// # Errors
    /// Propagates faults on the shadow region itself.
    pub fn bind_mem<M: MemIo>(
        &self,
        mem: &mut M,
        callsite: u64,
        pos: u8,
        var_addr: u64,
    ) -> Result<(), OutOfBounds> {
        let key = Self::bind_key(callsite, pos);
        let (ea, _) = self.probe(mem, key)?;
        mem.write_u64(ea, key)?;
        mem.write_u64(
            ea + 8,
            KIND_BIND_MEM | (entry_sum(key, KIND_BIND_MEM, var_addr) << META_SUM_SHIFT),
        )?;
        mem.write_u64(ea + 16, var_addr)
    }

    /// `ctx_bind_const_X`: bind constant `value` to position `pos` of
    /// callsite `callsite`.
    ///
    /// # Errors
    /// Propagates faults on the shadow region itself.
    pub fn bind_const<M: MemIo>(
        &self,
        mem: &mut M,
        callsite: u64,
        pos: u8,
        value: i64,
    ) -> Result<(), OutOfBounds> {
        let key = Self::bind_key(callsite, pos);
        let (ea, _) = self.probe(mem, key)?;
        mem.write_u64(ea, key)?;
        mem.write_u64(
            ea + 8,
            KIND_BIND_CONST | (entry_sum(key, KIND_BIND_CONST, value as u64) << META_SUM_SHIFT),
        )?;
        mem.write_u64(ea + 16, value as u64)
    }

    /// Fetches the binding for `(callsite, pos)`, if any.
    ///
    /// # Errors
    /// Propagates faults on the shadow region itself.
    pub fn get_binding<M: MemIo>(
        &self,
        mem: &M,
        callsite: u64,
        pos: u8,
    ) -> Result<Option<Binding>, OutOfBounds> {
        let key = Self::bind_key(callsite, pos);
        let (ea, found) = self.probe(mem, key)?;
        if !found {
            return Ok(None);
        }
        let meta = mem.read_u64(ea + 8)?;
        let value = mem.read_u64(ea + 16)?;
        Ok(match meta & 0xff {
            KIND_BIND_MEM => Some(Binding::Mem(value)),
            KIND_BIND_CONST => Some(Binding::Const(value as i64)),
            _ => None,
        })
    }

    /// [`ShadowTable::probe`] with integrity checking: every slot the probe
    /// path visits is validated, not just the final one. Without this, a
    /// single flipped bit in a stored *key* silently diverts the probe past
    /// the real entry to an empty slot — the entry "vanishes" and the bytes
    /// it shadows would escape verification entirely.
    fn probe_checked<M: MemIo>(&self, mem: &M, key: u64) -> Result<(u64, bool), ShadowError> {
        let mut slot = Self::hash(key);
        for visited in 1..=SHADOW_CAPACITY {
            let ea = self.slot_addr(slot);
            let k = mem.read_u64(ea)?;
            if k == key {
                bastion_obs::observe("shadow.probe_len", visited);
                return Ok((ea, true));
            }
            let meta = mem.read_u64(ea + 8)?;
            let value = mem.read_u64(ea + 16)?;
            if k == 0 {
                // An empty-looking slot with live metadata is an occupied
                // slot whose key was wiped.
                if meta != 0 || value != 0 {
                    return Err(ShadowError::Corrupt { addr: ea });
                }
                bastion_obs::observe("shadow.probe_len", visited);
                return Ok((ea, false));
            }
            // A foreign slot redirects the probe; verify it really is a
            // healthy foreign entry before trusting the redirection.
            let kindsize = meta & META_LOW_MASK;
            if (meta >> META_SUM_SHIFT) & 0xff != entry_sum(k, kindsize, value) {
                return Err(ShadowError::Corrupt { addr: ea });
            }
            slot = slot.wrapping_add(1);
        }
        Ok((self.slot_addr(Self::hash(key)), false))
    }

    /// Reads an entry at `ea` and verifies its checksum against `key`.
    fn read_entry_checked<M: MemIo>(
        &self,
        mem: &M,
        ea: u64,
        key: u64,
    ) -> Result<(u64, u64), ShadowError> {
        let meta = mem.read_u64(ea + 8)?;
        let value = mem.read_u64(ea + 16)?;
        let kindsize = meta & META_LOW_MASK;
        if (meta >> META_SUM_SHIFT) & 0xff != entry_sum(key, kindsize, value) {
            return Err(ShadowError::Corrupt { addr: ea });
        }
        Ok((kindsize, value))
    }

    /// [`ShadowTable::read_value`] with integrity checking: the monitor's
    /// variant. A checksum mismatch is reported as corruption instead of
    /// being trusted.
    ///
    /// # Errors
    /// Propagates faults on the shadow region itself, and reports entries
    /// that fail their checksum.
    pub fn read_value_checked<M: MemIo>(
        &self,
        mem: &M,
        addr: u64,
    ) -> Result<Option<(u64, u8)>, ShadowError> {
        let (ea, found) = self.probe_checked(mem, addr)?;
        if !found {
            return Ok(None);
        }
        let (kindsize, value) = self.read_entry_checked(mem, ea, addr)?;
        if kindsize & 0xff != KIND_VALUE {
            return Ok(None);
        }
        Ok(Some((value, ((kindsize >> 8) & 0xff) as u8)))
    }

    /// [`ShadowTable::get_binding`] with integrity checking: the monitor's
    /// variant.
    ///
    /// # Errors
    /// Propagates faults on the shadow region itself, and reports entries
    /// that fail their checksum.
    pub fn get_binding_checked<M: MemIo>(
        &self,
        mem: &M,
        callsite: u64,
        pos: u8,
    ) -> Result<Option<Binding>, ShadowError> {
        let key = Self::bind_key(callsite, pos);
        let (ea, found) = self.probe_checked(mem, key)?;
        if !found {
            return Ok(None);
        }
        let (kindsize, value) = self.read_entry_checked(mem, ea, key)?;
        Ok(match kindsize & 0xff {
            KIND_BIND_MEM => Some(Binding::Mem(value)),
            KIND_BIND_CONST => Some(Binding::Const(value as i64)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Memory;

    fn setup() -> (Memory, ShadowTable) {
        let mut mem = Memory::new();
        let base = 0x5800_0000_0000;
        mem.map_region(base, SHADOW_REGION_SIZE);
        (mem, ShadowTable::new(base))
    }

    #[test]
    fn value_roundtrip_and_update() {
        let (mut mem, t) = setup();
        t.write_value(&mut mem, 0x7fff_1000, 42, 8).unwrap();
        assert_eq!(t.read_value(&mem, 0x7fff_1000).unwrap(), Some((42, 8)));
        t.write_value(&mut mem, 0x7fff_1000, 99, 8).unwrap();
        assert_eq!(t.read_value(&mem, 0x7fff_1000).unwrap(), Some((99, 8)));
        assert_eq!(t.read_value(&mem, 0x7fff_2000).unwrap(), None);
    }

    #[test]
    fn bindings_are_per_callsite_and_position() {
        let (mut mem, t) = setup();
        t.bind_mem(&mut mem, 0x40_1000, 3, 0x7fff_0008).unwrap();
        t.bind_const(&mut mem, 0x40_1000, 1, -1).unwrap();
        t.bind_const(&mut mem, 0x40_2000, 1, 7).unwrap();
        assert_eq!(
            t.get_binding(&mem, 0x40_1000, 3).unwrap(),
            Some(Binding::Mem(0x7fff_0008))
        );
        assert_eq!(
            t.get_binding(&mem, 0x40_1000, 1).unwrap(),
            Some(Binding::Const(-1))
        );
        assert_eq!(
            t.get_binding(&mem, 0x40_2000, 1).unwrap(),
            Some(Binding::Const(7))
        );
        assert_eq!(t.get_binding(&mem, 0x40_2000, 2).unwrap(), None);
    }

    #[test]
    fn many_entries_survive_collisions() {
        let (mut mem, t) = setup();
        for i in 0..2000u64 {
            t.write_value(&mut mem, 0x1_0000 + i * 8, i * 3, 8).unwrap();
        }
        for i in 0..2000u64 {
            assert_eq!(
                t.read_value(&mem, 0x1_0000 + i * 8).unwrap(),
                Some((i * 3, 8))
            );
        }
    }

    #[test]
    fn high_address_callsites_do_not_alias() {
        // Under the old `callsite << 3` packing these two callsites mapped
        // to the same key at the same position (the high bits shifted out
        // under BIND_TAG), so the second bind clobbered the first.
        let (mut mem, t) = setup();
        let low = 0x40_1000u64;
        let high = (1u64 << 60) | low;
        t.bind_const(&mut mem, low, 2, 111).unwrap();
        t.bind_const(&mut mem, high, 2, 222).unwrap();
        assert_eq!(
            t.get_binding(&mem, low, 2).unwrap(),
            Some(Binding::Const(111))
        );
        assert_eq!(
            t.get_binding(&mem, high, 2).unwrap(),
            Some(Binding::Const(222))
        );
    }

    #[test]
    fn byte_sized_entries_keep_their_size() {
        let (mut mem, t) = setup();
        t.write_value(&mut mem, 0x9000, 0x41, 1).unwrap();
        assert_eq!(t.read_value(&mem, 0x9000).unwrap(), Some((0x41, 1)));
    }

    /// Locates the slot holding `key` by scanning the region (test-only).
    fn find_entry(mem: &Memory, t: &ShadowTable, key: u64) -> u64 {
        for slot in 0..SHADOW_CAPACITY {
            let ea = t.base + slot * ENTRY_SIZE;
            if mem.read_u64(ea).unwrap() == key {
                return ea;
            }
        }
        panic!("entry not found");
    }

    #[test]
    fn checked_reads_match_unchecked_on_intact_entries() {
        let (mut mem, t) = setup();
        t.write_value(&mut mem, 0x7fff_1000, 42, 8).unwrap();
        t.bind_mem(&mut mem, 0x40_1000, 3, 0x7fff_1000).unwrap();
        t.bind_const(&mut mem, 0x40_1000, 1, -5).unwrap();
        assert_eq!(
            t.read_value_checked(&mem, 0x7fff_1000).unwrap(),
            Some((42, 8))
        );
        assert_eq!(t.read_value_checked(&mem, 0x7fff_2000).unwrap(), None);
        assert_eq!(
            t.get_binding_checked(&mem, 0x40_1000, 3).unwrap(),
            Some(Binding::Mem(0x7fff_1000))
        );
        assert_eq!(
            t.get_binding_checked(&mem, 0x40_1000, 1).unwrap(),
            Some(Binding::Const(-5))
        );
        assert_eq!(t.get_binding_checked(&mem, 0x40_1000, 2).unwrap(), None);
    }

    #[test]
    fn checked_reads_detect_value_corruption() {
        let (mut mem, t) = setup();
        t.write_value(&mut mem, 0x7fff_1000, 42, 8).unwrap();
        let ea = find_entry(&mem, &t, 0x7fff_1000);
        let v = mem.read_u64(ea + 16).unwrap();
        mem.write_u64(ea + 16, v ^ (1 << 13)).unwrap();
        // The unchecked reader happily returns the corrupted value; the
        // checked reader reports it.
        assert_eq!(
            t.read_value(&mem, 0x7fff_1000).unwrap(),
            Some((42 ^ (1 << 13), 8))
        );
        assert_eq!(
            t.read_value_checked(&mem, 0x7fff_1000),
            Err(ShadowError::Corrupt { addr: ea })
        );
    }

    #[test]
    fn checked_reads_detect_meta_corruption() {
        let (mut mem, t) = setup();
        t.bind_const(&mut mem, 0x40_1000, 2, 7).unwrap();
        let key = ShadowTable::bind_key(0x40_1000, 2);
        let ea = find_entry(&mem, &t, key);
        // Flip the binding kind from const to mem — an attack that would
        // redirect argument validation to an attacker-chosen address.
        let meta = mem.read_u64(ea + 8).unwrap();
        mem.write_u64(ea + 8, (meta & !0xff) | 2).unwrap();
        assert!(matches!(
            t.get_binding_checked(&mem, 0x40_1000, 2),
            Err(ShadowError::Corrupt { .. })
        ));
    }

    #[test]
    fn checked_probe_detects_key_corruption() {
        let (mut mem, t) = setup();
        t.write_value(&mut mem, 0x7fff_1000, 42, 8).unwrap();
        let ea = find_entry(&mem, &t, 0x7fff_1000);
        // Flip one key bit: the plain probe now misses the entry entirely
        // (the byte it shadows would silently escape verification), but the
        // checked probe refuses to walk past an inconsistent slot.
        let k = mem.read_u64(ea).unwrap();
        mem.write_u64(ea, k ^ (1 << 21)).unwrap();
        assert_eq!(t.read_value(&mem, 0x7fff_1000).unwrap(), None);
        assert!(matches!(
            t.read_value_checked(&mem, 0x7fff_1000),
            Err(ShadowError::Corrupt { .. })
        ));
    }

    #[test]
    fn checked_probe_detects_wiped_key() {
        let (mut mem, t) = setup();
        t.write_value(&mut mem, 0x7fff_1000, 42, 8).unwrap();
        let ea = find_entry(&mem, &t, 0x7fff_1000);
        // Zero the key: the slot now looks empty to the plain probe, but
        // its live metadata betrays the wipe.
        mem.write_u64(ea, 0).unwrap();
        assert_eq!(t.read_value(&mem, 0x7fff_1000).unwrap(), None);
        assert!(matches!(
            t.read_value_checked(&mem, 0x7fff_1000),
            Err(ShadowError::Corrupt { .. })
        ));
    }

    #[test]
    fn rebinding_restamps_the_checksum() {
        let (mut mem, t) = setup();
        t.bind_const(&mut mem, 0x40_1000, 1, 7).unwrap();
        t.bind_const(&mut mem, 0x40_1000, 1, 8).unwrap();
        assert_eq!(
            t.get_binding_checked(&mem, 0x40_1000, 1).unwrap(),
            Some(Binding::Const(8))
        );
    }
}
