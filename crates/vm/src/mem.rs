//! Sparse paged memory.
//!
//! A flat 64-bit address space backed by 4 KiB pages allocated on demand,
//! with an explicit *mapped region* set: access to unmapped addresses
//! faults, which is how the simulated kernel's `mmap`/`munmap`/`brk`
//! manipulate the address space and how wild attacker writes can crash a
//! victim rather than silently succeeding.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Multiply-shift hasher for page numbers. Page indices are
/// attacker-influenced only through `mmap` of a simulated process, so a
/// DoS-resistant hash buys nothing here and SipHash is pure overhead on
/// the interpreter's per-load/store page lookup.
#[derive(Default)]
pub(crate) struct PageHasher(u64);

impl Hasher for PageHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        // The high bits carry the entropy after the multiply; HashMap keys
        // buckets off the low bits.
        self.0.rotate_left(32)
    }
}

/// Pages are reference-counted so that a cloned `Memory` (a snapshot, or a
/// fork child) shares every page with its source; `page_mut` breaks the
/// sharing one page at a time on first write (copy-on-write).
type PageMap = HashMap<u64, Arc<[u8; PAGE_SIZE as usize]>, BuildHasherDefault<PageHasher>>;

/// An access outside any mapped region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBounds {
    /// The faulting address.
    pub addr: u64,
    /// Whether the access was a write.
    pub write: bool,
}

impl fmt::Display for OutOfBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault at {:#x}",
            if self.write { "write" } else { "read" },
            self.addr
        )
    }
}

impl std::error::Error for OutOfBounds {}

/// Minimal byte-addressed access interface shared by the VM (direct memory
/// access) and the monitor (remote access through the ptrace simulation),
/// so the shadow-table logic in [`crate::shadow`] is written once.
pub trait MemIo {
    /// Reads `buf.len()` bytes at `addr`.
    ///
    /// # Errors
    /// Fails if any byte is unmapped.
    fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), OutOfBounds>;

    /// Writes `buf` at `addr`.
    ///
    /// # Errors
    /// Fails if any byte is unmapped.
    fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), OutOfBounds>;

    /// Reads a little-endian u64.
    ///
    /// # Errors
    /// Fails if any byte is unmapped.
    #[inline]
    fn read_u64(&self, addr: u64) -> Result<u64, OutOfBounds> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian u64.
    ///
    /// # Errors
    /// Fails if any byte is unmapped.
    #[inline]
    fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), OutOfBounds> {
        self.write(addr, &v.to_le_bytes())
    }
}

/// The sparse paged address space of one process.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: PageMap,
    /// Mapped regions: start → length (disjoint, coalesced on insert).
    regions: BTreeMap<u64, u64>,
    /// Last region hit by a mapping check, as `(start, end)`. Loop-local
    /// and sequential accesses land in the same region, so this skips the
    /// `BTreeMap` range query on the interpreter's load/store hot path.
    /// `(0, 0)` means empty; invalidated whenever the region set changes.
    cache: Cell<(u64, u64)>,
}

impl Memory {
    /// Creates an empty, fully unmapped address space.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Maps `[start, start+len)`; overlapping and adjacent maps are
    /// coalesced into one region, so a re-map can never shrink an existing
    /// mapping and a nested map can never shadow its enclosing region from
    /// the `is_mapped` probe.
    pub fn map_region(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut new_start = start;
        let mut new_end = start.saturating_add(len);
        // Absorb every region overlapping or touching [new_start, new_end).
        while let Some((&rs, &rl)) = self.regions.range(..=new_end).next_back() {
            let re = rs + rl;
            if re < new_start {
                break;
            }
            self.regions.remove(&rs);
            new_start = new_start.min(rs);
            new_end = new_end.max(re);
        }
        self.regions.insert(new_start, new_end - new_start);
        self.cache.set((0, 0));
    }

    /// Unmaps any region starting inside `[start, start+len)` and trims
    /// regions overlapping the range (page-coarse, like munmap).
    pub fn unmap_region(&mut self, start: u64, len: u64) {
        let end = start.saturating_add(len);
        let mut rebuilt = BTreeMap::new();
        for (&rs, &rl) in &self.regions {
            let re = rs + rl;
            if re <= start || rs >= end {
                rebuilt.insert(rs, rl);
                continue;
            }
            if rs < start {
                rebuilt.insert(rs, start - rs);
            }
            if re > end {
                rebuilt.insert(end, re - end);
            }
        }
        self.regions = rebuilt;
        self.cache.set((0, 0));
    }

    /// Whether every byte of `[addr, addr+len)` is mapped.
    #[inline]
    pub fn is_mapped(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = addr.saturating_add(len);
        let (cs, ce) = self.cache.get();
        if addr >= cs && end <= ce {
            return true;
        }
        let mut cur = addr;
        while cur < end {
            let Some((&rs, &rl)) = self.regions.range(..=cur).next_back() else {
                return false;
            };
            let re = rs + rl;
            if cur >= re {
                return false;
            }
            if cur == addr {
                self.cache.set((rs, re));
            }
            cur = re;
        }
        true
    }

    /// Length of the longest fully mapped prefix of `[addr, addr+len)`.
    /// Returns 0 if `addr` itself is unmapped. Backs partial remote reads
    /// (`process_vm_readv` may return fewer bytes than requested).
    pub fn mapped_prefix_len(&self, addr: u64, len: u64) -> u64 {
        let end = addr.saturating_add(len);
        let mut cur = addr;
        while cur < end {
            let Some((&rs, &rl)) = self.regions.range(..=cur).next_back() else {
                break;
            };
            let re = rs + rl;
            if cur >= re {
                break;
            }
            cur = re.min(end);
        }
        cur - addr
    }

    /// All mapped regions as `(start, len)` pairs.
    pub fn regions(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.regions.iter().map(|(&s, &l)| (s, l))
    }

    /// Total bytes of backing pages actually allocated.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Number of backing pages currently in the page table.
    pub fn resident_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Number of resident pages whose backing store is shared with at least
    /// one other `Memory` (a live snapshot or fork sibling) and would be
    /// copied on the next write.
    pub fn shared_pages(&self) -> u64 {
        self.pages
            .values()
            .filter(|p| Arc::strong_count(p) > 1)
            .count() as u64
    }

    /// Drops every all-zero backing page. Semantics-preserving: absent pages
    /// read as zeros (`read_unchecked`) and mapping checks consult the
    /// region set, never the page table. Called on snapshot so a checkpoint
    /// neither pins dead zero pages nor diverges in `resident_pages` from a
    /// world that never dirtied them. Returns the number of pages reclaimed.
    pub fn prune_zero_pages(&mut self) -> u64 {
        let before = self.pages.len();
        self.pages.retain(|_, p| p.iter().any(|&b| b != 0));
        (before - self.pages.len()) as u64
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE as usize] {
        Arc::make_mut(
            self.pages
                .entry(page)
                .or_insert_with(|| Arc::new([0u8; PAGE_SIZE as usize])),
        )
    }

    /// Raw read that ignores the region map (used by the attack framework's
    /// "arbitrary read" primitive and by fault-tolerant monitor probes).
    /// Copies page-sized chunks, one page-table lookup per page touched.
    pub fn read_unchecked(&self, addr: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr.wrapping_add(done as u64);
            let (page, off) = (a / PAGE_SIZE, (a % PAGE_SIZE) as usize);
            let n = (buf.len() - done).min(PAGE_SIZE as usize - off);
            match self.pages.get(&page) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Raw write that ignores the region map (attacker primitive).
    /// Copies page-sized chunks, one page-table lookup per page touched.
    pub fn write_unchecked(&mut self, addr: u64, buf: &[u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr.wrapping_add(done as u64);
            let (page, off) = (a / PAGE_SIZE, (a % PAGE_SIZE) as usize);
            let n = (buf.len() - done).min(PAGE_SIZE as usize - off);
            self.page_mut(page)[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
        }
    }
}

impl MemIo for Memory {
    #[inline]
    fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), OutOfBounds> {
        if !self.is_mapped(addr, buf.len() as u64) {
            return Err(OutOfBounds { addr, write: false });
        }
        self.read_unchecked(addr, buf);
        Ok(())
    }

    #[inline]
    fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), OutOfBounds> {
        if !self.is_mapped(addr, buf.len() as u64) {
            return Err(OutOfBounds { addr, write: true });
        }
        self.write_unchecked(addr, buf);
        Ok(())
    }

    #[inline]
    fn read_u64(&self, addr: u64) -> Result<u64, OutOfBounds> {
        if !self.is_mapped(addr, 8) {
            return Err(OutOfBounds { addr, write: false });
        }
        let off = (addr % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            // Within one page: a single lookup and an aligned-free copy.
            return Ok(match self.pages.get(&(addr / PAGE_SIZE)) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().unwrap()),
                None => 0,
            });
        }
        let mut b = [0u8; 8];
        self.read_unchecked(addr, &mut b);
        Ok(u64::from_le_bytes(b))
    }

    #[inline]
    fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), OutOfBounds> {
        if !self.is_mapped(addr, 8) {
            return Err(OutOfBounds { addr, write: true });
        }
        let off = (addr % PAGE_SIZE) as usize;
        if off <= PAGE_SIZE as usize - 8 {
            self.page_mut(addr / PAGE_SIZE)[off..off + 8].copy_from_slice(&v.to_le_bytes());
            return Ok(());
        }
        self.write_unchecked(addr, &v.to_le_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let mut m = Memory::new();
        let mut b = [0u8; 4];
        assert!(m.read(0x1000, &mut b).is_err());
        assert!(m.write(0x1000, &b).is_err());
        m.map_region(0x1000, 0x1000);
        assert!(m.read(0x1000, &mut b).is_ok());
        assert!(m.write(0x1000, &b).is_ok());
    }

    #[test]
    fn rw_roundtrip_across_page_boundary() {
        let mut m = Memory::new();
        m.map_region(0, 2 * PAGE_SIZE);
        let data: Vec<u8> = (0..=255).collect();
        let addr = PAGE_SIZE - 100;
        m.write(addr, &data).unwrap();
        let mut back = vec![0u8; 256];
        m.read(addr, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn u64_helpers() {
        let mut m = Memory::new();
        m.map_region(0x2000, 0x100);
        m.write_u64(0x2008, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(0x2008).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn spanning_two_regions_is_mapped() {
        let mut m = Memory::new();
        m.map_region(0x1000, 0x1000);
        m.map_region(0x2000, 0x1000);
        assert!(m.is_mapped(0x1800, 0x1000));
        assert!(!m.is_mapped(0x2800, 0x1000));
    }

    #[test]
    fn unmap_trims_and_splits() {
        let mut m = Memory::new();
        m.map_region(0x1000, 0x3000);
        m.unmap_region(0x2000, 0x1000);
        assert!(m.is_mapped(0x1000, 0x1000));
        assert!(!m.is_mapped(0x2000, 1));
        assert!(m.is_mapped(0x3000, 0x1000));
    }

    #[test]
    fn unchecked_access_never_faults() {
        let mut m = Memory::new();
        m.write_unchecked(0xdead_0000, b"hi");
        let mut b = [0u8; 2];
        m.read_unchecked(0xdead_0000, &mut b);
        assert_eq!(&b, b"hi");
        // And a read of never-written memory yields zeros.
        m.read_unchecked(0xffff_ffff_0000, &mut b);
        assert_eq!(&b, &[0, 0]);
    }

    #[test]
    fn mapped_prefix_len_stops_at_gaps() {
        let mut m = Memory::new();
        m.map_region(0x1000, 0x1000);
        m.map_region(0x2000, 0x1000); // contiguous with the first
        assert_eq!(m.mapped_prefix_len(0x1800, 0x100), 0x100);
        assert_eq!(m.mapped_prefix_len(0x2f00, 0x1000), 0x100);
        assert_eq!(m.mapped_prefix_len(0x4000, 64), 0);
        assert_eq!(m.mapped_prefix_len(0x1000, 0x4000), 0x2000);
    }

    #[test]
    fn zero_length_access_is_ok() {
        let m = Memory::new();
        assert!(m.is_mapped(0x1234, 0));
    }

    #[test]
    fn remap_inside_existing_region_does_not_shrink_it() {
        // Regression: `regions` is keyed by start, so a bare insert of
        // (0x1000, 0x1000) over (0x1000, 0x3000) used to shrink the map.
        let mut m = Memory::new();
        m.map_region(0x1000, 0x3000);
        m.map_region(0x1000, 0x1000);
        assert!(m.is_mapped(0x1000, 0x3000));
        assert!(m.is_mapped(0x3000, 0x1000));
    }

    #[test]
    fn nested_map_does_not_hide_enclosing_region() {
        // Regression: a later-start overlapping insert used to be the entry
        // `range(..=cur).next_back()` found, hiding the enclosing region.
        let mut m = Memory::new();
        m.map_region(0x1000, 0x3000);
        m.map_region(0x2000, 0x100);
        assert!(m.is_mapped(0x2800, 0x800));
        assert!(m.is_mapped(0x1000, 0x3000));
        assert!(!m.is_mapped(0x4000, 1));
    }

    #[test]
    fn bridging_map_coalesces_into_one_region() {
        let mut m = Memory::new();
        m.map_region(0x1000, 0x1000);
        m.map_region(0x3000, 0x1000);
        assert!(!m.is_mapped(0x2000, 0x100));
        m.map_region(0x1800, 0x2000); // bridges the gap, overlapping both
        assert!(m.is_mapped(0x1000, 0x3000));
        assert_eq!(m.regions().collect::<Vec<_>>(), vec![(0x1000, 0x3000)]);
    }

    #[test]
    fn cloned_memory_shares_pages_until_written() {
        let mut m = Memory::new();
        m.map_region(0x1000, 0x3000);
        m.write_u64(0x1000, 1).unwrap();
        m.write_u64(0x2000, 2).unwrap();
        let mut c = m.clone();
        assert_eq!(m.shared_pages(), 2);
        assert_eq!(c.shared_pages(), 2);
        // Writing through the clone copies only the touched page and never
        // disturbs the original.
        c.write_u64(0x1000, 99).unwrap();
        assert_eq!(m.read_u64(0x1000).unwrap(), 1);
        assert_eq!(c.read_u64(0x1000).unwrap(), 99);
        assert_eq!(m.shared_pages(), 1);
        assert_eq!(c.read_u64(0x2000).unwrap(), 2);
    }

    #[test]
    fn prune_zero_pages_reclaims_and_preserves_reads() {
        let mut m = Memory::new();
        m.map_region(0x1000, 0x3000);
        m.write_u64(0x1000, 7).unwrap();
        m.write_u64(0x2000, 7).unwrap();
        m.write_u64(0x2000, 0).unwrap(); // page dirtied, then zeroed
        m.write_u64(0x3000, 0).unwrap(); // page dirtied with zeros only
        assert_eq!(m.resident_pages(), 3);
        assert_eq!(m.prune_zero_pages(), 2);
        assert_eq!(m.resident_pages(), 1);
        assert_eq!(m.read_u64(0x1000).unwrap(), 7);
        assert_eq!(m.read_u64(0x2000).unwrap(), 0);
        assert_eq!(m.read_u64(0x3000).unwrap(), 0);
        assert!(m.is_mapped(0x2000, 8));
    }

    #[test]
    fn region_cache_is_invalidated_by_unmap() {
        let mut m = Memory::new();
        m.map_region(0x1000, 0x1000);
        assert!(m.is_mapped(0x1800, 8)); // populates the cache
        m.unmap_region(0x1000, 0x1000);
        assert!(!m.is_mapped(0x1800, 8));
        m.map_region(0x1000, 0x800);
        assert!(m.is_mapped(0x1000, 0x800));
        assert!(!m.is_mapped(0x1800, 8));
    }
}
