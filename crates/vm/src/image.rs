//! The loader: process image layout.
//!
//! Lays a validated module out into a virtual address space:
//!
//! ```text
//! 0x0040_0000 (+ slide)  code        (instruction addresses, CodeLayout)
//! 0x0060_0000 (+ slide)  data        (globals; relocations resolved)
//! 0x0200_0000            heap        (grown by brk)
//! 0x7f00_0000_0000       mmap area   (grown by mmap)
//! 0x7fff_fff0_0000       stack       (grows down; STACK_SIZE mapped)
//! 0x5800_0000_0000 (+ slide) shadow  (BASTION shadow table, $gs base)
//! ```
//!
//! Coarse ASLR (paper §4 assumes it) is modelled by a page-aligned slide
//! derived from a seed; BASTION is relative-addressing based, so everything
//! keeps working under any slide — the monitor learns the load bias exactly
//! like reading `/proc/pid/maps`.

use crate::decode::DecodedProgram;
use crate::mem::Memory;
use crate::shadow::{ShadowTable, SHADOW_REGION_SIZE};
use bastion_ir::module::{GlobalInit, RelocEntry};
use bastion_ir::{CodeLayout, FuncId, Module, ValidateError};
use std::sync::Arc;

/// Default link base of the code segment.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Default base of the data segment (before slide).
pub const DATA_BASE: u64 = 0x0060_0000;
/// Initial program break.
pub const HEAP_BASE: u64 = 0x0200_0000;
/// Bottom of the mmap allocation area.
pub const MMAP_BASE: u64 = 0x7f00_0000_0000;
/// Top of the initial stack (exclusive).
pub const STACK_TOP: u64 = 0x7fff_fff0_0000;
/// Stack size mapped at load.
pub const STACK_SIZE: u64 = 256 * 1024;
/// Shadow region base (before slide).
pub const SHADOW_BASE: u64 = 0x5800_0000_0000;

/// Per-function frame layout cache.
#[derive(Debug, Clone)]
pub struct FrameInfo {
    /// Total slot-area size in bytes.
    pub frame_size: u64,
    /// Byte offset of each slot from the slot-area base.
    pub slot_offsets: Vec<u64>,
}

/// Configures and builds an [`Image`].
#[derive(Debug, Clone, Default)]
pub struct ImageBuilder {
    aslr_seed: Option<u64>,
}

impl ImageBuilder {
    /// A builder with ASLR disabled (slide 0).
    pub fn new() -> Self {
        ImageBuilder::default()
    }

    /// Enables a deterministic ASLR-style slide derived from `seed`.
    pub fn aslr_seed(mut self, seed: u64) -> Self {
        self.aslr_seed = Some(seed);
        self
    }

    /// Lays out `module`.
    ///
    /// # Errors
    /// Fails if the module does not validate or lacks a `main` function.
    pub fn build(self, module: Module) -> Result<Image, ValidateError> {
        module.validate()?;
        let entry = module.func_by_name("main").ok_or_else(|| ValidateError {
            func: None,
            message: "module has no `main` function".into(),
        })?;

        let slide = self.aslr_seed.map_or(0, |s| {
            // Page-aligned slide within 256 MiB, deterministic in the seed.
            (s.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20 & 0xffff) << 12
        });
        let layout = CodeLayout::with_base(&module, CODE_BASE + slide);

        // Assign global addresses (8-byte aligned, sequential).
        let data_base = (DATA_BASE + slide).max(layout.code_end().raw().div_ceil(4096) * 4096);
        let mut global_addrs = Vec::with_capacity(module.globals.len());
        let mut cursor = data_base;
        for g in &module.globals {
            cursor = cursor.div_ceil(8) * 8;
            global_addrs.push(cursor);
            cursor += g.ty.size(&module.structs).max(8);
        }
        let data_end = cursor;

        let frame_info: Vec<FrameInfo> = module
            .functions
            .iter()
            .map(|f| {
                let slot_offsets = (0..f.locals.len())
                    .map(|i| f.slot_offset(bastion_ir::SlotId(i as u32), &module.structs))
                    .collect();
                FrameInfo {
                    frame_size: f.frame_size(&module.structs),
                    slot_offsets,
                }
            })
            .collect();

        let shadow_base = SHADOW_BASE + (slide << 4);
        let decoded = DecodedProgram::decode(&module, &layout, &frame_info, &global_addrs);

        Ok(Image {
            module: Arc::new(module),
            layout,
            decoded,
            global_addrs,
            frame_info,
            entry,
            data_base,
            data_end,
            heap_base: HEAP_BASE,
            mmap_base: MMAP_BASE,
            stack_top: STACK_TOP,
            stack_base: STACK_TOP - STACK_SIZE,
            shadow: ShadowTable::new(shadow_base),
            slide,
        })
    }
}

/// A loaded program image: the module plus its address-space geometry.
#[derive(Debug, Clone)]
pub struct Image {
    /// The executable module (shared across forked processes).
    pub module: Arc<Module>,
    /// Instruction address map.
    pub layout: CodeLayout,
    /// Predecoded flat instruction stream (the interpreter fast path).
    pub decoded: DecodedProgram,
    /// Load address of each global.
    pub global_addrs: Vec<u64>,
    /// Frame geometry per function.
    pub frame_info: Vec<FrameInfo>,
    /// The `main` function.
    pub entry: FuncId,
    /// Data segment bounds.
    pub data_base: u64,
    /// One past the last data byte.
    pub data_end: u64,
    /// Initial program break.
    pub heap_base: u64,
    /// Bottom of the mmap allocation area.
    pub mmap_base: u64,
    /// Lowest mapped stack address.
    pub stack_base: u64,
    /// Top of the stack (exclusive).
    pub stack_top: u64,
    /// The shadow-memory table descriptor ($gs base).
    pub shadow: ShadowTable,
    /// The ASLR slide applied (0 when disabled).
    pub slide: u64,
}

impl Image {
    /// Builds an image with default settings (no ASLR).
    ///
    /// # Errors
    /// Fails if the module does not validate or lacks `main`.
    pub fn load(module: Module) -> Result<Image, ValidateError> {
        ImageBuilder::new().build(module)
    }

    /// Creates a fresh [`Memory`] with data, stack, and shadow mapped and
    /// globals initialized.
    pub fn fresh_memory(&self) -> Memory {
        let mut mem = Memory::new();
        mem.map_region(self.data_base, (self.data_end - self.data_base).max(8));
        mem.map_region(self.stack_base, self.stack_top - self.stack_base);
        mem.map_region(self.shadow.base, SHADOW_REGION_SIZE);
        for (i, g) in self.module.globals.iter().enumerate() {
            let addr = self.global_addrs[i];
            match &g.init {
                GlobalInit::Zero => {}
                GlobalInit::Bytes(b) => mem.write_unchecked(addr, b),
                GlobalInit::Words(ws) => {
                    for (j, w) in ws.iter().enumerate() {
                        mem.write_unchecked(addr + j as u64 * 8, &w.to_le_bytes());
                    }
                }
                GlobalInit::Relocated(entries) => {
                    for (j, e) in entries.iter().enumerate() {
                        let v = match e {
                            RelocEntry::Word(w) => *w as u64,
                            RelocEntry::FuncAddr(f) => self.layout.func_entry(*f).raw(),
                            RelocEntry::GlobalAddr(g) => self.global_addrs[g.index()],
                        };
                        mem.write_unchecked(addr + j as u64 * 8, &v.to_le_bytes());
                    }
                }
            }
        }
        mem
    }

    /// Load address of global `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn global_addr(&self, id: bastion_ir::GlobalId) -> u64 {
        self.global_addrs[id.index()]
    }

    /// Resolves a function or global symbol name to its load address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        if let Some(f) = self.module.func_by_name(name) {
            return Some(self.layout.func_entry(f).raw());
        }
        self.module
            .global_by_name(name)
            .map(|g| self.global_addr(g))
    }

    /// Frame info for `f`.
    ///
    /// # Panics
    /// Panics if `f` is out of bounds.
    pub fn frame(&self, f: FuncId) -> &FrameInfo {
        &self.frame_info[f.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemIo;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::module::GlobalInit;
    use bastion_ir::{Operand, Ty};

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("img");
        let target = mb.declare("target", &[], Ty::Void);
        let _s = mb.global_str("msg", "hello");
        let _w = mb.global(
            "nums",
            Ty::Array(Box::new(Ty::I64), 3),
            GlobalInit::Words(vec![1, 2, 3]),
        );
        let _t = mb.global(
            "table",
            Ty::Array(Box::new(Ty::Func { arity: 0 }), 1),
            GlobalInit::Relocated(vec![RelocEntry::FuncAddr(target)]),
        );
        let mut f = mb.define(target);
        f.ret(None);
        f.finish();
        let mut f = mb.function("main", &[], Ty::I64);
        f.ret(Some(Operand::Imm(0)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn load_initializes_globals_and_relocations() {
        let img = Image::load(sample()).unwrap();
        let mem = img.fresh_memory();
        let msg = img.symbol("msg").unwrap();
        let mut b = [0u8; 5];
        mem.read(msg, &mut b).unwrap();
        assert_eq!(&b, b"hello");
        let nums = img.symbol("nums").unwrap();
        assert_eq!(mem.read_u64(nums + 8).unwrap(), 2);
        let table = img.symbol("table").unwrap();
        let target_entry = img.symbol("target").unwrap();
        assert_eq!(mem.read_u64(table).unwrap(), target_entry);
    }

    #[test]
    fn missing_main_is_rejected() {
        let mut mb = ModuleBuilder::new("nomain");
        let mut f = mb.function("not_main", &[], Ty::Void);
        f.ret(None);
        f.finish();
        let err = Image::load(mb.finish()).unwrap_err();
        assert!(err.message.contains("main"));
    }

    #[test]
    fn aslr_slides_code_data_and_shadow_deterministically() {
        let a1 = ImageBuilder::new().aslr_seed(7).build(sample()).unwrap();
        let a2 = ImageBuilder::new().aslr_seed(7).build(sample()).unwrap();
        let b = ImageBuilder::new().aslr_seed(8).build(sample()).unwrap();
        assert_eq!(a1.slide, a2.slide);
        assert_ne!(a1.slide, b.slide);
        assert_eq!(a1.symbol("main"), a2.symbol("main"));
        assert_ne!(a1.symbol("main"), b.symbol("main"));
        assert_ne!(a1.shadow.base, b.shadow.base);
        assert_eq!(a1.slide % 4096, 0);
    }

    #[test]
    fn stack_and_shadow_are_mapped() {
        let img = Image::load(sample()).unwrap();
        let mem = img.fresh_memory();
        assert!(mem.is_mapped(img.stack_top - 8, 8));
        assert!(mem.is_mapped(img.shadow.base, SHADOW_REGION_SIZE));
        assert!(!mem.is_mapped(img.heap_base, 8)); // heap unmapped until brk
    }

    #[test]
    fn symbols_resolve_functions_and_globals() {
        let img = Image::load(sample()).unwrap();
        assert!(img.symbol("main").is_some());
        assert!(img.symbol("msg").is_some());
        assert!(img.symbol("nothing").is_none());
    }
}
