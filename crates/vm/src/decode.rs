//! Predecoded flat instruction stream.
//!
//! The tree-walking interpreter pays for the IR's nesting on every step:
//! two `Vec` derefs to find the block, a heap-backed [`Inst`] clone (call
//! argument lists are `Vec<Operand>`), struct-field offset computation, and
//! a linear scan for the callsite a `ctx_bind_*` intrinsic refers to. All
//! of that is a pure function of the loaded image, so [`DecodedProgram`]
//! computes it once at `Image::load`:
//!
//! * every function is flattened into one contiguous `Vec<DecodedInst>`
//!   indexed by `(code_addr - code_base) / INST_SIZE` — the same flat unit
//!   space [`CodeLayout`] assigns addresses in, with [`DecodedInst::Pad`]
//!   filling the 16-byte alignment gaps between functions;
//! * call/syscall operand lists are interned into a side arena and
//!   referenced by [`ArgSlice`], so the hot loop never clones or allocates;
//! * `FieldAddr` offsets, `GlobalAddr`/`FuncAddr` targets, direct-call
//!   entry units, per-call return addresses, `FrameAddr` fp-relative
//!   offsets, and `ctx_bind_*` callsite addresses are all pre-resolved;
//! * branch targets become flat unit indices, so taken branches are a
//!   single index assignment.
//!
//! Decoding is layout-faithful by construction: unit `i` of the stream is
//! exactly the instruction at code address `base + i * INST_SIZE`, so
//! ROP/JOP control transfers into the middle of functions land on the same
//! instruction the legacy path would execute.

use crate::image::FrameInfo;
use bastion_ir::layout::INST_SIZE;
use bastion_ir::{
    BinOp, Callee, CmpOp, CodeLayout, FuncId, Inst, InstLoc, IntrinsicOp, Module, Operand, Reg,
    Terminator, Width, CALL_SIZE,
};

/// A span in the [`DecodedProgram`] operand arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgSlice {
    start: u32,
    len: u32,
}

impl ArgSlice {
    /// Number of operands in the slice.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the slice is empty.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// One predecoded instruction unit. `Copy` and flat: executing one never
/// touches the IR tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodedInst {
    /// `dst = src`
    Mov { dst: Reg, src: Operand },
    /// `dst = a <op> b`
    Bin {
        dst: Reg,
        op: BinOp,
        a: Operand,
        b: Operand,
    },
    /// `dst = (a <op> b) as 0/1`
    Cmp {
        dst: Reg,
        op: CmpOp,
        a: Operand,
        b: Operand,
    },
    /// `dst = *(addr)`
    Load {
        dst: Reg,
        addr: Operand,
        width: Width,
    },
    /// `*(addr) = src`
    Store {
        addr: Operand,
        src: Operand,
        width: Width,
    },
    /// `dst = fp - neg_off` — slot address with the frame geometry folded
    /// in (`neg_off = frame_size - slot_offset`).
    FrameAddr { dst: Reg, neg_off: u64 },
    /// `dst = addr` — a pre-resolved `GlobalAddr` or `FuncAddr`.
    LoadAddr { dst: Reg, addr: u64 },
    /// `dst = base + off` — `FieldAddr` with the struct offset pre-summed.
    FieldAddr { dst: Reg, base: Operand, off: u64 },
    /// `dst = base + index * elem_size`
    IndexAddr {
        dst: Reg,
        base: Operand,
        elem_size: u64,
        index: Operand,
    },
    /// Direct call with the target entry resolved to a flat unit and the
    /// return address precomputed.
    CallDirect {
        dst: Option<Reg>,
        args: ArgSlice,
        target_unit: u32,
        retaddr: u64,
    },
    /// Indirect call; the target is still runtime data, the return address
    /// is precomputed.
    CallIndirect {
        dst: Option<Reg>,
        args: ArgSlice,
        target: Operand,
        retaddr: u64,
    },
    /// The `syscall` machine instruction.
    Syscall { dst: Reg, nr: u32, args: ArgSlice },
    /// `ctx_write_mem(addr, size)`
    CtxWriteMem { addr: Operand, size: u32 },
    /// `ctx_bind_mem_pos(addr)` with the callsite it refers to (the next
    /// call in the block) resolved at decode time.
    CtxBindMem {
        pos: u8,
        addr: Operand,
        callsite: Option<u64>,
    },
    /// `ctx_bind_const_pos(value)` with the callsite pre-resolved.
    CtxBindConst {
        pos: u8,
        value: i64,
        callsite: Option<u64>,
    },
    /// Unconditional jump to a flat unit in the same function.
    Jmp { target: u32 },
    /// Conditional branch to flat units in the same function.
    Br {
        cond: Operand,
        then_: u32,
        else_: u32,
    },
    /// Return, optionally with a value.
    Ret { val: Option<Operand> },
    /// Inter-function alignment padding; never reachable (every control
    /// transfer is validated against the layout before landing).
    Pad,
}

/// The flat predecoded form of a loaded module.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    base: u64,
    units: Vec<DecodedInst>,
    /// Interned call/syscall argument operands.
    args: Vec<Operand>,
    /// `InstLoc` of each unit (dummy for `Pad` units), for syncing the
    /// machine's architectural `pc` at event boundaries.
    locs: Vec<InstLoc>,
}

impl DecodedProgram {
    /// Flattens `module` according to `layout`. `frame_info` and
    /// `global_addrs` come from the image builder and let the decoder fold
    /// frame geometry and data-segment addresses into the stream.
    pub fn decode(
        module: &Module,
        layout: &CodeLayout,
        frame_info: &[FrameInfo],
        global_addrs: &[u64],
    ) -> Self {
        let base = layout.code_base().raw();
        let total = layout.total_units() as usize;
        let mut units = Vec::with_capacity(total);
        let mut args = Vec::new();
        let pad_loc = InstLoc {
            func: FuncId(0),
            block: bastion_ir::BlockId(0),
            inst: 0,
        };
        let mut locs = vec![pad_loc; total];

        let intern = |ops: &[Operand], args: &mut Vec<Operand>| -> ArgSlice {
            let start = args.len() as u32;
            args.extend_from_slice(ops);
            ArgSlice {
                start,
                len: ops.len() as u32,
            }
        };

        for (fidx, func) in module.functions.iter().enumerate() {
            let fid = FuncId(fidx as u32);
            let entry_unit = ((layout.func_entry(fid).raw() - base) / INST_SIZE) as usize;
            units.resize(entry_unit, DecodedInst::Pad);
            let fi = &frame_info[fidx];
            for (bidx, block) in func.blocks.iter().enumerate() {
                let bid = bastion_ir::BlockId(bidx as u32);
                for (iidx, inst) in block.insts.iter().enumerate() {
                    let loc = InstLoc {
                        func: fid,
                        block: bid,
                        inst: iidx,
                    };
                    locs[units.len()] = loc;
                    let addr = layout.addr_of(loc).raw();
                    // Callsite a ctx_bind_* at this position refers to: the
                    // next call instruction in the same block.
                    let next_callsite = || {
                        block.insts[iidx + 1..]
                            .iter()
                            .position(Inst::is_call)
                            .map(|d| {
                                layout
                                    .addr_of(InstLoc {
                                        inst: iidx + 1 + d,
                                        ..loc
                                    })
                                    .raw()
                            })
                    };
                    let d = match inst {
                        Inst::Mov { dst, src } => DecodedInst::Mov {
                            dst: *dst,
                            src: *src,
                        },
                        Inst::Bin { dst, op, a, b } => DecodedInst::Bin {
                            dst: *dst,
                            op: *op,
                            a: *a,
                            b: *b,
                        },
                        Inst::Cmp { dst, op, a, b } => DecodedInst::Cmp {
                            dst: *dst,
                            op: *op,
                            a: *a,
                            b: *b,
                        },
                        Inst::Load { dst, addr, width } => DecodedInst::Load {
                            dst: *dst,
                            addr: *addr,
                            width: *width,
                        },
                        Inst::Store { addr, src, width } => DecodedInst::Store {
                            addr: *addr,
                            src: *src,
                            width: *width,
                        },
                        Inst::FrameAddr { dst, slot } => DecodedInst::FrameAddr {
                            dst: *dst,
                            neg_off: fi.frame_size - fi.slot_offsets[slot.index()],
                        },
                        Inst::GlobalAddr { dst, global } => DecodedInst::LoadAddr {
                            dst: *dst,
                            addr: global_addrs[global.index()],
                        },
                        Inst::FuncAddr { dst, func } => DecodedInst::LoadAddr {
                            dst: *dst,
                            addr: layout.func_entry(*func).raw(),
                        },
                        Inst::FieldAddr {
                            dst,
                            base: b,
                            struct_id,
                            field,
                        } => DecodedInst::FieldAddr {
                            dst: *dst,
                            base: *b,
                            off: module.structs[struct_id.index()]
                                .field_offset(*field as usize, &module.structs),
                        },
                        Inst::IndexAddr {
                            dst,
                            base: b,
                            elem_size,
                            index,
                        } => DecodedInst::IndexAddr {
                            dst: *dst,
                            base: *b,
                            elem_size: *elem_size,
                            index: *index,
                        },
                        Inst::Call {
                            dst,
                            callee,
                            args: a,
                        } => {
                            let slice = intern(a, &mut args);
                            let retaddr = addr + CALL_SIZE;
                            match callee {
                                Callee::Direct(f) => DecodedInst::CallDirect {
                                    dst: *dst,
                                    args: slice,
                                    target_unit: ((layout.func_entry(*f).raw() - base) / INST_SIZE)
                                        as u32,
                                    retaddr,
                                },
                                Callee::Indirect(op) => DecodedInst::CallIndirect {
                                    dst: *dst,
                                    args: slice,
                                    target: *op,
                                    retaddr,
                                },
                            }
                        }
                        Inst::Syscall { dst, nr, args: a } => DecodedInst::Syscall {
                            dst: *dst,
                            nr: *nr,
                            args: intern(a, &mut args),
                        },
                        Inst::Intrinsic(op) => match op {
                            IntrinsicOp::CtxWriteMem { addr, size } => DecodedInst::CtxWriteMem {
                                addr: *addr,
                                size: *size,
                            },
                            IntrinsicOp::CtxBindMem { pos, addr } => DecodedInst::CtxBindMem {
                                pos: *pos,
                                addr: *addr,
                                callsite: next_callsite(),
                            },
                            IntrinsicOp::CtxBindConst { pos, value } => DecodedInst::CtxBindConst {
                                pos: *pos,
                                value: *value,
                                callsite: next_callsite(),
                            },
                        },
                    };
                    units.push(d);
                }
                let term_loc = InstLoc {
                    func: fid,
                    block: bid,
                    inst: block.insts.len(),
                };
                locs[units.len()] = term_loc;
                let block_unit = |b: bastion_ir::BlockId| {
                    layout.unit_of(InstLoc {
                        func: fid,
                        block: b,
                        inst: 0,
                    }) as u32
                };
                units.push(match block.term {
                    Terminator::Jmp(b) => DecodedInst::Jmp {
                        target: block_unit(b),
                    },
                    Terminator::Br { cond, then_, else_ } => DecodedInst::Br {
                        cond,
                        then_: block_unit(then_),
                        else_: block_unit(else_),
                    },
                    Terminator::Ret(val) => DecodedInst::Ret { val },
                });
            }
        }
        units.resize(total, DecodedInst::Pad);
        DecodedProgram {
            base,
            units,
            args,
            locs,
        }
    }

    /// The code segment base the unit index space is relative to.
    pub fn code_base(&self) -> u64 {
        self.base
    }

    /// Number of units (code bytes / [`INST_SIZE`]).
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the program has no code.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The unit at flat index `unit`.
    ///
    /// # Panics
    /// Panics if `unit` is out of range.
    #[inline]
    pub fn inst(&self, unit: usize) -> DecodedInst {
        self.units[unit]
    }

    /// The full flat instruction stream, indexed by unit.
    #[inline]
    pub fn insts(&self) -> &[DecodedInst] {
        &self.units
    }

    /// The architectural instruction location of `unit`.
    ///
    /// # Panics
    /// Panics if `unit` is out of range.
    #[inline]
    pub fn loc_at(&self, unit: usize) -> InstLoc {
        self.locs[unit]
    }

    /// Flat unit index of a code address already validated by the layout.
    #[inline]
    pub fn unit_of_addr(&self, addr: u64) -> usize {
        ((addr - self.base) / INST_SIZE) as usize
    }

    /// The interned operands of an [`ArgSlice`].
    #[inline]
    pub fn arg_ops(&self, s: ArgSlice) -> &[Operand] {
        &self.args[s.start as usize..(s.start + s.len) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use bastion_ir::build::ModuleBuilder;
    use bastion_ir::Ty;

    fn decoded() -> Image {
        let mut mb = ModuleBuilder::new("d");
        let stub = mb.declare_syscall_stub("getpid", 39, 0);
        let callee = mb.declare("callee", &[("x", Ty::I64)], Ty::I64);
        let mut f = mb.define(callee);
        let a = f.frame_addr(f.param_slot(0));
        let v = f.load(a);
        f.ret(Some(v.into()));
        f.finish();
        let mut f = mb.function("main", &[], Ty::I64);
        let r = f.call_direct(callee, &[Operand::Imm(9)]);
        let _ = f.call_direct(stub, &[]);
        f.ret(Some(r.into()));
        f.finish();
        Image::load(mb.finish()).unwrap()
    }

    #[test]
    fn every_unit_matches_the_layout() {
        let img = decoded();
        let prog = &img.decoded;
        assert_eq!(prog.len() as u64, img.layout.total_units());
        for (fid, f) in img.module.iter_funcs() {
            for (bid, b) in f.iter_blocks() {
                for i in 0..=b.insts.len() {
                    let loc = InstLoc {
                        func: fid,
                        block: bid,
                        inst: i,
                    };
                    let unit = img.layout.unit_of(loc) as usize;
                    assert_eq!(prog.loc_at(unit), loc);
                    assert!(!matches!(prog.inst(unit), DecodedInst::Pad));
                }
            }
        }
    }

    #[test]
    fn alignment_gaps_are_padding() {
        let img = decoded();
        let prog = &img.decoded;
        let mut pads = 0;
        for u in 0..prog.len() {
            if matches!(prog.inst(u), DecodedInst::Pad) {
                pads += 1;
                assert_eq!(
                    img.layout.loc_of(img.layout.addr_of_unit(u as u64)),
                    None,
                    "pad unit {u} is a live code address"
                );
            }
        }
        // Three 16-byte-aligned functions with small bodies: at least one gap.
        assert!(pads > 0);
    }

    #[test]
    fn direct_call_targets_and_retaddrs_are_resolved() {
        let img = decoded();
        let prog = &img.decoded;
        let main = img.module.func_by_name("main").unwrap();
        let callee = img.module.func_by_name("callee").unwrap();
        let call_unit = img.layout.unit_of(InstLoc {
            func: main,
            block: bastion_ir::BlockId(0),
            inst: 0,
        }) as usize;
        match prog.inst(call_unit) {
            DecodedInst::CallDirect {
                target_unit,
                retaddr,
                args,
                ..
            } => {
                assert_eq!(
                    img.layout.addr_of_unit(u64::from(target_unit)),
                    img.layout.func_entry(callee)
                );
                assert_eq!(
                    retaddr,
                    img.layout.addr_of_unit(call_unit as u64).raw() + CALL_SIZE
                );
                assert_eq!(prog.arg_ops(args), &[Operand::Imm(9)]);
            }
            other => panic!("expected CallDirect, got {other:?}"),
        }
    }
}
