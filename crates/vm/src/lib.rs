//! # bastion-vm
//!
//! A deterministic process virtual machine executing [`bastion_ir`] modules.
//!
//! The paper's attacks and defenses all live at the level of a concrete
//! process image: return addresses and frame pointers on a stack an attacker
//! can overwrite byte-wise, argument registers the monitor reads via
//! `ptrace`, a shadow-memory hash table mapped into the application's
//! address space, and `syscall` instructions trapping into the kernel. This
//! crate provides exactly that substrate:
//!
//! * [`mem::Memory`] — a sparse paged 64-bit address space with explicit
//!   mapping (unmapped access faults, as under a real MMU);
//! * [`image::Image`] — the loader: lays out code (with an optional
//!   ASLR-style slide), data, stack, heap, and the shadow region, and
//!   resolves global relocations (handler tables take function addresses);
//! * [`machine::Machine`] — architectural state: pc, sp/fp, per-frame
//!   virtual registers, syscall argument registers, cycle counter, and the
//!   optional CET shadow stack / LLVM-CFI policy of `bastion-defenses`;
//! * [`decode`] — the predecoded flat instruction stream built at image
//!   load (the interpreter's fast path; see DESIGN.md §6c);
//! * [`interp`] — the instruction interpreter; executes until the next
//!   *event* (syscall, exit, fault) that the kernel crate handles, via the
//!   fused predecoded loop or the legacy tree-walking reference path;
//! * [`shadow`] — the open-addressing shadow-memory hash table (paper §7.1)
//!   shared by the inlined instrumentation intrinsics and the monitor.
//!
//! Time is **virtual**: every instruction charges cycles from
//! [`cost::CostModel`], making all experiments machine-independent and
//! bit-for-bit reproducible (see DESIGN.md §2).
//!
//! ```
//! use bastion_ir::build::ModuleBuilder;
//! use bastion_ir::{Operand, Ty};
//! use bastion_vm::{interp, CostModel, Event, Image, Machine};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), bastion_ir::ValidateError> {
//! let mut mb = ModuleBuilder::new("demo");
//! let mut f = mb.function("main", &[], Ty::I64);
//! let a = f.mov(40i64);
//! let b = f.bin(bastion_ir::BinOp::Add, a, 2i64);
//! f.ret(Some(b.into()));
//! f.finish();
//! let image = Arc::new(Image::load(mb.finish())?);
//! let mut machine = Machine::new(image, CostModel::default());
//! assert_eq!(interp::run(&mut machine, 1_000).event(), Event::Exited(42));
//! # Ok(())
//! # }
//! ```

pub mod cost;
pub mod decode;
pub mod image;
pub mod interp;
pub mod machine;
pub mod mem;
pub mod shadow;

pub use cost::CostModel;
pub use decode::{DecodedInst, DecodedProgram};
pub use image::{Image, ImageBuilder};
pub use interp::{run, run_bounded, run_legacy, step, Event, RunOutcome};
pub use machine::{CfiPolicy, Fault, Frame, Machine};
pub use mem::{MemIo, Memory, OutOfBounds};
pub use shadow::{ShadowError, ShadowTable, SHADOW_REGION_SIZE};
