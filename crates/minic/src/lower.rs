//! Lowering MiniC to `bastion-ir`.
//!
//! Deliberately `clang -O0`-shaped: every named variable (including
//! parameters) lives in a frame slot; every use reloads from memory. This
//! is what makes the BASTION analyses and attacks meaningful — sensitive
//! variables are memory-backed and traceable, and attackers can corrupt
//! them byte-wise.

use crate::ast::*;
use bastion_ir::build::{FunctionBuilder, ModuleBuilder};
use bastion_ir::module::{GlobalInit, RelocEntry};
use bastion_ir::{BinOp, CmpOp, FuncId, GlobalId, Operand, SlotId, StructDef, StructId, Ty, Width};
use std::collections::HashMap;
use std::fmt;

/// A semantic error found during lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Enclosing function (if any).
    pub func: Option<String>,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in `{name}`: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for LowerError {}

struct StructInfo {
    id: StructId,
    fields: Vec<(CType, String)>,
}

/// Unit-level lowering state.
pub struct Lowerer<'mb> {
    mb: &'mb mut ModuleBuilder,
    structs: HashMap<String, StructInfo>,
    globals: HashMap<String, (GlobalId, CType)>,
    funcs: HashMap<String, (FuncId, CType, usize)>,
    strings: HashMap<Vec<u8>, GlobalId>,
    next_str: usize,
}

impl<'mb> Lowerer<'mb> {
    /// Creates a lowerer targeting `mb` (which may already contain syscall
    /// stubs and previously compiled units — their symbols are visible).
    pub fn new(mb: &'mb mut ModuleBuilder) -> Self {
        let mut funcs = HashMap::new();
        for (i, f) in mb.module().functions.iter().enumerate() {
            funcs.insert(
                f.name.clone(),
                (bastion_ir::FuncId(i as u32), CType::Long, f.params.len()),
            );
        }
        let mut globals = HashMap::new();
        for (i, g) in mb.module().globals.iter().enumerate() {
            // Pre-existing globals are visible as opaque longs/arrays.
            globals.insert(
                g.name.clone(),
                (bastion_ir::GlobalId(i as u32), CType::Long),
            );
        }
        Lowerer {
            mb,
            structs: HashMap::new(),
            globals,
            funcs,
            strings: HashMap::new(),
            next_str: 0,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LowerError> {
        Err(LowerError {
            func: None,
            message: msg.into(),
        })
    }

    /// Lowers a parsed unit into the module builder.
    ///
    /// # Errors
    /// Reports unknown names, arity mismatches, and unsupported constructs.
    pub fn lower_unit(&mut self, unit: &Unit) -> Result<(), LowerError> {
        // Pass 1: struct definitions.
        for d in &unit.decls {
            if let Decl::Struct { name, fields } = d {
                if self.structs.contains_key(name) {
                    return self.err(format!("duplicate struct `{name}`"));
                }
                // Two-phase: register the name first so self-referential
                // pointer fields resolve; sizes only need pointee names for
                // non-pointer fields, which must be previously defined.
                let mut ir_fields = Vec::new();
                let id = self.mb.struct_def(StructDef::new(name.clone(), Vec::new()));
                self.structs.insert(
                    name.clone(),
                    StructInfo {
                        id,
                        fields: fields.clone(),
                    },
                );
                for (ty, fname) in fields {
                    ir_fields.push((fname.clone(), self.ir_ty(ty)?));
                }
                // Patch the real fields in.
                let def = StructDef::new(name.clone(), ir_fields);
                self.patch_struct(id, def);
            }
        }

        // Pass 2: intern all string literals (functions can't touch the
        // builder while a FunctionBuilder is live).
        for d in &unit.decls {
            if let Decl::Func { body, .. } = d {
                self.intern_strings_in(body);
            }
        }

        // Pass 3: globals (relocation names resolved in pass 5).
        let mut pending_relocs: Vec<(GlobalId, Vec<InitItem>)> = Vec::new();
        for d in &unit.decls {
            let Decl::Global { ty, name, init } = d else {
                continue;
            };
            if self.globals.contains_key(name) {
                return self.err(format!("duplicate global `{name}`"));
            }
            let ir_ty = self.ir_ty(ty)?;
            let gid = match init {
                GlobalInitAst::Zero => self.mb.global(name.clone(), ir_ty, GlobalInit::Zero),
                GlobalInitAst::Int(v) => {
                    self.mb
                        .global(name.clone(), ir_ty, GlobalInit::Words(vec![*v]))
                }
                GlobalInitAst::Str(s) => {
                    if matches!(ty, CType::Ptr(_)) {
                        let sg = self.intern_string(s);
                        self.mb.global(
                            name.clone(),
                            ir_ty,
                            GlobalInit::Relocated(vec![RelocEntry::GlobalAddr(sg)]),
                        )
                    } else {
                        let mut bytes = s.clone();
                        bytes.push(0);
                        self.mb
                            .global(name.clone(), ir_ty, GlobalInit::Bytes(bytes))
                    }
                }
                GlobalInitAst::List(items) => {
                    let gid = self.mb.global(name.clone(), ir_ty, GlobalInit::Zero);
                    pending_relocs.push((gid, items.clone()));
                    gid
                }
            };
            self.globals.insert(name.clone(), (gid, ty.clone()));
        }

        // Pass 4: declare functions.
        for d in &unit.decls {
            let Decl::Func {
                ret, name, params, ..
            } = d
            else {
                continue;
            };
            if self.funcs.contains_key(name) {
                return self.err(format!("duplicate function `{name}`"));
            }
            let mut ps = Vec::new();
            for (pt, pn) in params {
                ps.push((pn.as_str(), self.ir_ty(pt)?));
            }
            let ret_ty = self.ir_ty(ret)?;
            let id = self.mb.declare(name.clone(), &ps, ret_ty);
            self.funcs
                .insert(name.clone(), (id, ret.clone(), params.len()));
        }

        // Pass 5: resolve brace-list relocations.
        for (gid, items) in pending_relocs {
            let mut entries = Vec::with_capacity(items.len());
            for item in &items {
                entries.push(match item {
                    InitItem::Int(v) => RelocEntry::Word(*v),
                    InitItem::Name(n) => {
                        if let Some((fid, _, _)) = self.funcs.get(n) {
                            RelocEntry::FuncAddr(*fid)
                        } else if let Some((g, _)) = self.globals.get(n) {
                            RelocEntry::GlobalAddr(*g)
                        } else {
                            return self.err(format!("unknown initializer name `{n}`"));
                        }
                    }
                });
            }
            self.patch_global_init(gid, GlobalInit::Relocated(entries));
        }

        // Pass 6: function bodies.
        for d in &unit.decls {
            let Decl::Func {
                ret,
                name,
                params,
                body,
            } = d
            else {
                continue;
            };
            let id = self.funcs[name].0;
            self.lower_func(id, name, ret, params, body)
                .map_err(|mut e| {
                    e.func = Some(name.clone());
                    e
                })?;
        }
        Ok(())
    }

    fn patch_struct(&mut self, id: StructId, def: StructDef) {
        // Delegates to the builder's patch hook.
        self.mb.patch_struct(id, def);
    }

    fn patch_global_init(&mut self, id: GlobalId, init: GlobalInit) {
        self.mb.patch_global_init(id, init);
    }

    fn intern_strings_in(&mut self, body: &[Stmt]) {
        fn walk_expr(l: &mut Lowerer<'_>, e: &Expr) {
            match e {
                Expr::Str(s) => {
                    l.intern_string(s);
                }
                Expr::Bin(_, a, b) | Expr::Index(a, b) => {
                    walk_expr(l, a);
                    walk_expr(l, b);
                }
                Expr::Neg(a)
                | Expr::Not(a)
                | Expr::BitNot(a)
                | Expr::Deref(a)
                | Expr::AddrOf(a)
                | Expr::Field(a, _)
                | Expr::Arrow(a, _) => walk_expr(l, a),
                Expr::Call(c, args) => {
                    walk_expr(l, c);
                    for a in args {
                        walk_expr(l, a);
                    }
                }
                Expr::Int(_) | Expr::Ident(_) | Expr::SizeOf(_) => {}
            }
        }
        fn walk(l: &mut Lowerer<'_>, stmts: &[Stmt]) {
            for s in stmts {
                match s {
                    Stmt::Decl { init: Some(e), .. } | Stmt::Expr(e) | Stmt::Return(Some(e)) => {
                        walk_expr(l, e)
                    }
                    Stmt::Assign(a, b) => {
                        walk_expr(l, a);
                        walk_expr(l, b);
                    }
                    Stmt::If(c, t, e) => {
                        walk_expr(l, c);
                        walk(l, t);
                        walk(l, e);
                    }
                    Stmt::While(c, b) => {
                        walk_expr(l, c);
                        walk(l, b);
                    }
                    Stmt::For(i, c, st, b) => {
                        walk(l, std::slice::from_ref(i));
                        walk_expr(l, c);
                        walk(l, std::slice::from_ref(st));
                        walk(l, b);
                    }
                    _ => {}
                }
            }
        }
        walk(self, body);
    }

    fn intern_string(&mut self, s: &[u8]) -> GlobalId {
        if let Some(&g) = self.strings.get(s) {
            return g;
        }
        let name = format!("__str_{}", self.next_str);
        self.next_str += 1;
        let mut bytes = s.to_vec();
        bytes.push(0);
        let len = bytes.len() as u64;
        let g = self.mb.global(
            name,
            Ty::Array(Box::new(Ty::I8), len),
            GlobalInit::Bytes(bytes),
        );
        self.strings.insert(s.to_vec(), g);
        g
    }

    fn ir_ty(&self, t: &CType) -> Result<Ty, LowerError> {
        Ok(match t {
            CType::Void => Ty::Void,
            CType::Char => Ty::I8,
            CType::Long => Ty::I64,
            CType::Ptr(p) => Ty::ptr(self.ir_ty(p)?),
            CType::FnPtr => Ty::Func { arity: 0 },
            CType::Struct(name) => {
                let si = self.structs.get(name).ok_or_else(|| LowerError {
                    func: None,
                    message: format!("unknown struct `{name}`"),
                })?;
                Ty::Struct(si.id)
            }
            CType::Array(e, n) => Ty::Array(Box::new(self.ir_ty(e)?), *n),
        })
    }

    fn lower_func(
        &mut self,
        id: FuncId,
        _name: &str,
        ret: &CType,
        params: &[(CType, String)],
        body: &[Stmt],
    ) -> Result<(), LowerError> {
        // Split borrows: FunctionBuilder takes &mut ModuleBuilder, so move
        // lookup tables out temporarily.
        let structs = std::mem::take(&mut self.structs);
        let globals = std::mem::take(&mut self.globals);
        let funcs = std::mem::take(&mut self.funcs);
        let strings = std::mem::take(&mut self.strings);

        let result = {
            let fb = self.mb.define(id);
            let mut cx = FnCx {
                fb,
                structs: &structs,
                globals: &globals,
                funcs: &funcs,
                strings: &strings,
                scopes: vec![HashMap::new()],
                loops: Vec::new(),
                ret: ret.clone(),
                temp_count: 0,
            };
            for (i, (pt, pn)) in params.iter().enumerate() {
                cx.scopes[0].insert(
                    pn.clone(),
                    Var {
                        slot: cx.fb.param_slot(i),
                        ty: pt.clone(),
                    },
                );
            }
            let r = cx.stmts(body);
            if r.is_ok() {
                if !cx.fb.is_terminated() {
                    if cx.ret == CType::Void {
                        cx.fb.ret(None);
                    } else {
                        cx.fb.ret(Some(Operand::Imm(0)));
                    }
                }
                cx.fb.finish();
            }
            r
        };

        self.structs = structs;
        self.globals = globals;
        self.funcs = funcs;
        self.strings = strings;
        result
    }
}

#[derive(Clone)]
struct Var {
    slot: SlotId,
    ty: CType,
}

struct FnCx<'a, 'mb> {
    fb: FunctionBuilder<'mb>,
    structs: &'a HashMap<String, StructInfo>,
    globals: &'a HashMap<String, (GlobalId, CType)>,
    funcs: &'a HashMap<String, (FuncId, CType, usize)>,
    strings: &'a HashMap<Vec<u8>, GlobalId>,
    scopes: Vec<HashMap<String, Var>>,
    loops: Vec<(bastion_ir::BlockId, bastion_ir::BlockId)>, // (break, continue)
    ret: CType,
    temp_count: usize,
}

/// A typed value.
struct Val {
    op: Operand,
    ty: CType,
}

impl FnCx<'_, '_> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LowerError> {
        Err(LowerError {
            func: None,
            message: msg.into(),
        })
    }

    fn lookup(&self, name: &str) -> Option<Var> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn width_of(&self, t: &CType) -> Width {
        if matches!(t, CType::Char) {
            Width::W8
        } else {
            Width::W64
        }
    }

    fn size_of(&self, t: &CType) -> Result<u64, LowerError> {
        let module_structs = |name: &str| -> Result<u64, LowerError> {
            let si = self.structs.get(name).ok_or_else(|| LowerError {
                func: None,
                message: format!("unknown struct `{name}`"),
            })?;
            let mut total = 0;
            for (ft, _) in &si.fields {
                total += self.size_of(ft)?;
            }
            Ok(total)
        };
        Ok(match t {
            CType::Void => 0,
            CType::Char => 1,
            CType::Long | CType::Ptr(_) | CType::FnPtr => 8,
            CType::Struct(n) => module_structs(n)?,
            CType::Array(e, n) => self.size_of(e)? * n,
        })
    }

    fn field_of(&self, sname: &str, fname: &str) -> Result<(StructId, u32, CType), LowerError> {
        let si = self.structs.get(sname).ok_or_else(|| LowerError {
            func: None,
            message: format!("unknown struct `{sname}`"),
        })?;
        let idx = si
            .fields
            .iter()
            .position(|(_, n)| n == fname)
            .ok_or_else(|| LowerError {
                func: None,
                message: format!("struct `{sname}` has no field `{fname}`"),
            })?;
        Ok((si.id, idx as u32, si.fields[idx].0.clone()))
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LowerError> {
        self.scopes.push(HashMap::new());
        for s in body {
            if self.fb.is_terminated() {
                // Dead code after return/break/continue: park it in an
                // unreachable block so lowering stays simple.
                let dead = self.fb.new_block();
                self.fb.switch_to(dead);
            }
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::Decl { ty, name, init } => {
                let ir_ty = self.decl_ty(ty)?;
                let slot = self.fb.local(name.clone(), ir_ty);
                self.scopes.last_mut().expect("scope stack").insert(
                    name.clone(),
                    Var {
                        slot,
                        ty: ty.clone(),
                    },
                );
                if let Some(e) = init {
                    let v = self.rvalue(e)?;
                    let addr = self.fb.frame_addr(slot);
                    let w = self.width_of(ty);
                    self.fb.store_w(addr, v.op, w);
                }
                Ok(())
            }
            Stmt::Assign(lhs, rhs) => {
                let v = self.rvalue(rhs)?;
                let (addr, ty) = self.lvalue(lhs)?;
                let w = self.width_of(&ty);
                self.fb.store_w(addr, v.op, w);
                Ok(())
            }
            Stmt::Expr(e) => {
                let _ = self.rvalue(e)?;
                Ok(())
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.rvalue(e)?.op),
                    None => None,
                };
                self.fb.ret(v);
                Ok(())
            }
            Stmt::If(c, then_b, else_b) => {
                let cv = self.rvalue(c)?;
                let tb = self.fb.new_block();
                let eb = self.fb.new_block();
                let join = self.fb.new_block();
                self.fb.br(cv.op, tb, eb);
                self.fb.switch_to(tb);
                self.stmts(then_b)?;
                if !self.fb.is_terminated() {
                    self.fb.jmp(join);
                }
                self.fb.switch_to(eb);
                self.stmts(else_b)?;
                if !self.fb.is_terminated() {
                    self.fb.jmp(join);
                }
                self.fb.switch_to(join);
                Ok(())
            }
            Stmt::While(c, body) => {
                let header = self.fb.new_block();
                let body_b = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.jmp(header);
                self.fb.switch_to(header);
                let cv = self.rvalue(c)?;
                self.fb.br(cv.op, body_b, exit);
                self.fb.switch_to(body_b);
                self.loops.push((exit, header));
                self.stmts(body)?;
                self.loops.pop();
                if !self.fb.is_terminated() {
                    self.fb.jmp(header);
                }
                self.fb.switch_to(exit);
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                self.stmt(init)?;
                let header = self.fb.new_block();
                let body_b = self.fb.new_block();
                let step_b = self.fb.new_block();
                let exit = self.fb.new_block();
                self.fb.jmp(header);
                self.fb.switch_to(header);
                let cv = self.rvalue(cond)?;
                self.fb.br(cv.op, body_b, exit);
                self.fb.switch_to(body_b);
                self.loops.push((exit, step_b));
                self.stmts(body)?;
                self.loops.pop();
                if !self.fb.is_terminated() {
                    self.fb.jmp(step_b);
                }
                self.fb.switch_to(step_b);
                self.stmt(step)?;
                if !self.fb.is_terminated() {
                    self.fb.jmp(header);
                }
                self.fb.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Break => match self.loops.last() {
                Some(&(b, _)) => {
                    self.fb.jmp(b);
                    Ok(())
                }
                None => self.err("`break` outside a loop"),
            },
            Stmt::Continue => match self.loops.last() {
                Some(&(_, c)) => {
                    self.fb.jmp(c);
                    Ok(())
                }
                None => self.err("`continue` outside a loop"),
            },
        }
    }

    fn decl_ty(&self, t: &CType) -> Result<Ty, LowerError> {
        Ok(match t {
            CType::Void => return self.err("variables cannot be void"),
            CType::Char => Ty::I8,
            CType::Long => Ty::I64,
            CType::Ptr(_) => Ty::ptr(Ty::I64),
            CType::FnPtr => Ty::Func { arity: 0 },
            CType::Struct(n) => {
                let si = self.structs.get(n).ok_or_else(|| LowerError {
                    func: None,
                    message: format!("unknown struct `{n}`"),
                })?;
                Ty::Struct(si.id)
            }
            CType::Array(e, n) => Ty::Array(Box::new(self.decl_ty_elem(e)?), *n),
        })
    }

    fn decl_ty_elem(&self, t: &CType) -> Result<Ty, LowerError> {
        match t {
            CType::Void => self.err("arrays cannot be void"),
            other => self.decl_ty(other),
        }
    }

    /// Address + element type of an lvalue.
    fn lvalue(&mut self, e: &Expr) -> Result<(Operand, CType), LowerError> {
        match e {
            Expr::Ident(name) => {
                if let Some(v) = self.lookup(name) {
                    let a = self.fb.frame_addr(v.slot);
                    Ok((a.into(), v.ty))
                } else if let Some((gid, ty)) = self.globals.get(name) {
                    let a = self.fb.global_addr(*gid);
                    Ok((a.into(), ty.clone()))
                } else {
                    self.err(format!("unknown variable `{name}`"))
                }
            }
            Expr::Deref(p) => {
                let v = self.rvalue(p)?;
                let inner = match v.ty {
                    CType::Ptr(t) => *t,
                    CType::Array(t, _) => *t,
                    CType::Long | CType::FnPtr => CType::Long,
                    other => return self.err(format!("cannot deref {other:?}")),
                };
                Ok((v.op, inner))
            }
            Expr::Index(base, idx) => {
                let b = self.rvalue(base)?;
                let elem = match &b.ty {
                    CType::Ptr(t) => (**t).clone(),
                    CType::Array(t, _) => (**t).clone(),
                    CType::Long => CType::Long,
                    other => return self.err(format!("cannot index {other:?}")),
                };
                let i = self.rvalue(idx)?;
                let sz = self.size_of(&elem)?;
                let a = self.fb.index_addr(b.op, sz, i.op);
                Ok((a.into(), elem))
            }
            Expr::Field(base, fname) => {
                let (addr, ty) = self.lvalue(base)?;
                let CType::Struct(sname) = &ty else {
                    return self.err(format!("`.{fname}` on non-struct {ty:?}"));
                };
                let (sid, idx, fty) = self.field_of(sname, fname)?;
                let a = self.fb.field_addr(addr, sid, idx);
                Ok((a.into(), fty))
            }
            Expr::Arrow(p, fname) => {
                let v = self.rvalue(p)?;
                let sname = match &v.ty {
                    CType::Ptr(inner) => match inner.as_ref() {
                        CType::Struct(s) => s.clone(),
                        other => return self.err(format!("`->{fname}` on {other:?} pointer")),
                    },
                    other => return self.err(format!("`->{fname}` on non-pointer {other:?}")),
                };
                let (sid, idx, fty) = self.field_of(&sname, fname)?;
                let a = self.fb.field_addr(v.op, sid, idx);
                Ok((a.into(), fty))
            }
            other => self.err(format!("not an lvalue: {other:?}")),
        }
    }

    /// Evaluates an expression to a word value (arrays decay to pointers).
    fn rvalue(&mut self, e: &Expr) -> Result<Val, LowerError> {
        match e {
            Expr::Int(v) => Ok(Val {
                op: Operand::Imm(*v),
                ty: CType::Long,
            }),
            Expr::Str(s) => {
                let gid = self.strings.get(s).copied().ok_or_else(|| LowerError {
                    func: None,
                    message: "string literal not interned (front-end bug)".into(),
                })?;
                let a = self.fb.global_addr(gid);
                Ok(Val {
                    op: a.into(),
                    ty: CType::Char.ptr(),
                })
            }
            Expr::SizeOf(t) => Ok(Val {
                op: Operand::Imm(self.size_of(t)? as i64),
                ty: CType::Long,
            }),
            Expr::Ident(name) => {
                // A bare function name is its address (address-taken).
                if let Some((fid, _, _)) = self.funcs.get(name) {
                    if self.lookup(name).is_none() && !self.globals.contains_key(name) {
                        let a = self.fb.func_addr(*fid);
                        return Ok(Val {
                            op: a.into(),
                            ty: CType::FnPtr,
                        });
                    }
                }
                let (addr, ty) = self.lvalue(e)?;
                self.load_decayed(addr, ty)
            }
            Expr::Deref(_) | Expr::Index(..) | Expr::Field(..) | Expr::Arrow(..) => {
                let (addr, ty) = self.lvalue(e)?;
                self.load_decayed(addr, ty)
            }
            Expr::AddrOf(inner) => {
                let (addr, ty) = self.lvalue(inner)?;
                Ok(Val {
                    op: addr,
                    ty: ty.ptr(),
                })
            }
            Expr::Neg(x) => {
                let v = self.rvalue(x)?;
                if let Operand::Imm(c) = v.op {
                    return Ok(Val {
                        op: Operand::Imm(c.wrapping_neg()),
                        ty: CType::Long,
                    });
                }
                let r = self.fb.bin(BinOp::Sub, 0i64, v.op);
                Ok(Val {
                    op: r.into(),
                    ty: CType::Long,
                })
            }
            Expr::Not(x) => {
                let v = self.rvalue(x)?;
                let r = self.fb.cmp(CmpOp::Eq, v.op, 0i64);
                Ok(Val {
                    op: r.into(),
                    ty: CType::Long,
                })
            }
            Expr::BitNot(x) => {
                let v = self.rvalue(x)?;
                let r = self.fb.bin(BinOp::Xor, v.op, -1i64);
                Ok(Val {
                    op: r.into(),
                    ty: CType::Long,
                })
            }
            Expr::Bin(op, a, b) => self.bin_expr(*op, a, b),
            Expr::Call(callee, args) => self.call_expr(callee, args),
        }
    }

    fn load_decayed(&mut self, addr: Operand, ty: CType) -> Result<Val, LowerError> {
        match ty {
            CType::Array(elem, _) => Ok(Val {
                op: addr,
                ty: CType::Ptr(elem),
            }),
            CType::Struct(_) => self.err("struct values must be accessed through fields"),
            scalar => {
                let w = self.width_of(&scalar);
                let r = self.fb.load_w(addr, w);
                Ok(Val {
                    op: r.into(),
                    ty: scalar,
                })
            }
        }
    }

    fn bin_expr(&mut self, op: BinExprOp, a: &Expr, b: &Expr) -> Result<Val, LowerError> {
        // Short-circuit forms need a temp slot (the IR has no phis).
        if matches!(op, BinExprOp::LAnd | BinExprOp::LOr) {
            let tmp = self.temp_slot();
            let av = self.rvalue(a)?;
            let an = self.fb.cmp(CmpOp::Ne, av.op, 0i64);
            let ta = self.fb.frame_addr(tmp);
            self.fb.store(ta, an);
            let rhs_b = self.fb.new_block();
            let done = self.fb.new_block();
            if op == BinExprOp::LAnd {
                self.fb.br(an, rhs_b, done);
            } else {
                self.fb.br(an, done, rhs_b);
            }
            self.fb.switch_to(rhs_b);
            let bv = self.rvalue(b)?;
            let bn = self.fb.cmp(CmpOp::Ne, bv.op, 0i64);
            let tb = self.fb.frame_addr(tmp);
            self.fb.store(tb, bn);
            self.fb.jmp(done);
            self.fb.switch_to(done);
            let td = self.fb.frame_addr(tmp);
            let r = self.fb.load(td);
            return Ok(Val {
                op: r.into(),
                ty: CType::Long,
            });
        }

        let av = self.rvalue(a)?;
        let bv = self.rvalue(b)?;

        // Constant folding keeps flag expressions like PROT_READ|PROT_WRITE
        // as immediates (the analysis classifies them as constant args).
        if let (Operand::Imm(x), Operand::Imm(y)) = (av.op, bv.op) {
            if let Some(v) = fold_const(op, x, y) {
                return Ok(Val {
                    op: Operand::Imm(v),
                    ty: CType::Long,
                });
            }
        }

        // Pointer arithmetic scales by the pointee size.
        let pointee = |t: &CType| -> Option<CType> {
            match t {
                CType::Ptr(p) => Some((**p).clone()),
                _ => None,
            }
        };
        if matches!(op, BinExprOp::Add | BinExprOp::Sub) {
            if let Some(elem) = pointee(&av.ty) {
                let sz = self.size_of(&elem)?;
                let scaled = if sz == 1 {
                    bv.op
                } else {
                    self.fb.bin(BinOp::Mul, bv.op, sz as i64).into()
                };
                let ir = if op == BinExprOp::Add {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                let r = self.fb.bin(ir, av.op, scaled);
                return Ok(Val {
                    op: r.into(),
                    ty: av.ty,
                });
            }
        }

        let val = match op {
            BinExprOp::Add => self.fb.bin(BinOp::Add, av.op, bv.op),
            BinExprOp::Sub => self.fb.bin(BinOp::Sub, av.op, bv.op),
            BinExprOp::Mul => self.fb.bin(BinOp::Mul, av.op, bv.op),
            BinExprOp::Div => self.fb.bin(BinOp::Div, av.op, bv.op),
            BinExprOp::Rem => self.fb.bin(BinOp::Rem, av.op, bv.op),
            BinExprOp::And => self.fb.bin(BinOp::And, av.op, bv.op),
            BinExprOp::Or => self.fb.bin(BinOp::Or, av.op, bv.op),
            BinExprOp::Xor => self.fb.bin(BinOp::Xor, av.op, bv.op),
            BinExprOp::Shl => self.fb.bin(BinOp::Shl, av.op, bv.op),
            BinExprOp::Shr => self.fb.bin(BinOp::Shr, av.op, bv.op),
            BinExprOp::Eq => self.fb.cmp(CmpOp::Eq, av.op, bv.op),
            BinExprOp::Ne => self.fb.cmp(CmpOp::Ne, av.op, bv.op),
            BinExprOp::Lt => self.fb.cmp(CmpOp::Lt, av.op, bv.op),
            BinExprOp::Le => self.fb.cmp(CmpOp::Le, av.op, bv.op),
            BinExprOp::Gt => self.fb.cmp(CmpOp::Gt, av.op, bv.op),
            BinExprOp::Ge => self.fb.cmp(CmpOp::Ge, av.op, bv.op),
            BinExprOp::LAnd | BinExprOp::LOr => unreachable!("handled above"),
        };
        Ok(Val {
            op: val.into(),
            ty: CType::Long,
        })
    }

    fn call_expr(&mut self, callee: &Expr, args: &[Expr]) -> Result<Val, LowerError> {
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            argv.push(self.rvalue(a)?.op);
        }
        // Direct call if the callee names a function (and no local/global
        // variable shadows that name).
        if let Expr::Ident(name) = callee {
            if self.lookup(name).is_none() && !self.globals.contains_key(name) {
                let Some((fid, ret, arity)) = self.funcs.get(name).cloned() else {
                    return self.err(format!("unknown function `{name}`"));
                };
                if argv.len() != arity {
                    return self.err(format!(
                        "`{name}` expects {arity} arguments, got {}",
                        argv.len()
                    ));
                }
                let r = self.fb.call_direct(fid, &argv);
                return Ok(Val {
                    op: r.into(),
                    ty: if ret == CType::Void { CType::Long } else { ret },
                });
            }
        }
        // Indirect call through a code-pointer value.
        let target = self.rvalue(callee)?;
        let r = self.fb.call_indirect(target.op, &argv);
        Ok(Val {
            op: r.into(),
            ty: CType::Long,
        })
    }

    fn temp_slot(&mut self) -> SlotId {
        let name = format!("$tmp{}", self.temp_count);
        self.temp_count += 1;
        self.fb.local(name, Ty::I64)
    }
}

fn fold_const(op: BinExprOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinExprOp::Add => a.wrapping_add(b),
        BinExprOp::Sub => a.wrapping_sub(b),
        BinExprOp::Mul => a.wrapping_mul(b),
        BinExprOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinExprOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinExprOp::And => a & b,
        BinExprOp::Or => a | b,
        BinExprOp::Xor => a ^ b,
        BinExprOp::Shl => ((a as u64) << (b as u64 & 63)) as i64,
        BinExprOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
        BinExprOp::Eq => i64::from(a == b),
        BinExprOp::Ne => i64::from(a != b),
        BinExprOp::Lt => i64::from(a < b),
        BinExprOp::Le => i64::from(a <= b),
        BinExprOp::Gt => i64::from(a > b),
        BinExprOp::Ge => i64::from(a >= b),
        BinExprOp::LAnd | BinExprOp::LOr => return None,
    })
}
