//! MiniC lexer.

use std::fmt;

/// A token kind with its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal (decimal, hex, octal-by-0 prefix, or char).
    Int(i64),
    /// String literal (unescaped bytes, no NUL).
    Str(Vec<u8>),
    /// Identifier or keyword.
    Ident(String),
    /// Punctuation / operator, e.g. `->`, `<<`, `&&`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Source line.
    pub line: u32,
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Problem description.
    pub message: String,
    /// Source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS: &[&str] = &[
    "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+", "-", "*", "/", "%", "&", "|", "^",
    "<", ">", "=", "!", "(", ")", "{", "}", "[", "]", ";", ",", ".", "~",
];

/// Tokenizes MiniC source.
///
/// # Errors
/// Fails on unterminated strings/comments, bad escapes, or stray bytes.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut out = Vec::new();
    let err = |msg: &str, line: u32| LexError {
        message: msg.to_string(),
        line,
    };

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(err("unterminated block comment", start));
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                    i += 2;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &src[start + 2..i];
                    let v = i64::from_str_radix(text, 16)
                        .map_err(|_| err("invalid hex literal", line))?;
                    out.push(Token {
                        tok: Tok::Int(v),
                        line,
                    });
                } else if c == b'0' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v = i64::from_str_radix(&src[start + 1..i], 8)
                        .map_err(|_| err("invalid octal literal", line))?;
                    out.push(Token {
                        tok: Tok::Int(v),
                        line,
                    });
                } else {
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let v = src[start..i]
                        .parse()
                        .map_err(|_| err("invalid integer literal", line))?;
                    out.push(Token {
                        tok: Tok::Int(v),
                        line,
                    });
                }
            }
            b'\'' => {
                i += 1;
                let (v, adv) = unescape(b, i, line)?;
                i += adv;
                if i >= b.len() || b[i] != b'\'' {
                    return Err(err("unterminated char literal", line));
                }
                i += 1;
                out.push(Token {
                    tok: Tok::Int(i64::from(v)),
                    line,
                });
            }
            b'"' => {
                i += 1;
                let mut s = Vec::new();
                loop {
                    if i >= b.len() {
                        return Err(err("unterminated string literal", line));
                    }
                    if b[i] == b'"' {
                        i += 1;
                        break;
                    }
                    let (v, adv) = unescape(b, i, line)?;
                    s.push(v);
                    i += adv;
                }
                out.push(Token {
                    tok: Tok::Str(s),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                let p = PUNCTS.iter().find(|p| rest.starts_with(**p));
                match p {
                    Some(p) => {
                        out.push(Token {
                            tok: Tok::Punct(p),
                            line,
                        });
                        i += p.len();
                    }
                    None => {
                        return Err(err(&format!("unexpected character `{}`", c as char), line))
                    }
                }
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

fn unescape(b: &[u8], i: usize, line: u32) -> Result<(u8, usize), LexError> {
    if i >= b.len() {
        return Err(LexError {
            message: "unexpected end of literal".into(),
            line,
        });
    }
    if b[i] != b'\\' {
        return Ok((b[i], 1));
    }
    if i + 1 >= b.len() {
        return Err(LexError {
            message: "dangling escape".into(),
            line,
        });
    }
    let v = match b[i + 1] {
        b'n' => b'\n',
        b't' => b'\t',
        b'r' => b'\r',
        b'0' => 0,
        b'\\' => b'\\',
        b'\'' => b'\'',
        b'"' => b'"',
        other => {
            return Err(LexError {
                message: format!("unknown escape `\\{}`", other as char),
                line,
            })
        }
    };
    Ok((v, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn numbers_in_all_bases() {
        assert_eq!(
            kinds("42 0x2a 052 'a' '\\n'"),
            vec![
                Tok::Int(42),
                Tok::Int(42),
                Tok::Int(42),
                Tok::Int(97),
                Tok::Int(10),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#""GET /\n""#),
            vec![Tok::Str(b"GET /\n".to_vec()), Tok::Eof]
        );
    }

    #[test]
    fn multi_char_punctuation_wins() {
        assert_eq!(
            kinds("p->f a<<2 x<=y a&&b"),
            vec![
                Tok::Ident("p".into()),
                Tok::Punct("->"),
                Tok::Ident("f".into()),
                Tok::Ident("a".into()),
                Tok::Punct("<<"),
                Tok::Int(2),
                Tok::Ident("x".into()),
                Tok::Punct("<="),
                Tok::Ident("y".into()),
                Tok::Ident("a".into()),
                Tok::Punct("&&"),
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // line\n/* multi\nline */ b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
        assert!(matches!(toks[1].tok, Tok::Ident(ref s) if s == "b"));
    }

    #[test]
    fn errors_carry_lines() {
        let e = lex("a\n\"unterminated").unwrap_err();
        assert_eq!(e.line, 2);
        let e = lex("@").unwrap_err();
        assert!(e.message.contains("unexpected"));
    }
}
