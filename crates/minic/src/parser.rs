//! MiniC recursive-descent parser.
//!
//! Control-flow bodies require braces (`if (c) { .. }`); declarations may
//! appear anywhere a statement may. See the crate docs for the full
//! grammar sketch.

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};
use std::fmt;

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Problem description.
    pub message: String,
    /// Source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses a translation unit.
///
/// # Errors
/// Returns the first syntax error with its line number.
pub fn parse(src: &str) -> Result<Unit, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut unit = Unit::default();
    while !p.at_eof() {
        unit.decls.push(p.top_decl()?);
    }
    Ok(unit)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(self.peek(), Tok::Ident(s)
            if s == "void" || s == "char" || s == "long" || s == "fnptr" || s == "struct")
    }

    /// base type + leading `*`s (no array suffix).
    fn parse_type(&mut self) -> Result<CType, ParseError> {
        let base = match self.bump() {
            Tok::Ident(s) => match s.as_str() {
                "void" => CType::Void,
                "char" => CType::Char,
                "long" => CType::Long,
                "fnptr" => CType::FnPtr,
                "struct" => CType::Struct(self.expect_ident()?),
                other => return self.err(format!("unknown type `{other}`")),
            },
            other => return self.err(format!("expected type, found {other}")),
        };
        let mut t = base;
        while self.eat_punct("*") {
            t = t.ptr();
        }
        Ok(t)
    }

    fn top_decl(&mut self) -> Result<Decl, ParseError> {
        // struct definition?
        if matches!(self.peek(), Tok::Ident(s) if s == "struct")
            && matches!(&self.toks[self.pos + 2].tok, Tok::Punct("{"))
        {
            self.bump(); // struct
            let name = self.expect_ident()?;
            self.expect_punct("{")?;
            let mut fields = Vec::new();
            while !self.eat_punct("}") {
                let ty = self.parse_type()?;
                let fname = self.expect_ident()?;
                let ty = self.maybe_array(ty)?;
                self.expect_punct(";")?;
                fields.push((ty, fname));
            }
            self.expect_punct(";")?;
            return Ok(Decl::Struct { name, fields });
        }

        let ty = self.parse_type()?;
        let name = self.expect_ident()?;
        if self.eat_punct("(") {
            // function definition
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    let pty = self.parse_type()?;
                    let pname = self.expect_ident()?;
                    params.push((pty, pname));
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            self.expect_punct("{")?;
            let body = self.block_body()?;
            return Ok(Decl::Func {
                ret: ty,
                name,
                params,
                body,
            });
        }
        // global variable
        let ty = self.maybe_array(ty)?;
        let init = if self.eat_punct("=") {
            match self.peek().clone() {
                Tok::Str(s) => {
                    self.bump();
                    GlobalInitAst::Str(s)
                }
                Tok::Punct("{") => {
                    self.bump();
                    let mut items = Vec::new();
                    while !self.eat_punct("}") {
                        match self.bump() {
                            Tok::Int(v) => items.push(InitItem::Int(v)),
                            Tok::Punct("-") => match self.bump() {
                                Tok::Int(v) => items.push(InitItem::Int(-v)),
                                other => {
                                    return self
                                        .err(format!("expected number after -, got {other}"))
                                }
                            },
                            Tok::Ident(n) => items.push(InitItem::Name(n)),
                            other => {
                                return self
                                    .err(format!("expected initializer item, found {other}"))
                            }
                        }
                        if !self.eat_punct(",") && !matches!(self.peek(), Tok::Punct("}")) {
                            return self.err("expected `,` or `}` in initializer list");
                        }
                    }
                    GlobalInitAst::List(items)
                }
                _ => {
                    let e = self.expr()?;
                    match const_fold(&e) {
                        Some(v) => GlobalInitAst::Int(v),
                        None => return self.err("global initializer must be constant"),
                    }
                }
            }
        } else {
            GlobalInitAst::Zero
        };
        self.expect_punct(";")?;
        Ok(Decl::Global { ty, name, init })
    }

    fn maybe_array(&mut self, ty: CType) -> Result<CType, ParseError> {
        if self.eat_punct("[") {
            let n = match self.bump() {
                Tok::Int(v) if v > 0 => v as u64,
                other => return self.err(format!("expected array length, found {other}")),
            };
            self.expect_punct("]")?;
            Ok(CType::Array(Box::new(ty), n))
        } else {
            Ok(ty)
        }
    }

    /// Statements until the closing `}` (consumed).
    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            if self.at_eof() {
                return self.err("unterminated block");
            }
            body.push(self.stmt()?);
        }
        Ok(body)
    }

    fn braced_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        self.block_body()
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            let then_b = self.braced_block()?;
            let else_b = if self.eat_kw("else") {
                if matches!(self.peek(), Tok::Ident(s) if s == "if") {
                    vec![self.stmt()?]
                } else {
                    self.braced_block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(c, then_b, else_b));
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let c = self.expr()?;
            self.expect_punct(")")?;
            let body = self.braced_block()?;
            return Ok(Stmt::While(c, body));
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = self.simple_stmt()?;
            self.expect_punct(";")?;
            let cond = self.expr()?;
            self.expect_punct(";")?;
            let step = self.simple_stmt()?;
            self.expect_punct(")")?;
            let body = self.braced_block()?;
            return Ok(Stmt::For(Box::new(init), cond, Box::new(step), body));
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        let s = self.simple_stmt()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// Declaration, assignment, or expression — no trailing `;`.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.is_type_start() {
            // Disambiguate `struct s x` from expression starting with ident:
            // all our type keywords are reserved, so this is a declaration.
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            let ty = self.maybe_array(ty)?;
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Decl { ty, name, init });
        }
        let lhs = self.expr()?;
        if self.eat_punct("=") {
            let rhs = self.expr()?;
            return Ok(Stmt::Assign(lhs, rhs));
        }
        Ok(Stmt::Expr(lhs))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct("||") => (BinExprOp::LOr, 1),
                Tok::Punct("&&") => (BinExprOp::LAnd, 2),
                Tok::Punct("|") => (BinExprOp::Or, 3),
                Tok::Punct("^") => (BinExprOp::Xor, 4),
                Tok::Punct("&") => (BinExprOp::And, 5),
                Tok::Punct("==") => (BinExprOp::Eq, 6),
                Tok::Punct("!=") => (BinExprOp::Ne, 6),
                Tok::Punct("<") => (BinExprOp::Lt, 7),
                Tok::Punct("<=") => (BinExprOp::Le, 7),
                Tok::Punct(">") => (BinExprOp::Gt, 7),
                Tok::Punct(">=") => (BinExprOp::Ge, 7),
                Tok::Punct("<<") => (BinExprOp::Shl, 8),
                Tok::Punct(">>") => (BinExprOp::Shr, 8),
                Tok::Punct("+") => (BinExprOp::Add, 9),
                Tok::Punct("-") => (BinExprOp::Sub, 9),
                Tok::Punct("*") => (BinExprOp::Mul, 10),
                Tok::Punct("/") => (BinExprOp::Div, 10),
                Tok::Punct("%") => (BinExprOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(Expr::BitNot(Box::new(self.unary()?)));
        }
        if self.eat_punct("*") {
            return Ok(Expr::Deref(Box::new(self.unary()?)));
        }
        if self.eat_punct("&") {
            return Ok(Expr::AddrOf(Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
                e = Expr::Call(Box::new(e), args);
            } else if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.eat_punct(".") {
                e = Expr::Field(Box::new(e), self.expect_ident()?);
            } else if self.eat_punct("->") {
                e = Expr::Arrow(Box::new(e), self.expect_ident()?);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("sizeof") {
            self.expect_punct("(")?;
            let ty = self.parse_type()?;
            let ty = self.maybe_array(ty)?;
            self.expect_punct(")")?;
            return Ok(Expr::SizeOf(ty));
        }
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Ident(s) => Ok(Expr::Ident(s)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }
}

fn const_fold(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Neg(x) => const_fold(x).map(i64::wrapping_neg),
        Expr::Bin(op, a, b) => {
            let (a, b) = (const_fold(a)?, const_fold(b)?);
            Some(match op {
                BinExprOp::Add => a.wrapping_add(b),
                BinExprOp::Sub => a.wrapping_sub(b),
                BinExprOp::Mul => a.wrapping_mul(b),
                BinExprOp::Or => a | b,
                BinExprOp::And => a & b,
                BinExprOp::Xor => a ^ b,
                BinExprOp::Shl => a.wrapping_shl(b as u32),
                BinExprOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
                _ => return None,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_structs_globals_functions() {
        let src = r#"
            struct ctx { char *path; long flags; };
            long counter = 0;
            char banner[16] = "hi";
            fnptr handlers[2] = { h0, 0 };
            long mask = 1 | 2 | 4;
            long add(long a, long b) { return a + b; }
        "#;
        let u = parse(src).unwrap();
        assert_eq!(u.decls.len(), 6);
        assert!(matches!(&u.decls[0], Decl::Struct { name, fields }
            if name == "ctx" && fields.len() == 2));
        assert!(
            matches!(&u.decls[3], Decl::Global { init: GlobalInitAst::List(items), .. }
            if items.len() == 2)
        );
        assert!(matches!(
            &u.decls[4],
            Decl::Global {
                init: GlobalInitAst::Int(7),
                ..
            }
        ));
        assert!(matches!(&u.decls[5], Decl::Func { params, .. } if params.len() == 2));
    }

    #[test]
    fn precedence_is_c_like() {
        let src = "long f() { return 1 + 2 * 3 == 7 && 4 < 5; }";
        let u = parse(src).unwrap();
        let Decl::Func { body, .. } = &u.decls[0] else {
            panic!()
        };
        let Stmt::Return(Some(Expr::Bin(BinExprOp::LAnd, _, _))) = &body[0] else {
            panic!("&& should bind loosest: {body:?}");
        };
    }

    #[test]
    fn control_flow_statements() {
        let src = r#"
            void f(long n) {
                long i;
                for (i = 0; i < n; i = i + 1) {
                    if (i == 3) { continue; } else { g(i); }
                }
                while (n > 0) { n = n - 1; break; }
            }
        "#;
        let u = parse(src).unwrap();
        let Decl::Func { body, .. } = &u.decls[0] else {
            panic!()
        };
        assert!(matches!(body[1], Stmt::For(..)));
        assert!(matches!(body[2], Stmt::While(..)));
    }

    #[test]
    fn postfix_chains() {
        let src = "void f(struct r *r) { r->v[i].handler(r, 1); }";
        let u = parse(src).unwrap();
        let Decl::Func { body, .. } = &u.decls[0] else {
            panic!()
        };
        let Stmt::Expr(Expr::Call(callee, args)) = &body[0] else {
            panic!("{body:?}")
        };
        assert!(matches!(callee.as_ref(), Expr::Field(..)));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn pointer_and_array_types() {
        let src = "void f() { char *p; long xs[8]; struct ctx *c; fnptr h; }";
        let u = parse(src).unwrap();
        let Decl::Func { body, .. } = &u.decls[0] else {
            panic!()
        };
        assert!(matches!(
            &body[0],
            Stmt::Decl {
                ty: CType::Ptr(_),
                ..
            }
        ));
        assert!(matches!(
            &body[1],
            Stmt::Decl {
                ty: CType::Array(_, 8),
                ..
            }
        ));
        assert!(matches!(
            &body[3],
            Stmt::Decl {
                ty: CType::FnPtr,
                ..
            }
        ));
    }

    #[test]
    fn sizeof_and_unary() {
        let src = "long f() { return sizeof(struct ctx) + -x + !y + *p + &q; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn errors_report_lines() {
        let e = parse("long f() {\n  return @;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
