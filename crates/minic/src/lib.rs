//! # bastion-minic
//!
//! A small C-like language ("MiniC") compiled to [`bastion_ir`]. The three
//! workload applications (the NGINX/SQLite/vsftpd analogues) are written in
//! MiniC, so the BASTION compiler pass analyzes realistic source programs
//! rather than hand-built IR — the same relationship the paper has between
//! its LLVM pass and the C applications it protects.
//!
//! ## Language
//!
//! ```c
//! struct exec_ctx { char *path; long flags; };
//! long counter = 0;
//! char banner[32] = "hello";
//! fnptr handlers[2] = { h_status, h_echo };   // address-taken functions
//!
//! long serve(struct exec_ctx *ctx, long n) {
//!     char buf[64];
//!     long i;
//!     for (i = 0; i < n; i = i + 1) {
//!         if (ctx->flags & 1) { buf[i] = 'x'; } else { break; }
//!     }
//!     return handlers[n & 1](ctx, i);          // indirect call
//! }
//! ```
//!
//! Types: `void`, `char` (1 byte), `long` (64-bit word), pointers, fixed
//! arrays, named structs, and `fnptr` (code pointers). Statements: block
//! declarations, assignment, `if`/`else`, `while`, `for`, `return`,
//! `break`, `continue`. Control-flow bodies require braces.
//!
//! [`compile_program`] bundles the libc prelude: a syscall stub for every
//! number in [`bastion_ir::sysno`] plus string/memory helpers (themselves
//! written in MiniC) and `system()` — so every image contains the full
//! stub surface, exactly like linking against libc, which is what makes
//! the *not-callable* call-type class meaningful.
//!
//! ```
//! let module = bastion_minic::compile_program(
//!     "hello",
//!     &[r#"long main() { return strlen("hello") + 1; }"#],
//! )?;
//! assert!(module.func_by_name("main").is_some());
//! assert!(module.func_by_name("execve").is_some()); // libc stub surface
//! # Ok::<(), bastion_minic::FrontError>(())
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use lower::{LowerError, Lowerer};
pub use parser::{parse, ParseError};

use bastion_ir::build::ModuleBuilder;
use bastion_ir::{sysno, Module};
use std::fmt;

/// Any front-end failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Semantic lowering failed.
    Lower(LowerError),
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontError::Parse(e) => write!(f, "{e}"),
            FrontError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontError {}

impl From<ParseError> for FrontError {
    fn from(e: ParseError) -> Self {
        FrontError::Parse(e)
    }
}

impl From<LowerError> for FrontError {
    fn from(e: LowerError) -> Self {
        FrontError::Lower(e)
    }
}

/// The libc string/memory helpers, written in MiniC. Note `strcpy` and
/// friends write through pointer parameters — the shape the inter-
/// procedural pointee analysis (paper §6.3.3) must instrument when a
/// sensitive buffer flows in.
pub const LIBC: &str = r#"
long strlen(char *s) {
    long n;
    n = 0;
    while (s[n] != 0) { n = n + 1; }
    return n;
}

void strcpy(char *dst, char *src) {
    long i;
    i = 0;
    while (src[i] != 0) { dst[i] = src[i]; i = i + 1; }
    dst[i] = 0;
}

void strncpy(char *dst, char *src, long n) {
    long i;
    i = 0;
    while (i < n - 1 && src[i] != 0) { dst[i] = src[i]; i = i + 1; }
    dst[i] = 0;
}

long strcmp(char *a, char *b) {
    long i;
    i = 0;
    while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
    return a[i] - b[i];
}

long strneq(char *a, char *b, long n) {
    long i;
    for (i = 0; i < n; i = i + 1) {
        if (a[i] != b[i]) { return 0; }
        if (a[i] == 0) { return 1; }
    }
    return 1;
}

long starts_with(char *s, char *prefix) {
    long i;
    i = 0;
    while (prefix[i] != 0) {
        if (s[i] != prefix[i]) { return 0; }
        i = i + 1;
    }
    return 1;
}

void memcpy(char *dst, char *src, long n) {
    long i;
    for (i = 0; i < n; i = i + 1) { dst[i] = src[i]; }
}

void memset(char *dst, long c, long n) {
    long i;
    for (i = 0; i < n; i = i + 1) { dst[i] = c; }
}

void strcat(char *dst, char *src) {
    long n;
    n = strlen(dst);
    strcpy(dst + n, src);
}

long atoi(char *s) {
    long v;
    long i;
    long neg;
    v = 0;
    i = 0;
    neg = 0;
    if (s[0] == '-') { neg = 1; i = 1; }
    while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i = i + 1;
    }
    if (neg) { return 0 - v; }
    return v;
}

long itoa(long v, char *buf) {
    char tmp[24];
    long i;
    long n;
    long neg;
    neg = 0;
    if (v < 0) { neg = 1; v = 0 - v; }
    i = 0;
    if (v == 0) { tmp[0] = '0'; i = 1; }
    while (v > 0) { tmp[i] = '0' + v % 10; v = v / 10; i = i + 1; }
    n = 0;
    if (neg) { buf[0] = '-'; n = 1; }
    while (i > 0) { i = i - 1; buf[n] = tmp[i]; n = n + 1; }
    buf[n] = 0;
    return n;
}

char system_shell[8] = "/bin/sh";

long system(char *cmd) {
    long pid;
    pid = fork();
    if (pid == 0) {
        execve(system_shell, 0, 0);
        exit(127);
    }
    return pid;
}

long puts(char *s) {
    return write(1, s, strlen(s));
}
"#;

/// Adds a syscall stub for every number the simulator knows, mirroring a
/// full libc link.
pub fn add_syscall_stubs(mb: &mut ModuleBuilder) {
    for &nr in sysno::ALL {
        let name = sysno::name(nr).expect("ALL entries are named");
        mb.declare_syscall_stub(name, nr, sysno::arg_count(nr));
    }
}

/// Compiles one MiniC source into an existing builder (symbols from
/// earlier units remain visible).
///
/// # Errors
/// Propagates parse and lowering errors.
pub fn compile_unit(src: &str, mb: &mut ModuleBuilder) -> Result<(), FrontError> {
    let unit = parse(src)?;
    let mut lw = Lowerer::new(mb);
    lw.lower_unit(&unit)?;
    Ok(())
}

/// Compiles a full program: syscall stubs + [`LIBC`] + the given sources,
/// in order. The result validates.
///
/// # Errors
/// Propagates parse, lowering, and IR validation errors.
pub fn compile_program(name: &str, sources: &[&str]) -> Result<Module, FrontError> {
    let mut mb = ModuleBuilder::new(name);
    add_syscall_stubs(&mut mb);
    compile_unit(LIBC, &mut mb)?;
    for src in sources {
        compile_unit(src, &mut mb)?;
    }
    let module = mb.finish();
    module.validate().map_err(|e| {
        FrontError::Lower(LowerError {
            func: e.func,
            message: format!("generated IR failed validation: {}", e.message),
        })
    })?;
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_the_libc_prelude() {
        let m = compile_program("empty", &["long main() { return 0; }"]).unwrap();
        assert!(m.func_by_name("strlen").is_some());
        assert!(m.func_by_name("system").is_some());
        assert!(m.func_by_name("execve").is_some());
        assert!(m.func_by_name("main").is_some());
        // Every stub present (full libc surface).
        assert_eq!(m.syscall_stubs().len(), sysno::ALL.len());
    }

    #[test]
    fn reports_unknown_function() {
        let e = compile_program("bad", &["long main() { return nope(); }"]).unwrap_err();
        let FrontError::Lower(e) = e else {
            panic!("expected lowering error")
        };
        assert!(e.message.contains("nope"));
        assert_eq!(e.func.as_deref(), Some("main"));
    }

    #[test]
    fn reports_arity_mismatch() {
        let e = compile_program("bad", &["long main() { return strlen(); }"]).unwrap_err();
        assert!(matches!(e, FrontError::Lower(_)));
    }

    #[test]
    fn reports_unknown_struct_field() {
        let src = r#"
            struct s { long a; };
            long main() { struct s x; x.a = 1; return x.b; }
        "#;
        let e = compile_program("bad", &[src]).unwrap_err();
        let FrontError::Lower(e) = e else { panic!() };
        assert!(e.message.contains("no field"));
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let e = compile_program("bad", &["long strlen(char *s) { return 0; }"]).unwrap_err();
        let FrontError::Lower(e) = e else { panic!() };
        assert!(e.message.contains("duplicate"));
    }
}
