//! MiniC abstract syntax tree.

/// A source-level type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// `void` (function returns only).
    Void,
    /// `char` — one byte.
    Char,
    /// `long` — the 64-bit word.
    Long,
    /// `T*`.
    Ptr(Box<CType>),
    /// `struct Name`.
    Struct(String),
    /// `fnptr` — a code pointer (arity checked at the callsite).
    FnPtr,
    /// `T name[N]` — fixed array (declarations only).
    Array(Box<CType>, u64),
}

impl CType {
    /// Pointer to self.
    pub fn ptr(self) -> CType {
        CType::Ptr(Box::new(self))
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinExprOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit `&&`.
    LAnd,
    /// Short-circuit `||`.
    LOr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal (lowered to an anonymous global; value is `char*`).
    Str(Vec<u8>),
    /// Variable reference.
    Ident(String),
    /// `a <op> b`.
    Bin(BinExprOp, Box<Expr>, Box<Expr>),
    /// `-e`.
    Neg(Box<Expr>),
    /// `!e`.
    Not(Box<Expr>),
    /// `~e`.
    BitNot(Box<Expr>),
    /// `*e`.
    Deref(Box<Expr>),
    /// `&lvalue`.
    AddrOf(Box<Expr>),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `base.field`.
    Field(Box<Expr>, String),
    /// `ptr->field`.
    Arrow(Box<Expr>, String),
    /// `callee(args)` — direct if `callee` names a function, otherwise an
    /// indirect call through the expression's value.
    Call(Box<Expr>, Vec<Expr>),
    /// `sizeof(type)`.
    SizeOf(CType),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl {
        /// Declared type.
        ty: CType,
        /// Variable name.
        name: String,
        /// Initializer expression.
        init: Option<Expr>,
    },
    /// `lvalue = expr;`
    Assign(Expr, Expr),
    /// Bare expression (e.g. a call).
    Expr(Expr),
    /// `if (c) { .. } else { .. }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { .. }`.
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) { .. }` — init/step are statements.
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>),
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// A global initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInitAst {
    /// No initializer (zero).
    Zero,
    /// Scalar constant.
    Int(i64),
    /// String literal (for `char name[] = "..."` / `char *p = "..."`).
    Str(Vec<u8>),
    /// Brace list: integers and/or function names (handler tables).
    List(Vec<InitItem>),
}

/// One element of a brace initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum InitItem {
    /// Literal word.
    Int(i64),
    /// Address of the named function or global.
    Name(String),
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `struct Name { ... };`
    Struct {
        /// Struct name.
        name: String,
        /// Field declarations.
        fields: Vec<(CType, String)>,
    },
    /// A global variable.
    Global {
        /// Declared type.
        ty: CType,
        /// Name.
        name: String,
        /// Initializer.
        init: GlobalInitAst,
    },
    /// A function definition.
    Func {
        /// Return type.
        ret: CType,
        /// Name.
        name: String,
        /// Parameters.
        params: Vec<(CType, String)>,
        /// Body.
        body: Vec<Stmt>,
    },
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// Declarations in source order.
    pub decls: Vec<Decl>,
}
