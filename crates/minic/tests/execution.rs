//! MiniC programs compiled and executed on the VM + kernel.

use bastion_kernel::{ExitReason, RunStatus, World};
use bastion_minic::compile_program;
use bastion_vm::{CostModel, Image, Machine};
use std::sync::Arc;

fn run_to_exit(src: &str) -> (World, i64) {
    let module = compile_program("test", &[src]).unwrap();
    let image = Arc::new(Image::load(module).unwrap());
    let machine = Machine::new(image, CostModel::default());
    let mut world = World::new(CostModel::default());
    let pid = world.spawn(machine);
    assert_eq!(world.run(100_000_000), RunStatus::AllExited);
    let Some(ExitReason::Exited(code)) = world.proc(pid).unwrap().exit.clone() else {
        panic!(
            "program did not exit cleanly: {:?}",
            world.proc(pid).unwrap().exit
        );
    };
    (world, code)
}

#[test]
fn arithmetic_and_loops() {
    let (_, code) = run_to_exit(
        r#"
        long main() {
            long sum;
            long i;
            sum = 0;
            for (i = 1; i <= 10; i = i + 1) { sum = sum + i; }
            return sum;
        }
        "#,
    );
    assert_eq!(code, 55);
}

#[test]
fn string_helpers_work() {
    let (_, code) = run_to_exit(
        r#"
        long main() {
            char buf[32];
            strcpy(buf, "hello ");
            strcat(buf, "world");
            if (strcmp(buf, "hello world") != 0) { return 1; }
            if (strlen(buf) != 11) { return 2; }
            if (!starts_with(buf, "hello")) { return 3; }
            if (atoi("-472") != 0 - 472) { return 4; }
            char num[24];
            if (itoa(12345, num) != 5) { return 5; }
            if (strcmp(num, "12345") != 0) { return 6; }
            return 0;
        }
        "#,
    );
    assert_eq!(code, 0);
}

#[test]
fn structs_and_pointers() {
    let (_, code) = run_to_exit(
        r#"
        struct point { long x; long y; };
        struct rect { struct point a; struct point b; };

        long area(struct rect *r) {
            return (r->b.x - r->a.x) * (r->b.y - r->a.y);
        }

        long main() {
            struct rect r;
            r.a.x = 1; r.a.y = 2;
            r.b.x = 5; r.b.y = 10;
            return area(&r);
        }
        "#,
    );
    assert_eq!(code, 32);
}

#[test]
fn function_pointer_tables() {
    let (_, code) = run_to_exit(
        r#"
        long h_double(long x) { return x * 2; }
        long h_square(long x) { return x * x; }
        fnptr handlers[2] = { h_double, h_square };

        long main() {
            long a;
            long b;
            a = handlers[0](21);
            b = handlers[1](6);
            return a + b;
        }
        "#,
    );
    assert_eq!(code, 78);
}

#[test]
fn recursion_and_shortcircuit() {
    let (_, code) = run_to_exit(
        r#"
        long fib(long n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }

        long guard(long x) {
            if (x != 0 && 100 / x > 5) { return 1; }
            return 0;
        }

        long main() {
            if (guard(0) != 0) { return 100; }  // short-circuit avoids div/0
            if (guard(10) != 1) { return 101; }
            return fib(12);
        }
        "#,
    );
    assert_eq!(code, 144);
}

#[test]
fn syscalls_from_minic() {
    let (world, code) = run_to_exit(
        r#"
        long main() {
            long fd;
            char buf[64];
            long n;
            puts("booting\n");
            fd = open("/etc/motd", 0, 0);
            if (fd < 0) { return 1; }
            n = read(fd, buf, 63);
            buf[n] = 0;
            close(fd);
            write(1, buf, n);
            return n;
        }
        "#,
    );
    // /etc/motd does not exist in a fresh world.
    assert_eq!(code, 1);
    assert_eq!(&world.kernel.console, b"booting\n");
}

#[test]
fn pointer_arithmetic_scales() {
    let (_, code) = run_to_exit(
        r#"
        long main() {
            long xs[4];
            long *p;
            xs[0] = 10; xs[1] = 20; xs[2] = 30; xs[3] = 40;
            p = xs;
            p = p + 2;
            return *p + p[1];
        }
        "#,
    );
    assert_eq!(code, 70);
}

#[test]
fn char_buffers_are_byte_wide() {
    let (_, code) = run_to_exit(
        r#"
        long main() {
            char b[8];
            memset(b, 0, 8);
            b[0] = 255;
            b[1] = 1;
            return b[0] + b[1] + b[2];
        }
        "#,
    );
    // 255 zero-extends as a byte, not sign-extends.
    assert_eq!(code, 256);
}

#[test]
fn global_state_persists_across_calls() {
    let (_, code) = run_to_exit(
        r#"
        long counter = 100;
        char *greeting = "hey";

        void tick() { counter = counter + 1; }

        long main() {
            tick();
            tick();
            tick();
            return counter + strlen(greeting);
        }
        "#,
    );
    assert_eq!(code, 106);
}

#[test]
fn break_and_continue() {
    let (_, code) = run_to_exit(
        r#"
        long main() {
            long i;
            long sum;
            sum = 0;
            for (i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                sum = sum + i;
            }
            return sum; // 1+3+5+7+9 = 25
        }
        "#,
    );
    assert_eq!(code, 25);
}

#[test]
fn sizeof_matches_layout() {
    let (_, code) = run_to_exit(
        r#"
        struct hdr { char tag[4]; long len; char *name; };
        long main() {
            return sizeof(struct hdr) + sizeof(long) + sizeof(char);
        }
        "#,
    );
    assert_eq!(code, 20 + 8 + 1);
}
