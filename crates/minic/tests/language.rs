//! MiniC language coverage: each construct the applications rely on, run
//! end-to-end on the VM.

use bastion_kernel::{ExitReason, RunStatus, World};
use bastion_minic::{compile_program, FrontError};
use bastion_vm::{CostModel, Image, Machine};
use std::sync::Arc;

fn eval(src: &str) -> i64 {
    let module = compile_program("t", &[src]).unwrap();
    let image = Arc::new(Image::load(module).unwrap());
    let machine = Machine::new(image, CostModel::default());
    let mut world = World::new(CostModel::default());
    let pid = world.spawn(machine);
    assert_eq!(world.run(500_000_000), RunStatus::AllExited);
    match world.proc(pid).unwrap().exit.clone() {
        Some(ExitReason::Exited(code)) => code,
        other => panic!("abnormal exit {other:?}"),
    }
}

#[test]
fn else_if_chains() {
    let src = r#"
        long grade(long x) {
            if (x >= 90) { return 4; }
            else if (x >= 80) { return 3; }
            else if (x >= 70) { return 2; }
            else { return 0; }
        }
        long main() { return grade(95) * 1000 + grade(85) * 100 + grade(75) * 10 + grade(5); }
    "#;
    assert_eq!(eval(src), 4320);
}

#[test]
fn struct_arrays_and_nested_structs() {
    let src = r#"
        struct inner { long a; char tag; };
        struct outer { struct inner pair[2]; long sum; };
        struct outer g;

        long main() {
            g.pair[0].a = 5;
            g.pair[0].tag = 'x';
            g.pair[1].a = 7;
            g.pair[1].tag = 'y';
            g.sum = g.pair[0].a + g.pair[1].a;
            if (g.pair[1].tag != 'y') { return 0 - 1; }
            return g.sum + sizeof(struct outer);
        }
    "#;
    // inner = 8 + 1 = 9 bytes; pair = 18; sum at 18 → outer = 26.
    assert_eq!(eval(src), 12 + 26);
}

#[test]
fn pointer_to_pointer_and_swap() {
    let src = r#"
        void swap(long *a, long *b) {
            long t = *a;
            *a = *b;
            *b = t;
        }
        long main() {
            long x = 3;
            long y = 11;
            swap(&x, &y);
            long *p = &x;
            long **pp = &p;
            **pp = **pp + 100;
            return x * 100 + y;
        }
    "#;
    assert_eq!(eval(src), 11100 + 3);
}

#[test]
fn mixed_reloc_initializer_tables() {
    let src = r#"
        long f1(long x) { return x + 1; }
        long f2(long x) { return x * 2; }
        long table[5] = { f1, 0, f2, -7, 99 };
        long main() {
            fnptr g = table[0];
            fnptr h = table[2];
            if (table[3] != 0 - 7) { return 0 - 1; }
            if (table[4] != 99) { return 0 - 2; }
            if (table[1] != 0) { return 0 - 3; }
            return g(10) + h(10);
        }
    "#;
    assert_eq!(eval(src), 31);
}

#[test]
fn string_escapes_and_char_literals() {
    let src = r#"
        char *s = "a\tb\n\"q\"\\";
        long main() {
            if (s[1] != '\t') { return 1; }
            if (s[3] != '\n') { return 2; }
            if (s[4] != '"') { return 3; }
            if (s[7] != '\\') { return 4; }
            if (s[8] != '\0') { return 5; }
            return strlen(s);
        }
    "#;
    assert_eq!(eval(src), 8);
}

#[test]
fn deep_recursion_and_mutual_recursion() {
    let src = r#"
        long is_odd(long n);
        long is_even(long n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        long is_odd(long n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        long main() { return is_even(200) * 10 + is_odd(33); }
    "#;
    // Forward declaration is not supported as a bare prototype — expect a
    // front-end error for the prototype form instead.
    match compile_program("t", &[src]) {
        Err(FrontError::Parse(_)) | Err(FrontError::Lower(_)) => {}
        Ok(_) => panic!("bare prototypes should not parse"),
    }

    // Define-before-use order works without prototypes because functions
    // are declared in a pre-pass.
    let src = r#"
        long is_even(long n) {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        long is_odd(long n) {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        long main() { return is_even(200) * 10 + is_odd(33); }
    "#;
    assert_eq!(eval(src), 11);
}

#[test]
fn shadowing_in_nested_scopes() {
    let src = r#"
        long main() {
            long x = 1;
            long acc = 0;
            if (x) {
                long x = 10;
                acc = acc + x;
                while (x > 8) {
                    long x = 100;
                    acc = acc + x;
                    break;
                }
            }
            return acc + x;
        }
    "#;
    assert_eq!(eval(src), 111);
}

#[test]
fn logical_operators_short_circuit_with_side_effects() {
    let src = r#"
        long calls;
        long bump(long v) { calls = calls + 1; return v; }
        long main() {
            calls = 0;
            long a = bump(0) && bump(1);   // rhs skipped
            long b = bump(1) || bump(1);   // rhs skipped
            long c = bump(1) && bump(0);   // both run
            return calls * 10 + a + b * 2 + c * 4;
        }
    "#;
    // calls = 1 + 1 + 2 = 4; a=0 b=1 c=0.
    assert_eq!(eval(src), 42);
}

#[test]
fn negative_division_and_remainder_truncate() {
    let src = r#"
        long main() {
            long a = 0 - 7;
            if (a / 2 != 0 - 3) { return 1; }
            if (a % 2 != 0 - 1) { return 2; }
            if (7 / (0 - 2) != 0 - 3) { return 3; }
            return 0;
        }
    "#;
    assert_eq!(eval(src), 0);
}

#[test]
fn arrays_decay_in_calls_and_arithmetic() {
    let src = r#"
        long sum(long *xs, long n) {
            long s = 0;
            long i;
            for (i = 0; i < n; i = i + 1) { s = s + xs[i]; }
            return s;
        }
        long main() {
            long xs[5];
            long i;
            for (i = 0; i < 5; i = i + 1) { xs[i] = i * i; }
            return sum(xs, 5) + sum(xs + 2, 2);
        }
    "#;
    assert_eq!(eval(src), 30 + 13);
}

#[test]
fn division_by_zero_is_a_fault_not_ub() {
    let module = compile_program("t", &["long main() { long z = 0; return 5 / z; }"]).unwrap();
    let image = Arc::new(Image::load(module).unwrap());
    let machine = Machine::new(image, CostModel::default());
    let mut world = World::new(CostModel::default());
    let pid = world.spawn(machine);
    world.run(1_000_000);
    assert!(matches!(
        world.proc(pid).unwrap().exit,
        Some(ExitReason::Fault(bastion_vm::Fault::DivByZero))
    ));
}

#[test]
fn wild_pointer_write_is_a_fault() {
    let module =
        compile_program("t", &["long main() { long *p = 64; *p = 1; return 0; }"]).unwrap();
    let image = Arc::new(Image::load(module).unwrap());
    let machine = Machine::new(image, CostModel::default());
    let mut world = World::new(CostModel::default());
    let pid = world.spawn(machine);
    world.run(1_000_000);
    assert!(matches!(
        world.proc(pid).unwrap().exit,
        Some(ExitReason::Fault(bastion_vm::Fault::Mem(_)))
    ));
}

#[test]
fn comments_everywhere() {
    let src = r#"
        // leading comment
        long main() { /* inline */ return /* mid-expression */ 7; } // trailing
    "#;
    assert_eq!(eval(src), 7);
}

#[test]
fn hex_octal_and_shift_expressions() {
    let src = r#"
        long main() {
            if (0x10 != 16) { return 1; }
            if (020 != 16) { return 2; }
            if ((1 << 10) != 1024) { return 3; }
            if ((0 - 8) >> 1 == 0 - 4) { return 4; }  // logical shift, not arithmetic
            return (0xff & 0x0f) | (1 << 6);
        }
    "#;
    assert_eq!(eval(src), 0x4f);
}

#[test]
fn multi_source_programs_link() {
    // A two-translation-unit program: the library unit defines the struct
    // and helpers; the app unit uses them (symbols resolve across units).
    let lib = r#"
        struct counter { long value; long step; };
        struct counter g_counter;

        void counter_init(long step) {
            g_counter.value = 0;
            g_counter.step = step;
        }
        long counter_bump() {
            g_counter.value = g_counter.value + g_counter.step;
            return g_counter.value;
        }
    "#;
    let app = r#"
        long main() {
            counter_init(5);
            counter_bump();
            counter_bump();
            return counter_bump();
        }
    "#;
    let module = compile_program("linked", &[lib, app]).unwrap();
    let image = Arc::new(Image::load(module).unwrap());
    let machine = Machine::new(image, CostModel::default());
    let mut world = World::new(CostModel::default());
    let pid = world.spawn(machine);
    assert_eq!(world.run(10_000_000), RunStatus::AllExited);
    assert_eq!(world.proc(pid).unwrap().exit, Some(ExitReason::Exited(15)));
}

#[test]
fn duplicate_symbols_across_units_are_rejected() {
    let a = "long f() { return 1; }";
    let b = "long f() { return 2; } long main() { return f(); }";
    assert!(matches!(
        compile_program("dup", &[a, b]),
        Err(FrontError::Lower(_))
    ));
}
