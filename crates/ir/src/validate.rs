//! Module verifier.
//!
//! Catches malformed IR early (front-end or instrumentation bugs) so that
//! the VM can assume structural invariants: every referenced id is in
//! bounds, every register is within the function's register file, every
//! block is terminated, and syscall instructions appear only inside stubs.

use crate::inst::{Callee, Inst, Operand, Terminator};
use crate::module::{FuncKind, Module};
use std::fmt;

/// A structural error found by [`Module::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Function in which the error was found, if applicable.
    pub func: Option<String>,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(name) => write!(f, "invalid IR in `{name}`: {}", self.message),
            None => write!(f, "invalid IR: {}", self.message),
        }
    }
}

impl std::error::Error for ValidateError {}

impl Module {
    /// Checks structural invariants of the module.
    ///
    /// # Errors
    /// Returns the first problem found: out-of-range ids, duplicate function
    /// names, unterminated control flow, misplaced `syscall` instructions,
    /// or calls whose arity disagrees with the callee declaration.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let err = |func: Option<&str>, message: String| {
            Err(ValidateError {
                func: func.map(str::to_string),
                message,
            })
        };

        // Unique function names (metadata and the front-end key on them).
        let mut seen = std::collections::HashSet::new();
        for f in &self.functions {
            if !seen.insert(&f.name) {
                return err(None, format!("duplicate function name `{}`", f.name));
            }
        }

        for f in &self.functions {
            let n = Some(f.name.as_str());
            if f.blocks.is_empty() {
                return err(n, "function has no body".into());
            }
            if f.params.len() > f.locals.len() {
                return err(n, "parameters must have frame slots".into());
            }
            for (bi, b) in f.blocks.iter().enumerate() {
                for inst in &b.insts {
                    self.validate_inst(f, inst).map_err(|m| ValidateError {
                        func: Some(f.name.clone()),
                        message: format!("block {bi}: {m}"),
                    })?;
                }
                for op in self.term_operands(&b.term) {
                    self.check_operand(f, op).map_err(|m| ValidateError {
                        func: Some(f.name.clone()),
                        message: format!("block {bi} terminator: {m}"),
                    })?;
                }
                for s in b.term.successors() {
                    if s.index() >= f.blocks.len() {
                        return err(n, format!("block {bi}: branch to missing block {s}"));
                    }
                }
            }
        }
        Ok(())
    }

    fn term_operands(&self, t: &Terminator) -> Vec<Operand> {
        match t {
            Terminator::Br { cond, .. } => vec![*cond],
            Terminator::Ret(Some(v)) => vec![*v],
            _ => vec![],
        }
    }

    fn check_operand(&self, f: &crate::module::Function, op: Operand) -> Result<(), String> {
        if let Operand::Reg(r) = op {
            if r.0 >= f.reg_count {
                return Err(format!(
                    "register {r} out of range (reg_count {})",
                    f.reg_count
                ));
            }
        }
        Ok(())
    }

    fn check_def(&self, f: &crate::module::Function, r: crate::inst::Reg) -> Result<(), String> {
        if r.0 >= f.reg_count {
            return Err(format!("defined register {r} out of range"));
        }
        Ok(())
    }

    fn validate_inst(&self, f: &crate::module::Function, inst: &Inst) -> Result<(), String> {
        for op in inst.uses() {
            self.check_operand(f, op)?;
        }
        if let Some(d) = inst.def() {
            self.check_def(f, d)?;
        }
        match inst {
            Inst::FrameAddr { slot, .. } if slot.index() >= f.locals.len() => {
                Err(format!("frame slot {slot} out of range"))
            }
            Inst::GlobalAddr { global, .. } if global.index() >= self.globals.len() => {
                Err(format!("global {global} out of range"))
            }
            Inst::FuncAddr { func, .. } if func.index() >= self.functions.len() => {
                Err(format!("function {func} out of range"))
            }
            Inst::FieldAddr {
                struct_id, field, ..
            } => {
                let Some(s) = self.structs.get(struct_id.index()) else {
                    return Err(format!("{struct_id} out of range"));
                };
                if *field as usize >= s.fields.len() {
                    return Err(format!("field {field} out of range for {}", s.name));
                }
                Ok(())
            }
            Inst::Call {
                callee: Callee::Direct(id),
                args,
                ..
            } => {
                let Some(callee_fn) = self.functions.get(id.index()) else {
                    return Err(format!("call target {id} out of range"));
                };
                if callee_fn.params.len() != args.len() {
                    return Err(format!(
                        "call to `{}` passes {} args, expected {}",
                        callee_fn.name,
                        args.len(),
                        callee_fn.params.len()
                    ));
                }
                Ok(())
            }
            Inst::Syscall { nr, .. } if f.kind != FuncKind::SyscallStub(*nr) => Err(format!(
                "`syscall {nr}` outside a matching syscall stub (kind {:?})",
                f.kind
            )),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ModuleBuilder;
    use crate::inst::{Inst, Operand, Reg, Width};
    use crate::module::{Block, FuncId, Function, Local, Param, SlotId};
    use crate::types::Ty;

    fn valid_module() -> Module {
        let mut mb = ModuleBuilder::new("ok");
        let stub = mb.declare_syscall_stub("getpid", 39, 0);
        let mut f = mb.function("main", &[], Ty::I64);
        let r = f.call_direct(stub, &[]);
        f.ret(Some(r.into()));
        f.finish();
        mb.finish()
    }

    #[test]
    fn valid_module_passes() {
        assert!(valid_module().validate().is_ok());
    }

    #[test]
    fn duplicate_names_fail() {
        let mut m = valid_module();
        let dup = m.functions[1].clone();
        m.functions.push(dup);
        let e = m.validate().unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn out_of_range_register_fails() {
        let mut m = valid_module();
        m.functions[1].blocks[0].insts.push(Inst::Mov {
            dst: Reg(0),
            src: Operand::Reg(Reg(999)),
        });
        assert!(m.validate().is_err());
    }

    #[test]
    fn call_arity_mismatch_fails() {
        let mut m = valid_module();
        // main calls getpid with one extra argument.
        if let Inst::Call { args, .. } = &mut m.functions[1].blocks[0].insts[0] {
            args.push(Operand::Imm(1));
        } else {
            panic!("expected call");
        }
        let e = m.validate().unwrap_err();
        assert!(e.message.contains("args"));
    }

    #[test]
    fn syscall_outside_stub_fails() {
        let mut m = valid_module();
        m.functions[1].blocks[0].insts.insert(
            0,
            Inst::Syscall {
                dst: Reg(0),
                nr: 39,
                args: vec![],
            },
        );
        let e = m.validate().unwrap_err();
        assert!(e.message.contains("syscall"));
    }

    #[test]
    fn branch_to_missing_block_fails() {
        let m = Module {
            name: "bad".into(),
            structs: vec![],
            globals: vec![],
            functions: vec![Function {
                name: "f".into(),
                kind: crate::module::FuncKind::Normal,
                params: vec![],
                ret_ty: Ty::Void,
                locals: vec![],
                blocks: vec![Block {
                    insts: vec![],
                    term: crate::inst::Terminator::Jmp(crate::module::BlockId(9)),
                }],
                reg_count: 0,
            }],
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn params_require_slots() {
        let m = Module {
            name: "bad".into(),
            structs: vec![],
            globals: vec![],
            functions: vec![Function {
                name: "f".into(),
                kind: crate::module::FuncKind::Normal,
                params: vec![Param {
                    name: "x".into(),
                    ty: Ty::I64,
                }],
                ret_ty: Ty::Void,
                locals: vec![],
                blocks: vec![Block {
                    insts: vec![],
                    term: crate::inst::Terminator::Ret(None),
                }],
                reg_count: 0,
            }],
        };
        assert!(m.validate().is_err());
        // And the fixed version passes.
        let mut m = m;
        m.functions[0].locals.push(Local {
            name: "x".into(),
            ty: Ty::I64,
        });
        assert!(m.validate().is_ok());
        let _ = (FuncId(0), SlotId(0), Width::W64);
    }
}
