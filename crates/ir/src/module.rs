//! Modules, functions, blocks, globals.

use crate::inst::{Inst, Terminator};
use crate::types::{StructDef, Ty};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
            Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Index into the owning table.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a [`Function`] within a [`Module`].
    FuncId,
    "@f"
);
id_type!(
    /// Identifies a [`Block`] within a [`Function`].
    BlockId,
    "bb"
);
id_type!(
    /// Identifies a [`Global`] within a [`Module`].
    GlobalId,
    "@g"
);
id_type!(
    /// Identifies a frame slot ([`Local`]) within a [`Function`].
    SlotId,
    "$"
);

/// A module global variable, living in the data segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Source-level name.
    pub name: String,
    /// Declared type (drives size).
    pub ty: Ty,
    /// Initial contents.
    pub init: GlobalInit,
}

/// Initializer for a [`Global`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GlobalInit {
    /// Zero-filled.
    Zero,
    /// Raw bytes (e.g. string literals); zero-padded to the type size.
    Bytes(Vec<u8>),
    /// 64-bit words written little-endian (e.g. integer tables).
    Words(Vec<i64>),
    /// Words where some entries are relocated function addresses. Entries are
    /// either a literal word or a function reference resolved at load time —
    /// this is how handler tables like NGINX's `v[index].get_handler` arrays
    /// are built, and each referenced function becomes address-taken.
    Relocated(Vec<RelocEntry>),
}

/// One entry of a [`GlobalInit::Relocated`] initializer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RelocEntry {
    /// A literal 64-bit word.
    Word(i64),
    /// The load address of a function (address-taken).
    FuncAddr(FuncId),
    /// The load address of another global.
    GlobalAddr(GlobalId),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Source-level name.
    pub name: String,
    /// Declared type; must be scalar (aggregates pass by pointer).
    pub ty: Ty,
}

/// A stack-frame local variable.
///
/// Every named MiniC local (and every parameter) gets a frame slot in
/// simulated memory, so attackers with arbitrary write can corrupt them —
/// a prerequisite for reproducing the paper's attack scenarios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Local {
    /// Source-level name.
    pub name: String,
    /// Declared type (drives slot size).
    pub ty: Ty,
}

/// What kind of code a [`Function`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuncKind {
    /// Ordinary application (or libc helper) code.
    Normal,
    /// A libc-style system call wrapper whose body executes the `syscall`
    /// instruction with the given Linux x86-64 syscall number. Stubs exist
    /// in the linked image whether or not the application calls them — just
    /// like libc wrappers — which is what the Call-Type context's
    /// *not-callable* class protects against.
    SyscallStub(u32),
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Instructions in execution order.
    pub insts: Vec<Inst>,
    /// The block terminator.
    pub term: Terminator,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Source-level name (unique within a module).
    pub name: String,
    /// Kind: normal code or a syscall stub.
    pub kind: FuncKind,
    /// Parameters; each also has a slot in `locals` (the first
    /// `params.len()` slots) where the VM spills incoming arguments.
    pub params: Vec<Param>,
    /// Return type.
    pub ret_ty: Ty,
    /// Frame slots: parameters first, then named locals, then any
    /// compiler-introduced temporaries.
    pub locals: Vec<Local>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Number of virtual registers used.
    pub reg_count: u32,
}

impl Function {
    /// The syscall number if this is a stub.
    pub fn syscall_nr(&self) -> Option<u32> {
        match self.kind {
            FuncKind::SyscallStub(nr) => Some(nr),
            FuncKind::Normal => None,
        }
    }

    /// Byte offset of a slot from the frame base (slot area start).
    ///
    /// Slots are laid out in declaration order. The VM places the slot area
    /// directly below the saved frame pointer, so the runtime address of
    /// slot `s` is `fp - frame_size + slot_offset(s)`.
    ///
    /// # Panics
    /// Panics if `slot` is out of bounds.
    pub fn slot_offset(&self, slot: SlotId, structs: &[StructDef]) -> u64 {
        assert!(slot.index() < self.locals.len(), "slot out of bounds");
        self.locals[..slot.index()]
            .iter()
            .map(|l| l.ty.size(structs).max(1).div_ceil(8) * 8)
            .sum()
    }

    /// Total frame slot area size in bytes (each slot 8-byte aligned).
    pub fn frame_size(&self, structs: &[StructDef]) -> u64 {
        self.locals
            .iter()
            .map(|l| l.ty.size(structs).max(1).div_ceil(8) * 8)
            .sum()
    }

    /// Iterate over `(BlockId, &Block)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total instruction count including terminators.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }
}

/// A complete translation unit: the linked image the loader maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Module {
    /// Module name (diagnostics only).
    pub name: String,
    /// Struct table.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Functions; `FuncId(i)` indexes this table.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// The function table entry for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Map from syscall number to the stub function implementing it.
    pub fn syscall_stubs(&self) -> HashMap<u32, FuncId> {
        self.functions
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.syscall_nr().map(|nr| (nr, FuncId(i as u32))))
            .collect()
    }

    /// Iterate over `(FuncId, &Function)`.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Total instruction count across all functions.
    pub fn inst_count(&self) -> usize {
        self.functions.iter().map(Function::inst_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ModuleBuilder;
    use crate::inst::Operand;

    fn sample() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let getpid = mb.declare_syscall_stub("getpid", 39, 0);
        let mut f = mb.function("main", &[], Ty::I64);
        let buf = f.local("buf", Ty::Array(Box::new(Ty::I8), 12));
        let n = f.local("n", Ty::I64);
        let _ = (buf, n);
        let r = f.call_direct(getpid, &[]);
        f.ret(Some(Operand::Reg(r)));
        f.finish();
        mb.finish()
    }

    #[test]
    fn lookup_by_name() {
        let m = sample();
        assert!(m.func_by_name("main").is_some());
        assert!(m.func_by_name("getpid").is_some());
        assert!(m.func_by_name("nope").is_none());
    }

    #[test]
    fn syscall_stub_table() {
        let m = sample();
        let stubs = m.syscall_stubs();
        assert_eq!(stubs.len(), 1);
        let f = m.func(stubs[&39]);
        assert_eq!(f.syscall_nr(), Some(39));
    }

    #[test]
    fn slot_offsets_are_aligned() {
        let m = sample();
        let main = m.func(m.func_by_name("main").unwrap());
        // buf: 12 bytes rounds to 16; n follows at 16.
        assert_eq!(main.slot_offset(SlotId(0), &m.structs), 0);
        assert_eq!(main.slot_offset(SlotId(1), &m.structs), 16);
        assert_eq!(main.frame_size(&m.structs), 24);
    }

    #[test]
    fn inst_counts() {
        let m = sample();
        assert!(m.inst_count() > 0);
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::build::ModuleBuilder;
    use crate::inst::Operand;
    use crate::types::Ty;

    #[test]
    fn modules_serialize_roundtrip() {
        let mut mb = ModuleBuilder::new("serde");
        let stub = mb.declare_syscall_stub("execve", 59, 3);
        let g = mb.global_str("path", "/bin/x");
        let mut f = mb.function("main", &[], Ty::I64);
        let p = f.global_addr(g);
        let r = f.call_direct(stub, &[p.into(), Operand::Imm(0), Operand::Imm(0)]);
        f.ret(Some(r.into()));
        f.finish();
        let m = mb.finish();
        let json = serde_json::to_string(&m).unwrap();
        let back: Module = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
