//! Linux x86-64 system call numbers and the paper's Table 1 classification.
//!
//! The IR targets a simulated Linux x86-64 ABI, so syscall numbering is part
//! of the target description this crate encodes (stub functions carry these
//! numbers in [`crate::FuncKind::SyscallStub`]). The constants below match
//! `arch/x86/entry/syscalls/syscall_64.tbl`.
//!
//! Table 1 of the paper selects **20 sensitive system calls** grouped by the
//! attack vector that commonly abuses them; [`SENSITIVE`] and
//! [`AttackVector`] encode that table verbatim.

use serde::{Deserialize, Serialize};

macro_rules! sysno {
    ($($(#[$doc:meta])* $name:ident = $nr:expr, $str:expr;)*) => {
        $( $(#[$doc])* pub const $name: u32 = $nr; )*

        /// Resolves a syscall number to its name, if known to the simulator.
        pub fn name(nr: u32) -> Option<&'static str> {
            match nr {
                $( $nr => Some($str), )*
                _ => None,
            }
        }

        /// All syscall numbers known to the simulator.
        pub const ALL: &[u32] = &[$($nr),*];
    };
}

sysno! {
    /// `read(fd, buf, count)`
    READ = 0, "read";
    /// `write(fd, buf, count)`
    WRITE = 1, "write";
    /// `open(pathname, flags, mode)`
    OPEN = 2, "open";
    /// `close(fd)`
    CLOSE = 3, "close";
    /// `stat(pathname, statbuf)`
    STAT = 4, "stat";
    /// `lseek(fd, offset, whence)`
    LSEEK = 8, "lseek";
    /// `mmap(addr, length, prot, flags, fd, offset)`
    MMAP = 9, "mmap";
    /// `mprotect(addr, len, prot)`
    MPROTECT = 10, "mprotect";
    /// `munmap(addr, length)`
    MUNMAP = 11, "munmap";
    /// `brk(addr)`
    BRK = 12, "brk";
    /// `ioctl(fd, request, arg)`
    IOCTL = 16, "ioctl";
    /// `writev(fd, iov, iovcnt)`
    WRITEV = 20, "writev";
    /// `mremap(old, old_size, new_size, flags, new)`
    MREMAP = 25, "mremap";
    /// `dup(oldfd)`
    DUP = 32, "dup";
    /// `nanosleep(req, rem)`
    NANOSLEEP = 35, "nanosleep";
    /// `getpid()`
    GETPID = 39, "getpid";
    /// `sendfile(out_fd, in_fd, offset, count)`
    SENDFILE = 40, "sendfile";
    /// `socket(domain, type, protocol)`
    SOCKET = 41, "socket";
    /// `connect(sockfd, addr, addrlen)`
    CONNECT = 42, "connect";
    /// `accept(sockfd, addr, addrlen)`
    ACCEPT = 43, "accept";
    /// `sendto(sockfd, buf, len, flags, dest, addrlen)`
    SENDTO = 44, "sendto";
    /// `recvfrom(sockfd, buf, len, flags, src, addrlen)`
    RECVFROM = 45, "recvfrom";
    /// `shutdown(sockfd, how)`
    SHUTDOWN = 48, "shutdown";
    /// `bind(sockfd, addr, addrlen)`
    BIND = 49, "bind";
    /// `listen(sockfd, backlog)`
    LISTEN = 50, "listen";
    /// `clone(flags, stack, ptid, ctid, tls)`
    CLONE = 56, "clone";
    /// `fork()`
    FORK = 57, "fork";
    /// `vfork()`
    VFORK = 58, "vfork";
    /// `execve(pathname, argv, envp)`
    EXECVE = 59, "execve";
    /// `exit(status)`
    EXIT = 60, "exit";
    /// `wait4(pid, wstatus, options, rusage)`
    WAIT4 = 61, "wait4";
    /// `kill(pid, sig)`
    KILL = 62, "kill";
    /// `fcntl(fd, cmd, arg)`
    FCNTL = 72, "fcntl";
    /// `ftruncate(fd, length)`
    FTRUNCATE = 77, "ftruncate";
    /// `getcwd(buf, size)`
    GETCWD = 79, "getcwd";
    /// `rename(oldpath, newpath)`
    RENAME = 82, "rename";
    /// `mkdir(pathname, mode)`
    MKDIR = 83, "mkdir";
    /// `unlink(pathname)`
    UNLINK = 87, "unlink";
    /// `chmod(pathname, mode)`
    CHMOD = 90, "chmod";
    /// `getuid()`
    GETUID = 102, "getuid";
    /// `ptrace(request, pid, addr, data)`
    PTRACE = 101, "ptrace";
    /// `setuid(uid)`
    SETUID = 105, "setuid";
    /// `setgid(gid)`
    SETGID = 106, "setgid";
    /// `setreuid(ruid, euid)`
    SETREUID = 113, "setreuid";
    /// `remap_file_pages(addr, size, prot, pgoff, flags)`
    REMAP_FILE_PAGES = 216, "remap_file_pages";
    /// `exit_group(status)`
    EXIT_GROUP = 231, "exit_group";
    /// `openat(dirfd, pathname, flags, mode)`
    OPENAT = 257, "openat";
    /// `accept4(sockfd, addr, addrlen, flags)`
    ACCEPT4 = 288, "accept4";
    /// `execveat(dirfd, pathname, argv, envp, flags)`
    EXECVEAT = 322, "execveat";
    /// `getrandom(buf, buflen, flags)`
    GETRANDOM = 318, "getrandom";
}

/// The attack-vector class a sensitive syscall belongs to (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackVector {
    /// `execve, execveat, fork, vfork, clone, ptrace`
    ArbitraryCodeExecution,
    /// `mprotect, mmap, mremap, remap_file_pages`
    MemoryPermissions,
    /// `chmod, setuid, setgid, setreuid`
    PrivilegeEscalation,
    /// `socket, bind, connect, listen, accept, accept4`
    Networking,
}

impl AttackVector {
    /// Human-readable class name as printed in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            AttackVector::ArbitraryCodeExecution => "Arbitrary Code Execution",
            AttackVector::MemoryPermissions => "Memory Permissions",
            AttackVector::PrivilegeEscalation => "Privilege Escalation",
            AttackVector::Networking => "Networking",
        }
    }
}

/// Paper Table 1: the 20 sensitive system calls BASTION protects by default,
/// with the attack vector that commonly abuses each.
pub const SENSITIVE: &[(u32, AttackVector)] = &[
    (EXECVE, AttackVector::ArbitraryCodeExecution),
    (EXECVEAT, AttackVector::ArbitraryCodeExecution),
    (FORK, AttackVector::ArbitraryCodeExecution),
    (VFORK, AttackVector::ArbitraryCodeExecution),
    (CLONE, AttackVector::ArbitraryCodeExecution),
    (PTRACE, AttackVector::ArbitraryCodeExecution),
    (MPROTECT, AttackVector::MemoryPermissions),
    (MMAP, AttackVector::MemoryPermissions),
    (MREMAP, AttackVector::MemoryPermissions),
    (REMAP_FILE_PAGES, AttackVector::MemoryPermissions),
    (CHMOD, AttackVector::PrivilegeEscalation),
    (SETUID, AttackVector::PrivilegeEscalation),
    (SETGID, AttackVector::PrivilegeEscalation),
    (SETREUID, AttackVector::PrivilegeEscalation),
    (SOCKET, AttackVector::Networking),
    (BIND, AttackVector::Networking),
    (CONNECT, AttackVector::Networking),
    (LISTEN, AttackVector::Networking),
    (ACCEPT, AttackVector::Networking),
    (ACCEPT4, AttackVector::Networking),
];

/// The default sensitive set as numbers.
pub fn sensitive_set() -> std::collections::BTreeSet<u32> {
    SENSITIVE.iter().map(|&(nr, _)| nr).collect()
}

/// Whether `nr` is in the paper's default sensitive set.
pub fn is_sensitive(nr: u32) -> bool {
    SENSITIVE.iter().any(|&(n, _)| n == nr)
}

/// Filesystem-related syscalls and variants used by the paper's §11.2
/// extension experiment (Table 7): `open, read, write, send, recv` and
/// variants like `openat`, `sendfile`.
pub const FILESYSTEM_EXTENSION: &[u32] = &[
    OPEN, OPENAT, READ, WRITE, WRITEV, SENDTO, RECVFROM, SENDFILE, CLOSE, LSEEK, STAT, FTRUNCATE,
    RENAME, UNLINK, MKDIR,
];

/// The extended sensitive set of §11.2: Table 1 plus filesystem syscalls.
pub fn extended_sensitive_set() -> std::collections::BTreeSet<u32> {
    let mut s = sensitive_set();
    s.extend(FILESYSTEM_EXTENSION.iter().copied());
    s
}

/// 1-based positions of *extended* arguments (paper §3.3): arguments whose
/// pointee memory must also pass integrity verification, not just the
/// pointer value (e.g. `pathname` in `execve`). Out-parameters written by
/// the kernel (`accept`'s sockaddr, `read`'s buffer) are deliberately not
/// extended: the monitor verifies only their pointer value (§9.2 describes
/// the accept/accept4 special case).
pub fn extended_positions(nr: u32) -> &'static [u8] {
    match nr {
        EXECVE | OPEN | CHMOD | STAT | UNLINK | MKDIR => &[1],
        EXECVEAT | OPENAT | CONNECT | BIND | WRITE | SENDTO => &[2],
        RENAME => &[1, 2],
        _ => &[],
    }
}

/// Number of argument words each syscall consumes (simulator convention).
pub fn arg_count(nr: u32) -> u8 {
    match nr {
        GETPID | FORK | VFORK | GETUID => 0,
        CLOSE | BRK | EXIT | EXIT_GROUP | DUP | UNLINK | SETUID | SETGID | LISTEN | SHUTDOWN => {
            match nr {
                LISTEN | SHUTDOWN => 2,
                _ => 1,
            }
        }
        STAT | NANOSLEEP | MUNMAP | KILL | CHMOD | SETREUID | GETCWD | RENAME | MKDIR
        | FTRUNCATE => 2,
        READ | WRITE | OPEN | LSEEK | MPROTECT | IOCTL | WRITEV | SOCKET | CONNECT | ACCEPT
        | BIND | FCNTL | EXECVE | GETRANDOM => 3,
        SENDFILE | WAIT4 | ACCEPT4 | OPENAT | PTRACE => 4,
        MREMAP | CLONE | REMAP_FILE_PAGES | EXECVEAT => 5,
        MMAP | SENDTO | RECVFROM => 6,
        _ => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_twenty_entries_in_four_classes() {
        assert_eq!(SENSITIVE.len(), 20);
        use std::collections::HashSet;
        let classes: HashSet<_> = SENSITIVE.iter().map(|&(_, v)| v).collect();
        assert_eq!(classes.len(), 4);
        let ace = SENSITIVE
            .iter()
            .filter(|&&(_, v)| v == AttackVector::ArbitraryCodeExecution)
            .count();
        assert_eq!(ace, 6);
    }

    #[test]
    fn numbers_match_linux_abi() {
        assert_eq!(EXECVE, 59);
        assert_eq!(MPROTECT, 10);
        assert_eq!(ACCEPT4, 288);
        assert_eq!(name(59), Some("execve"));
        assert_eq!(name(9999), None);
    }

    #[test]
    fn sensitive_set_membership() {
        assert!(is_sensitive(EXECVE));
        assert!(is_sensitive(ACCEPT4));
        assert!(!is_sensitive(READ));
        assert!(!is_sensitive(GETPID));
        assert_eq!(sensitive_set().len(), 20);
    }

    #[test]
    fn extended_set_adds_filesystem_calls() {
        let ext = extended_sensitive_set();
        assert!(ext.contains(&OPEN));
        assert!(ext.contains(&SENDFILE));
        assert!(ext.contains(&EXECVE));
        assert!(ext.len() > 20);
    }

    #[test]
    fn arg_counts_are_plausible() {
        assert_eq!(arg_count(GETPID), 0);
        assert_eq!(arg_count(EXECVE), 3);
        assert_eq!(arg_count(MMAP), 6);
        assert_eq!(arg_count(ACCEPT4), 4);
        assert_eq!(arg_count(LISTEN), 2);
        assert_eq!(arg_count(CLOSE), 1);
    }

    #[test]
    fn all_sensitive_have_names() {
        for &(nr, _) in SENSITIVE {
            assert!(name(nr).is_some(), "missing name for {nr}");
        }
    }

    #[test]
    fn extended_positions_cover_pathnames_not_out_params() {
        assert_eq!(extended_positions(EXECVE), &[1]);
        assert_eq!(extended_positions(EXECVEAT), &[2]);
        assert_eq!(extended_positions(RENAME), &[1, 2]);
        // Kernel-written out-parameters are deliberately not extended
        // (accept's sockaddr, read's buffer — the §9.2 fast path).
        assert!(extended_positions(ACCEPT).is_empty());
        assert!(extended_positions(ACCEPT4).is_empty());
        assert!(extended_positions(READ).is_empty());
        assert!(extended_positions(MMAP).is_empty());
    }
}
